//! ISA-model conformance: the catalog, the encoder, the register
//! mapper, the naming schemes, and the device specs must all describe
//! the same machine.

use amd_matrix_cores::isa::encoding::{
    encode_instance, opcode_of, MfmaEncoding, Reg, OPCODE_TABLE,
};
use amd_matrix_cores::isa::regmap::{element_location, operand_coords, Operand};
use amd_matrix_cores::isa::specs::{a100, mi250x};
use amd_matrix_cores::isa::{ampere_catalog, cdna2_catalog, MatrixInstruction};
use amd_matrix_cores::model::ThroughputModel;
use proptest::prelude::*;

#[test]
fn catalog_encoding_and_parser_are_one_to_one() {
    let catalog = cdna2_catalog();
    for instr in catalog.instructions() {
        // mnemonic -> parse -> same structure.
        let parsed = MatrixInstruction::parse_cdna2_mnemonic(&instr.mnemonic()).unwrap();
        assert_eq!((parsed.cd, parsed.ab), (instr.cd, instr.ab));
        assert_eq!(
            (parsed.shape.m, parsed.shape.n, parsed.shape.k),
            (instr.shape.m, instr.shape.n, instr.shape.k)
        );
        // mnemonic -> opcode -> encode -> decode -> same mnemonic.
        let op = opcode_of(instr).unwrap();
        let enc = encode_instance(instr, Reg::A(0), Reg::V(0), Reg::V(8), Reg::A(0)).unwrap();
        assert_eq!(enc.opcode, op);
        let back = MfmaEncoding::from_u64(enc.to_u64()).unwrap();
        assert_eq!(back.mnemonic(), instr.mnemonic());
    }
    // The opcode table covers the catalog exactly.
    assert_eq!(OPCODE_TABLE.len(), catalog.instructions().len());
}

#[test]
fn register_footprints_bound_the_mapping() {
    // The declared VGPR/AccVGPR footprints are tight: the register map
    // must touch every register index below the footprint.
    for instr in cdna2_catalog().instructions() {
        for (operand, regs) in [
            (Operand::A, instr.a_vgprs_per_lane()),
            (Operand::B, instr.b_vgprs_per_lane()),
            (Operand::D, instr.cd_agprs_per_lane()),
        ] {
            let mut touched = vec![false; regs as usize];
            for coord in operand_coords(instr, operand) {
                let loc = element_location(instr, operand, coord).unwrap();
                for r in loc.vgpr..loc.vgpr + loc.width {
                    touched[r as usize] = true;
                }
            }
            assert!(
                touched.iter().all(|&t| t),
                "{} {operand:?}: unused registers in footprint {regs}",
                instr.mnemonic()
            );
        }
    }
}

#[test]
fn eq2_model_peak_equals_specs_peak_for_every_instruction() {
    // Two independent derivations of the same peak: Eq. 2 saturated at
    // the Matrix Core count, and the per-CU-rate × CUs × clock identity.
    let die = mi250x().die;
    for instr in cdna2_catalog().instructions() {
        let model = ThroughputModel::new(instr, &die);
        let spec_peak = die.peak_flops(instr.flops_per_cu_per_cycle());
        assert!(
            (model.peak_flops() - spec_peak).abs() / spec_peak < 1e-12,
            "{}",
            instr.mnemonic()
        );
    }
}

#[test]
fn vendor_catalogs_do_not_cross() {
    for i in cdna2_catalog().instructions() {
        assert_eq!(i.arch, amd_matrix_cores::isa::MatrixArch::Cdna2);
        assert!(i.mnemonic().starts_with("v_mfma"));
    }
    for i in ampere_catalog().instructions() {
        assert_eq!(i.arch, amd_matrix_cores::isa::MatrixArch::Ampere);
        assert!(i.mnemonic().starts_with("mma.sync"));
        assert!(
            i.builtin().is_none(),
            "no official C interface on NVIDIA (§III)"
        );
    }
}

#[test]
fn die_specs_are_internally_consistent() {
    for spec in [mi250x(), a100()] {
        let die = &spec.die;
        assert_eq!(die.matrix_units_per_cu, die.simd_units_per_cu);
        assert!(die.clock_mhz > 0 && die.compute_units > 0);
        assert!(spec.idle_power_w < spec.power_cap_w);
        // Wavefront size is a power of two and at least a SIMD width.
        assert!(die.wavefront_size.is_power_of_two());
        assert!(die.wavefront_size >= 16);
    }
}

proptest! {
    /// Any encodable register assignment round-trips through the
    /// 64-bit word.
    #[test]
    fn encoding_roundtrips_random_registers(
        instr_idx in 0usize..27,
        vdst in 0u8..=255,
        s0 in 0u8..=255,
        s1 in 0u8..=255,
        s2 in 0u8..=255,
        accs in 0u8..16,
    ) {
        let catalog = cdna2_catalog();
        let instr = &catalog.instructions()[instr_idx % catalog.instructions().len()];
        let reg = |n: u8, acc: bool| if acc { Reg::A(n) } else { Reg::V(n) };
        let enc = encode_instance(
            instr,
            reg(vdst, accs & 1 != 0),
            Reg::V(s0),
            reg(s1, accs & 4 != 0),
            reg(s2, accs & 8 != 0),
        ).unwrap();
        let back = MfmaEncoding::from_u64(enc.to_u64()).unwrap();
        prop_assert_eq!(back, enc);
    }

    /// Parsing is total over well-formed mnemonics and rejects noise.
    #[test]
    fn parser_rejects_random_noise(s in "[a-z0-9_x]{1,24}") {
        // Either parses into a structurally-valid instruction or errors;
        // never panics.
        if let Ok(i) = MatrixInstruction::parse_cdna2_mnemonic(&s) {
            prop_assert!(i.shape.m > 0 && i.shape.n > 0 && i.shape.k > 0);
            prop_assert!(s.starts_with("v_mfma_"));
        }
    }
}
