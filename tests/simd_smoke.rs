//! Gating CI smoke for the SIMD microkernel tier.
//!
//! Asserts the two load-bearing properties of the tier at the bench
//! matrix's headline cell (1024³, one thread, f32): the dispatch
//! actually selects it, and it beats the scalar blocked kernel by at
//! least 1.5× (the committed calibration shows ~10×, so 1.5× is a
//! regression tripwire, not a target). On a runner without AVX2 the
//! vector tier cannot run; the test prints a notice and passes, so
//! the gate only ever fails for a real regression.
//!
//! The test is `#[ignore]`d because it times a full-dimension GEMM;
//! CI runs it explicitly with `-- --ignored`.

use std::time::Instant;

use amd_matrix_cores::compute::{
    Blocked, Epilogue, GemmParams, MatMul, Simd, CROSSOVER_ENV, SIMD_ENV,
};

/// Deterministic pseudo-random fill in [-1, 1) (xorshift64*).
fn fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mantissa = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64;
        *v = (mantissa / (1u64 << 23) as f64 * 2.0 - 1.0) as f32;
    }
}

#[test]
#[ignore = "full-dimension perf smoke; CI runs it with -- --ignored"]
fn simd_tier_is_selected_and_beats_blocked_at_1024() {
    if !Simd::vector_available() {
        eprintln!("notice: runner lacks AVX2 — SIMD smoke skipped");
        return;
    }
    if !Simd::enabled_from_env() || std::env::var(CROSSOVER_ENV).is_ok() {
        eprintln!("notice: {SIMD_ENV}/{CROSSOVER_ENV} override in force — SIMD smoke skipped");
        return;
    }
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build_global();

    let n = 1024;
    let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);
    let auto = amd_matrix_cores::blas::select::host_gemm_backend();
    assert_eq!(
        auto.routed_name::<f32, f32>(&params),
        "simd",
        "the dispatch must put the SIMD tier on top at N={n} (edge {})",
        auto.crossover_n()
    );

    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    fill(&mut a, 0x9E37_79B9_7F4A_7C15);
    fill(&mut b, 0xD1B5_4A32_D192_ED03);
    let c = vec![0.0f32; n * n];

    let mut blocked_s = f64::INFINITY;
    let mut simd_s = f64::INFINITY;
    let mut d_blocked = vec![0.0f32; n * n];
    let mut d_simd = vec![0.0f32; n * n];
    for _ in 0..2 {
        let start = Instant::now();
        Blocked
            .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d_blocked)
            .unwrap();
        blocked_s = blocked_s.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        Simd::from_env()
            .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d_simd)
            .unwrap();
        simd_s = simd_s.min(start.elapsed().as_secs_f64());
    }

    // Same rounding chain, different loop order: the speedup must not
    // come at the cost of a single bit.
    assert!(
        d_blocked
            .iter()
            .zip(&d_simd)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "SIMD tier diverged from the blocked kernel"
    );
    assert!(
        simd_s * 1.5 <= blocked_s,
        "SIMD tier must be >= 1.5x the blocked kernel at {n}^3/1-thread f32: \
         simd {simd_s:.4}s vs blocked {blocked_s:.4}s ({:.2}x)",
        blocked_s / simd_s
    );
}
