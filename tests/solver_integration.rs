//! Integration tests for the LAPACK layer: numerics against the BLAS
//! stack, utilization against the profiler, and power over a whole
//! factorization's launch sequence.

use amd_matrix_cores::blas::{BlasHandle, GemmDesc, GemmOp};
use amd_matrix_cores::power::PmCounters;
use amd_matrix_cores::sim::{DeviceId, DeviceRegistry};
use amd_matrix_cores::solver::{
    factor_timed, getrf, potrf, refine, Factorization, Matrix, RefineOptions,
};

fn spd(n: usize) -> Matrix<f64> {
    // Symmetric, strongly diagonally dominant => positive definite.
    Matrix::from_fn(n, n, |i, j| {
        let (lo, hi) = (i.min(j), i.max(j));
        let base = (((lo * 31 + hi * 17) % 13) as f64) / 13.0 - 0.5;
        if i == j {
            n as f64 + base
        } else {
            base
        }
    })
}

#[test]
fn cholesky_solves_through_the_full_stack() {
    let n = 160;
    let a = spd(n);
    let l = potrf(&a, 64).unwrap();
    // Residual of the reconstruction, relative to ||A||.
    let mut max = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += l.get(i, k) * l.get(j, k);
            }
            max = max.max((s - a.get(i, j)).abs());
        }
    }
    assert!(max / a.max_abs() < 1e-12, "{max}");
}

#[test]
fn lu_beats_unpivoted_instability() {
    // A matrix needing pivoting: tiny leading pivot.
    let n = 64;
    let mut a = Matrix::from_fn(n, n, |i, j| {
        let h = ((i * n + j) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        let noise = (h as f64) / (1u64 << 24) as f64 - 0.5;
        if i == j {
            6.0 + noise
        } else {
            noise
        }
    });
    a.set(0, 0, 1e-14);
    let lu = getrf(&a, 16).unwrap();
    assert_ne!(lu.ipiv[0], 0, "must pivot away from the tiny element");
    // Solve and check.
    let x_true = Matrix::from_fn(n, 1, |i, _| ((i % 5) as f64) - 2.0);
    let mut b = Matrix::zeros(n, 1);
    for i in 0..n {
        let mut s = 0.0;
        for k in 0..n {
            s += a.get(i, k) * x_true.get(k, 0);
        }
        b.set(i, 0, s);
    }
    let x = lu.solve(&b).unwrap();
    for i in 0..n {
        assert!((x.get(i, 0) - x_true.get(i, 0)).abs() < 1e-6, "row {i}");
    }
}

#[test]
fn refinement_converges_where_f32_alone_is_insufficient() {
    let n = 200;
    let a = spd(n);
    let x_true = Matrix::from_fn(n, 1, |i, _| ((i * 37 % 101) as f64) / 101.0);
    let mut b = Matrix::zeros(n, 1);
    for i in 0..n {
        let mut s = 0.0;
        for k in 0..n {
            s += a.get(i, k) * x_true.get(k, 0);
        }
        b.set(i, 0, s);
    }
    let report = refine(&a, &b, RefineOptions::default()).unwrap();
    let final_err = (0..n)
        .map(|i| (report.x.get(i, 0) - x_true.get(i, 0)).abs())
        .fold(0.0f64, f64::max);
    assert!(final_err < 1e-10, "{final_err}");
    assert!(report.residual_history[0] / report.residual_history.last().unwrap() > 1e2);
}

#[test]
fn factorization_gemm_counters_match_blas_accounting() {
    // The timed factorization's MFMA counters must equal the sum of its
    // individual GEMM plans' counters.
    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    let n = 1024;
    let nb = 128;
    let perf = factor_timed(&mut handle, Factorization::Potrf, n, nb).unwrap();

    let mut expected_mfma = 0u64;
    let mut k = 0;
    while k < n {
        let b = nb.min(n - k);
        let rest = n - k - b;
        if rest > 0 {
            // POTRF trailing updates run as SYRK (lower-triangle tiles).
            let plan = amd_matrix_cores::blas::plan_syrk(
                &handle.gpu().spec().die,
                &amd_matrix_cores::blas::SyrkDesc {
                    op: GemmOp::Dgemm,
                    n: rest,
                    k: b,
                    alpha: -1.0,
                    beta: 1.0,
                },
            )
            .unwrap();
            expected_mfma += plan.kernel.total_mfma_flops();
        }
        k += b;
    }
    assert_eq!(perf.counters.mfma_mops_f64 * 512, expected_mfma);
}

#[test]
fn factorization_power_profile_integrates_consistently() {
    // Replay the factorization's GEMM schedule as a launch sequence and
    // cross-check SMI-style telemetry against pm_counters energy.
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let die = gpu.spec().die.clone();
    let mut kernels = Vec::new();
    let (n, nb) = (2048usize, 128usize);
    let mut k = 0;
    while k < n {
        let b = nb.min(n - k);
        let rest = n - k - b;
        if rest > 0 {
            let plan = amd_matrix_cores::blas::plan_gemm(
                &die,
                &GemmDesc::new(GemmOp::Dgemm, rest, rest, b, -1.0, 1.0),
            )
            .unwrap();
            kernels.push(plan.kernel);
        }
        k += b;
    }
    let seq = gpu.launch_sequence(0, &kernels).unwrap();
    let pm = PmCounters::attach(seq.profile.clone());
    let mean_from_energy = pm.mean_power_w(0.0, seq.time_s);
    assert!((mean_from_energy - seq.avg_power_w).abs() < 1e-6);
    // Power must stay between idle and cap throughout.
    for &(_, _, w) in &seq.profile.segments {
        assert!(w >= gpu.spec().idle_power_w && w < gpu.spec().power_cap_w);
    }
}

#[test]
fn gemm_dominance_grows_with_block_ratio() {
    // Classic LAPACK analysis: panel work is O(n·nb²), GEMM is O(n³).
    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    let small = factor_timed(&mut handle, Factorization::Getrf, 2048, 256).unwrap();
    let large = factor_timed(&mut handle, Factorization::Getrf, 8192, 256).unwrap();
    assert!(large.matrix_core_ratio > small.matrix_core_ratio);
    assert!(
        large.matrix_core_ratio > 0.96,
        "{}",
        large.matrix_core_ratio
    );
}
