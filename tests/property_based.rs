//! Property-based tests (proptest) over the core data structures and
//! invariants: soft-float correctness, register-map bijectivity, model
//! identities, planner accounting, and simulator monotonicity.

use amd_matrix_cores::blas::{plan_gemm, GemmDesc, GemmOp};
use amd_matrix_cores::isa::regmap::{element_location, lane_contents, ElementCoord, Operand};
use amd_matrix_cores::isa::{cdna2_catalog, KernelDesc, SlotOp, WaveProgram};
use amd_matrix_cores::model::{fit_linear, FlopDistribution};
use amd_matrix_cores::sim::{execute, SimConfig};
use amd_matrix_cores::types::{ulp_distance_f32, Bf16, DType, F16};
use proptest::prelude::*;

proptest! {
    /// f32 -> f16 -> f32 round-trips exactly for every value already
    /// representable in f16.
    #[test]
    fn f16_roundtrip_of_representable_values(bits in 0u16..=u16::MAX) {
        let h = F16::from_bits(bits);
        prop_assume!(!h.is_nan());
        let back = F16::from_f32(h.to_f32());
        prop_assert_eq!(back.to_bits(), bits);
    }

    /// Conversion to f16 is monotone: a <= b implies f16(a) <= f16(b).
    #[test]
    fn f16_conversion_is_monotone(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (hlo, hhi) = (F16::from_f32(lo), F16::from_f32(hi));
        prop_assert!(hlo <= hhi, "{lo} -> {hlo:?}, {hi} -> {hhi:?}");
    }

    /// f16 rounding error is within half an ULP of the target format.
    #[test]
    fn f16_rounding_within_half_ulp(x in -60000.0f32..60000.0) {
        let h = F16::from_f32(x);
        let y = h.to_f32();
        // ULP of f16 at |x|: 2^(floor(log2 |x|) - 10), at least 2^-24.
        let exp = if x == 0.0 {
            -24
        } else {
            (x.abs().log2().floor() as i32 - 10).max(-24)
        };
        let ulp = 2.0f64.powi(exp);
        prop_assert!((f64::from(y) - f64::from(x)).abs() <= ulp / 2.0 + 1e-12,
            "{x} -> {y}");
    }

    /// f16 addition is commutative (no NaN inputs).
    #[test]
    fn f16_addition_commutes(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let (x, y) = (F16::from_f32(a), F16::from_f32(b));
        prop_assert_eq!((x + y).to_bits(), (y + x).to_bits());
    }

    /// bf16 conversion never moves a value past an adjacent bf16.
    #[test]
    fn bf16_conversion_is_monotone(a in -1e30f32..1e30, b in -1e30f32..1e30) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::from_f32(lo) <= Bf16::from_f32(hi));
    }

    /// ULP distance is symmetric and zero iff bitwise-equal (mod ±0).
    #[test]
    fn ulp_distance_symmetry(a in any::<f32>(), b in any::<f32>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        prop_assert_eq!(ulp_distance_f32(a, b), ulp_distance_f32(b, a));
        if ulp_distance_f32(a, b) == 0 {
            prop_assert!(a == b || (a == 0.0 && b == 0.0));
        }
    }

    /// Register mapping: random element coordinates always land in
    /// bounds and agree with the inverse (lane_contents) query.
    #[test]
    fn regmap_location_consistency(
        instr_idx in 0usize..27,
        row in 0u32..32,
        col in 0u32..32,
        block in 0u32..16,
    ) {
        let catalog = cdna2_catalog();
        let instr = &catalog.instructions()[instr_idx % catalog.instructions().len()];
        for operand in [Operand::A, Operand::B, Operand::C, Operand::D] {
            let coord = ElementCoord { block, row, col };
            match element_location(instr, operand, coord) {
                Ok(loc) => {
                    prop_assert!(loc.lane < 64);
                    let contents = lane_contents(instr, operand, loc.lane).unwrap();
                    prop_assert!(
                        contents.iter().any(|(c, l)| *c == coord && l == &loc),
                        "{} {operand}: {coord:?} missing from lane {}",
                        instr.mnemonic(), loc.lane
                    );
                }
                Err(_) => {
                    // Must be genuinely out of range for this operand.
                    let s = instr.shape;
                    let (rows, cols) = match operand {
                        Operand::A => (s.m, s.k),
                        Operand::B => (s.k, s.n),
                        _ => (s.m, s.n),
                    };
                    prop_assert!(block >= s.blocks || row >= rows || col >= cols);
                }
            }
        }
    }

    /// Planner accounting: kernel-program FLOPs always equal the
    /// closed-form plan FLOPs, for every op and size.
    #[test]
    fn planner_flop_accounting_consistent(
        op_idx in 0usize..5,
        n in 16usize..2048,
    ) {
        let op = GemmOp::ALL[op_idx];
        let die = amd_matrix_cores::isa::specs::mi250x().die;
        let plan = plan_gemm(&die, &GemmDesc::square(op, n)).unwrap();
        prop_assert_eq!(plan.kernel.total_mfma_flops(), plan.mfma_flops);
        prop_assert_eq!(
            plan.kernel.total_flops(),
            plan.mfma_flops + plan.simd_flops
        );
        // Coverage and padding bounds: at least the ideal work, at most
        // one macro-tile of padding in m/n and one k-step in k.
        let ideal = 2 * (n as u64).pow(3);
        if plan.strategy.uses_matrix_cores() {
            prop_assert!(plan.mfma_flops >= ideal, "under-covered: {} < {ideal}", plan.mfma_flops);
            let pad_mn = (n as u64).div_ceil(256) * 256;
            let pad_k = (n as u64).div_ceil(16) * 16;
            prop_assert!(plan.mfma_flops <= 2 * pad_mn * pad_mn * pad_k);
        }
    }

    /// The Fig. 9 model identity 2N³/3N² = (2/3)N holds for all N.
    #[test]
    fn flop_distribution_identity(n in 1u64..100_000) {
        let r = FlopDistribution::mc_to_simd_ratio(n);
        prop_assert!((r - 2.0 * n as f64 / 3.0).abs() < 1e-6 * r);
    }

    /// Least squares exactly recovers arbitrary non-degenerate lines.
    #[test]
    fn linear_fit_recovers_lines(
        slope in -100.0f64..100.0,
        intercept in -1000.0f64..1000.0,
    ) {
        let pts: Vec<(f64, f64)> =
            (0..10).map(|i| (i as f64, slope * i as f64 + intercept)).collect();
        let fit = fit_linear(&pts).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 + slope.abs() * 1e-9);
        prop_assert!((fit.intercept - intercept).abs() < 1e-6 + intercept.abs() * 1e-9);
    }

    /// Simulator throughput is monotone non-decreasing in wavefronts
    /// below saturation, and kernel time is positive and finite.
    #[test]
    fn engine_monotonicity(waves_a in 1u64..440, waves_b in 1u64..440) {
        prop_assume!(waves_a < waves_b);
        let cfg = SimConfig::mi250x();
        let die = cfg.package.die.clone();
        let i = *cdna2_catalog().find(DType::F32, DType::F16, 16, 16, 16).unwrap();
        let mk = |w| KernelDesc {
            workgroups: w,
            waves_per_workgroup: 1,
            ..KernelDesc::new("k", WaveProgram::looped(vec![SlotOp::Mfma(i)], 10_000))
        };
        let ta = execute(&die, &cfg, &mk(waves_a)).unwrap();
        let tb = execute(&die, &cfg, &mk(waves_b)).unwrap();
        let ra = ta.flops as f64 / ta.time_s;
        let rb = tb.flops as f64 / tb.time_s;
        prop_assert!(ta.time_s.is_finite() && ta.time_s > 0.0);
        prop_assert!(rb >= ra * 0.999, "waves {waves_a}->{waves_b}: {ra} -> {rb}");
    }

    /// Machine-word round-trip over the full CDNA2 catalog: encoding
    /// any instruction with arbitrary registers and decoding the word
    /// recovers the instance bit-exactly, and corrupting any
    /// reserved/modifier bit of the word makes the decoder refuse it.
    #[test]
    fn mfma_encoding_roundtrips_and_rejects_reserved_bits(
        instr_idx in 0usize..27,
        reg_bits in any::<u64>(),
        acc_bits in 0u8..16,
        reserved_bit in 0u32..64,
    ) {
        use amd_matrix_cores::isa::encoding::{
            encode_instance, EncodeError, MfmaEncoding, Reg, RESERVED_MASK,
        };
        let catalog = cdna2_catalog();
        let instr = &catalog.instructions()[instr_idx % catalog.instructions().len()];
        // Four registers from the packed bits: one byte of register
        // number and one acc-file flag each. src0 (index 1) has no ACC
        // bit in the VOP3P-MAI format, so it always draws from the
        // architectural file.
        let reg = |i: u32| {
            let n = (reg_bits >> (8 * i)) as u8;
            if i != 1 && acc_bits >> i & 1 == 1 { Reg::A(n) } else { Reg::V(n) }
        };
        let enc = encode_instance(instr, reg(0), reg(1), reg(2), reg(3)).unwrap();
        let word = enc.to_u64();
        let back = MfmaEncoding::from_u64(word).unwrap();
        prop_assert_eq!(back, enc);
        prop_assert_eq!(back.to_u64(), word, "re-encode must be bit-identical");
        prop_assert_eq!(back.mnemonic(), instr.mnemonic());
        // The encoder must never touch the reserved/modifier bits…
        prop_assert_eq!(word & RESERVED_MASK, 0);
        // …and the decoder must reject a word with any of them set.
        let mask = 1u64 << reserved_bit;
        if RESERVED_MASK & mask != 0 {
            prop_assert!(matches!(
                MfmaEncoding::from_u64(word | mask),
                Err(EncodeError::ReservedBits { .. })
            ));
        }
    }

    /// Eq. 1 derivation is linear: counters of two merged launches give
    /// the sum of the individual derivations.
    #[test]
    fn eq1_is_additive(mops_a in 0u64..1_000_000, mops_b in 0u64..1_000_000,
                       fma_a in 0u64..1_000_000, fma_b in 0u64..1_000_000) {
        use amd_matrix_cores::model::flops::derived_total_flops;
        use amd_matrix_cores::sim::HwCounters;
        let a = HwCounters { mfma_mops_f64: mops_a, valu_fma_f64: fma_a, ..Default::default() };
        let b = HwCounters { mfma_mops_f64: mops_b, valu_fma_f64: fma_b, ..Default::default() };
        let merged = a.merged(&b);
        let da = derived_total_flops(&a);
        let db = derived_total_flops(&b);
        let dm = derived_total_flops(&merged);
        prop_assert_eq!(dm.matrix_core, da.matrix_core + db.matrix_core);
        prop_assert_eq!(dm.simd, da.simd + db.simd);
    }
}

proptest! {
    /// SYRK equals the GEMM reference on the lower triangle and leaves
    /// the upper triangle untouched, for arbitrary shapes and scalars.
    #[test]
    fn syrk_matches_gemm_lower_triangle(
        n in 1usize..40,
        k in 1usize..24,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        use amd_matrix_cores::blas::{syrk_functional, SyrkDesc};
        let desc = SyrkDesc { op: GemmOp::Dgemm, n, k, alpha, beta };
        let a: Vec<f64> = (0..n * k).map(|i| ((i * 7 % 13) as f64) / 13.0 - 0.5).collect();
        let c0: Vec<f64> = (0..n * n).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        let mut c = c0.clone();
        syrk_functional::<f64, f64>(&desc, &a, &mut c).unwrap();
        let mut full = vec![0.0f64; n * n];
        amd_matrix_cores::blas::gemm_reference_f64(&desc.as_gemm(), &a, &a, &c0, &mut full)
            .unwrap();
        for i in 0..n {
            for j in 0..n {
                if j <= i {
                    prop_assert!((c[i * n + j] - full[i * n + j]).abs() < 1e-10);
                } else {
                    prop_assert_eq!(c[i * n + j], c0[i * n + j]);
                }
            }
        }
    }

    /// Quantization round-trips within half a scale step and never
    /// exceeds the i8 range.
    #[test]
    fn quantize_bounds(values in prop::collection::vec(-1e3f32..1e3, 1..128)) {
        use amd_matrix_cores::blas::{dequantize, quantize};
        let q = quantize(&values);
        prop_assert!(q.scale > 0.0);
        let back = dequantize(&q);
        for (orig, rec) in values.iter().zip(&back) {
            prop_assert!((orig - rec).abs() <= q.scale / 2.0 + 1e-5,
                "{orig} vs {rec} (scale {})", q.scale);
        }
    }

    /// CBSZ/ABID always map a block's A source inside its own group.
    #[test]
    fn modifier_sources_stay_in_group(cbsz in 0u8..5, abid in 0u8..16, block in 0u32..16) {
        use amd_matrix_cores::isa::modifiers::MfmaModifiers;
        let group = 1u32 << cbsz;
        prop_assume!(u32::from(abid) < group && group <= 16);
        let m = MfmaModifiers { cbsz, abid, ..Default::default() };
        let src = m.a_source_block(block);
        prop_assert_eq!(src / group, block / group, "source crosses its group");
        prop_assert!(src < 16);
    }

    /// Occupancy never exceeds hardware ceilings, and adding register
    /// pressure never increases it.
    #[test]
    fn occupancy_is_monotone_in_pressure(vgprs in 1u32..512, extra in 1u32..256) {
        use amd_matrix_cores::sim::occupancy;
        use amd_matrix_cores::isa::{KernelDesc, SlotOp, WaveProgram};
        let die = amd_matrix_cores::isa::specs::mi250x().die;
        let i = *cdna2_catalog().find(DType::F32, DType::F16, 16, 16, 16).unwrap();
        let mk = |v: u32| KernelDesc {
            arch_vgprs: v,
            workgroups: 100,
            waves_per_workgroup: 1,
            ..KernelDesc::new("o", WaveProgram::looped(vec![SlotOp::Mfma(i)], 1))
        };
        let light = occupancy(&die, &mk(vgprs));
        let heavy = occupancy(&die, &mk(vgprs.saturating_add(extra).min(512)));
        prop_assert!(light.waves_per_simd <= die.max_waves_per_simd);
        prop_assert!(heavy.waves_per_cu <= light.waves_per_cu);
        prop_assert!(light.fraction <= 1.0 && light.fraction >= 0.0);
    }

    /// GEMV matches a plain reference for arbitrary shapes.
    #[test]
    fn gemv_matches_reference(m in 1usize..48, n in 1usize..48) {
        use amd_matrix_cores::blas::{gemv_functional, GemvDesc};
        let desc = GemvDesc { op: GemmOp::Dgemm, m, n, alpha: 1.5, beta: -0.5 };
        let a: Vec<f64> = (0..m * n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let x: Vec<f64> = (0..n).map(|i| ((i * 5 % 9) as f64) - 4.0).collect();
        let mut y: Vec<f64> = (0..m).map(|i| i as f64).collect();
        let y0 = y.clone();
        gemv_functional::<f64, f64>(&desc, &a, &x, &mut y).unwrap();
        for i in 0..m {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a[i * n + j] * x[j];
            }
            prop_assert!((y[i] - (1.5 * acc - 0.5 * y0[i])).abs() < 1e-9);
        }
    }
}

proptest! {
    /// Plan-search invariants over arbitrary descriptors: every
    /// searched winner passes the static verifier at error severity,
    /// is never slower than the static plan under the engine model,
    /// reproduces the §VII policy rules as outcomes, and round-trips
    /// through the plan-DB strategy record.
    #[test]
    fn searched_plans_lint_clean_and_never_lose(
        op_idx in 0usize..5,
        n in 1usize..400,
        scaled in any::<bool>(),
    ) {
        use amd_matrix_cores::blas::{select_plan, StrategyRecord};
        let op = [GemmOp::Sgemm, GemmOp::Dgemm, GemmOp::Hgemm, GemmOp::Hss, GemmOp::Hhs]
            [op_idx];
        let (alpha, beta) = if scaled { (0.5, 0.25) } else { (1.0, 0.0) };
        let desc = GemmDesc { alpha, beta, ..GemmDesc::square(op, n) };
        let cfg = SimConfig::mi250x();
        let die = cfg.package.die.clone();
        let out = select_plan(&die, &cfg, &desc).unwrap();

        // The winner compiled through the lint gate: re-linting finds
        // no error-severity issues.
        let report = amd_matrix_cores::lint::lint_kernel(&die, &out.plan.kernel);
        prop_assert!(!report.has_errors(), "{op} N={n}: {report:?}");

        // Selected never slower than static (the static plan is always
        // a dry-run finalist).
        prop_assert!(
            out.searched_time_s <= out.static_time_s,
            "{op} N={n}: searched {} vs static {}",
            out.searched_time_s,
            out.static_time_s
        );

        // §VII rule 1 (structural): HGEMM never uses the Matrix Cores.
        if op == GemmOp::Hgemm {
            prop_assert!(!out.plan.strategy.uses_matrix_cores());
        }
        // §VII rule 2 (scored): tiny scaled mixed-precision problems
        // stay on SIMD — the pipeline-handoff penalty beats one MFMA's
        // worth of Matrix Core work.
        if scaled && n <= 16 && matches!(op, GemmOp::Hss | GemmOp::Hhs) {
            prop_assert!(
                !out.plan.strategy.uses_matrix_cores(),
                "{op} N={n} must stay on SIMD"
            );
        }

        // The winning strategy survives the plan-DB record round-trip.
        let record = StrategyRecord::from_strategy(&out.plan.strategy);
        prop_assert_eq!(record.resolve(), Some(out.plan.strategy));
    }
}

/// Functional GEMM vs the f64 reference over random data: bounded
/// relative error per routine (deterministic seeds, full matrix check).
#[test]
fn random_gemm_error_bounds() {
    use amd_matrix_cores::blas::Strategy;
    use amd_matrix_cores::blas::{gemm_reference_f64, run_functional};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = 96;
    let mut rng = StdRng::seed_from_u64(7);
    let a64: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b64: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let c64: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let desc = GemmDesc {
        alpha: 0.75,
        beta: 0.5,
        ..GemmDesc::square(GemmOp::Sgemm, n)
    };
    let mut d_ref = vec![0.0f64; n * n];
    gemm_reference_f64(&desc, &a64, &b64, &c64, &mut d_ref).unwrap();

    // SGEMM path: f32 in/out.
    let a: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
    let b: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
    let c: Vec<f32> = c64.iter().map(|&x| x as f32).collect();
    let mut d = vec![0.0f32; n * n];
    let strat = Strategy::MatrixCore {
        instr: *cdna2_catalog()
            .find(DType::F32, DType::F32, 16, 16, 4)
            .unwrap(),
        macro_tile: (128, 128),
        wave_tile: (64, 64),
        k_step: 4,
        buffering: amd_matrix_cores::isa::Buffering::Double,
    };
    run_functional::<f32, f32, f32>(&desc, &strat, &a, &b, &c, &mut d).unwrap();
    for (got, want) in d.iter().zip(&d_ref) {
        assert!(
            (f64::from(*got) - want).abs() < 1e-4 + want.abs() * 1e-4,
            "{got} vs {want}"
        );
    }
}

proptest! {
    /// Streaming quantile estimates always land inside the bucket that
    /// holds the exact rank-order statistic (and inside the observed
    /// min/max), for arbitrary sample streams and quantiles.
    #[test]
    fn histogram_quantiles_are_bracketed_by_bucket_bounds(
        samples in prop::collection::vec(1e-7f64..50.0, 1..256),
        q in 0.0f64..1.0,
    ) {
        use amd_matrix_cores::trace::Histogram;
        let mut h = Histogram::latency_seconds();
        for &s in &samples {
            h.record(s);
        }
        let est = h.quantile(q).unwrap();

        // The exact order statistic the estimate targets.
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let exact = sorted[rank - 1];

        // Bounds of the bucket holding that sample.
        let bucket = h.bounds().iter().position(|b| exact <= *b);
        let upper = bucket
            .map(|i| h.bounds()[i])
            .unwrap_or(h.max().unwrap());
        let lower = match bucket {
            Some(0) | None => h.min().unwrap(),
            Some(i) => h.bounds()[i - 1].min(upper),
        };
        prop_assert!(
            est >= lower.min(h.min().unwrap()) && est <= upper.max(lower),
            "q={q}: estimate {est} outside bucket [{lower}, {upper}] of exact {exact}"
        );
        prop_assert!(est >= h.min().unwrap() && est <= h.max().unwrap());
    }

    /// Quantiles are monotone in q.
    #[test]
    fn histogram_quantiles_are_monotone(
        samples in prop::collection::vec(1e-7f64..50.0, 1..128),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        use amd_matrix_cores::trace::Histogram;
        let mut h = Histogram::latency_seconds();
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo).unwrap() <= h.quantile(hi).unwrap());
    }

    /// Merging two histograms is exactly recording the concatenated
    /// stream: identical bucket counts, count, min/max, and a sum equal
    /// up to floating-point reassociation.
    #[test]
    fn histogram_merge_equals_concatenated_stream(
        a in prop::collection::vec(1e-7f64..50.0, 0..128),
        b in prop::collection::vec(1e-7f64..50.0, 0..128),
    ) {
        use amd_matrix_cores::trace::Histogram;
        let mut ha = Histogram::latency_seconds();
        let mut hb = Histogram::latency_seconds();
        let mut hc = Histogram::latency_seconds();
        for &s in &a {
            ha.record(s);
            hc.record(s);
        }
        for &s in &b {
            hb.record(s);
            hc.record(s);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.bucket_counts(), hc.bucket_counts());
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        let scale = ha.sum().abs().max(1.0);
        prop_assert!((ha.sum() - hc.sum()).abs() <= 1e-9 * scale);
        if !a.is_empty() || !b.is_empty() {
            for q in [0.5, 0.95, 0.99] {
                prop_assert_eq!(ha.quantile(q), hc.quantile(q));
            }
        }
    }
}
