//! Host-profiling transparency tests.
//!
//! The `compute::prof` contract (docs/OBSERVABILITY.md, "Host plane")
//! is that attaching a profiling session is *observationally inert*:
//! the instrumented kernels time themselves around the arithmetic,
//! never inside the per-element rounding chain, so a traced run yields
//! bitwise-identical output to an untraced one — for every dispatch
//! tier and for the batched BLAS entry point. The second half pins the
//! structural side: whatever worker interleaving the rayon pool
//! produces, the converted host spans survive
//! [`mc_trace::check_invariants`] at every pool size the perf matrix
//! exercises.

use amd_matrix_cores::blas::{BatchedGemmDesc, BlasHandle, GemmDesc, GemmOp};
use amd_matrix_cores::compute::{prof, Auto, Epilogue, GemmParams, MatMul};
use amd_matrix_cores::hostprof::to_trace_events;
use amd_matrix_cores::trace::{check_invariants, Category, TraceEvent, Track};
use proptest::prelude::*;

/// Deterministic pseudo-random fill in [-1, 1) (xorshift64*): full
/// mantissas, so any perturbation of the rounding chain shows up in
/// the output bits.
fn xorshift_fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mantissa = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64;
        *v = (mantissa / (1u64 << 23) as f64 * 2.0 - 1.0) as f32;
    }
}

/// Runs one problem through the given dispatcher and returns the
/// output bits, optionally under an attached profiling session.
fn run_auto(auto: &Auto, m: usize, n: usize, k: usize, seed: u64, traced: bool) -> Vec<u32> {
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    let mut c = vec![0.0f32; m * n];
    xorshift_fill(&mut a, seed ^ 0x9E37_79B9_7F4A_7C15);
    xorshift_fill(&mut b, seed ^ 0xD1B5_4A32_D192_ED03);
    xorshift_fill(&mut c, seed ^ 0x1234_5678_9ABC_DEF0);
    let mut d = vec![0.0f32; m * n];
    let params = GemmParams::new(m, n, k)
        .with_scaling(1.25, -0.5)
        .with_epilogue(Epilogue::ComputeRounded);
    if traced {
        let session = prof::session();
        auto.gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
            .expect("traced gemm");
        let profile = session.finish();
        assert!(
            !profile.events.is_empty(),
            "a traced dispatch must record at least the region event"
        );
    } else {
        auto.gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
            .expect("untraced gemm");
    }
    d.into_iter().map(f32::to_bits).collect()
}

/// The three routed tiers, each forced via the crossover edge: a huge
/// edge routes everything to the naive loop, edge zero routes to the
/// best packed tier (SIMD where the host supports it), and edge zero
/// without SIMD pins the scalar blocked tier.
fn tiers() -> [(&'static str, Auto); 3] {
    [
        ("naive", Auto::with_crossover(usize::MAX)),
        ("blocked", Auto::with_crossover(0).without_simd()),
        ("packed", Auto::with_crossover(0)),
    ]
}

proptest! {
    /// Attaching a session never changes a single output bit, on any
    /// dispatch tier, for random shapes spanning the microkernel edge.
    #[test]
    fn traced_runs_are_bitwise_identical(
        m in 1usize..40, n in 1usize..40, k in 0usize..40, seed in any::<u64>(),
    ) {
        for (tier, auto) in tiers() {
            let untraced = run_auto(&auto, m, n, k, seed, false);
            let traced = run_auto(&auto, m, n, k, seed, true);
            prop_assert_eq!(
                &untraced, &traced,
                "{}x{}x{} tier {}: tracing perturbed the output bits", m, n, k, tier
            );
        }
    }
}

/// The batched BLAS entry point (`rocblas_gemm_strided_batched_ex`
/// shape) is equally inert: every batch entry's host output matches
/// bitwise with a session attached.
#[test]
fn batched_blas_is_bitwise_identical_under_tracing() {
    let (n, batch) = (48, 3);
    let desc = BatchedGemmDesc::packed(GemmDesc::square(GemmOp::Sgemm, n), batch);
    let elems = n * n * batch;
    let mut a = vec![0.0f32; elems];
    let mut b = vec![0.0f32; elems];
    let mut c = vec![0.0f32; elems];
    xorshift_fill(&mut a, 0x9E37_79B9_7F4A_7C15);
    xorshift_fill(&mut b, 0xD1B5_4A32_D192_ED03);
    xorshift_fill(&mut c, 0x1234_5678_9ABC_DEF0);

    let run = |traced: bool| {
        let mut h = BlasHandle::new_mi250x_gcd();
        let mut d = vec![0.0f32; elems];
        if traced {
            let session = prof::session();
            h.gemm_strided_batched_ex::<f32, f32, f32>(&desc, &a, &b, &c, &mut d)
                .expect("traced batched gemm");
            session.finish()
        } else {
            h.gemm_strided_batched_ex::<f32, f32, f32>(&desc, &a, &b, &c, &mut d)
                .expect("untraced batched gemm");
            prof::HostProfile::default()
        };
        d.into_iter().map(f32::to_bits).collect::<Vec<u32>>()
    };

    assert_eq!(run(false), run(true), "batched tracing perturbed bits");
}

/// Whatever worker interleaving each pool size produces, the converted
/// host timeline stays structurally sound: phases nest inside their
/// region, lanes never self-overlap, and the packed tiers contribute
/// at least one worker-track span. (The vendored rayon honors the most
/// recent `build_global`, which is what makes the sweep testable
/// in-process.)
#[test]
fn worker_spans_pass_invariants_at_every_pool_size() {
    for jobs in [1usize, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build_global()
            .expect("pool rebuild");

        let session = prof::session();
        // One packed region (worker fanout) and one naive region
        // (caller-lane compute) in the same session, so the converter
        // sees both lane families at once.
        let _ = run_inside_session(&Auto::with_crossover(0), 96);
        let _ = run_inside_session(&Auto::with_crossover(usize::MAX), 16);
        let profile = session.finish();

        let events = to_trace_events(&profile);
        let violations = check_invariants(&events);
        assert!(
            violations.is_empty(),
            "jobs={jobs}: host timeline violations: {violations:?}"
        );
        let worker_spans = events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Span(s) if s.category == Category::HostPhase
                    && matches!(s.track, Track::HostWorker(_)))
            })
            .count();
        assert!(
            worker_spans > 0,
            "jobs={jobs}: packed region produced no worker-track spans"
        );
    }
}

/// Runs one square problem under an already-attached session.
fn run_inside_session(auto: &Auto, n: usize) -> Vec<u32> {
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    xorshift_fill(&mut a, 0xA5A5_5A5A_DEAD_BEEF);
    xorshift_fill(&mut b, 0x0123_4567_89AB_CDEF);
    let c = vec![0.0f32; n * n];
    let mut d = vec![0.0f32; n * n];
    let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);
    auto.gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
        .expect("in-session gemm");
    d.into_iter().map(f32::to_bits).collect()
}
