//! End-to-end checks of the paper's headline claims through the public
//! facade crate — the contract EXPERIMENTS.md reports against.

use amd_matrix_cores::blas::{BlasHandle, GemmDesc, GemmOp};
use amd_matrix_cores::isa::{ampere_catalog, cdna2_catalog};
use amd_matrix_cores::model::FlopDistribution;
use amd_matrix_cores::power::gflops_per_watt;
use amd_matrix_cores::profiler::{matrix_core_ratio, ProfilerSession};
use amd_matrix_cores::sim::{throughput_run_all_dies, DeviceId, DeviceRegistry, Gpu};
use amd_matrix_cores::types::DType;

/// Abstract §I: "achieving up to 350, 88, and 69 TFLOPS for mixed,
/// float, and double precision on one GPU".
#[test]
fn abstract_claim_one_gpu_peaks() {
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let cat = cdna2_catalog();
    let run = |gpu: &mut Gpu, cd, ab, m, n, k| {
        let i = *cat.find(cd, ab, m, n, k).unwrap();
        throughput_run_all_dies(gpu, &i, 440, 300_000)
            .unwrap()
            .tflops
    };
    let mixed = run(&mut gpu, DType::F32, DType::F16, 16, 16, 16);
    let float = run(&mut gpu, DType::F32, DType::F32, 16, 16, 4);
    let double = run(&mut gpu, DType::F64, DType::F64, 16, 16, 4);
    assert!((mixed - 350.0).abs() / 350.0 < 0.03, "mixed {mixed}");
    assert!((float - 88.0).abs() / 88.0 < 0.04, "float {float}");
    assert!((double - 69.0).abs() / 69.0 < 0.05, "double {double}");
}

/// Abstract §I: "up to 290 and 19.4 TFLOPS for mixed and double
/// precision on Tensor Cores in Nvidia A100 (float is not supported)".
#[test]
fn abstract_claim_a100_peaks() {
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::A100);
    let cat = ampere_catalog();
    let mixed_i = *cat.find(DType::F32, DType::F16, 16, 8, 16).unwrap();
    let dmma = *cat.find(DType::F64, DType::F64, 8, 8, 4).unwrap();
    let mixed = throughput_run_all_dies(&mut gpu, &mixed_i, 432, 300_000)
        .unwrap()
        .tflops;
    let double = throughput_run_all_dies(&mut gpu, &dmma, 432, 300_000)
        .unwrap()
        .tflops;
    assert!((mixed - 290.0).abs() / 290.0 < 0.02, "mixed {mixed}");
    assert!((double - 19.4).abs() / 19.4 < 0.02, "double {double}");
    assert!(
        !cat.supports_types(DType::F32, DType::F32),
        "float unsupported"
    );
}

/// §V-C: FP64 Matrix Core throughput is ~3.5x the A100's.
#[test]
fn fp64_advantage() {
    let mut amd = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let mut nv = DeviceRegistry::builtin().gpu(DeviceId::A100);
    let amd_i = *cdna2_catalog()
        .find(DType::F64, DType::F64, 16, 16, 4)
        .unwrap();
    let nv_i = *ampere_catalog()
        .find(DType::F64, DType::F64, 8, 8, 4)
        .unwrap();
    let a = throughput_run_all_dies(&mut amd, &amd_i, 440, 300_000)
        .unwrap()
        .tflops;
    let n = throughput_run_all_dies(&mut nv, &nv_i, 432, 300_000)
        .unwrap()
        .tflops;
    assert!((a / n - 3.5).abs() < 0.4, "advantage {}", a / n);
}

/// §VI: "for each additional TFLOPS, additional 5.8, 2.1, and 0.61
/// Watts are consumed for double, single, and mixed precision".
#[test]
fn marginal_power_per_tflops() {
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let cat = cdna2_catalog();
    let marginal = |gpu: &mut Gpu, cd, ab, m, n, k| {
        let i = *cat.find(cd, ab, m, n, k).unwrap();
        let lo = throughput_run_all_dies(gpu, &i, 110, 300_000).unwrap();
        let hi = throughput_run_all_dies(gpu, &i, 330, 300_000).unwrap();
        (hi.package.avg_power_w - lo.package.avg_power_w) / (hi.tflops - lo.tflops)
    };
    let d = marginal(&mut gpu, DType::F64, DType::F64, 16, 16, 4);
    let s = marginal(&mut gpu, DType::F32, DType::F32, 16, 16, 4);
    let m = marginal(&mut gpu, DType::F32, DType::F16, 16, 16, 16);
    assert!((d - 5.88).abs() < 0.3, "double {d}");
    assert!((s - 2.18).abs() < 0.15, "single {s}");
    assert!((m - 0.61).abs() < 0.06, "mixed {m}");
}

/// §VI: switching from double to single/mixed precision saves ~2x/~8x
/// in power efficiency.
#[test]
fn power_efficiency_ladder() {
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let cat = cdna2_catalog();
    let eff = |gpu: &mut Gpu, cd, ab, m, n, k| {
        let i = *cat.find(cd, ab, m, n, k).unwrap();
        let r = throughput_run_all_dies(gpu, &i, 440, 300_000).unwrap();
        gflops_per_watt(r.tflops, r.package.avg_power_w)
    };
    let double = eff(&mut gpu, DType::F64, DType::F64, 16, 16, 4);
    let single = eff(&mut gpu, DType::F32, DType::F32, 16, 16, 4);
    let mixed = eff(&mut gpu, DType::F32, DType::F16, 16, 16, 16);
    assert!((double - 127.0).abs() < 10.0, "double {double}");
    assert!((single - 273.0).abs() < 20.0, "single {single}");
    assert!((mixed - 1020.0).abs() < 80.0, "mixed {mixed}");
    assert!(single / double > 1.9 && single / double < 2.4);
    assert!(mixed / single > 3.3 && mixed / single < 4.1);
}

/// Abstract §I / §VII: "application developers can transparently
/// leverage Matrix Cores to deliver more than 92% peak computing
/// throughput by properly selecting data types and interfaces".
#[test]
fn rocblas_delivers_near_peak_transparently() {
    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    // SGEMM vs the 43 TFLOPS one-GCD Matrix Core plateau: ~100%.
    let s = handle
        .gemm_timed(&GemmDesc::square(GemmOp::Sgemm, 8192))
        .unwrap();
    assert!(s.tflops / 43.0 > 0.92, "sgemm {}", s.tflops);
    // DGEMM vs 41: the paper reports ~90%.
    let d = handle
        .gemm_timed(&GemmDesc::square(GemmOp::Dgemm, 4096))
        .unwrap();
    assert!(d.tflops / 41.0 > 0.7, "dgemm {}", d.tflops);
}

/// §VII + Fig. 8: counter-derived Matrix Core utilization sustained
/// above 99% for N > 256, and exactly the 2N³/(2N³+3N²) model.
#[test]
fn matrix_core_utilization_matches_model() {
    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    for n in [512usize, 2048] {
        let session = ProfilerSession::begin(handle.gpu(), handle.die()).unwrap();
        handle
            .gemm_timed(&GemmDesc::square(GemmOp::Sgemm, n))
            .unwrap();
        let counters = session.end(handle.gpu()).unwrap();
        let measured = matrix_core_ratio(&counters);
        let model = FlopDistribution::matrix_core_ratio(n as u64);
        assert!(
            (measured - model).abs() < 1e-9,
            "N={n}: {measured} vs {model}"
        );
        assert!(measured > 0.99);
    }
}

/// §II: datasheet cross-checks — 95.7 TFLOPS FP64 matrix peak is ~4x
/// the A100's 19.5, and one package has 128 GB of HBM2e.
#[test]
fn architecture_constants() {
    let amd = amd_matrix_cores::isa::specs::mi250x();
    let nv = amd_matrix_cores::isa::specs::a100();
    let amd_fp64 = amd.peak_flops(
        cdna2_catalog()
            .find(DType::F64, DType::F64, 16, 16, 4)
            .unwrap()
            .flops_per_cu_per_cycle(),
    );
    let nv_fp64 = nv.peak_flops(
        ampere_catalog()
            .find(DType::F64, DType::F64, 8, 8, 4)
            .unwrap()
            .flops_per_cu_per_cycle(),
    );
    assert!((amd_fp64 / nv_fp64 - 4.9).abs() < 0.1); // 95.7 / 19.5
    assert_eq!(amd.die.hbm_gib * amd.dies, 128);
    assert_eq!(amd.die.total_matrix_units(), 440);
}
