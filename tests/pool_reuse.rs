//! Steady-state packing-buffer reuse across a batched GEMM.
//!
//! The `mc-compute` packed tiers draw their panel and accumulator
//! scratch from a freelist pool ([`amd_matrix_cores::compute::acquire`]).
//! A strided-batched GEMM runs the same problem shape `batch_count`
//! times back to back, so after the first entry warms the freelists,
//! every later acquisition must be a hit: the steady-state allocation
//! count is zero. This test pins that invariant through the public
//! `rocblas_gemm_strided_batched_ex` surface, together with the
//! determinism contract (pool reuse must not change a single bit).

use amd_matrix_cores::blas::{BatchedGemmDesc, BlasHandle, GemmDesc, GemmOp};
use amd_matrix_cores::compute::{pool_stats, reset_pool_stats, Epilogue, GemmParams};

/// Deterministic fill on a 0.25-step grid (exact in f32).
fn grid_fill(len: usize, mut state: u64) -> Vec<f32> {
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 33) as f32 / 4.0 - 4.0
        })
        .collect()
}

#[test]
fn batched_gemm_allocates_nothing_at_steady_state() {
    // Above every default crossover edge (SIMD 40, scalar 320), so the
    // batch runs on a packed tier with pooled scratch regardless of
    // which ladder is in force.
    let n = 384;
    let auto = amd_matrix_cores::blas::select::host_gemm_backend();
    let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);
    if auto.routed_name::<f32, f32>(&params) == "naive" {
        eprintln!("notice: crossover override routes N={n} to naive; pool reuse not exercised");
        return;
    }

    let g = GemmDesc {
        alpha: 1.0,
        beta: 0.0,
        ..GemmDesc::square(GemmOp::Sgemm, n)
    };
    let batch = 4;
    let desc = BatchedGemmDesc::packed(g, batch);
    let a = grid_fill(batch * n * n, 0xA11CE5);
    let b = grid_fill(batch * n * n, 0xB0B51ED);
    let c = vec![0.0f32; batch * n * n];
    let mut h = BlasHandle::new_mi250x_gcd();

    // Warm-up pass: populates the freelists for every size class the
    // routed tier touches (panels and accumulators alike).
    let mut d_warm = vec![0.0f32; batch * n * n];
    h.gemm_strided_batched_ex::<f32, f32, f32>(&desc, &a, &b, &c, &mut d_warm)
        .expect("warm-up batch");

    // Steady state: every acquisition across the whole batch must be
    // served from a freelist — zero misses, zero fresh bytes.
    reset_pool_stats();
    let mut d_steady = vec![0.0f32; batch * n * n];
    h.gemm_strided_batched_ex::<f32, f32, f32>(&desc, &a, &b, &c, &mut d_steady)
        .expect("steady-state batch");
    let stats = pool_stats();
    assert_eq!(
        stats.misses, 0,
        "steady-state allocator round-trips: {stats:?}"
    );
    assert_eq!(
        stats.allocated_bytes, 0,
        "steady-state fresh bytes: {stats:?}"
    );
    assert!(
        stats.hits > 0,
        "the packed tier must draw from the pool: {stats:?}"
    );
    assert_eq!(stats.hit_rate(), 1.0, "{stats:?}");

    // Reuse is invisible in the results: bit-for-bit identical runs.
    let warm_bits: Vec<u32> = d_warm.iter().map(|v| v.to_bits()).collect();
    let steady_bits: Vec<u32> = d_steady.iter().map(|v| v.to_bits()).collect();
    assert_eq!(warm_bits, steady_bits);
}
