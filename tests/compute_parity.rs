//! ULP-parity tests for the packed `mc-compute` GEMM kernels.
//!
//! The optimization contract (docs/PERFORMANCE.md) is that the packed
//! tiers — the cache-blocked kernel and the explicit-SIMD microkernel,
//! in both its vector and portable modes — reorder *loops*, never the
//! per-element rounding chain: for every dtype combination the result
//! is bitwise-identical to the retained naive reference — trivially
//! within the 2-ULP acceptance band — for any shape, transpose pair,
//! scaling, epilogue, and worker thread count. A golden test
//! additionally pins the reduction order itself against committed
//! output bits, so a contract change cannot hide behind all tiers
//! drifting together.

use amd_matrix_cores::compute::{
    gemm_i8, gemm_i8_reference, Blocked, Epilogue, GemmParams, MatMul, Naive, Simd, SimdMode, Trans,
};
use amd_matrix_cores::types::{ulp_distance_f32, Bf16, Real, F16};
use proptest::prelude::*;

/// Deterministic fill on a 0.25-step grid in [-4, 4]: every value is
/// exactly representable in all five element types, so inputs are
/// identical across dtype combinations too.
fn lcg_fill<T: Real>(len: usize, mut state: u64) -> Vec<T> {
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            T::from_f64(((state >> 33) % 33) as f64 / 4.0 - 4.0)
        })
        .collect()
}

/// Runs one problem through both kernels and asserts bitwise equality
/// (via the exact `to_f64` injection) on every output element.
#[allow(clippy::too_many_arguments)]
fn assert_parity<AB: Real, CD: Real, CT: Real>(
    m: usize,
    n: usize,
    k: usize,
    trans: (Trans, Trans),
    alpha: f64,
    beta: f64,
    epilogue: Epilogue,
    seed: u64,
) -> Result<(), TestCaseError> {
    let a = lcg_fill::<AB>(m * k, seed ^ 0xA11CE5);
    let b = lcg_fill::<AB>(k * n, seed ^ 0xB0B51ED);
    let c = lcg_fill::<CD>(m * n, seed ^ 0xCAFE);
    let params = GemmParams::new(m, n, k)
        .with_transposes(trans.0, trans.1)
        .with_scaling(alpha, beta)
        .with_epilogue(epilogue);

    let mut d_naive = vec![CD::zero(); m * n];
    Naive
        .gemm::<AB, CD, CT>(&params, &a, &b, &c, &mut d_naive)
        .expect("naive kernel accepts well-formed problems");

    // Every packed tier must match the naive chain bit for bit: the
    // scalar blocked kernel, the SIMD microkernel in whatever mode the
    // host supports, and its portable mode explicitly (so runners with
    // AVX2 still cover the fallback). Unsupported dtype pairings fall
    // back to Blocked inside Simd, which keeps the assertion honest
    // for every combination.
    let tier_out = |kernel: &dyn Fn(&mut [CD])| {
        let mut d = vec![CD::zero(); m * n];
        kernel(&mut d);
        d
    };
    let tiers: [(&str, Vec<CD>); 3] = [
        (
            "blocked",
            tier_out(&|d| {
                Blocked
                    .gemm::<AB, CD, CT>(&params, &a, &b, &c, d)
                    .expect("blocked kernel accepts well-formed problems")
            }),
        ),
        (
            "simd",
            tier_out(&|d| {
                Simd::from_env()
                    .gemm::<AB, CD, CT>(&params, &a, &b, &c, d)
                    .expect("simd kernel accepts well-formed problems")
            }),
        ),
        (
            "simd-portable",
            tier_out(&|d| {
                Simd::with_mode(SimdMode::Portable)
                    .gemm::<AB, CD, CT>(&params, &a, &b, &c, d)
                    .expect("portable simd kernel accepts well-formed problems")
            }),
        ),
    ];
    for (tier, d_tier) in &tiers {
        for (i, (x, y)) in d_naive.iter().zip(d_tier).enumerate() {
            prop_assert_eq!(
                x.to_f64().to_bits(),
                y.to_f64().to_bits(),
                "{}x{}x{} {:?} element {}: naive {:?} vs {} {:?}",
                m,
                n,
                k,
                params.epilogue,
                i,
                x,
                tier,
                y
            );
        }
    }
    Ok(())
}

const TRANS: [(Trans, Trans); 4] = [
    (Trans::None, Trans::None),
    (Trans::Trans, Trans::None),
    (Trans::None, Trans::Trans),
    (Trans::Trans, Trans::Trans),
];

const EPILOGUES: [Epilogue; 2] = [Epilogue::Direct, Epilogue::ComputeRounded];

proptest! {
    /// f64 accumulation: random odd shapes (k = 0 included), all four
    /// transpose pairs, both epilogues.
    #[test]
    fn dgemm_parity(
        m in 1usize..24, n in 1usize..24, k in 0usize..24,
        t in 0usize..4, e in 0usize..2, seed in any::<u64>(),
    ) {
        assert_parity::<f64, f64, f64>(m, n, k, TRANS[t], 1.25, -0.5, EPILOGUES[e], seed)?;
    }

    /// f32 accumulation.
    #[test]
    fn sgemm_parity(
        m in 1usize..24, n in 1usize..24, k in 0usize..24,
        t in 0usize..4, e in 0usize..2, seed in any::<u64>(),
    ) {
        assert_parity::<f32, f32, f32>(m, n, k, TRANS[t], 1.0, 1.0, EPILOGUES[e], seed)?;
    }

    /// HHS: f16 inputs and outputs, f32 compute type (the paper's
    /// Matrix Core mixed-precision path).
    #[test]
    fn hhs_parity(
        m in 1usize..20, n in 1usize..20, k in 0usize..20,
        t in 0usize..4, e in 0usize..2, seed in any::<u64>(),
    ) {
        assert_parity::<F16, F16, f32>(m, n, k, TRANS[t], 1.0, 0.5, EPILOGUES[e], seed)?;
    }

    /// Pure f16 chain (HGEMM's per-step rounding).
    #[test]
    fn hgemm_parity(
        m in 1usize..20, n in 1usize..20, k in 0usize..20,
        t in 0usize..4, seed in any::<u64>(),
    ) {
        assert_parity::<F16, F16, F16>(m, n, k, TRANS[t], 1.0, 0.0, Epilogue::Direct, seed)?;
    }

    /// bf16 inputs accumulating into f32.
    #[test]
    fn bf16_parity(
        m in 1usize..20, n in 1usize..20, k in 0usize..20,
        t in 0usize..4, e in 0usize..2, seed in any::<u64>(),
    ) {
        assert_parity::<Bf16, f32, f32>(m, n, k, TRANS[t], 1.0, 1.0, EPILOGUES[e], seed)?;
    }

    /// int8: the blocked integer kernel is exact (i32 accumulation is
    /// order-free), so it must match the reference everywhere.
    #[test]
    fn int8_parity(
        m in 1usize..24, n in 1usize..24, k in 0usize..24, seed in any::<u64>(),
    ) {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 56) as i8
        };
        let a: Vec<i8> = (0..m * k).map(|_| next()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| next()).collect();
        let mut d = vec![0i32; m * n];
        let mut d_ref = vec![0i32; m * n];
        gemm_i8(m, n, k, &a, &b, &mut d).expect("blocked int8");
        gemm_i8_reference(m, n, k, &a, &b, &mut d_ref).expect("reference int8");
        prop_assert_eq!(d, d_ref);
    }
}

/// Shapes that straddle every blocking boundary (MC = 64, NC = 128,
/// KC = 256) stay bitwise-equal, and the f32 case also passes the
/// acceptance criterion stated in ULP terms.
#[test]
fn block_boundary_shapes_are_bitwise_equal() {
    for &(m, n, k) in &[(65, 129, 257), (64, 128, 256), (63, 127, 255), (1, 1, 1)] {
        assert_parity::<f32, f32, f32>(
            m,
            n,
            k,
            (Trans::None, Trans::None),
            1.0,
            1.0,
            Epilogue::ComputeRounded,
            0x5EED,
        )
        .unwrap();
        assert_parity::<f64, f64, f64>(
            m,
            n,
            k,
            (Trans::Trans, Trans::None),
            -1.0,
            1.0,
            Epilogue::Direct,
            0x5EED,
        )
        .unwrap();
    }
}

/// The acceptance criterion phrased exactly as stated: every f32 output
/// element within 2 ULP of the reference (bitwise equality implies 0).
#[test]
fn f32_outputs_within_two_ulp() {
    let (m, n, k) = (65, 33, 129);
    let a = lcg_fill::<f32>(m * k, 7);
    let b = lcg_fill::<f32>(k * n, 11);
    let c = lcg_fill::<f32>(m * n, 13);
    let params = GemmParams::new(m, n, k).with_epilogue(Epilogue::ComputeRounded);
    let mut d_naive = vec![0.0f32; m * n];
    let mut d_blocked = vec![0.0f32; m * n];
    Naive
        .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d_naive)
        .unwrap();
    Blocked
        .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d_blocked)
        .unwrap();
    for (x, y) in d_naive.iter().zip(&d_blocked) {
        assert!(ulp_distance_f32(*x, *y) <= 2, "{x} vs {y}");
    }
}

/// Results are invariant under the rayon worker count: re-sizing the
/// global pool between runs must not change a single bit. (The stub
/// pool honors the most recent `build_global`, which is what makes this
/// testable in-process.)
#[test]
fn thread_count_does_not_change_results() {
    let (m, n, k) = (130, 70, 300);
    let a = lcg_fill::<f32>(m * k, 101);
    let b = lcg_fill::<f32>(k * n, 103);
    let c = lcg_fill::<f32>(m * n, 107);
    let params = GemmParams::new(m, n, k).with_epilogue(Epilogue::ComputeRounded);

    let run = |threads: usize, simd: bool| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("pool rebuild");
        let mut d = vec![0.0f32; m * n];
        if simd {
            Simd::from_env()
                .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
                .unwrap();
        } else {
            Blocked
                .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
                .unwrap();
        }
        d.into_iter().map(f32::to_bits).collect::<Vec<u32>>()
    };

    for simd in [false, true] {
        let single = run(1, simd);
        let quad = run(4, simd);
        let eight = run(8, simd);
        assert_eq!(single, quad, "simd={simd}");
        assert_eq!(single, eight, "simd={simd}");
    }
}

/// Deterministic pseudo-random fill in [-1, 1) (xorshift64*): full
/// mantissas, so products and partial sums are inexact and the
/// rounding chain's *order* shows up in the output bits.
fn xorshift_fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mantissa = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64;
        *v = (mantissa / (1u64 << 23) as f64 * 2.0 - 1.0) as f32;
    }
}

/// Golden pin of the reduction-order contract: the FNV-1a hash of the
/// output bits of a fixed inexact-arithmetic problem, committed as a
/// constant. Cross-tier parity alone cannot catch every regression —
/// if someone reorders the per-element chain in *all* kernels at once
/// (say, swaps the ascending-k order for a tree reduction), the tiers
/// still agree with each other; this pin fails instead. The constant
/// is machine-independent: scalar f32 arithmetic through the exact
/// `to_f64` chain is IEEE-defined, and the SIMD lanes are independent
/// columns of the same chain.
#[test]
fn golden_reduction_order_is_pinned() {
    let (m, n, k) = (48, 40, 72);
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    let mut c = vec![0.0f32; m * n];
    xorshift_fill(&mut a, 0x9E37_79B9_7F4A_7C15);
    xorshift_fill(&mut b, 0xD1B5_4A32_D192_ED03);
    xorshift_fill(&mut c, 0x1234_5678_9ABC_DEF0);
    let params = GemmParams::new(m, n, k)
        .with_scaling(1.25, -0.5)
        .with_epilogue(Epilogue::ComputeRounded);

    let fnv = |d: &[f32]| {
        let mut h: u64 = 0xcbf29ce484222325;
        for v in d {
            for byte in v.to_bits().to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    };

    const GOLDEN: u64 = 0x3b33_151a_e852_55e7;
    for (tier, out) in [
        ("naive", {
            let mut d = vec![0.0f32; m * n];
            Naive
                .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
                .unwrap();
            d
        }),
        ("simd", {
            let mut d = vec![0.0f32; m * n];
            Simd::from_env()
                .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
                .unwrap();
            d
        }),
        ("simd-portable", {
            let mut d = vec![0.0f32; m * n];
            Simd::with_mode(SimdMode::Portable)
                .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
                .unwrap();
            d
        }),
    ] {
        assert_eq!(
            fnv(&out),
            GOLDEN,
            "{tier}: the per-element reduction order changed"
        );
    }
}
