//! ULP-parity tests for the blocked `mc-compute` GEMM kernel.
//!
//! The optimization contract (docs/PERFORMANCE.md) is that the blocked
//! kernel reorders *loops*, never the per-element rounding chain: for
//! every dtype combination the result is bitwise-identical to the
//! retained naive reference — trivially within the 2-ULP acceptance
//! band — for any shape, transpose pair, scaling, epilogue, and worker
//! thread count.

use amd_matrix_cores::compute::{
    gemm_i8, gemm_i8_reference, Blocked, Epilogue, GemmParams, MatMul, Naive, Trans,
};
use amd_matrix_cores::types::{ulp_distance_f32, Bf16, Real, F16};
use proptest::prelude::*;

/// Deterministic fill on a 0.25-step grid in [-4, 4]: every value is
/// exactly representable in all five element types, so inputs are
/// identical across dtype combinations too.
fn lcg_fill<T: Real>(len: usize, mut state: u64) -> Vec<T> {
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            T::from_f64(((state >> 33) % 33) as f64 / 4.0 - 4.0)
        })
        .collect()
}

/// Runs one problem through both kernels and asserts bitwise equality
/// (via the exact `to_f64` injection) on every output element.
#[allow(clippy::too_many_arguments)]
fn assert_parity<AB: Real, CD: Real, CT: Real>(
    m: usize,
    n: usize,
    k: usize,
    trans: (Trans, Trans),
    alpha: f64,
    beta: f64,
    epilogue: Epilogue,
    seed: u64,
) -> Result<(), TestCaseError> {
    let a = lcg_fill::<AB>(m * k, seed ^ 0xA11CE5);
    let b = lcg_fill::<AB>(k * n, seed ^ 0xB0B51ED);
    let c = lcg_fill::<CD>(m * n, seed ^ 0xCAFE);
    let params = GemmParams::new(m, n, k)
        .with_transposes(trans.0, trans.1)
        .with_scaling(alpha, beta)
        .with_epilogue(epilogue);

    let mut d_naive = vec![CD::zero(); m * n];
    let mut d_blocked = vec![CD::zero(); m * n];
    Naive
        .gemm::<AB, CD, CT>(&params, &a, &b, &c, &mut d_naive)
        .expect("naive kernel accepts well-formed problems");
    Blocked
        .gemm::<AB, CD, CT>(&params, &a, &b, &c, &mut d_blocked)
        .expect("blocked kernel accepts well-formed problems");

    for (i, (x, y)) in d_naive.iter().zip(&d_blocked).enumerate() {
        prop_assert_eq!(
            x.to_f64().to_bits(),
            y.to_f64().to_bits(),
            "{}x{}x{} {:?} element {}: naive {:?} vs blocked {:?}",
            m,
            n,
            k,
            params.epilogue,
            i,
            x,
            y
        );
    }
    Ok(())
}

const TRANS: [(Trans, Trans); 4] = [
    (Trans::None, Trans::None),
    (Trans::Trans, Trans::None),
    (Trans::None, Trans::Trans),
    (Trans::Trans, Trans::Trans),
];

const EPILOGUES: [Epilogue; 2] = [Epilogue::Direct, Epilogue::ComputeRounded];

proptest! {
    /// f64 accumulation: random odd shapes (k = 0 included), all four
    /// transpose pairs, both epilogues.
    #[test]
    fn dgemm_parity(
        m in 1usize..24, n in 1usize..24, k in 0usize..24,
        t in 0usize..4, e in 0usize..2, seed in any::<u64>(),
    ) {
        assert_parity::<f64, f64, f64>(m, n, k, TRANS[t], 1.25, -0.5, EPILOGUES[e], seed)?;
    }

    /// f32 accumulation.
    #[test]
    fn sgemm_parity(
        m in 1usize..24, n in 1usize..24, k in 0usize..24,
        t in 0usize..4, e in 0usize..2, seed in any::<u64>(),
    ) {
        assert_parity::<f32, f32, f32>(m, n, k, TRANS[t], 1.0, 1.0, EPILOGUES[e], seed)?;
    }

    /// HHS: f16 inputs and outputs, f32 compute type (the paper's
    /// Matrix Core mixed-precision path).
    #[test]
    fn hhs_parity(
        m in 1usize..20, n in 1usize..20, k in 0usize..20,
        t in 0usize..4, e in 0usize..2, seed in any::<u64>(),
    ) {
        assert_parity::<F16, F16, f32>(m, n, k, TRANS[t], 1.0, 0.5, EPILOGUES[e], seed)?;
    }

    /// Pure f16 chain (HGEMM's per-step rounding).
    #[test]
    fn hgemm_parity(
        m in 1usize..20, n in 1usize..20, k in 0usize..20,
        t in 0usize..4, seed in any::<u64>(),
    ) {
        assert_parity::<F16, F16, F16>(m, n, k, TRANS[t], 1.0, 0.0, Epilogue::Direct, seed)?;
    }

    /// bf16 inputs accumulating into f32.
    #[test]
    fn bf16_parity(
        m in 1usize..20, n in 1usize..20, k in 0usize..20,
        t in 0usize..4, e in 0usize..2, seed in any::<u64>(),
    ) {
        assert_parity::<Bf16, f32, f32>(m, n, k, TRANS[t], 1.0, 1.0, EPILOGUES[e], seed)?;
    }

    /// int8: the blocked integer kernel is exact (i32 accumulation is
    /// order-free), so it must match the reference everywhere.
    #[test]
    fn int8_parity(
        m in 1usize..24, n in 1usize..24, k in 0usize..24, seed in any::<u64>(),
    ) {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 56) as i8
        };
        let a: Vec<i8> = (0..m * k).map(|_| next()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| next()).collect();
        let mut d = vec![0i32; m * n];
        let mut d_ref = vec![0i32; m * n];
        gemm_i8(m, n, k, &a, &b, &mut d).expect("blocked int8");
        gemm_i8_reference(m, n, k, &a, &b, &mut d_ref).expect("reference int8");
        prop_assert_eq!(d, d_ref);
    }
}

/// Shapes that straddle every blocking boundary (MC = 64, NC = 128,
/// KC = 256) stay bitwise-equal, and the f32 case also passes the
/// acceptance criterion stated in ULP terms.
#[test]
fn block_boundary_shapes_are_bitwise_equal() {
    for &(m, n, k) in &[(65, 129, 257), (64, 128, 256), (63, 127, 255), (1, 1, 1)] {
        assert_parity::<f32, f32, f32>(
            m,
            n,
            k,
            (Trans::None, Trans::None),
            1.0,
            1.0,
            Epilogue::ComputeRounded,
            0x5EED,
        )
        .unwrap();
        assert_parity::<f64, f64, f64>(
            m,
            n,
            k,
            (Trans::Trans, Trans::None),
            -1.0,
            1.0,
            Epilogue::Direct,
            0x5EED,
        )
        .unwrap();
    }
}

/// The acceptance criterion phrased exactly as stated: every f32 output
/// element within 2 ULP of the reference (bitwise equality implies 0).
#[test]
fn f32_outputs_within_two_ulp() {
    let (m, n, k) = (65, 33, 129);
    let a = lcg_fill::<f32>(m * k, 7);
    let b = lcg_fill::<f32>(k * n, 11);
    let c = lcg_fill::<f32>(m * n, 13);
    let params = GemmParams::new(m, n, k).with_epilogue(Epilogue::ComputeRounded);
    let mut d_naive = vec![0.0f32; m * n];
    let mut d_blocked = vec![0.0f32; m * n];
    Naive
        .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d_naive)
        .unwrap();
    Blocked
        .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d_blocked)
        .unwrap();
    for (x, y) in d_naive.iter().zip(&d_blocked) {
        assert!(ulp_distance_f32(*x, *y) <= 2, "{x} vs {y}");
    }
}

/// Results are invariant under the rayon worker count: re-sizing the
/// global pool between runs must not change a single bit. (The stub
/// pool honors the most recent `build_global`, which is what makes this
/// testable in-process.)
#[test]
fn thread_count_does_not_change_results() {
    let (m, n, k) = (130, 70, 300);
    let a = lcg_fill::<f32>(m * k, 101);
    let b = lcg_fill::<f32>(k * n, 103);
    let c = lcg_fill::<f32>(m * n, 107);
    let params = GemmParams::new(m, n, k).with_epilogue(Epilogue::ComputeRounded);

    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("pool rebuild");
        let mut d = vec![0.0f32; m * n];
        Blocked
            .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
            .unwrap();
        d.into_iter().map(f32::to_bits).collect::<Vec<u32>>()
    };

    let single = run(1);
    let quad = run(4);
    let eight = run(8);
    assert_eq!(single, quad);
    assert_eq!(single, eight);
}
