//! Golden flow corpus: deliberately broken pipelined kernels that must
//! each fire an exact dataflow rule, plus the converse — every kernel
//! the repo ships (the `mc-wmma` loop and tile kernels, the `mc-blas`
//! planner output in both buffering modes, and every plan-search
//! winner) must verify race-free. Together they pin down both
//! directions of the dataflow verifier: no false negatives on the
//! defect classes it exists to catch (missing barrier, stale stage
//! reuse, insufficient waitcnt, dead store), no false positives on the
//! shipped corpus. See `docs/DATAFLOW.md` for the analysis model.

use amd_matrix_cores::blas::{
    build_plan, plan_gemm, select_plan, select_strategy, GemmDesc, GemmOp, Strategy,
};
use amd_matrix_cores::flow::{analyze_kernel, FlowReport, FlowRule};
use amd_matrix_cores::isa::specs::{self, DieSpec};
use amd_matrix_cores::isa::{Buffering, KernelDesc, LdsAccess, SlotOp, WaitSpec, WaveProgram};
use amd_matrix_cores::sim::SimConfig;
use amd_matrix_cores::types::DType;
use amd_matrix_cores::wmma::{mma_loop_kernel, wmma_gemm_tile_kernel, LoopKernelParams};
use proptest::prelude::*;

fn die() -> DieSpec {
    specs::mi250x().die
}

fn mfma() -> SlotOp {
    SlotOp::Mfma(
        *amd_matrix_cores::isa::cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap(),
    )
}

/// A cooperative multi-wave kernel shell every broken variant starts
/// from.
fn kernel(program: WaveProgram) -> KernelDesc {
    KernelDesc {
        waves_per_workgroup: 4,
        workgroups: 8,
        lds_bytes_per_workgroup: 16 * 1024,
        arch_vgprs: 64,
        acc_vgprs: 16,
        ..KernelDesc::new("flow-corpus", program)
    }
}

/// Asserts a report fired the expected rule and nothing outside the
/// allowed set.
fn assert_fires(report: &FlowReport, expected: FlowRule, allowed: &[FlowRule]) {
    assert!(
        report.fired(expected),
        "expected {expected} to fire:\n{}",
        report.render()
    );
    for d in &report.diagnostics {
        assert!(
            d.rule == expected || allowed.contains(&d.rule),
            "unexpected {} finding:\n{}",
            d.rule,
            report.render()
        );
    }
}

// ---------------------------------------------------------------------
// Golden broken kernels: each defect class must be detected.
// ---------------------------------------------------------------------

/// A staged pipeline whose producer wave publishes an LDS panel that
/// consumer waves read with no intervening barrier: the classic
/// missing-`s_barrier` race.
#[test]
fn missing_barrier_is_a_raw_race() {
    let stage = LdsAccess::fixed(0);
    let program = WaveProgram {
        prologue: vec![],
        body: vec![
            SlotOp::global_load(16),
            SlotOp::Waitcnt(WaitSpec::vm(0)),
            SlotOp::lds_write(16, stage),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            // s_barrier deleted here.
            SlotOp::lds_read(16, stage),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            mfma(),
        ],
        body_iterations: 64,
        epilogue: vec![SlotOp::global_store(16)],
    };
    let report = analyze_kernel(&die(), &kernel(program));
    assert_fires(
        &report,
        FlowRule::LdsRaceRaw,
        &[FlowRule::LdsRaceWar, FlowRule::LdsRaceWaw],
    );
    assert!(report.has_errors());
}

/// A "double-buffered" pipeline whose write stage-tag was left on the
/// read rotation (offset 0 instead of 1): iteration `i` overwrites the
/// very stage its own readers are still consuming — stale stage reuse.
#[test]
fn stale_stage_reuse_is_a_war_race() {
    let program = WaveProgram {
        prologue: vec![
            SlotOp::global_load(16),
            SlotOp::Waitcnt(WaitSpec::vm(0)),
            SlotOp::lds_write(16, LdsAccess::fixed(0)),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            SlotOp::Barrier,
        ],
        body: vec![
            SlotOp::global_load(16),
            SlotOp::lds_read(16, LdsAccess::rotating(0, 0, 2)),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            mfma(),
            SlotOp::Waitcnt(WaitSpec::vm(0)),
            // Correct double buffering writes rotating(0, 1, 2); the
            // stale tag collides with this iteration's own readers.
            SlotOp::lds_write(16, LdsAccess::rotating(0, 0, 2)),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            SlotOp::Barrier,
        ],
        body_iterations: 64,
        epilogue: vec![SlotOp::global_store(16)],
    };
    let report = analyze_kernel(&die(), &kernel(program));
    assert_fires(&report, FlowRule::LdsRaceWar, &[]);
    assert!(report.has_errors());
}

/// An LDS stage written from a global load whose `vmcnt` was never
/// drained: the store forwards register contents the load has not
/// produced yet.
#[test]
fn insufficient_waitcnt_is_flagged() {
    let stage = LdsAccess::fixed(0);
    let program = WaveProgram {
        prologue: vec![],
        body: vec![
            SlotOp::global_load(16),
            // Missing Waitcnt(vm(0)).
            SlotOp::lds_write(16, stage),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            SlotOp::Barrier,
            SlotOp::lds_read(16, stage),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            mfma(),
            SlotOp::Scalar,
            SlotOp::Barrier,
        ],
        body_iterations: 64,
        epilogue: vec![SlotOp::global_store(16)],
    };
    let report = analyze_kernel(&die(), &kernel(program));
    assert_fires(&report, FlowRule::InsufficientWaitcnt, &[]);
    assert!(report.has_errors());
}

/// A barrier issued with LDS writes still in flight: `s_barrier`
/// synchronizes execution, not memory, so the data is not published.
#[test]
fn barrier_without_lgkm_drain_is_flagged() {
    let stage = LdsAccess::fixed(0);
    let program = WaveProgram {
        prologue: vec![],
        body: vec![
            SlotOp::global_load(16),
            SlotOp::Waitcnt(WaitSpec::vm(0)),
            SlotOp::lds_write(16, stage),
            // Missing Waitcnt(lgkm(0)).
            SlotOp::Barrier,
            SlotOp::lds_read(16, stage),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            mfma(),
            SlotOp::Scalar,
            SlotOp::Barrier,
        ],
        body_iterations: 64,
        epilogue: vec![SlotOp::global_store(16)],
    };
    let report = analyze_kernel(&die(), &kernel(program));
    assert_fires(&report, FlowRule::BarrierLgkmPending, &[]);
    assert!(report.has_errors());
}

/// A stage that is written and never read by any consumer: dead LDS
/// traffic (warning — wasted bandwidth, not corruption).
#[test]
fn dead_store_is_flagged_as_a_warning() {
    let program = WaveProgram {
        prologue: vec![],
        body: vec![
            SlotOp::global_load(16),
            SlotOp::Waitcnt(WaitSpec::vm(0)),
            SlotOp::lds_write(16, LdsAccess::fixed(1)),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            SlotOp::Barrier,
            SlotOp::lds_read(16, LdsAccess::fixed(0)),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            mfma(),
            SlotOp::Scalar,
            SlotOp::Barrier,
        ],
        body_iterations: 64,
        epilogue: vec![SlotOp::global_store(16)],
    };
    let report = analyze_kernel(&die(), &kernel(program));
    assert!(report.fired(FlowRule::DeadLdsStore), "{}", report.render());
    assert!(!report.has_errors(), "{}", report.render());
}

// ---------------------------------------------------------------------
// The converse: everything the repo ships is flow clean.
// ---------------------------------------------------------------------

#[test]
fn shipped_planner_corpus_is_flow_clean() {
    let d = die();
    for op in GemmOp::ALL {
        for n in [16usize, 512, 1024, 4000] {
            let desc = GemmDesc::square(op, n);
            let plan = plan_gemm(&d, &desc).unwrap();
            let report = analyze_kernel(&d, &plan.kernel);
            assert!(report.is_clean(), "{op} N={n}:\n{}", report.render());
            assert!(plan.flow.is_empty(), "{op} N={n}: {:?}", plan.flow);
            // Both pipeline variants, not just the planner's pick.
            if let Strategy::MatrixCore {
                instr,
                macro_tile,
                wave_tile,
                k_step,
                buffering,
            } = select_strategy(&desc)
            {
                let flipped = Strategy::MatrixCore {
                    instr,
                    macro_tile,
                    wave_tile,
                    k_step,
                    buffering: match buffering {
                        Buffering::Single => Buffering::Double,
                        Buffering::Double => Buffering::Single,
                    },
                };
                let plan = build_plan(&d, &desc, flipped).unwrap();
                let report = analyze_kernel(&d, &plan.kernel);
                assert!(
                    report.is_clean(),
                    "{op} N={n} flipped:\n{}",
                    report.render()
                );
            }
        }
    }
}

#[test]
fn shipped_wmma_kernels_are_flow_clean() {
    let d = die();
    for shape in [(16, 16, 16), (32, 32, 8)] {
        let k = wmma_gemm_tile_kernel(d.arch, DType::F32, DType::F16, shape, 64).unwrap();
        let report = analyze_kernel(&d, &k);
        assert!(report.is_clean(), "tile {shape:?}:\n{}", report.render());
    }
    let k = mma_loop_kernel(LoopKernelParams {
        arch: d.arch,
        cd: DType::F32,
        ab: DType::F16,
        shape: (16, 16, 16),
        wavefronts: 440,
        iterations: 64,
    })
    .unwrap();
    let report = analyze_kernel(&d, &k);
    assert!(report.is_clean(), "{}", report.render());
}

// ---------------------------------------------------------------------
// Property tests: the search can't ship a racy winner, and no single
// barrier in a double-buffered pipeline is redundant.
// ---------------------------------------------------------------------

/// A double-buffered Matrix Core plan for mutation testing.
fn double_buffered_kernel() -> KernelDesc {
    let d = die();
    let desc = GemmDesc::square(GemmOp::Hhs, 1024);
    let Strategy::MatrixCore {
        instr,
        macro_tile,
        wave_tile,
        k_step,
        ..
    } = select_strategy(&desc)
    else {
        panic!("HHS N=1024 must map to Matrix Cores");
    };
    let strategy = Strategy::MatrixCore {
        instr,
        macro_tile,
        wave_tile,
        k_step,
        buffering: Buffering::Double,
    };
    build_plan(&d, &desc, strategy).unwrap().kernel
}

proptest! {
    /// Every legal plan-search winner is flow clean: the flow gate
    /// rejects racy candidates inside `build_plan`, so the ranked set
    /// the search chooses from is race-free by construction.
    #[test]
    fn search_winners_are_flow_clean(op_idx in 0usize..GemmOp::ALL.len(), n in 16usize..2048) {
        let d = die();
        let out = select_plan(&d, &SimConfig::mi250x(), &GemmDesc::square(GemmOp::ALL[op_idx], n))
            .unwrap();
        let report = analyze_kernel(&d, &out.plan.kernel);
        prop_assert!(!report.has_errors(), "{}", report.render());
        prop_assert!(
            out.plan.flow.iter().all(|f| f.severity != amd_matrix_cores::flow::Severity::Error)
        );
    }

    /// Deleting any single barrier from a double-buffered pipeline is
    /// always detected: each one separates a stage's writer from that
    /// stage's readers, so none is redundant.
    #[test]
    fn deleting_any_barrier_from_a_double_buffered_plan_is_flagged(seed in 0usize..64) {
        let d = die();
        let mut k = double_buffered_kernel();
        let barriers: Vec<(bool, usize)> = k
            .program
            .prologue
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, SlotOp::Barrier))
            .map(|(i, _)| (true, i))
            .chain(
                k.program
                    .body
                    .iter()
                    .enumerate()
                    .filter(|(_, op)| matches!(op, SlotOp::Barrier))
                    .map(|(i, _)| (false, i)),
            )
            .collect();
        prop_assume!(!barriers.is_empty());
        let (in_prologue, idx) = barriers[seed % barriers.len()];
        if in_prologue {
            k.program.prologue.remove(idx);
        } else {
            k.program.body.remove(idx);
        }
        let report = analyze_kernel(&d, &k);
        prop_assert!(
            report.has_errors(),
            "barrier deletion (prologue={in_prologue}, idx={idx}) went undetected:\n{}",
            report.render()
        );
    }
}
