//! Simulator behaviour under varied workload mixes: the governor, the
//! memory system, dispatch traces, occupancy, and telemetry must stay
//! mutually consistent in regimes the headline experiments don't visit.

use amd_matrix_cores::isa::ValuOpKind;
use amd_matrix_cores::isa::{cdna2_catalog, KernelDesc, MemHints, SlotOp, ValuOp, WaveProgram};
use amd_matrix_cores::power::EnergyBreakdown;
use amd_matrix_cores::sim::{occupancy, DeviceId, DeviceRegistry, Gpu, RoundBound, SimConfig};
use amd_matrix_cores::types::DType;

fn mfma_kernel(cd: DType, ab: DType, m: u32, n: u32, k: u32, waves: u64, iters: u64) -> KernelDesc {
    let i = *cdna2_catalog().find(cd, ab, m, n, k).unwrap();
    KernelDesc {
        workgroups: waves,
        waves_per_workgroup: 1,
        ..KernelDesc::new("t", WaveProgram::looped(vec![SlotOp::Mfma(i)], iters))
    }
}

#[test]
fn governor_engages_smoothly_across_the_mix() {
    // Sweep the FP64 fraction of a mixed workload on both dies; power
    // must be continuous and capped, throughput monotone in the mix.
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let mut last_power = 0.0;
    for f64_waves in [110u64, 220, 330, 440] {
        let k = mfma_kernel(DType::F64, DType::F64, 16, 16, 4, f64_waves, 500_000);
        let r = gpu.launch_parallel(&[(0, k.clone()), (1, k)]).unwrap();
        assert!(r.peak_power_w <= gpu.spec().power_cap_w);
        assert!(r.peak_power_w >= gpu.spec().idle_power_w);
        // Power grows monotonically with FP64 occupancy and only the
        // saturated point throttles.
        assert!(
            r.peak_power_w > last_power,
            "{} -> {}",
            last_power,
            r.peak_power_w
        );
        if f64_waves < 440 {
            assert!((r.governor_scale - 1.0).abs() < 1e-12, "waves {f64_waves}");
        } else {
            assert!(r.governor_scale < 1.0);
        }
        last_power = r.peak_power_w;
    }
    // An asymmetric pair (FP64 on one die, mixed on the other) also
    // respects the cap without throttling: ~(88/2+17.5+241) + ~(17.5+107).
    let f64k = mfma_kernel(DType::F64, DType::F64, 16, 16, 4, 440, 500_000);
    let mixk = mfma_kernel(DType::F32, DType::F16, 16, 16, 16, 440, 500_000);
    let r = gpu.launch_parallel(&[(0, f64k), (1, mixk)]).unwrap();
    assert!(r.peak_power_w < gpu.spec().power_cap_w);
    assert!(
        (r.governor_scale - 1.0).abs() < 1e-12,
        "{}",
        r.governor_scale
    );
}

#[test]
fn mixed_body_kernels_split_energy_by_type() {
    // A body with both FP64 MFMA and mixed MFMA: energy must be split
    // between the two MFMA banks in proportion to their FLOPs.
    let f64i = *cdna2_catalog()
        .find(DType::F64, DType::F64, 16, 16, 4)
        .unwrap();
    let f16i = *cdna2_catalog()
        .find(DType::F32, DType::F16, 16, 16, 16)
        .unwrap();
    let k = KernelDesc {
        workgroups: 440,
        waves_per_workgroup: 1,
        ..KernelDesc::new(
            "blend",
            WaveProgram::looped(vec![SlotOp::Mfma(f64i), SlotOp::Mfma(f16i)], 100_000),
        )
    };
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let r = gpu.launch(0, &k).unwrap();
    let b = EnergyBreakdown::of_result(gpu.spec(), &r);
    assert!(b.mfma_j.0 > 0.0 && b.mfma_j.2 > 0.0);
    // FP64 part: 2048 FLOPs at 5.88 pJ vs mixed 8192 at 0.61:
    // energy ratio = (2048*5.88)/(8192*0.61) ≈ 2.41.
    let ratio = b.mfma_j.0 / b.mfma_j.2;
    assert!((ratio - 2.41).abs() < 0.05, "{ratio}");
    // Counters landed in both banks.
    let c = r.kernels[0].counters;
    assert!(c.mfma_mops_f64 > 0 && c.mfma_mops_f16 > 0);
}

#[test]
fn valu_heavy_kernels_respect_the_simd_roof() {
    // Pure packed-FP16 FMA kernel at full occupancy: throughput must sit
    // at (not above) the 47.9 TFLOPS packed-SIMD roof, modulo residency.
    let body = vec![SlotOp::Valu(ValuOp::new(ValuOpKind::PackedFma, DType::F16))];
    let k = KernelDesc {
        workgroups: 3520, // 8 waves per SIMD
        waves_per_workgroup: 1,
        ..KernelDesc::new("pkfma", WaveProgram::looped(body, 100_000))
    };
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let r = gpu.launch(0, &k).unwrap();
    let tflops = r.tflops();
    let roof = 110.0 * 256.0 * 1.7e-3; // 48.1 TF at boost
    assert!(tflops < roof, "{tflops} vs {roof}");
    assert!(tflops > 0.9 * roof, "{tflops} vs {roof}");
}

#[test]
fn dram_bound_kernel_reports_memory_rounds() {
    let i = *cdna2_catalog()
        .find(DType::F32, DType::F16, 16, 16, 16)
        .unwrap();
    let mut k = KernelDesc {
        workgroups: 880,
        waves_per_workgroup: 1,
        ..KernelDesc::new("io", WaveProgram::looped(vec![SlotOp::Mfma(i)], 100))
    };
    k.mem_hints = MemHints {
        hbm_bytes: 8 << 30,
        working_set_bytes: 16 << 30,
        ..MemHints::default()
    };
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let r = gpu.launch(0, &k).unwrap();
    let exec = &r.kernels[0].exec;
    assert!(
        exec.compute_bound_fraction < 0.2,
        "{}",
        exec.compute_bound_fraction
    );
    assert!(exec.dram_time_s > exec.compute_cycles / exec.effective_clock_hz);
}

#[test]
fn lds_bound_kernel_is_classified_as_such() {
    // Huge LDS traffic per iteration dominates both MFMA and issue.
    let i = *cdna2_catalog()
        .find(DType::F32, DType::F16, 16, 16, 16)
        .unwrap();
    let body = vec![
        SlotOp::Mfma(i),
        SlotOp::lds_read(128, mc_isa::LdsAccess::fixed(0)),
        SlotOp::lds_read(128, mc_isa::LdsAccess::fixed(0)),
    ];
    let k = KernelDesc {
        workgroups: 440,
        waves_per_workgroup: 1,
        ..KernelDesc::new("lds", WaveProgram::looped(body, 10_000))
    };
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let r = gpu.launch(0, &k).unwrap();
    let rounds = &r.kernels[0].exec.rounds;
    assert!(
        rounds.iter().all(|t| t.bound == RoundBound::Lds),
        "{rounds:?}"
    );
}

#[test]
fn occupancy_report_matches_dispatch_behaviour() {
    // An AGPR-limited kernel: the occupancy report's waves/CU must match
    // the number of rounds the engine needs.
    let i = *cdna2_catalog()
        .find(DType::F64, DType::F64, 16, 16, 4)
        .unwrap();
    let k = KernelDesc {
        workgroups: 880,
        waves_per_workgroup: 1,
        acc_vgprs: 256, // 2 waves per SIMD -> 8 per CU -> 880 resident
        ..KernelDesc::new("agpr", WaveProgram::looped(vec![SlotOp::Mfma(i)], 1000))
    };
    let gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let occ = occupancy(&gpu.spec().die, &k);
    assert_eq!(occ.waves_per_cu, 8);
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let r = gpu.launch(0, &k).unwrap();
    assert_eq!(
        r.kernels[0].exec.rounds.len(),
        1,
        "880 waves fit one round at 8/CU"
    );
}

#[test]
fn custom_device_configs_validate_and_run() {
    // Build a cut-down custom die and run the standard microbenchmark.
    let mut cfg = SimConfig::mi250x();
    cfg.package.die.compute_units = 16;
    cfg.package.dies = 1;
    cfg.validate().unwrap();
    let mut gpu = Gpu::new(cfg);
    let k = mfma_kernel(DType::F32, DType::F16, 16, 16, 16, 64, 100_000);
    let r = gpu.launch(0, &k).unwrap();
    // 64 Matrix Cores' worth of mixed MFMA: 64 × 256 FLOP/cycle.
    let expect = 64.0 * 256.0 * 1.7e9 * (1.0 - 0.087) / 1e12;
    assert!(
        (r.tflops() - expect).abs() < 1.0,
        "{} vs {expect}",
        r.tflops()
    );
}
