//! Integration test for the `insight` diagnosis layer over the corpus
//! replay: the textbook roofline shapes must receive their textbook
//! verdicts, every launch must be classified exactly once, and the
//! Eq. 2 model drift must stay inside the calibrated band end-to-end.

use mc_bench::experiment::IterBudgets;
use mc_bench::insight;
use mc_insight::{Bottleneck, DEFAULT_DRIFT_BAND};
use mc_sim::DeviceRegistry;

/// The corpus always ends with the canonical roofline pair on each
/// device, in launch order: a large square SGEMM (arithmetic intensity
/// high enough to saturate the Matrix Cores) followed by the same
/// problem with K truncated to 64 (DRAM traffic dominates).
#[test]
fn canonical_shapes_diagnose_to_their_roofline_regimes() {
    let devices = DeviceRegistry::builtin();
    let (report, _events) = insight::run(&devices, &IterBudgets::smoke());

    let gcd = report
        .devices
        .iter()
        .find(|d| d.device == "mi250x-gcd")
        .expect("mi250x-gcd swept");
    assert!(gcd.verdicts.len() >= 2, "corpus replay launched kernels");

    let compute = &gcd.verdicts[gcd.verdicts.len() - 2];
    assert_eq!(
        compute.bottleneck,
        Bottleneck::ComputeBound,
        "large-square SGEMM must be compute-bound: {compute:#?}"
    );

    let dram = &gcd.verdicts[gcd.verdicts.len() - 1];
    assert_eq!(
        dram.bottleneck,
        Bottleneck::DramBound,
        "small-K SGEMM must be DRAM-bound: {dram:#?}"
    );

    // Both carry machine-checkable evidence consistent with the call.
    assert!(dram.evidence.memory_stall_fraction > compute.evidence.memory_stall_fraction);
    assert!(!compute.explanation.is_empty() && !dram.explanation.is_empty());
}

#[test]
fn every_corpus_launch_is_classified_once_and_drift_stays_in_band() {
    let devices = DeviceRegistry::builtin();
    let (report, _events) = insight::run(&devices, &IterBudgets::smoke());

    assert_eq!(report.devices.len(), 4, "all built-in devices swept");
    assert!(report.total_kernels > 0);
    assert_eq!(report.unclassified, 0, "every launch gets a verdict");
    assert_eq!(
        report.regime_inconsistent, 0,
        "verdicts agree with the engine's roofline regime"
    );
    let counted: usize = report.verdict_counts.iter().map(|c| c.kernels).sum();
    assert_eq!(counted, report.total_kernels, "exactly one verdict each");

    assert_eq!(report.drift_band, DEFAULT_DRIFT_BAND);
    assert_eq!(
        report.drift_out_of_band, 0,
        "worst |drift| {:.3} exceeds the calibrated band",
        report.drift_max_abs
    );
    assert!(
        report.drift_observations > 0,
        "plan spans carried predictions"
    );
}
