//! Golden lint corpus: deliberately broken kernels that must each fire
//! an exact set of rules, plus the converse — every kernel the repo
//! actually ships (device audits, `mc-wmma` loop and tile kernels, and
//! `mc-blas` planner output) must lint clean. Together they pin down
//! both directions of the static verifier: no false negatives on known
//! defects, no false positives on the shipped corpus.

use amd_matrix_cores::isa::specs::{self, DieSpec};
use amd_matrix_cores::isa::{
    ampere_catalog, cdna2_catalog, KernelDesc, MatrixInstruction, SlotOp, ValuOp, ValuOpKind,
    WaveProgram,
};
use amd_matrix_cores::lint::{
    audit_die, audit_package, lint_kernel, required_snop_gap, LintReport, RuleId, Severity,
};
use amd_matrix_cores::types::DType;

fn die() -> DieSpec {
    specs::mi250x().die
}

fn mixed() -> MatrixInstruction {
    *cdna2_catalog()
        .find(DType::F32, DType::F16, 16, 16, 16)
        .unwrap()
}

/// A well-formed kernel every broken variant starts from: staged loads,
/// an MFMA chain, a correctly padded accumulator store.
fn baseline() -> KernelDesc {
    let i = mixed();
    let gap = u8::try_from(required_snop_gap(&i)).unwrap();
    KernelDesc {
        arch_vgprs: i.a_vgprs_per_lane() + i.b_vgprs_per_lane() + 16,
        acc_vgprs: i.cd_agprs_per_lane(),
        ..KernelDesc::new(
            "corpus_baseline",
            WaveProgram {
                prologue: vec![
                    SlotOp::global_load(16),
                    SlotOp::Waitcnt(mc_isa::WaitSpec::vm(0)),
                ],
                body: vec![SlotOp::Mfma(i)],
                body_iterations: 64,
                epilogue: vec![SlotOp::SNop(gap), SlotOp::global_store(16)],
            },
        )
    }
}

/// Asserts a report fired exactly the expected rule set (no more, no
/// fewer), with the expected worst severity.
fn assert_fires(report: &LintReport, expected: &[RuleId], worst: Severity) {
    for rule in expected {
        assert!(
            report.fired(*rule),
            "expected {rule} to fire:\n{}",
            report.render()
        );
    }
    for d in &report.diagnostics {
        assert!(
            expected.contains(&d.rule_id),
            "unexpected {} finding:\n{}",
            d.rule_id,
            report.render()
        );
    }
    match worst {
        Severity::Error => assert!(report.has_errors(), "{}", report.render()),
        Severity::Warning => assert!(!report.has_errors(), "{}", report.render()),
    }
}

#[test]
fn baseline_is_clean() {
    let report = lint_kernel(&die(), &baseline());
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn broken_empty_program() {
    let k = KernelDesc::new("no_program", WaveProgram::default());
    assert_fires(
        &lint_kernel(&die(), &k),
        &[RuleId::EmptyKernel],
        Severity::Error,
    );
}

#[test]
fn broken_zero_wave_launch() {
    let mut k = baseline();
    k.workgroups = 0;
    assert_fires(
        &lint_kernel(&die(), &k),
        &[RuleId::EmptyKernel],
        Severity::Error,
    );
}

#[test]
fn broken_foreign_arch_instruction() {
    let ampere = *ampere_catalog()
        .find(DType::F64, DType::F64, 8, 8, 4)
        .unwrap();
    let mut k = baseline();
    k.program.body = vec![SlotOp::Mfma(ampere)];
    let report = lint_kernel(&die(), &k);
    assert!(report.fired(RuleId::MfmaWrongArch), "{}", report.render());
    assert!(report.has_errors());
}

#[test]
fn broken_fabricated_shape() {
    // A 13×13×13 MFMA exists on no hardware (paper Table I).
    let mut bogus = mixed();
    bogus.shape = amd_matrix_cores::isa::MfmaShape::new(13, 13, 13);
    let mut k = baseline();
    k.program.body = vec![SlotOp::Mfma(bogus)];
    let report = lint_kernel(&die(), &k);
    assert!(
        report.fired(RuleId::MfmaUnknownInstruction),
        "{}",
        report.render()
    );
    assert!(report.has_errors());
}

#[test]
fn broken_tampered_latency() {
    // Faking a 4-cycle latency would claim an 8× throughput win.
    let mut tampered = mixed();
    tampered.latency_cycles = 4;
    let mut k = baseline();
    k.program.body = vec![SlotOp::Mfma(tampered)];
    let report = lint_kernel(&die(), &k);
    assert!(
        report.fired(RuleId::MfmaLatencyMismatch),
        "{}",
        report.render()
    );
    assert!(report.has_errors());
}

#[test]
fn broken_unpadded_accumulator_store() {
    let mut k = baseline();
    k.program.epilogue = vec![SlotOp::global_store(16)];
    assert_fires(
        &lint_kernel(&die(), &k),
        &[RuleId::HazardMissingSnop],
        Severity::Error,
    );
}

#[test]
fn broken_consumer_across_loop_back_edge() {
    // The VALU consumer sits at the TOP of the loop; only a scan that
    // models the back-edge sees the hazard from the bottom MFMA.
    let i = mixed();
    let mut k = baseline();
    k.program.body = vec![
        SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, DType::F32)),
        SlotOp::Mfma(i),
    ];
    let report = lint_kernel(&die(), &k);
    let hazard = report
        .diagnostics
        .iter()
        .find(|d| d.rule_id == RuleId::HazardMissingSnop)
        .unwrap_or_else(|| panic!("back-edge hazard not found:\n{}", report.render()));
    assert_eq!(
        hazard.span.unwrap().section,
        amd_matrix_cores::lint::Section::Body
    );
}

#[test]
fn broken_gratuitous_snop() {
    let mut k = baseline();
    k.program.prologue.insert(0, SlotOp::SNop(4));
    assert_fires(
        &lint_kernel(&die(), &k),
        &[RuleId::HazardExcessSnop],
        Severity::Warning,
    );
}

#[test]
fn broken_waw_accumulator_overlap() {
    let f64i = *cdna2_catalog()
        .find(DType::F64, DType::F64, 16, 16, 4)
        .unwrap();
    let mut k = baseline();
    k.program.body = vec![SlotOp::Mfma(mixed()), SlotOp::Mfma(f64i)];
    k.arch_vgprs = 32;
    k.acc_vgprs = 8;
    let report = lint_kernel(&die(), &k);
    assert!(
        report.fired(RuleId::HazardWawOverlap),
        "{}",
        report.render()
    );
    assert!(!report.has_errors(), "{}", report.render());
}

#[test]
fn broken_register_file_overflow() {
    let mut k = baseline();
    k.arch_vgprs = 1024; // file holds 512 per SIMD
    assert_fires(
        &lint_kernel(&die(), &k),
        &[RuleId::VgprOverflow],
        Severity::Error,
    );
}

#[test]
fn broken_underdeclared_accumulator() {
    let mut k = baseline();
    k.acc_vgprs = 0;
    assert_fires(
        &lint_kernel(&die(), &k),
        &[RuleId::VgprUnderdeclared],
        Severity::Warning,
    );
}

#[test]
fn broken_lds_overflow() {
    let mut k = baseline();
    k.lds_bytes_per_workgroup = 1 << 20; // CU has 64 KiB
    assert_fires(
        &lint_kernel(&die(), &k),
        &[RuleId::LdsOverflow],
        Severity::Error,
    );
}

#[test]
fn broken_undeclared_lds_traffic() {
    let mut k = baseline();
    k.program
        .prologue
        .push(SlotOp::lds_write(8, mc_isa::LdsAccess::fixed(0)));
    k.program
        .prologue
        .push(SlotOp::lds_read(8, mc_isa::LdsAccess::fixed(0)));
    assert_fires(
        &lint_kernel(&die(), &k),
        &[RuleId::LdsUndeclared],
        Severity::Warning,
    );
}

#[test]
fn broken_register_starved_occupancy() {
    let mut k = baseline();
    k.arch_vgprs = 500; // 512/500 → 1 wave/SIMD → 12.5% of the ceiling
    assert_fires(
        &lint_kernel(&die(), &k),
        &[RuleId::LowOccupancy],
        Severity::Warning,
    );
}

#[test]
fn broken_unschedulable_workgroup() {
    let mut k = baseline();
    k.waves_per_workgroup = 64; // a CU holds 32 waves
    assert_fires(
        &lint_kernel(&die(), &k),
        &[RuleId::LowOccupancy],
        Severity::Error,
    );
}

#[test]
fn broken_device_specs_fail_the_audit() {
    // Eq. 2 identity: halving the matrix-unit count must be caught.
    let mut tampered = die();
    tampered.matrix_units_per_cu = 2;
    let report = audit_die(&tampered);
    assert!(
        report.fired(RuleId::ModelPipelineMismatch),
        "{}",
        report.render()
    );
    assert!(report.has_errors());

    // Wavefront width contradicting the architecture.
    let mut wide = specs::a100().die;
    wide.wavefront_size = 64;
    assert!(audit_die(&wide).fired(RuleId::SpecWavefrontSize));
}

/// The lint occupancy mirror must agree with the simulator's own
/// occupancy model: a zero-residency kernel is an error, anything the
/// simulator places at ≥ 25% of the wave-slot ceiling carries no
/// low-occupancy finding.
#[test]
fn occupancy_rule_matches_simulator_model() {
    use amd_matrix_cores::sim::occupancy;
    let d = die();
    for arch_vgprs in [16u32, 64, 128, 256, 500] {
        for waves_per_workgroup in [1u32, 4, 32, 64] {
            let mut k = baseline();
            k.arch_vgprs = arch_vgprs.max(k.arch_vgprs);
            k.waves_per_workgroup = waves_per_workgroup;
            let occ = occupancy(&d, &k);
            let report = lint_kernel(&d, &k);
            let fired = report.fired(RuleId::LowOccupancy);
            if occ.waves_per_cu == 0 {
                assert!(
                    fired && report.has_errors(),
                    "vgprs={arch_vgprs} wg={waves_per_workgroup}: {}",
                    report.render()
                );
            } else if occ.fraction >= 0.25 {
                assert!(
                    !fired,
                    "vgprs={arch_vgprs} wg={waves_per_workgroup} occ={}: {}",
                    occ.fraction,
                    report.render()
                );
            } else {
                assert!(
                    fired,
                    "vgprs={arch_vgprs} wg={waves_per_workgroup} occ={}: {}",
                    occ.fraction,
                    report.render()
                );
            }
        }
    }
}

/// Every rule the golden corpus is meant to prove actually appears in
/// the registry of documented rules.
#[test]
fn corpus_covers_the_documented_rule_set() {
    let proven = [
        RuleId::EmptyKernel,
        RuleId::MfmaWrongArch,
        RuleId::MfmaUnknownInstruction,
        RuleId::MfmaLatencyMismatch,
        RuleId::HazardMissingSnop,
        RuleId::HazardExcessSnop,
        RuleId::HazardWawOverlap,
        RuleId::VgprOverflow,
        RuleId::VgprUnderdeclared,
        RuleId::LdsOverflow,
        RuleId::LdsUndeclared,
        RuleId::LowOccupancy,
        RuleId::ModelPipelineMismatch,
        RuleId::SpecWavefrontSize,
    ];
    assert!(proven.len() >= 8, "acceptance floor is eight rules");
    for rule in proven {
        assert!(
            RuleId::ALL.contains(&rule),
            "{rule} missing from RuleId::ALL"
        );
    }
}

/// The converse direction: the whole shipped corpus — device audits,
/// per-instruction loop kernels, WMMA tile kernels, and planner output
/// for every routine — is lint clean on every registered device.
#[test]
fn shipped_experiment_corpus_is_lint_clean() {
    let sweep = mc_bench::lint::run(&amd_matrix_cores::sim::DeviceRegistry::builtin());
    assert!(
        sweep.build_failures.is_empty(),
        "{:?}",
        sweep.build_failures
    );
    assert_eq!(sweep.total_errors, 0, "{}", mc_bench::lint::render(&sweep));
    assert_eq!(
        sweep.total_warnings,
        0,
        "{}",
        mc_bench::lint::render(&sweep)
    );
    for pkg in [specs::mi100(), specs::mi250x(), specs::a100()] {
        assert!(audit_package(&pkg).is_clean(), "{}", pkg.name);
    }
}
