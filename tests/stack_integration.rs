//! Cross-crate integration: the same operation observed through every
//! layer of the stack must tell one consistent story.

use amd_matrix_cores::blas::{plan_gemm, BlasHandle, GemmDesc, GemmOp, Strategy};
use amd_matrix_cores::isa::cdna2_catalog;
use amd_matrix_cores::model::flops::derived_total_flops;
use amd_matrix_cores::power::sampler::BackgroundSampler;
use amd_matrix_cores::power::SamplerConfig;
use amd_matrix_cores::profiler::{CounterReport, FlopBreakdown, ProfilerSession};
use amd_matrix_cores::sim::{DeviceId, DeviceRegistry, Smi};
use amd_matrix_cores::types::{DType, F16};
use amd_matrix_cores::wmma::{mma_loop_kernel, LoopKernelParams};

/// The WMMA builder, the simulator counters, Eq. 1, and the closed-form
/// FLOP count must all agree for a microbenchmark kernel.
#[test]
fn wmma_kernel_counters_agree_with_eq1() {
    let params = LoopKernelParams {
        arch: amd_matrix_cores::isa::MatrixArch::Cdna2,
        cd: DType::F32,
        ab: DType::F16,
        shape: (16, 16, 16),
        wavefronts: 64,
        iterations: 1000,
    };
    let kernel = mma_loop_kernel(params).unwrap();
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let session = ProfilerSession::begin(&gpu, 0).unwrap();
    let result = gpu.launch(0, &kernel).unwrap();
    let counters = session.end(&gpu).unwrap();

    let closed_form = 2u64 * 16 * 16 * 16 * 1000 * 64; // 2mnk * iters * waves
    assert_eq!(kernel.total_mfma_flops(), closed_form);
    assert_eq!(result.kernels[0].mfma_flops, closed_form);
    let derived = derived_total_flops(&counters);
    assert_eq!(derived.matrix_core, closed_form);
}

/// The planner's strategy, the launch counters, and the functional
/// executor must agree about whether Matrix Cores were used.
#[test]
fn strategy_counters_and_numerics_are_consistent() {
    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    for op in [GemmOp::Sgemm, GemmOp::Hss, GemmOp::Hgemm] {
        let desc = GemmDesc::square(op, 128);
        let plan = plan_gemm(&handle.gpu().spec().die, &desc).unwrap();
        let session = ProfilerSession::begin(handle.gpu(), handle.die()).unwrap();
        handle.gemm_timed(&desc).unwrap();
        let counters = session.end(handle.gpu()).unwrap();
        let b = FlopBreakdown::from_counters(&counters);
        match plan.strategy {
            Strategy::MatrixCore { .. } => {
                assert!(b.total_matrix_core() > 0, "{op}");
                assert_eq!(b.total_matrix_core(), plan.mfma_flops, "{op}");
            }
            Strategy::SimdOnly { .. } => {
                assert_eq!(b.total_matrix_core(), 0, "{op}");
            }
        }
    }
}

/// Functional GEMM through the handle equals the f64 reference for an
/// exactly-representable problem, on every routine.
#[test]
fn all_routines_compute_the_verification_pattern() {
    // Paper §IV-A: A = 1, B = I, C = 1 => D = alpha + beta (here 2).
    let n = 64;
    let mk_desc = |op| GemmDesc {
        alpha: 1.0,
        beta: 1.0,
        ..GemmDesc::square(op, n)
    };
    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);

    // f32.
    let a = vec![1.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    for i in 0..n {
        b[i * n + i] = 1.0;
    }
    let c = vec![1.0f32; n * n];
    let mut d = vec![0.0f32; n * n];
    handle
        .sgemm(&mk_desc(GemmOp::Sgemm), &a, &b, &c, &mut d)
        .unwrap();
    assert!(d.iter().all(|&x| x == 2.0));

    // f64.
    let a64 = vec![1.0f64; n * n];
    let mut b64 = vec![0.0f64; n * n];
    for i in 0..n {
        b64[i * n + i] = 1.0;
    }
    let c64 = vec![1.0f64; n * n];
    let mut d64 = vec![0.0f64; n * n];
    handle
        .dgemm(&mk_desc(GemmOp::Dgemm), &a64, &b64, &c64, &mut d64)
        .unwrap();
    assert!(d64.iter().all(|&x| x == 2.0));

    // f16 inputs (hss, hhs, hgemm).
    let ah = vec![F16::ONE; n * n];
    let mut bh = vec![F16::ZERO; n * n];
    for i in 0..n {
        bh[i * n + i] = F16::ONE;
    }
    let ch32 = vec![1.0f32; n * n];
    let mut dh32 = vec![0.0f32; n * n];
    handle
        .gemm_hss(&mk_desc(GemmOp::Hss), &ah, &bh, &ch32, &mut dh32)
        .unwrap();
    assert!(dh32.iter().all(|&x| x == 2.0));

    let ch16 = vec![F16::ONE; n * n];
    let mut dh16 = vec![F16::ZERO; n * n];
    handle
        .gemm_hhs(&mk_desc(GemmOp::Hhs), &ah, &bh, &ch16, &mut dh16)
        .unwrap();
    assert!(dh16.iter().all(|&x| x.to_f64() == 2.0));

    let mut dh = vec![F16::ZERO; n * n];
    handle
        .hgemm(&mk_desc(GemmOp::Hgemm), &ah, &bh, &ch16, &mut dh)
        .unwrap();
    assert!(dh.iter().all(|&x| x.to_f64() == 2.0));
}

/// Power telemetry sampled by the background tool integrates to the
/// same energy the simulator accounted.
#[test]
fn sampled_power_integrates_to_simulated_energy() {
    let mut gpu = DeviceRegistry::builtin().gpu(DeviceId::Mi250x);
    let i = *cdna2_catalog()
        .find(DType::F32, DType::F16, 16, 16, 16)
        .unwrap();
    let kernel = mma_loop_kernel(LoopKernelParams {
        arch: amd_matrix_cores::isa::MatrixArch::Cdna2,
        cd: DType::F32,
        ab: DType::F16,
        shape: (16, 16, 16),
        wavefronts: 440,
        iterations: 50_000_000,
    })
    .unwrap();
    let _ = i;
    let result = gpu.launch(0, &kernel).unwrap();
    let smi = Smi::attach(result.profile.clone(), 0.0, 1);
    let samples = BackgroundSampler::spawn(
        smi,
        SamplerConfig {
            period_s: result.time_s / 5000.0,
            min_samples: 1000,
        },
    )
    .join();
    let mean = amd_matrix_cores::sim::sample_stats(&samples).mean_w;
    let sampled_energy = mean * result.time_s;
    assert!(
        (sampled_energy - result.energy_j).abs() / result.energy_j < 0.01,
        "{sampled_energy} vs {}",
        result.energy_j
    );
}

/// Counter reports expose the same numbers through names as through
/// fields, across the whole pipeline.
#[test]
fn counter_report_round_trip() {
    let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
    handle
        .gemm_timed(&GemmDesc::square(GemmOp::Dgemm, 256))
        .unwrap();
    let counters = handle.gpu().counters(0).unwrap();
    let report = CounterReport::from_counters(&counters);
    assert_eq!(
        report.get("SQ_INSTS_VALU_MFMA_MOPS_F64").unwrap(),
        counters.mfma_mops_f64
    );
    assert_eq!(report.get("SQ_WAVES").unwrap(), counters.waves_launched);
    // Eq. 1 over the report's raw numbers reproduces 2N³ + 3N².
    let total = 512 * counters.mfma_mops_f64
        + 64 * counters.valu_add_f64
        + 64 * counters.valu_mul_f64
        + 128 * counters.valu_fma_f64;
    assert_eq!(total, 2 * 256u64.pow(3) + 3 * 256u64.pow(2));
}

/// Determinism: the whole pipeline must be bit-reproducible run to run.
#[test]
fn simulation_is_deterministic() {
    let run_once = || {
        let mut handle = BlasHandle::from_registry(&DeviceRegistry::builtin(), DeviceId::Mi250xGcd);
        let perf = handle
            .gemm_timed(&GemmDesc::square(GemmOp::Hhs, 4096))
            .unwrap();
        (perf.time_s, perf.tflops, perf.counters)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}
