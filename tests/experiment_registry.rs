//! Integration test for the experiment registry: every registered
//! experiment runs end-to-end at reduced budgets, produces a
//! schema-versioned envelope, and round-trips through JSON.

use mc_bench::experiment::{registry, ExperimentRecord, IterBudgets, RunContext, SCHEMA_VERSION};

/// The stable ids the CLI, EXPERIMENTS.md, and recorded envelopes rely
/// on. Renaming one is a breaking change to the results schema; adding a
/// new experiment means extending this list.
const EXPECTED_IDS: [&str; 24] = [
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "solver",
    "mldtypes",
    "generations",
    "saturation",
    "lint",
    "flow",
    "trace",
    "perf",
    "autotune",
    "regress",
    "insight",
    "hostprof",
    "report",
];

#[test]
fn registry_ids_are_stable_and_unique() {
    let experiments = registry();
    let ids: Vec<&str> = experiments.iter().map(|e| e.id()).collect();
    assert_eq!(ids, EXPECTED_IDS);

    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "duplicate experiment ids");

    for e in &experiments {
        assert!(!e.title().is_empty(), "{} has no title", e.id());
        assert!(!e.device().is_empty(), "{} names no device", e.id());
    }
}

#[test]
fn every_experiment_runs_and_round_trips_through_json() {
    // Smoke budgets keep the full-registry sweep fast; the simulator is
    // iteration-exact, so the envelopes are structurally identical to
    // paper-budget runs.
    let ctx = RunContext::new(IterBudgets::smoke());
    for exp in registry() {
        if exp.id() == "report" {
            // The report aggregates recorded envelopes; its round-trip
            // is covered separately below.
            continue;
        }
        let record = exp.run(&ctx);
        assert_eq!(record.schema_version, SCHEMA_VERSION, "{}", exp.id());
        assert_eq!(record.experiment, exp.id());
        assert_eq!(record.config, IterBudgets::smoke());
        assert!(!record.rendered.is_empty(), "{} rendered nothing", exp.id());
        assert!(record.wall_time_s >= 0.0);
        assert_eq!(record.checks.len(), exp.checks().len(), "{}", exp.id());

        let json = serde_json::to_string(&record).expect("serializes");
        assert!(json.contains("\"schema_version\""));
        let back: ExperimentRecord = serde_json::from_str(&json).expect("parses back");
        assert_eq!(back, record, "{} does not round-trip", exp.id());
    }
}

#[test]
fn checked_experiments_expose_pass_bands_over_their_payload() {
    // The declarative checks must address real payload fields: at full
    // reduced budgets every pointer resolves (a NaN measurement would
    // mean a dangling JSON pointer).
    let ctx = RunContext::reduced();
    for exp in registry() {
        let checks = exp.checks();
        if checks.is_empty() {
            continue;
        }
        let record = exp.run(&ctx);
        for cmp in &record.checks {
            assert!(
                cmp.measured.is_finite(),
                "{}: check `{}` points at nothing",
                exp.id(),
                cmp.metric
            );
        }
    }
}

#[test]
fn trace_dir_captures_a_perfetto_loadable_timeline() {
    let dir = std::env::temp_dir().join(format!("mc-bench-trace-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ctx = RunContext::new(IterBudgets::smoke()).with_trace(&dir);

    // fig3 drives its device through the context registry, so the traced
    // clone captures its launches without the experiment knowing.
    let fig3 = registry().into_iter().find(|e| e.id() == "fig3").unwrap();
    fig3.run(&ctx);

    let path = dir.join("fig3.trace.json");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    assert!(text.contains("\"traceEvents\""), "not a Chrome trace");
    assert!(text.contains("\"process_name\""));
    assert!(text.contains("\"ph\":\"X\""), "no spans captured");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_dir_exports_attribution_ledger_and_openmetrics() {
    let base = std::env::temp_dir().join(format!("mc-bench-metrics-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let sink = base.join("results");
    let metrics = base.join("metrics");
    let ctx = RunContext::new(IterBudgets::smoke())
        .with_sink(&sink)
        .with_metrics(&metrics);

    let fig3 = registry().into_iter().find(|e| e.id() == "fig3").unwrap();
    fig3.run(&ctx);

    // The ledger lands next to the envelopes, parses back, and carries
    // real kernel records.
    let jsonl = std::fs::read_to_string(sink.join("fig3.attribution.jsonl"))
        .expect("attribution ledger written");
    let records = mc_obs::from_jsonl(&jsonl).expect("ledger parses");
    assert!(!records.is_empty(), "fig3 launches kernels");
    assert!(records.iter().all(|r| r.eq1_flops > 0));

    // The OpenMetrics snapshot is a well-formed text exposition of the
    // aggregates.
    let om = std::fs::read_to_string(metrics.join("fig3.om")).expect("snapshot written");
    assert!(om.ends_with("# EOF\n"), "missing EOF terminator");
    assert!(om.contains("# TYPE attribution_kernels gauge"));
    assert!(om.contains("# UNIT attribution_eq1_flops flops"));
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn report_experiment_consumes_recorded_envelopes() {
    use mc_bench::experiment::Experiment as _;

    let dir = std::env::temp_dir().join(format!("mc-bench-registry-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ctx = RunContext::reduced().with_sink(&dir);

    // Record the cheapest checked experiment (table2), then let the
    // report experiment pick the envelope up from the sink.
    let table2 = registry().into_iter().find(|e| e.id() == "table2").unwrap();
    let record = table2.run(&ctx);
    ctx.persist(&record).expect("persist").expect("path");

    let report = mc_bench::report::ReportExperiment;
    let envelope = report.run(&ctx);
    assert!(
        envelope.rendered.contains("from 1 recorded envelopes"),
        "report should consume the recorded envelope, not re-run: {}",
        envelope.rendered.lines().last().unwrap_or_default()
    );
    for check in record.checks {
        assert!(
            envelope.rendered.contains(&check.metric),
            "report lost metric {}",
            check.metric
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
