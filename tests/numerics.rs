//! Numerical-behaviour validation across the precision ladder — the
//! kind of analysis the paper's precision-focused references ([2], [3])
//! perform on real tensor/matrix units, run against our functional
//! models.

use amd_matrix_cores::blas::{
    gemm_reference_f64, quantize, run_functional, select_strategy, GemmDesc, GemmOp,
};
use amd_matrix_cores::types::F16;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Max relative error of a GEMM routine against the f64 reference, over
/// a shared random problem of size n (inputs chosen in [-1, 1]).
fn gemm_error(op: GemmOp, n: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let a64: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b64: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let desc = GemmDesc {
        alpha: 1.0,
        beta: 0.0,
        ..GemmDesc::square(op, n)
    };
    let c64 = vec![0.0f64; n * n];
    let mut d_ref = vec![0.0f64; n * n];
    gemm_reference_f64(&desc, &a64, &b64, &c64, &mut d_ref).unwrap();
    let scale = d_ref.iter().fold(0.0f64, |m, &x| m.max(x.abs()));

    let strategy = select_strategy(&desc);
    let err = |d: &[f64]| -> f64 {
        d.iter()
            .zip(&d_ref)
            .map(|(x, r)| (x - r).abs())
            .fold(0.0, f64::max)
            / scale
    };

    match op {
        GemmOp::Dgemm => {
            let mut d = vec![0.0f64; n * n];
            run_functional::<f64, f64, f64>(&desc, &strategy, &a64, &b64, &c64, &mut d).unwrap();
            err(&d)
        }
        GemmOp::Sgemm => {
            let a: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
            let b: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
            let c = vec![0.0f32; n * n];
            let mut d = vec![0.0f32; n * n];
            run_functional::<f32, f32, f32>(&desc, &strategy, &a, &b, &c, &mut d).unwrap();
            err(&d.iter().map(|&x| f64::from(x)).collect::<Vec<_>>())
        }
        GemmOp::Hss => {
            let a: Vec<F16> = a64.iter().map(|&x| F16::from_f64(x)).collect();
            let b: Vec<F16> = b64.iter().map(|&x| F16::from_f64(x)).collect();
            let c = vec![0.0f32; n * n];
            let mut d = vec![0.0f32; n * n];
            run_functional::<F16, f32, f32>(&desc, &strategy, &a, &b, &c, &mut d).unwrap();
            err(&d.iter().map(|&x| f64::from(x)).collect::<Vec<_>>())
        }
        GemmOp::Hgemm => {
            let a: Vec<F16> = a64.iter().map(|&x| F16::from_f64(x)).collect();
            let b: Vec<F16> = b64.iter().map(|&x| F16::from_f64(x)).collect();
            let c = vec![F16::ZERO; n * n];
            let mut d = vec![F16::ZERO; n * n];
            run_functional::<F16, F16, F16>(&desc, &strategy, &a, &b, &c, &mut d).unwrap();
            err(&d.iter().map(|x| x.to_f64()).collect::<Vec<_>>())
        }
        _ => unreachable!("not exercised here"),
    }
}

#[test]
fn precision_ladder_orders_correctly() {
    // For the same data: DGEMM < SGEMM < HSS < HGEMM error, with clear
    // separation at every rung.
    let n = 128;
    let d = gemm_error(GemmOp::Dgemm, n, 1);
    let s = gemm_error(GemmOp::Sgemm, n, 1);
    let hss = gemm_error(GemmOp::Hss, n, 1);
    let hgemm = gemm_error(GemmOp::Hgemm, n, 1);
    assert!(d < 1e-14, "{d}");
    assert!(s > d && s < 1e-5, "{s}");
    assert!(hss > s && hss < 1e-2, "{hss}");
    assert!(hgemm > 3.0 * hss, "{hgemm} vs {hss}");
}

#[test]
fn hss_error_stays_flat_with_k_but_hgemm_grows() {
    // HSS error is input-quantization dominated (flat in k); HGEMM's
    // FP16 accumulation error grows with the reduction length.
    let hss_small = gemm_error(GemmOp::Hss, 32, 2);
    let hss_big = gemm_error(GemmOp::Hss, 256, 2);
    let hgemm_small = gemm_error(GemmOp::Hgemm, 32, 2);
    let hgemm_big = gemm_error(GemmOp::Hgemm, 256, 2);
    assert!(hss_big < hss_small * 4.0, "{hss_small} -> {hss_big}");
    assert!(
        hgemm_big > hgemm_small * 2.0,
        "{hgemm_small} -> {hgemm_big}"
    );
}

#[test]
fn int8_quantized_error_comparable_to_fp16_inputs() {
    // Symmetric int8 with per-tensor scales has ~2^-8 relative input
    // error vs fp16's ~2^-11: quantized GEMM error should land within
    // an order of magnitude of HSS on the same data.
    let n = 128;
    let mut rng = StdRng::seed_from_u64(3);
    let af: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let bf: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let a = quantize(&af);
    let b = quantize(&bf);
    let c = vec![0.0f32; n * n];
    let mut d = vec![0.0f32; n * n];
    amd_matrix_cores::blas::quantized_gemm(n, n, n, &a, &b, 0.0, &c, &mut d).unwrap();

    let mut max_err = 0.0f64;
    let mut scale = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let mut exact = 0.0f64;
            for p in 0..n {
                exact += f64::from(af[i * n + p]) * f64::from(bf[p * n + j]);
            }
            max_err = max_err.max((f64::from(d[i * n + j]) - exact).abs());
            scale = scale.max(exact.abs());
        }
    }
    let rel = max_err / scale;
    assert!(rel < 0.05, "{rel}");
    let hss = gemm_error(GemmOp::Hss, n, 3);
    assert!(rel < hss * 30.0, "int8 {rel} vs hss {hss}");
}

#[test]
fn fragment_mma_is_invariant_to_tiling() {
    // The tiled Matrix Core path must give identical results regardless
    // of where tile boundaries fall (pure function of the data): compare
    // N=96 (6 tiles/dim with 16-tiles) against the SIMD path in f64
    // (exact), which is tiling-free.
    let n = 96;
    let mut rng = StdRng::seed_from_u64(4);
    let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let c: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let desc = GemmDesc {
        alpha: 1.0,
        beta: 1.0,
        ..GemmDesc::square(GemmOp::Dgemm, n)
    };
    let strategy = select_strategy(&desc);
    assert!(strategy.uses_matrix_cores());
    let mut d_mc = vec![0.0f64; n * n];
    run_functional::<f64, f64, f64>(&desc, &strategy, &a, &b, &c, &mut d_mc).unwrap();

    let simd = amd_matrix_cores::blas::Strategy::SimdOnly {
        reason: amd_matrix_cores::blas::SimdReason::NoMatrixInstruction,
    };
    let mut d_simd = vec![0.0f64; n * n];
    run_functional::<f64, f64, f64>(&desc, &simd, &a, &b, &c, &mut d_simd).unwrap();
    // Sequential-in-k order in both paths, f64: bitwise identical.
    assert_eq!(d_mc, d_simd);
}

#[test]
fn alpha_beta_scaling_precision() {
    // The α/β epilogue is applied in the compute type: for HHS the f16
    // output rounds once at the end, not per term.
    let n = 16;
    let desc = GemmDesc {
        alpha: 0.1,
        beta: 0.1,
        ..GemmDesc::square(GemmOp::Hhs, n)
    };
    let a = vec![F16::ONE; n * n];
    let mut b = vec![F16::ZERO; n * n];
    for i in 0..n {
        b[i * n + i] = F16::ONE;
    }
    let c = vec![F16::ONE; n * n];
    let mut d = vec![F16::ZERO; n * n];
    let strategy = select_strategy(&desc);
    run_functional::<F16, F16, f32>(&desc, &strategy, &a, &b, &c, &mut d).unwrap();
    // Exact: 0.1·1 + 0.1·1 computed in f32 then rounded once to f16.
    let expect = F16::from_f32(0.1f32 + 0.1f32);
    for x in &d {
        assert_eq!(x.to_bits(), expect.to_bits());
    }
}
