//! `cargo bench` smoke target for the hot compute paths.
//!
//! Kept deliberately small (256³ problems) so it doubles as a CI smoke
//! test; the `perf` experiment in `mc-bench` is the full measurement
//! that writes `BENCH_hotpaths.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use mc_compute::{Blocked, GemmParams, MatMul, Naive, Simd};

fn fill(len: usize, seed: usize) -> Vec<f32> {
    (0..len)
        .map(|i| ((i * seed + 3) % 17) as f32 / 8.0 - 1.0)
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    let n = 256;
    let p = GemmParams::new(n, n, n);
    let a = fill(n * n, 7);
    let b = fill(n * n, 13);
    let cc = vec![0.0f32; n * n];
    let mut d = vec![0.0f32; n * n];

    c.bench_function("sgemm_256_naive", |bench| {
        bench.iter(|| {
            Naive
                .gemm::<f32, f32, f32>(&p, &a, &b, &cc, &mut d)
                .unwrap();
            d[0]
        })
    });
    c.bench_function("sgemm_256_blocked", |bench| {
        bench.iter(|| {
            Blocked
                .gemm::<f32, f32, f32>(&p, &a, &b, &cc, &mut d)
                .unwrap();
            d[0]
        })
    });
    // Vector microkernel where the runner has AVX2, the portable
    // register-blocked fallback otherwise — named accordingly so a
    // criterion history never mixes the two.
    let simd = Simd::from_env();
    let simd_name = match simd.mode() {
        mc_compute::SimdMode::Vector => "sgemm_256_simd",
        mc_compute::SimdMode::Portable => "sgemm_256_simd_portable",
    };
    c.bench_function(simd_name, |bench| {
        bench.iter(|| {
            simd.gemm::<f32, f32, f32>(&p, &a, &b, &cc, &mut d).unwrap();
            d[0]
        })
    });
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
