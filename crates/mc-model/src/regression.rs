//! Ordinary least-squares linear regression (from scratch; no external
//! statistics crates). Used to recover the Eq. 3 power model from
//! sampled telemetry and to validate linearity claims.

use serde::{Deserialize, Serialize};

/// A fitted line `y = slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1.0 for a perfect fit; 1.0 by
    /// convention when the data has no variance).
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y = a·x + b` by ordinary least squares.
///
/// Returns `None` for fewer than two points or a degenerate (constant-x)
/// input.
pub fn fit_linear(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let (mx, my) = (sx / nf, sy / nf);
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;

    let ss_tot: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };

    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64, 5.88 * i as f64 + 130.0))
            .collect();
        let fit = fit_linear(&pts).unwrap();
        assert!((fit.slope - 5.88).abs() < 1e-12);
        assert!((fit.intercept - 130.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 188.8).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_close() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 2.0 * x + 10.0 + noise)
            })
            .collect();
        let fit = fit_linear(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!((fit.intercept - 10.0).abs() < 0.6);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fit_linear(&[]).is_none());
        assert!(fit_linear(&[(1.0, 2.0)]).is_none());
        assert!(fit_linear(&[(3.0, 1.0), (3.0, 5.0)]).is_none());
    }

    #[test]
    fn constant_y_has_unit_r2() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 7.0)).collect();
        let fit = fit_linear(&pts).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 7.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
