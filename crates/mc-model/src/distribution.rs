//! The Fig. 9 model: distribution of GEMM floating-point operations
//! between Matrix Cores and SIMD units.
//!
//! "We find that for one HGEMM, SGEMM, or HHS/HSS operation, `2N³`
//! arithmetic floating-point operations are performed on Matrix Cores
//! and `3N²` operations are performed on SIMD units" (§VII); the SIMD
//! term is the α/β scaling, which cannot map to Matrix Cores.

use serde::{Deserialize, Serialize};

/// The polynomial FLOP-distribution model for an `N×N×N` GEMM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FlopDistribution;

impl FlopDistribution {
    /// Matrix-Core operations: `2N³`.
    pub fn matrix_core_flops(n: u64) -> u64 {
        2 * n * n * n
    }

    /// SIMD operations (α/β scaling): `3N²`.
    pub fn simd_flops(n: u64) -> u64 {
        3 * n * n
    }

    /// Fraction of operations on Matrix Cores: `2N³ / (2N³ + 3N²)`.
    pub fn matrix_core_ratio(n: u64) -> f64 {
        let mc = Self::matrix_core_flops(n) as f64;
        mc / (mc + Self::simd_flops(n) as f64)
    }

    /// Ratio of Matrix Core to SIMD operation counts: `(2/3)·N` (§VII).
    pub fn mc_to_simd_ratio(n: u64) -> f64 {
        Self::matrix_core_flops(n) as f64 / Self::simd_flops(n) as f64
    }

    /// Smallest `N` at which at least `fraction` of operations land on
    /// Matrix Cores.
    pub fn min_n_for_ratio(fraction: f64) -> u64 {
        // ratio >= fraction  <=>  2N >= 3·fraction/(1-fraction)
        let rhs = 1.5 * fraction / (1.0 - fraction);
        rhs.ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_terms() {
        assert_eq!(FlopDistribution::matrix_core_flops(1024), 2u64 << 30);
        assert_eq!(FlopDistribution::simd_flops(1024), 3 * 1024 * 1024);
    }

    #[test]
    fn mc_to_simd_is_two_thirds_n() {
        // §VII: "the number of floating-point operations performed on
        // Matrix Cores is (2/3)·N times higher".
        for n in [32u64, 256, 4096] {
            let r = FlopDistribution::mc_to_simd_ratio(n);
            assert!((r - 2.0 * n as f64 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ninety_five_percent_at_n_32() {
        // §VII: "for N ≥ 32, more than 95% of floating-point operations
        // are performed on Matrix Cores".
        assert!(FlopDistribution::matrix_core_ratio(32) > 0.95);
        assert!(FlopDistribution::min_n_for_ratio(0.95) <= 32);
        // And over 99% by N = 256 (Fig. 8).
        assert!(FlopDistribution::matrix_core_ratio(256) > 0.99);
    }

    #[test]
    fn ratio_monotone_in_n() {
        let mut last = 0.0;
        for n in [16u64, 32, 64, 128, 256, 1024] {
            let r = FlopDistribution::matrix_core_ratio(n);
            assert!(r > last);
            last = r;
        }
    }
}
