//! The paper's analytical models, as executable artifacts:
//!
//! * [`throughput`] — Eq. 2, the Matrix Core throughput model
//!   `FLOPS(N_WF) = (2mnk/c) · min(N_WF, 440) · f`;
//! * [`flops`] — Eq. 1, deriving total floating-point operations from
//!   hardware counters;
//! * [`distribution`] — the Fig. 9 GEMM FLOP-distribution model
//!   (`2N³` on Matrix Cores, `3N²` on SIMD units);
//! * [`regression`] — ordinary least squares, used to recover the Eq. 3
//!   power model from sampled telemetry;
//! * [`validation`] — model-vs-measurement comparison utilities
//!   (relative errors, plateau detection).

#![deny(missing_docs)]

//! * [`roofline`] — the (instruction-)roofline methodology of the
//!   paper's refs. \[13]/\[14], applied to the simulated dies.

pub mod distribution;
pub mod flops;
pub mod regression;
pub mod roofline;
pub mod throughput;
pub mod validation;

pub use distribution::FlopDistribution;
pub use flops::{derived_total_flops, DerivedFlops};
pub use regression::{fit_linear, LinearFit};
pub use roofline::{OperatingPoint, Regime, Roofline};
pub use throughput::ThroughputModel;
pub use validation::{max_relative_error, plateau_value, relative_error};
