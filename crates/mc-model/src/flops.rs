//! Eq. 1: deriving floating-point operation counts from hardware
//! counters (§IV-B).
//!
//! ```text
//! TOTAL_FLOPS_F64 = 512·SQ_INSTS_VALU_MFMA_MOPS_F64
//!                 +  64·SQ_INSTS_VALU_ADD_F64 + 64·SQ_INSTS_VALU_MUL_F64
//!                 + 128·SQ_INSTS_VALU_FMA_F64
//! ```
//!
//! and analogously for single and half precision.

use mc_sim::HwCounters;
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// FLOP totals derived from one counter bank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DerivedFlops {
    /// FLOPs delivered by Matrix Cores (the 512·MOPS terms).
    pub matrix_core: u64,
    /// FLOPs delivered by SIMD units (the VALU terms).
    pub simd: u64,
}

impl DerivedFlops {
    /// Total FLOPs.
    pub fn total(&self) -> u64 {
        self.matrix_core + self.simd
    }

    /// Fraction of FLOPs delivered by Matrix Cores (the paper's Fig. 8
    /// metric); 0 when no FLOPs were recorded.
    pub fn matrix_core_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.matrix_core as f64 / self.total() as f64
        }
    }
}

/// Applies Eq. 1 for one datatype.
pub fn derived_flops_for(counters: &HwCounters, dtype: DType) -> DerivedFlops {
    let (mops, add, mul, fma) = match dtype {
        DType::F64 => (
            counters.mfma_mops_f64,
            counters.valu_add_f64,
            counters.valu_mul_f64,
            counters.valu_fma_f64,
        ),
        DType::F32 => (
            counters.mfma_mops_f32,
            counters.valu_add_f32,
            counters.valu_mul_f32,
            counters.valu_fma_f32,
        ),
        DType::F16 => (
            counters.mfma_mops_f16,
            counters.valu_add_f16,
            counters.valu_mul_f16,
            counters.valu_fma_f16,
        ),
        DType::Bf16 => (counters.mfma_mops_bf16, 0, 0, 0),
        DType::I8 | DType::I32 => (counters.mfma_mops_i8, 0, 0, 0),
    };
    DerivedFlops {
        matrix_core: 512 * mops,
        simd: 64 * add + 64 * mul + 128 * fma,
    }
}

/// Applies Eq. 1 across all floating-point datatypes and sums.
pub fn derived_total_flops(counters: &HwCounters) -> DerivedFlops {
    let mut out = DerivedFlops::default();
    for dt in [DType::F64, DType::F32, DType::F16, DType::Bf16, DType::I8] {
        let d = derived_flops_for(counters, dt);
        out.matrix_core += d.matrix_core;
        out.simd += d.simd;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_formula_verbatim() {
        let c = HwCounters {
            mfma_mops_f64: 10,
            valu_add_f64: 3,
            valu_mul_f64: 5,
            valu_fma_f64: 7,
            ..HwCounters::default()
        };
        let d = derived_flops_for(&c, DType::F64);
        assert_eq!(d.matrix_core, 512 * 10);
        assert_eq!(d.simd, 64 * 3 + 64 * 5 + 128 * 7);
        assert_eq!(d.total(), 512 * 10 + 64 * 8 + 128 * 7);
    }

    #[test]
    fn ratio_bounds() {
        let d = DerivedFlops {
            matrix_core: 512,
            simd: 0,
        };
        assert_eq!(d.matrix_core_ratio(), 1.0);
        let d = DerivedFlops {
            matrix_core: 0,
            simd: 100,
        };
        assert_eq!(d.matrix_core_ratio(), 0.0);
        assert_eq!(DerivedFlops::default().matrix_core_ratio(), 0.0);
    }

    #[test]
    fn per_type_isolation() {
        let c = HwCounters {
            mfma_mops_f16: 100,
            valu_fma_f32: 50,
            ..HwCounters::default()
        };
        assert_eq!(derived_flops_for(&c, DType::F16).matrix_core, 51200);
        assert_eq!(derived_flops_for(&c, DType::F16).simd, 0);
        assert_eq!(derived_flops_for(&c, DType::F32).simd, 6400);
        let total = derived_total_flops(&c);
        assert_eq!(total.total(), 51200 + 6400);
    }
}
