//! Roofline modelling for the simulated devices.
//!
//! The paper derives its counter methodology (§IV-B) from the
//! hierarchical/instruction roofline work on AMD GPUs (refs. \[13],
//! \[14]). This module provides the classic FLOP roofline for the
//! simulated dies — separate ceilings per datatype for Matrix Cores and
//! vector units — and classifies measured kernels by arithmetic
//! intensity, which is how the Fig. 6/7 GEMM curves' memory-bound
//! regions can be diagnosed from first principles.

use mc_isa::specs::DieSpec;
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// A performance ceiling: either a compute roof or the memory slope.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Roof {
    /// Human-readable name (e.g. `"MFMA FP64"`, `"VALU FP32"`).
    pub name: String,
    /// Peak in FLOP/s.
    pub flops: f64,
}

/// A roofline model for one die.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Compute ceilings, highest first.
    pub roofs: Vec<Roof>,
    /// DRAM bandwidth in bytes/s (the diagonal).
    pub bandwidth: f64,
}

/// Where a kernel sits relative to the roofline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    /// Below the ridge point: limited by DRAM bandwidth.
    MemoryBound,
    /// Above the ridge point: limited by the compute roof.
    ComputeBound,
}

/// A kernel's measured operating point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Arithmetic intensity in FLOP/byte (of DRAM traffic).
    pub intensity: f64,
    /// Achieved FLOP/s.
    pub flops: f64,
}

impl Roofline {
    /// Builds the Matrix Core roofline for a die: MFMA ceilings per
    /// datatype plus the vector-FMA ceiling.
    pub fn for_die(die: &DieSpec) -> Roofline {
        let catalog = match die.arch {
            mc_isa::MatrixArch::Cdna1 => mc_isa::cdna1_catalog(),
            mc_isa::MatrixArch::Cdna2 => mc_isa::cdna2_catalog(),
            mc_isa::MatrixArch::Ampere => mc_isa::ampere_catalog(),
        };
        let mut roofs = Vec::new();
        for (name, cd, ab) in [
            ("MFMA FP16-mixed", DType::F32, DType::F16),
            ("MFMA FP32", DType::F32, DType::F32),
            ("MFMA FP64", DType::F64, DType::F64),
        ] {
            if let Some(i) = catalog.best_for_types(cd, ab) {
                roofs.push(Roof {
                    name: name.to_owned(),
                    flops: die.peak_flops(i.flops_per_cu_per_cycle()),
                });
            }
        }
        // Vector FMA ceiling: 2 FLOPs/lane/cycle × 64 lanes ÷ 4-cycle
        // issue × 4 SIMDs = 128 FLOPs/CU/cycle.
        roofs.push(Roof {
            name: "VALU FMA".to_owned(),
            flops: die.peak_flops(128.0),
        });
        roofs.sort_by(|a, b| b.flops.total_cmp(&a.flops));
        Roofline {
            roofs,
            bandwidth: die.hbm_bandwidth_gbs * 1e9,
        }
    }

    /// The ceiling named `name`, if present.
    pub fn roof(&self, name: &str) -> Option<&Roof> {
        self.roofs.iter().find(|r| r.name == name)
    }

    /// Attainable FLOP/s at `intensity` under the given roof:
    /// `min(roof, intensity × bandwidth)`.
    pub fn attainable(&self, roof: &Roof, intensity: f64) -> f64 {
        roof.flops.min(intensity * self.bandwidth)
    }

    /// Ridge point of a roof: the intensity where the diagonal meets it.
    pub fn ridge_intensity(&self, roof: &Roof) -> f64 {
        roof.flops / self.bandwidth
    }

    /// Classifies an operating point against a roof.
    pub fn classify(&self, roof: &Roof, point: OperatingPoint) -> Regime {
        if point.intensity < self.ridge_intensity(roof) {
            Regime::MemoryBound
        } else {
            Regime::ComputeBound
        }
    }

    /// Fraction of the attainable performance a point achieves.
    pub fn efficiency(&self, roof: &Roof, point: OperatingPoint) -> f64 {
        point.flops / self.attainable(roof, point.intensity)
    }
}

/// Arithmetic intensity of an `N×N×N` GEMM with macro-tile edge `mt`
/// and element size `elem` (full-refetch model): `2N³` FLOPs over
/// `2·N³/mt · elem` bytes ⇒ `mt/elem` FLOP/byte, independent of N.
pub fn gemm_intensity(mt: f64, elem_bytes: f64) -> f64 {
    mt / elem_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gcd() -> DieSpec {
        mc_isa::specs::mi250x().die
    }

    #[test]
    fn roofs_match_datasheet_peaks() {
        let r = Roofline::for_die(&gcd());
        assert!((r.roof("MFMA FP16-mixed").unwrap().flops / 1e12 - 191.5).abs() < 0.5);
        assert!((r.roof("MFMA FP64").unwrap().flops / 1e12 - 47.9).abs() < 0.2);
        assert!((r.roof("VALU FMA").unwrap().flops / 1e12 - 23.9).abs() < 0.2);
        // Highest roof first.
        assert_eq!(r.roofs[0].name, "MFMA FP16-mixed");
    }

    #[test]
    fn attainable_is_min_of_roof_and_diagonal() {
        let r = Roofline::for_die(&gcd());
        let roof = r.roof("MFMA FP64").unwrap().clone();
        let low = r.attainable(&roof, 1.0);
        assert!((low - 1638.0e9).abs() < 1e9, "diagonal at intensity 1");
        let high = r.attainable(&roof, 1e6);
        assert_eq!(high, roof.flops);
    }

    #[test]
    fn ridge_points_order_by_roof_height() {
        let r = Roofline::for_die(&gcd());
        let mixed = r.ridge_intensity(r.roof("MFMA FP16-mixed").unwrap());
        let fp64 = r.ridge_intensity(r.roof("MFMA FP64").unwrap());
        assert!(mixed > fp64, "higher roofs need more intensity");
        // FP64 ridge: 47.9e12 / 1.638e12 ≈ 29 FLOP/B.
        assert!((fp64 - 29.2).abs() < 1.0, "{fp64}");
    }

    #[test]
    fn gemm_intensity_explains_fig6_regimes() {
        let r = Roofline::for_die(&gcd());
        // DGEMM with 256-tiles: 32 FLOP/B — just above the FP64 ridge
        // (compute-bound at peak), which is why the paper's DGEMM can
        // approach its plateau at all...
        let dgemm = OperatingPoint {
            intensity: gemm_intensity(256.0, 8.0),
            flops: 37e12,
        };
        let fp64 = r.roof("MFMA FP64").unwrap().clone();
        assert_eq!(r.classify(&fp64, dgemm), Regime::ComputeBound);
        // ...but mixed-precision HHS with 128-tiles (64 FLOP/B against a
        // 191 TF roof with a 117 FLOP/B ridge) is memory-bound — why the
        // paper's HHS tops out at 155 of 175, and drops at large N.
        let hhs = OperatingPoint {
            intensity: gemm_intensity(128.0, 2.0),
            flops: 155e12,
        };
        let mixed = r.roof("MFMA FP16-mixed").unwrap().clone();
        assert_eq!(r.classify(&mixed, hhs), Regime::MemoryBound);
    }

    #[test]
    fn efficiency_bounded_by_one_for_valid_points() {
        let r = Roofline::for_die(&gcd());
        let fp64 = r.roof("MFMA FP64").unwrap().clone();
        let p = OperatingPoint {
            intensity: 100.0,
            flops: 41e12,
        };
        let e = r.efficiency(&fp64, p);
        assert!(e > 0.84 && e <= 1.0, "{e}");
    }

    #[test]
    fn ampere_roofline_has_no_fp32_matrix_roof() {
        let r = Roofline::for_die(&mc_isa::specs::a100().die);
        assert!(r.roof("MFMA FP32").is_none());
        assert!(r.roof("MFMA FP64").is_some());
    }
}
