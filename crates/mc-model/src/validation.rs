//! Model-vs-measurement comparison utilities, used by the experiment
//! harness to assert the paper's validation claims (e.g. "measured
//! latency is consistent with AMD's official data", "85/90/92 % of the
//! theoretical peak").

/// Relative error `|measured - expected| / |expected|`.
///
/// Returns `f64::INFINITY` when `expected` is zero but `measured` is not.
pub fn relative_error(measured: f64, expected: f64) -> f64 {
    if expected == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - expected).abs() / expected.abs()
    }
}

/// Maximum relative error over paired series.
///
/// # Panics
/// Panics if the series lengths differ.
pub fn max_relative_error(measured: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(measured.len(), expected.len(), "series must align");
    measured
        .iter()
        .zip(expected)
        .map(|(&m, &e)| relative_error(m, e))
        .fold(0.0, f64::max)
}

/// The plateau value of a saturating series: the mean of the last
/// `tail` points (the paper reports sustained plateau throughputs).
///
/// # Panics
/// Panics if `tail` is zero or larger than the series.
pub fn plateau_value(series: &[f64], tail: usize) -> f64 {
    assert!(tail > 0 && tail <= series.len(), "bad tail window");
    let s = &series[series.len() - tail..];
    s.iter().sum::<f64>() / tail as f64
}

/// Fraction of a theoretical peak achieved (the paper's "% of peak").
pub fn fraction_of_peak(measured: f64, peak: f64) -> f64 {
    measured / peak
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn max_over_series() {
        let m = [1.0, 2.2, 3.0];
        let e = [1.0, 2.0, 3.0];
        assert!((max_relative_error(&m, &e) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "series must align")]
    fn mismatched_series_panic() {
        max_relative_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn plateau_of_saturating_series() {
        let s = [1.0, 2.0, 4.0, 8.0, 10.0, 10.2, 9.8, 10.0];
        assert!((plateau_value(&s, 4) - 10.0).abs() < 0.01);
    }

    #[test]
    fn peak_fraction() {
        assert!((fraction_of_peak(41.0, 47.9) - 0.856).abs() < 0.001);
    }
}
