//! Eq. 2: the peak-throughput model of Matrix Core utilization.
//!
//! `FLOPS(N_WF) = (2·m·n·k / c) · min(N_WF, N_MC) · f`, where `c` is the
//! instruction latency, `f` the clock, and `N_MC = 440` the number of
//! Matrix Cores in one GCD — "no more than 440 wavefronts can execute
//! Matrix Core instructions at one time" (§V-B).

use mc_isa::specs::DieSpec;
use mc_isa::MatrixInstruction;
use serde::{Deserialize, Serialize};

/// The Eq. 2 throughput model for one instruction on one die.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThroughputModel {
    /// FLOPs per instruction (`2mnk·blocks`).
    pub flops_per_instr: u64,
    /// Instruction latency `c` in cycles.
    pub latency_cycles: u32,
    /// Clock `f` in Hz.
    pub clock_hz: f64,
    /// Saturation threshold: matrix units on the die.
    pub matrix_units: u32,
}

impl ThroughputModel {
    /// Builds the model from an instruction and a die specification.
    pub fn new(instr: &MatrixInstruction, die: &DieSpec) -> Self {
        ThroughputModel {
            flops_per_instr: instr.flops(),
            latency_cycles: instr.latency_cycles,
            clock_hz: die.clock_hz(),
            matrix_units: die.total_matrix_units(),
        }
    }

    /// Predicted FLOPS at `n_wavefronts` (Eq. 2).
    pub fn flops(&self, n_wavefronts: u64) -> f64 {
        let active = n_wavefronts.min(u64::from(self.matrix_units)) as f64;
        self.flops_per_instr as f64 / f64::from(self.latency_cycles) * active * self.clock_hz
    }

    /// Predicted TFLOPS at `n_wavefronts`.
    pub fn tflops(&self, n_wavefronts: u64) -> f64 {
        self.flops(n_wavefronts) / 1e12
    }

    /// The model's theoretical peak (saturated) throughput in FLOPS.
    pub fn peak_flops(&self) -> f64 {
        self.flops(u64::from(self.matrix_units))
    }

    /// Wavefront count where the model saturates.
    pub fn saturation_wavefronts(&self) -> u64 {
        u64::from(self.matrix_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::cdna2_catalog;
    use mc_types::DType;

    fn model(cd: DType, ab: DType, m: u32, n: u32, k: u32) -> ThroughputModel {
        let die = mc_isa::specs::mi250x().die;
        let i = cdna2_catalog().find(cd, ab, m, n, k).unwrap();
        ThroughputModel::new(i, &die)
    }

    #[test]
    fn linear_then_flat() {
        let m = model(DType::F32, DType::F16, 16, 16, 16);
        assert_eq!(m.flops(200), 2.0 * m.flops(100));
        assert_eq!(m.flops(440), m.flops(880), "saturated at 440");
        assert_eq!(m.saturation_wavefronts(), 440);
    }

    #[test]
    fn mixed_peak_is_191_tflops_per_gcd() {
        let m = model(DType::F32, DType::F16, 16, 16, 16);
        // 8192/32 · 440 · 1.7e9 = 191.6 TFLOPS.
        assert!((m.peak_flops() / 1e12 - 191.6).abs() < 0.5);
    }

    #[test]
    fn fp64_peak_is_47_9_tflops_per_gcd() {
        let m = model(DType::F64, DType::F64, 16, 16, 4);
        assert!((m.peak_flops() / 1e12 - 47.9).abs() < 0.2);
    }

    #[test]
    fn single_wavefront_value() {
        // One wave of mixed MFMAs: 8192/32 · 1.7e9 = 435 GFLOPS.
        let m = model(DType::F32, DType::F16, 16, 16, 16);
        assert!((m.flops(1) / 1e9 - 435.2).abs() < 1.0);
    }
}
