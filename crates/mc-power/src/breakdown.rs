//! Per-component energy breakdown of a launch.
//!
//! The paper's §VI analysis separates idle power (88 W), an active
//! baseline, and throughput-proportional dynamic power. This module
//! computes that decomposition *exactly* from the simulator's energy
//! accounting — which components dominate at which operating points,
//! and what fraction of energy goes to arithmetic vs DRAM vs standby —
//! the data behind statements like "double-precision approaches the
//! power cap while mixed precision leaves 200 W of headroom".

use mc_isa::specs::PackageSpec;
use mc_sim::{KernelExec, PackageResult};
use serde::{Deserialize, Serialize};

/// Energy attributed to each component, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Package idle (leakage, HBM refresh, fabric) over the launch.
    pub idle_j: f64,
    /// Per-die active baseline while kernels are resident.
    pub baseline_j: f64,
    /// Matrix-unit arithmetic, by input type: (f64, f32, f16-class).
    pub mfma_j: (f64, f64, f64),
    /// Vector-ALU arithmetic.
    pub valu_j: f64,
    /// DRAM traffic.
    pub dram_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.idle_j
            + self.baseline_j
            + self.mfma_j.0
            + self.mfma_j.1
            + self.mfma_j.2
            + self.valu_j
            + self.dram_j
    }

    /// Fraction of energy spent on arithmetic (matrix + vector).
    pub fn arithmetic_fraction(&self) -> f64 {
        let arith = self.mfma_j.0 + self.mfma_j.1 + self.mfma_j.2 + self.valu_j;
        arith / self.total_j()
    }

    /// Fraction of energy that is standby (idle + baseline).
    pub fn standby_fraction(&self) -> f64 {
        (self.idle_j + self.baseline_j) / self.total_j()
    }

    /// Computes the breakdown of one kernel execution on a package.
    pub fn of_exec(spec: &PackageSpec, exec: &KernelExec, time_s: f64, dies_active: u32) -> Self {
        let e = &spec.energy_pj;
        let (f64f, f32f, f16f) = exec.mfma_flops_by_type;
        EnergyBreakdown {
            idle_j: spec.idle_power_w * time_s,
            baseline_j: spec.active_baseline_w_per_die * f64::from(dies_active) * time_s,
            mfma_j: (
                f64f as f64 * e.mfma_f64 * 1e-12,
                f32f as f64 * e.mfma_f32 * 1e-12,
                f16f as f64 * e.mfma_f16 * 1e-12,
            ),
            valu_j: exec.valu_flops as f64 * e.valu * 1e-12,
            dram_j: exec.hbm_bytes as f64 * e.hbm_per_byte * 1e-12,
        }
    }

    /// Registers the decomposition under `power.energy.*` in a metrics
    /// registry: each component in joules plus the arithmetic/standby
    /// fractions as ratios (see `docs/OBSERVABILITY.md`).
    pub fn register_metrics(&self, reg: &mut mc_trace::MetricsRegistry) {
        use mc_trace::Unit;
        reg.set("power.energy.idle_j", Unit::Joules, self.idle_j);
        reg.set("power.energy.baseline_j", Unit::Joules, self.baseline_j);
        reg.set("power.energy.mfma_f64_j", Unit::Joules, self.mfma_j.0);
        reg.set("power.energy.mfma_f32_j", Unit::Joules, self.mfma_j.1);
        reg.set("power.energy.mfma_f16_j", Unit::Joules, self.mfma_j.2);
        reg.set("power.energy.valu_j", Unit::Joules, self.valu_j);
        reg.set("power.energy.dram_j", Unit::Joules, self.dram_j);
        reg.set("power.energy.total_j", Unit::Joules, self.total_j());
        reg.set(
            "power.energy.arithmetic_fraction",
            Unit::Ratio,
            self.arithmetic_fraction(),
        );
        reg.set(
            "power.energy.standby_fraction",
            Unit::Ratio,
            self.standby_fraction(),
        );
    }

    /// Computes the breakdown of a whole package launch.
    pub fn of_result(spec: &PackageSpec, result: &PackageResult) -> Self {
        let mut out = EnergyBreakdown {
            idle_j: spec.idle_power_w * result.time_s,
            ..Default::default()
        };
        for k in &result.kernels {
            let b = Self::of_exec(spec, &k.exec, k.time_s, 1);
            out.baseline_j += b.baseline_j;
            out.mfma_j.0 += b.mfma_j.0;
            out.mfma_j.1 += b.mfma_j.1;
            out.mfma_j.2 += b.mfma_j.2;
            out.valu_j += b.valu_j;
            out.dram_j += b.dram_j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::{cdna2_catalog, KernelDesc, SlotOp, WaveProgram};
    use mc_sim::Gpu;
    use mc_types::DType;

    fn loop_result(waves: u64, iters: u64) -> (Gpu, PackageResult) {
        let mut gpu = Gpu::mi250x();
        let i = *cdna2_catalog()
            .find(DType::F64, DType::F64, 16, 16, 4)
            .unwrap();
        let k = KernelDesc {
            workgroups: waves,
            waves_per_workgroup: 1,
            ..KernelDesc::new("e", WaveProgram::looped(vec![SlotOp::Mfma(i)], iters))
        };
        let r = gpu.launch(0, &k).unwrap();
        (gpu, r)
    }

    #[test]
    fn breakdown_reconciles_with_package_energy() {
        let (gpu, r) = loop_result(440, 1_000_000);
        let b = EnergyBreakdown::of_result(gpu.spec(), &r);
        assert!(
            (b.total_j() - r.energy_j).abs() / r.energy_j < 1e-9,
            "{} vs {}",
            b.total_j(),
            r.energy_j
        );
    }

    #[test]
    fn saturated_fp64_is_arithmetic_dominated() {
        let (gpu, r) = loop_result(440, 1_000_000);
        let b = EnergyBreakdown::of_result(gpu.spec(), &r);
        assert!(b.arithmetic_fraction() > 0.6, "{}", b.arithmetic_fraction());
        assert!(b.mfma_j.0 > 0.0 && b.mfma_j.1 == 0.0 && b.mfma_j.2 == 0.0);
    }

    #[test]
    fn idle_dominates_low_occupancy() {
        let (gpu, r) = loop_result(4, 1_000_000);
        let b = EnergyBreakdown::of_result(gpu.spec(), &r);
        assert!(b.standby_fraction() > 0.8, "{}", b.standby_fraction());
    }

    #[test]
    fn register_metrics_exposes_components_and_fractions() {
        let (gpu, r) = loop_result(440, 100_000);
        let b = EnergyBreakdown::of_result(gpu.spec(), &r);
        let mut reg = mc_trace::MetricsRegistry::new();
        b.register_metrics(&mut reg);
        assert_eq!(reg.value("power.energy.total_j"), Some(b.total_j()));
        assert_eq!(reg.value("power.energy.idle_j"), Some(b.idle_j));
        assert_eq!(
            reg.get("power.energy.standby_fraction").unwrap().unit,
            mc_trace::Unit::Ratio
        );
        let sum: f64 = [
            "power.energy.idle_j",
            "power.energy.baseline_j",
            "power.energy.mfma_f64_j",
            "power.energy.mfma_f32_j",
            "power.energy.mfma_f16_j",
            "power.energy.valu_j",
            "power.energy.dram_j",
        ]
        .iter()
        .map(|n| reg.value(n).unwrap())
        .sum();
        assert!((sum - b.total_j()).abs() < 1e-12 * b.total_j().max(1.0));
    }

    #[test]
    fn dram_energy_appears_for_memory_kernels() {
        let mut gpu = Gpu::mi250x();
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        let mut k = KernelDesc {
            workgroups: 440,
            waves_per_workgroup: 1,
            ..KernelDesc::new("m", WaveProgram::looped(vec![SlotOp::Mfma(i)], 100))
        };
        k.mem_hints.hbm_bytes = 1 << 30;
        let r = gpu.launch(0, &k).unwrap();
        let b = EnergyBreakdown::of_result(gpu.spec(), &r);
        // 1 GiB at 18 pJ/B ≈ 19.3 mJ.
        assert!((b.dram_j - 0.0193).abs() < 0.001, "{}", b.dram_j);
    }
}
