//! Power efficiency metrics (§VI).
//!
//! "Power efficiency is computed as the average number of floating-point
//! operations per second divided by the average power consumption" —
//! i.e. FLOPS/W, reported in GFLOPS/W.

use mc_types::DType;
use serde::{Deserialize, Serialize};

/// Power efficiency in GFLOPS per watt.
pub fn gflops_per_watt(tflops: f64, watts: f64) -> f64 {
    tflops * 1000.0 / watts
}

/// One datatype's operating point and efficiency.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Datatype.
    pub dtype: DType,
    /// Sustained throughput in TFLOPS.
    pub tflops: f64,
    /// Average package power in watts.
    pub watts: f64,
    /// Efficiency in GFLOPS/W.
    pub gflops_per_watt: f64,
}

impl EfficiencyPoint {
    /// Builds a point, computing the efficiency.
    pub fn new(dtype: DType, tflops: f64, watts: f64) -> Self {
        EfficiencyPoint {
            dtype,
            tflops,
            watts,
            gflops_per_watt: gflops_per_watt(tflops, watts),
        }
    }

    /// Registers the point under `power.efficiency.<dtype>.*`:
    /// throughput in flop/s, package power in watts, and efficiency in
    /// flop/J (the paper's GFLOPS/W divided by 1e9 — base SI units so
    /// the OpenMetrics exposition stays unit-correct).
    pub fn register_metrics(&self, reg: &mut mc_trace::MetricsRegistry) {
        use mc_trace::Unit;
        let dt = format!("{}", self.dtype).to_ascii_lowercase();
        reg.set(
            &format!("power.efficiency.{dt}.flops_per_s"),
            Unit::FlopsPerSecond,
            self.tflops * 1e12,
        );
        reg.set(
            &format!("power.efficiency.{dt}.watts"),
            Unit::Watts,
            self.watts,
        );
        reg.set(
            &format!("power.efficiency.{dt}.flops_per_j"),
            Unit::FlopsPerJoule,
            self.gflops_per_watt * 1e9,
        );
    }
}

/// A cross-datatype efficiency comparison (the §VI analysis).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyReport {
    /// Points, one per datatype.
    pub points: Vec<EfficiencyPoint>,
}

impl EfficiencyReport {
    /// Adds an operating point.
    pub fn push(&mut self, p: EfficiencyPoint) {
        self.points.push(p);
    }

    /// Efficiency for a datatype, if present.
    pub fn for_dtype(&self, dtype: DType) -> Option<&EfficiencyPoint> {
        self.points.iter().find(|p| p.dtype == dtype)
    }

    /// Ratio of one datatype's efficiency over another's (the paper's
    /// "3.7× higher than single precision" style comparisons).
    pub fn ratio(&self, a: DType, b: DType) -> Option<f64> {
        Some(self.for_dtype(a)?.gflops_per_watt / self.for_dtype(b)?.gflops_per_watt)
    }

    /// The most efficient datatype in the report.
    pub fn best(&self) -> Option<&EfficiencyPoint> {
        self.points
            .iter()
            .max_by(|x, y| x.gflops_per_watt.total_cmp(&y.gflops_per_watt))
    }

    /// Registers every point (see [`EfficiencyPoint::register_metrics`])
    /// plus the best efficiency across datatypes.
    pub fn register_metrics(&self, reg: &mut mc_trace::MetricsRegistry) {
        for p in &self.points {
            p.register_metrics(reg);
        }
        if let Some(best) = self.best() {
            reg.set(
                "power.efficiency.best.flops_per_j",
                mc_trace::Unit::FlopsPerJoule,
                best.gflops_per_watt * 1e9,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_report() -> EfficiencyReport {
        // §VI operating points: mixed 350 TF @ ~343 W, single 88 @ ~322,
        // double 69 @ ~541 (values consistent with the published
        // 1020 / 273 / 127 GFLOPS/W).
        let mut r = EfficiencyReport::default();
        r.push(EfficiencyPoint::new(DType::F16, 350.0, 343.0));
        r.push(EfficiencyPoint::new(DType::F32, 88.0, 322.0));
        r.push(EfficiencyPoint::new(DType::F64, 69.0, 541.0));
        r
    }

    #[test]
    fn paper_efficiency_values() {
        let r = paper_report();
        let mixed = r.for_dtype(DType::F16).unwrap().gflops_per_watt;
        let single = r.for_dtype(DType::F32).unwrap().gflops_per_watt;
        let double = r.for_dtype(DType::F64).unwrap().gflops_per_watt;
        assert!((mixed - 1020.0).abs() < 15.0, "{mixed}");
        assert!((single - 273.0).abs() < 5.0, "{single}");
        assert!((double - 127.0).abs() < 2.0, "{double}");
    }

    #[test]
    fn single_is_about_twice_double() {
        // §VI: "approximately two times higher".
        let r = paper_report();
        let ratio = r.ratio(DType::F32, DType::F64).unwrap();
        assert!(ratio > 1.9 && ratio < 2.4, "{ratio}");
    }

    #[test]
    fn mixed_is_3_7x_single() {
        let r = paper_report();
        let ratio = r.ratio(DType::F16, DType::F32).unwrap();
        assert!((ratio - 3.7).abs() < 0.2, "{ratio}");
    }

    #[test]
    fn best_is_mixed() {
        let r = paper_report();
        assert_eq!(r.best().unwrap().dtype, DType::F16);
    }

    #[test]
    fn register_metrics_exposes_points_in_base_units() {
        let r = paper_report();
        let mut reg = mc_trace::MetricsRegistry::new();
        r.register_metrics(&mut reg);
        // 350 TFLOPS @ 343 W → ~1.02e12 flop/J... (flop/s ÷ W = flop/J).
        let f16 = reg.value("power.efficiency.fp16.flops_per_j").unwrap();
        assert!((f16 / 1e9 - 1020.0).abs() < 15.0, "{f16}");
        assert_eq!(
            reg.value("power.efficiency.fp16.flops_per_s"),
            Some(350.0e12)
        );
        assert_eq!(reg.value("power.efficiency.fp64.watts"), Some(541.0));
        assert_eq!(reg.value("power.efficiency.best.flops_per_j"), Some(f16));
        assert_eq!(
            reg.get("power.efficiency.fp32.flops_per_j").unwrap().unit,
            mc_trace::Unit::FlopsPerJoule
        );
    }

    #[test]
    fn missing_dtype_is_none() {
        let r = paper_report();
        assert!(r.for_dtype(DType::I8).is_none());
        assert!(r.ratio(DType::I8, DType::F16).is_none());
    }
}
