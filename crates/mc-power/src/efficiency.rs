//! Power efficiency metrics (§VI).
//!
//! "Power efficiency is computed as the average number of floating-point
//! operations per second divided by the average power consumption" —
//! i.e. FLOPS/W, reported in GFLOPS/W.

use mc_types::DType;
use serde::{Deserialize, Serialize};

/// Power efficiency in GFLOPS per watt.
pub fn gflops_per_watt(tflops: f64, watts: f64) -> f64 {
    tflops * 1000.0 / watts
}

/// One datatype's operating point and efficiency.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Datatype.
    pub dtype: DType,
    /// Sustained throughput in TFLOPS.
    pub tflops: f64,
    /// Average package power in watts.
    pub watts: f64,
    /// Efficiency in GFLOPS/W.
    pub gflops_per_watt: f64,
}

impl EfficiencyPoint {
    /// Builds a point, computing the efficiency.
    pub fn new(dtype: DType, tflops: f64, watts: f64) -> Self {
        EfficiencyPoint {
            dtype,
            tflops,
            watts,
            gflops_per_watt: gflops_per_watt(tflops, watts),
        }
    }
}

/// A cross-datatype efficiency comparison (the §VI analysis).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyReport {
    /// Points, one per datatype.
    pub points: Vec<EfficiencyPoint>,
}

impl EfficiencyReport {
    /// Adds an operating point.
    pub fn push(&mut self, p: EfficiencyPoint) {
        self.points.push(p);
    }

    /// Efficiency for a datatype, if present.
    pub fn for_dtype(&self, dtype: DType) -> Option<&EfficiencyPoint> {
        self.points.iter().find(|p| p.dtype == dtype)
    }

    /// Ratio of one datatype's efficiency over another's (the paper's
    /// "3.7× higher than single precision" style comparisons).
    pub fn ratio(&self, a: DType, b: DType) -> Option<f64> {
        Some(self.for_dtype(a)?.gflops_per_watt / self.for_dtype(b)?.gflops_per_watt)
    }

    /// The most efficient datatype in the report.
    pub fn best(&self) -> Option<&EfficiencyPoint> {
        self.points
            .iter()
            .max_by(|x, y| x.gflops_per_watt.total_cmp(&y.gflops_per_watt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_report() -> EfficiencyReport {
        // §VI operating points: mixed 350 TF @ ~343 W, single 88 @ ~322,
        // double 69 @ ~541 (values consistent with the published
        // 1020 / 273 / 127 GFLOPS/W).
        let mut r = EfficiencyReport::default();
        r.push(EfficiencyPoint::new(DType::F16, 350.0, 343.0));
        r.push(EfficiencyPoint::new(DType::F32, 88.0, 322.0));
        r.push(EfficiencyPoint::new(DType::F64, 69.0, 541.0));
        r
    }

    #[test]
    fn paper_efficiency_values() {
        let r = paper_report();
        let mixed = r.for_dtype(DType::F16).unwrap().gflops_per_watt;
        let single = r.for_dtype(DType::F32).unwrap().gflops_per_watt;
        let double = r.for_dtype(DType::F64).unwrap().gflops_per_watt;
        assert!((mixed - 1020.0).abs() < 15.0, "{mixed}");
        assert!((single - 273.0).abs() < 5.0, "{single}");
        assert!((double - 127.0).abs() < 2.0, "{double}");
    }

    #[test]
    fn single_is_about_twice_double() {
        // §VI: "approximately two times higher".
        let r = paper_report();
        let ratio = r.ratio(DType::F32, DType::F64).unwrap();
        assert!(ratio > 1.9 && ratio < 2.4, "{ratio}");
    }

    #[test]
    fn mixed_is_3_7x_single() {
        let r = paper_report();
        let ratio = r.ratio(DType::F16, DType::F32).unwrap();
        assert!((ratio - 3.7).abs() < 0.2, "{ratio}");
    }

    #[test]
    fn best_is_mixed() {
        let r = paper_report();
        assert_eq!(r.best().unwrap().dtype, DType::F16);
    }

    #[test]
    fn missing_dtype_is_none() {
        let r = paper_report();
        assert!(r.for_dtype(DType::I8).is_none());
        assert!(r.ratio(DType::I8, DType::F16).is_none());
    }
}
