//! Power characterization tooling (paper §IV-C and §VI):
//!
//! * [`sampler`] — the background power-sampling tool built on the
//!   ROCm-SMI-style interface of [`mc_sim::Smi`] (100 ms default period,
//!   ≥1000 samples per measurement, like the paper's methodology);
//! * [`model`] — the Eq. 3 power-vs-throughput model, with the paper's
//!   published coefficients and least-squares fitting of measured data;
//! * [`efficiency`] — GFLOPS/W power-efficiency metrics and the §VI
//!   cross-datatype comparisons;
//! * [`pm_counters`] — the independent Cray `pm_counters` energy-counter
//!   path the paper uses to cross-validate SMI (§IV-C);
//! * [`breakdown`] — per-component energy decomposition (idle, baseline,
//!   arithmetic by datatype, DRAM).

#![deny(missing_docs)]

pub mod breakdown;
pub mod efficiency;
pub mod model;
pub mod pm_counters;
pub mod sampler;

pub use breakdown::EnergyBreakdown;
pub use efficiency::{gflops_per_watt, EfficiencyPoint, EfficiencyReport};
pub use model::{PowerModel, PAPER_EQ3};
pub use pm_counters::{PmCounters, PmReading};
pub use sampler::{BackgroundSampler, SamplerConfig};
