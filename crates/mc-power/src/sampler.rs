//! The background power-sampling tool (paper §IV-C).
//!
//! The paper's tool is a separate process that polls
//! `rsmi_dev_power_ave_get()` at a user-defined period (100 ms default)
//! for the lifetime of a kernel, collecting at least 1000 samples per
//! measurement. This module reproduces that architecture: a sampler
//! thread polls an [`mc_sim::Smi`] telemetry source over the kernel's
//! (simulated) lifetime and streams samples back over a channel. Time is
//! virtual — the thread walks the profile's timeline rather than
//! sleeping — so runs are fast and deterministic while exercising the
//! same concurrent structure as the real tool.

use crossbeam::channel::{self, Receiver};
use mc_sim::{sample_stats, PowerSample, SampleStats, Smi};

/// Sampler configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplerConfig {
    /// Sampling period in seconds (the paper uses 0.1 s; it validated
    /// 0.01 s gives the same results).
    pub period_s: f64,
    /// Minimum samples the paper's methodology requires per measurement.
    pub min_samples: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            period_s: 0.1,
            min_samples: 1000,
        }
    }
}

/// A background sampling session.
#[derive(Debug)]
pub struct BackgroundSampler {
    rx: Receiver<PowerSample>,
    handle: Option<std::thread::JoinHandle<()>>,
    config: SamplerConfig,
}

impl BackgroundSampler {
    /// Spawns the sampler thread over an SMI telemetry source.
    pub fn spawn(smi: Smi, config: SamplerConfig) -> Self {
        let (tx, rx) = channel::unbounded();
        let period = config.period_s;
        let handle = std::thread::spawn(move || {
            for sample in smi.sample_period(period) {
                if tx.send(sample).is_err() {
                    break;
                }
            }
        });
        BackgroundSampler {
            rx,
            handle: Some(handle),
            config,
        }
    }

    /// Waits for the sampler to finish and returns all samples.
    pub fn join(mut self) -> Vec<PowerSample> {
        let handle = self.handle.take().expect("join called once");
        handle.join().expect("sampler thread panicked");
        self.rx.try_iter().collect()
    }

    /// Waits, then summarizes; returns `Err` with the stats if fewer
    /// than `min_samples` samples were collected (the caller should run
    /// a longer kernel, as the paper's methodology prescribes).
    pub fn join_stats(self) -> Result<SampleStats, SampleStats> {
        let min = self.config.min_samples;
        let samples = self.join();
        let stats = sample_stats(&samples);
        if stats.count >= min {
            Ok(stats)
        } else {
            Err(stats)
        }
    }

    /// Waits, then registers the sampling statistics in a metrics
    /// registry under the `power.smi.` prefix, regardless of whether
    /// the minimum-sample threshold was met: the summary gauges
    /// (mean/min/max/stddev and p50/p95/p99) plus the full sample
    /// distribution as the `power.smi.watts` histogram family.
    /// Returns the stats.
    pub fn join_metrics(self, registry: &mut mc_trace::MetricsRegistry) -> SampleStats {
        let samples = self.join();
        let stats = sample_stats(&samples);
        stats.register_metrics(registry);
        mc_sim::register_sample_histogram(registry, "power.smi.watts", &samples);
        stats
    }
}

impl Drop for BackgroundSampler {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_sim::PowerProfile;

    fn profile(duration: f64, watts: f64) -> PowerProfile {
        PowerProfile {
            segments: vec![(0.0, duration, watts)],
        }
    }

    #[test]
    fn collects_over_a_thousand_samples_for_100s_kernel() {
        let smi = Smi::attach(profile(120.0, 400.0), 0.0, 1);
        let sampler = BackgroundSampler::spawn(smi, SamplerConfig::default());
        let stats = sampler.join_stats().expect("enough samples");
        assert!(stats.count >= 1000);
        assert!((stats.mean_w - 400.0).abs() < 1e-9);
    }

    #[test]
    fn short_kernel_fails_min_samples_check() {
        let smi = Smi::attach(profile(1.0, 300.0), 0.0, 2);
        let sampler = BackgroundSampler::spawn(smi, SamplerConfig::default());
        let err = sampler.join_stats().unwrap_err();
        assert!(err.count < 1000);
        assert!((err.mean_w - 300.0).abs() < 1e-9);
    }

    #[test]
    fn ten_ms_and_hundred_ms_periods_agree() {
        // The paper's §IV-C validation.
        let p = profile(60.0, 350.0);
        let fast = BackgroundSampler::spawn(
            Smi::attach(p.clone(), 0.015, 3),
            SamplerConfig {
                period_s: 0.01,
                min_samples: 100,
            },
        );
        let slow = BackgroundSampler::spawn(
            Smi::attach(p, 0.015, 3),
            SamplerConfig {
                period_s: 0.1,
                min_samples: 100,
            },
        );
        let f = fast.join_stats().unwrap();
        let s = slow.join_stats().unwrap();
        assert!(
            (f.mean_w - s.mean_w).abs() < 2.0,
            "{} vs {}",
            f.mean_w,
            s.mean_w
        );
    }

    #[test]
    fn join_metrics_registers_power_smi_stats() {
        let smi = Smi::attach(profile(120.0, 400.0), 0.0, 1);
        let sampler = BackgroundSampler::spawn(smi, SamplerConfig::default());
        let mut reg = mc_trace::MetricsRegistry::new();
        let stats = sampler.join_metrics(&mut reg);
        assert_eq!(reg.value("power.smi.mean_w"), Some(stats.mean_w));
        assert_eq!(reg.value("power.smi.samples"), Some(stats.count as f64));
        assert_eq!(reg.value("power.smi.p99_w"), Some(stats.p99_w));
        // The full distribution registers as a histogram family.
        let h = reg.histogram("power.smi.watts").expect("histogram");
        assert_eq!(h.count(), stats.count as u64);
    }

    #[test]
    fn samples_arrive_in_order() {
        let smi = Smi::attach(profile(5.0, 100.0), 0.0, 4);
        let sampler = BackgroundSampler::spawn(
            smi,
            SamplerConfig {
                period_s: 0.1,
                min_samples: 1,
            },
        );
        let samples = sampler.join();
        assert!(samples.windows(2).all(|w| w[0].t_s < w[1].t_s));
    }
}
