//! Cray `pm_counters` emulation — the paper's *second*, independent
//! power-measurement path (§IV-C): "we also validate our power
//! measurements … by comparing with the Cray power measurement counters
//! dedicated to monitoring accelerator power consumption, accessible
//! through the `/sys/cray/pm_counters` filesystem-based interface".
//!
//! Cray EX blades expose cumulative **energy** counters (joules) and
//! instantaneous power per accelerator. Emulating the energy-counter
//! semantics gives a genuinely independent estimator: mean power from
//! `ΔE/Δt` integrates the true profile, while the SMI path averages
//! noisy point samples — the two must agree, which [`PmCounters::validate_against`]
//! checks exactly as the paper did.

use mc_sim::{PowerProfile, SampleStats};

/// One accelerator's `pm_counters` view over a power profile.
#[derive(Clone, Debug)]
pub struct PmCounters {
    profile: PowerProfile,
}

/// A parsed `pm_counters` file read: value and unit, like the kernel's
/// sysfs text files (`"1234 J"` / `"567 W"`).
#[derive(Clone, Debug, PartialEq)]
pub struct PmReading {
    /// Counter value.
    pub value: f64,
    /// Unit string (`"J"` or `"W"`).
    pub unit: &'static str,
}

impl PmCounters {
    /// Attaches to a launch's power profile (the blade-level telemetry).
    pub fn attach(profile: PowerProfile) -> Self {
        PmCounters { profile }
    }

    /// `accel_energy` at time `t`: cumulative joules since profile start
    /// (the integral of the true power curve — no sampling noise).
    pub fn accel_energy_j(&self, t_s: f64) -> f64 {
        let mut e = 0.0;
        for &(a, b, w) in &self.profile.segments {
            if t_s <= a {
                break;
            }
            e += (t_s.min(b) - a) * w;
        }
        e
    }

    /// `accel_power` at time `t`: instantaneous watts.
    pub fn accel_power_w(&self, t_s: f64) -> f64 {
        self.profile.power_at(t_s)
    }

    /// Reads a named counter file at time `t`, sysfs-style.
    pub fn read(&self, name: &str, t_s: f64) -> Option<PmReading> {
        match name {
            "accel0_energy" => Some(PmReading {
                value: self.accel_energy_j(t_s),
                unit: "J",
            }),
            "accel0_power" => Some(PmReading {
                value: self.accel_power_w(t_s),
                unit: "W",
            }),
            _ => None,
        }
    }

    /// Mean power over `[t0, t1]` from the energy counters (`ΔE/Δt`).
    pub fn mean_power_w(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 > t0, "non-empty interval");
        (self.accel_energy_j(t1) - self.accel_energy_j(t0)) / (t1 - t0)
    }

    /// The paper's §IV-C cross-validation: SMI-sampled mean power must
    /// agree with the energy-counter-derived mean within `tolerance`
    /// (relative). Returns the relative discrepancy on success.
    pub fn validate_against(&self, smi_stats: &SampleStats, tolerance: f64) -> Result<f64, f64> {
        let duration = self.profile.duration_s();
        let pm_mean = self.mean_power_w(0.0, duration);
        let rel = (smi_stats.mean_w - pm_mean).abs() / pm_mean;
        if rel <= tolerance {
            Ok(rel)
        } else {
            Err(rel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{BackgroundSampler, SamplerConfig};
    use mc_sim::Smi;

    fn stepped_profile() -> PowerProfile {
        PowerProfile {
            segments: vec![(0.0, 10.0, 100.0), (10.0, 30.0, 400.0)],
        }
    }

    #[test]
    fn energy_integrates_the_profile() {
        let pm = PmCounters::attach(stepped_profile());
        assert_eq!(pm.accel_energy_j(0.0), 0.0);
        assert_eq!(pm.accel_energy_j(10.0), 1000.0);
        assert_eq!(pm.accel_energy_j(20.0), 1000.0 + 4000.0);
        assert_eq!(pm.accel_energy_j(30.0), 9000.0);
        // Past the end: clamped.
        assert_eq!(pm.accel_energy_j(99.0), 9000.0);
    }

    #[test]
    fn mean_power_from_energy_deltas() {
        let pm = PmCounters::attach(stepped_profile());
        assert_eq!(pm.mean_power_w(0.0, 10.0), 100.0);
        assert_eq!(pm.mean_power_w(10.0, 30.0), 400.0);
        assert_eq!(pm.mean_power_w(0.0, 30.0), 300.0);
    }

    #[test]
    fn sysfs_style_reads() {
        let pm = PmCounters::attach(stepped_profile());
        let e = pm.read("accel0_energy", 10.0).unwrap();
        assert_eq!(
            e,
            PmReading {
                value: 1000.0,
                unit: "J"
            }
        );
        let p = pm.read("accel0_power", 15.0).unwrap();
        assert_eq!(p.value, 400.0);
        assert!(pm.read("cpu_power", 1.0).is_none());
    }

    #[test]
    fn cross_validates_smi_sampling_like_the_paper() {
        // Long flat-ish profile, noisy SMI samples at 100 ms: the two
        // independent paths agree within the paper's ~2% variance bound.
        let profile = PowerProfile {
            segments: vec![(0.0, 120.0, 337.5)],
        };
        let smi = Smi::attach(profile.clone(), 0.015, 11);
        let stats = BackgroundSampler::spawn(smi, SamplerConfig::default())
            .join_stats()
            .expect("enough samples");
        let pm = PmCounters::attach(profile);
        let rel = pm.validate_against(&stats, 0.02).expect("paths agree");
        assert!(rel < 0.02);
    }

    #[test]
    fn validation_fails_on_disagreement() {
        let pm = PmCounters::attach(stepped_profile());
        let bogus = SampleStats {
            count: 1000,
            mean_w: 250.0, // true mean is 300
            ..SampleStats::default()
        };
        assert!(pm.validate_against(&bogus, 0.02).is_err());
    }
}
