//! Eq. 3: the linear power-vs-throughput model.
//!
//! ```text
//! PC_double = 5.88·Th + 130      (W, Th in TFLOPS)
//! PC_float  = 2.18·Th + 125.5
//! PC_mixed  = 0.61·Th + 123
//! ```

use mc_model::{fit_linear, LinearFit};
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// A linear power model `PC = slope·Th + intercept` for one datatype.
///
/// ```
/// use mc_power::model::paper_model;
/// use mc_types::DType;
///
/// let double = paper_model(DType::F64).unwrap();
/// // The paper's peak FP64 operating point: ~70 TFLOPS at ~541 W.
/// assert!((double.predict_w(69.9) - 541.0).abs() < 1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Datatype this model describes (input type of the MFMA mix).
    pub dtype: DType,
    /// Watts per TFLOPS.
    pub slope_w_per_tflops: f64,
    /// Idle-plus-baseline intercept in watts.
    pub intercept_w: f64,
}

impl PowerModel {
    /// Predicted package power at `tflops` throughput.
    pub fn predict_w(&self, tflops: f64) -> f64 {
        self.slope_w_per_tflops * tflops + self.intercept_w
    }

    /// Throughput at which this model reaches `watts`.
    pub fn tflops_at_power(&self, watts: f64) -> f64 {
        (watts - self.intercept_w) / self.slope_w_per_tflops
    }

    /// Fits a power model from `(tflops, watts)` measurements.
    pub fn fit(dtype: DType, points: &[(f64, f64)]) -> Option<(PowerModel, LinearFit)> {
        let fit = fit_linear(points)?;
        Some((
            PowerModel {
                dtype,
                slope_w_per_tflops: fit.slope,
                intercept_w: fit.intercept,
            },
            fit,
        ))
    }

    /// Additional watts consumed per extra TFLOPS (the paper's framing:
    /// "for each additional TFLOPS, additional 5.8/2.1/0.61 W").
    pub fn marginal_w_per_tflops(&self) -> f64 {
        self.slope_w_per_tflops
    }
}

/// The paper's published Eq. 3 coefficients (double, float, mixed).
pub const PAPER_EQ3: [PowerModel; 3] = [
    PowerModel {
        dtype: DType::F64,
        slope_w_per_tflops: 5.88,
        intercept_w: 130.0,
    },
    PowerModel {
        dtype: DType::F32,
        slope_w_per_tflops: 2.18,
        intercept_w: 125.5,
    },
    PowerModel {
        dtype: DType::F16,
        slope_w_per_tflops: 0.61,
        intercept_w: 123.0,
    },
];

/// Looks up the paper's Eq. 3 model for a datatype.
pub fn paper_model(dtype: DType) -> Option<PowerModel> {
    PAPER_EQ3.iter().copied().find(|m| m.dtype == dtype)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_coefficients_predict_paper_peaks() {
        // §VI: double precision reaches 541 W near its 69-71 TFLOPS peak.
        let double = paper_model(DType::F64).unwrap();
        let at_cap = double.tflops_at_power(541.0);
        assert!((at_cap - 69.9).abs() < 1.0, "got {at_cap}");
        // Mixed at 350 TFLOPS: ~336 W (measured 319; model value).
        let mixed = paper_model(DType::F16).unwrap();
        assert!((mixed.predict_w(350.0) - 336.5).abs() < 0.1);
        // Float at 88 TFLOPS: ~317 W.
        let float = paper_model(DType::F32).unwrap();
        assert!((float.predict_w(88.0) - 317.3).abs() < 0.5);
    }

    #[test]
    fn fit_recovers_generated_line() {
        let pts: Vec<(f64, f64)> = (1..=40)
            .map(|i| {
                let th = i as f64;
                (th, 5.88 * th + 123.0)
            })
            .collect();
        let (m, fit) = PowerModel::fit(DType::F64, &pts).unwrap();
        assert!((m.slope_w_per_tflops - 5.88).abs() < 1e-9);
        assert!((m.intercept_w - 123.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn slopes_ordered_by_precision_width() {
        // Wider datatypes burn more energy per FLOP.
        let d = paper_model(DType::F64).unwrap().slope_w_per_tflops;
        let s = paper_model(DType::F32).unwrap().slope_w_per_tflops;
        let m = paper_model(DType::F16).unwrap().slope_w_per_tflops;
        assert!(d > s && s > m);
    }

    #[test]
    fn fit_requires_two_points() {
        assert!(PowerModel::fit(DType::F64, &[(1.0, 2.0)]).is_none());
    }
}
