//! The diagnosis layer over the observability planes.
//!
//! `mc-trace` records what happened (spans, counters, metrics),
//! `mc-obs` prices it (per-kernel attribution across the paper's three
//! measurement planes), and `mc-blas` predicts it (the Eq. 2 analytic
//! scores the plan search ranks with). This crate joins all three into
//! *answers*:
//!
//! * [`diagnose`] — one [`KernelVerdict`] per attributed launch: a
//!   bottleneck classification ([`Bottleneck`]) backed by
//!   machine-checkable [`Evidence`] (achieved-peak fraction, exposed
//!   DRAM share, pipeline busy shares, waitcnt stall share, pair
//!   utilization, handoff share) and a one-line human explanation;
//! * [`drift_report`] / [`plan_drift`] — the model-drift detector:
//!   per-launch `predicted vs measured` relative errors bounded against
//!   a calibrated band ([`DEFAULT_DRIFT_BAND`]);
//! * [`inversions_from_outcome`] — ranking mistakes the analytic model
//!   would have made without the engine dry-run tier;
//! * [`round_latency_histogram`] / [`DriftReport::histogram`] — the
//!   distributions behind the verdicts as log-bucketed
//!   [`mc_trace::Histogram`]s, ready for OpenMetrics exposition;
//! * [`register_insight_metrics`] — the whole diagnosis summarized into
//!   a [`mc_trace::MetricsRegistry`] under `insight.*`;
//! * [`diagnose_host`] — the same treatment for the *host* GEMM plane:
//!   one [`HostVerdict`] per `mc-hostprof` attribution record
//!   (pack-bound / memory-bandwidth-bound / dispatch-overhead /
//!   parallel-imbalance / compute-bound), thresholds in
//!   [`host`].
//!
//! The `insight` gate experiment (`mc-bench`) sweeps the Fig. 6/7
//! corpus through this crate on every built-in device and fails CI when
//! a kernel's verdict contradicts its roofline placement or the model
//! drift leaves the band. See `docs/OBSERVABILITY.md` for the taxonomy
//! and the drift-band policy.

#![deny(missing_docs)]

pub mod drift;
pub mod host;
pub mod verdict;

pub use drift::{
    drift_report, inversions_from_outcome, plan_drift, DriftObservation, DriftReport,
    InversionRecord, DEFAULT_DRIFT_BAND,
};
pub use host::{
    classify_host, diagnose_host, explain_host, host_intensity, HostBottleneck, HostVerdict,
    HOST_EFFICIENCY_MIN, HOST_INTENSITY_MIN_FLOP_PER_ELEM, HOST_PACK_RATIO_MAX,
};
pub use verdict::{
    classify, diagnose, explain, Bottleneck, Evidence, KernelVerdict, HANDOFF_FRACTION_MIN,
    MEMORY_STALL_MIN, PAIR_UTILIZATION_MIN, WAIT_STALL_MIN,
};

use mc_trace::{Category, Histogram, MetricsRegistry, TraceEvent, Unit};

/// Schema version of the `<id>.insight.json` envelope the gate writes.
pub const INSIGHT_SCHEMA_VERSION: u32 = 1;

/// The dispatch-round latency distribution of a trace: every Round
/// span's duration recorded into a [`Histogram::latency_seconds`]
/// shape. The per-round view catches tail behaviour (ragged final
/// rounds, governor-stretched rounds) that kernel-level means hide.
pub fn round_latency_histogram(events: &[TraceEvent]) -> Histogram {
    let mut h = Histogram::latency_seconds();
    for span in events.iter().filter_map(|e| e.as_span()) {
        if span.category == Category::Round {
            h.record(span.dur_us / 1e6);
        }
    }
    h
}

/// Registers the diagnosis summary under `insight.*`: per-verdict
/// kernel counts, drift-distribution gauges, and the two histogram
/// families (`insight.round_latency_s` from `events`,
/// `insight.plan_drift` from the report).
pub fn register_insight_metrics(
    verdicts: &[KernelVerdict],
    report: &DriftReport,
    events: &[TraceEvent],
    reg: &mut MetricsRegistry,
) {
    reg.set("insight.kernels", Unit::Count, verdicts.len() as f64);
    for b in Bottleneck::ALL {
        let count = verdicts.iter().filter(|v| v.bottleneck == b).count();
        reg.set(
            &format!("insight.verdict.{}", b.label().replace('-', "_")),
            Unit::Count,
            count as f64,
        );
    }
    let consistent = verdicts
        .iter()
        .filter(|v| v.bottleneck.consistent_with_regime(&v.evidence.regime))
        .count();
    reg.set("insight.regime_consistent", Unit::Count, consistent as f64);
    reg.set(
        "insight.drift.observations",
        Unit::Count,
        report.observations.len() as f64,
    );
    reg.set("insight.drift.band", Unit::Ratio, report.band);
    reg.set("insight.drift.mean_abs", Unit::Ratio, report.mean_abs_drift);
    reg.set("insight.drift.max_abs", Unit::Ratio, report.max_abs_drift);
    reg.set(
        "insight.drift.out_of_band",
        Unit::Count,
        report.out_of_band as f64,
    );
    reg.register_histogram("insight.round_latency_s", round_latency_histogram(events));
    reg.register_histogram("insight.plan_drift", report.histogram());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use mc_blas::{BlasHandle, GemmDesc, GemmOp};
    use mc_obs::Attributor;
    use mc_sim::{DeviceId, DeviceRegistry};
    use mc_trace::RingSink;

    fn traced_sweep(descs: &[GemmDesc]) -> (Vec<TraceEvent>, Vec<mc_obs::AttributionRecord>) {
        let sink = Arc::new(RingSink::new());
        let mut devices = DeviceRegistry::builtin();
        devices.set_trace_sink(sink.clone());
        let mut handle = BlasHandle::from_registry(&devices, DeviceId::Mi250xGcd);
        for desc in descs {
            handle.gemm_timed(desc).unwrap();
        }
        let events = sink.events();
        let records = Attributor::from_registry(&devices).attribute(&events);
        (events, records)
    }

    #[test]
    fn diagnoses_the_canonical_corpus_shapes() {
        let (events, records) = traced_sweep(&[
            GemmDesc::square(GemmOp::Sgemm, 4096),
            GemmDesc {
                k: 64,
                ..GemmDesc::square(GemmOp::Sgemm, 4096)
            },
        ]);
        let verdicts = diagnose(&events, &records);
        assert_eq!(verdicts.len(), 2);
        // Large square: compute-bound at a high achieved fraction.
        assert_eq!(verdicts[0].bottleneck, Bottleneck::ComputeBound);
        assert!(verdicts[0].evidence.achieved_fraction > 0.5);
        // Small-K: the engine exposes DRAM time the compute can't cover.
        assert_eq!(verdicts[1].bottleneck, Bottleneck::DramBound);
        assert!(verdicts[1].evidence.memory_stall_fraction > MEMORY_STALL_MIN);
        for v in &verdicts {
            assert!(v.bottleneck.consistent_with_regime(&v.evidence.regime));
            assert!(!v.explanation.is_empty());
            assert!(
                v.predicted_time_s.is_some(),
                "library launches carry predictions"
            );
            assert!(v.drift.unwrap().abs() < DEFAULT_DRIFT_BAND, "{:?}", v.drift);
        }
    }

    #[test]
    fn verdicts_serialize_and_round_trip() {
        let (events, records) = traced_sweep(&[GemmDesc::square(GemmOp::Sgemm, 1024)]);
        let verdicts = diagnose(&events, &records);
        let json = serde_json::to_string(&serde_json::to_value(&verdicts)).unwrap();
        let back: Vec<KernelVerdict> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, verdicts);
    }

    #[test]
    fn insight_metrics_cover_verdicts_drift_and_histograms() {
        let (events, records) = traced_sweep(&[
            GemmDesc::square(GemmOp::Sgemm, 1024),
            GemmDesc::square(GemmOp::Hhs, 2048),
        ]);
        let verdicts = diagnose(&events, &records);
        let report = drift_report(&events, DEFAULT_DRIFT_BAND);
        assert_eq!(report.observations.len(), 2);
        assert!(report.within_band(), "max {}", report.max_abs_drift);

        let mut reg = MetricsRegistry::new();
        register_insight_metrics(&verdicts, &report, &events, &mut reg);
        assert_eq!(reg.value("insight.kernels"), Some(2.0));
        assert_eq!(reg.value("insight.regime_consistent"), Some(2.0));
        assert_eq!(reg.value("insight.drift.out_of_band"), Some(0.0));
        let verdict_total: f64 = Bottleneck::ALL
            .iter()
            .map(|b| {
                reg.value(&format!("insight.verdict.{}", b.label().replace('-', "_")))
                    .unwrap()
            })
            .sum();
        assert_eq!(verdict_total, 2.0);
        assert!(reg.histogram("insight.round_latency_s").unwrap().count() > 0);
        assert_eq!(reg.histogram("insight.plan_drift").unwrap().count(), 2);
        // The whole summary renders as OpenMetrics text.
        let om = mc_trace::openmetrics(&reg);
        assert!(
            om.contains("# TYPE insight_plan_drift_ratio histogram"),
            "{om}"
        );
        assert!(
            om.contains("# TYPE insight_round_latency_s_seconds histogram"),
            "{om}"
        );
    }
}
