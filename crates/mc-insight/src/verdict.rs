//! Per-kernel bottleneck verdicts with machine-checkable evidence.
//!
//! [`diagnose`] joins the three observability planes the repo already
//! produces — kernel trace spans with their stall-share args
//! (`mc-sim`'s engine), dispatch-round and pipeline-busy spans, and the
//! per-kernel [`AttributionRecord`]s (`mc-obs`) — into one
//! [`KernelVerdict`] per attributed launch. Every verdict carries the
//! [`Evidence`] that produced it, so a reviewer (or the `insight` gate)
//! can re-derive the classification from the numbers instead of
//! trusting a label.
//!
//! The taxonomy follows the paper's performance discussion: a kernel is
//! **compute-bound** when it sits near its Eq. 2 ceiling with the
//! matrix/SIMD pipelines busy; **DRAM-bound** when exposed HBM time
//! dominates the wall clock (§VI's bandwidth discussion);
//! **occupancy-limited** when too few SIMD pairs have resident work to
//! hide latency (the <440-wavefront regime of Fig. 3);
//! **barrier-stall** when waitcnt/barrier/s_nop slots eat the issue
//! stream; and **epilogue-handoff** when the fixed cost of draining
//! accumulators to the VALUs for α/β scaling is a visible share of the
//! launch (the §VII small-N effect the planner scores via
//! [`mc_blas::handoff_penalty_s`]).

use mc_obs::AttributionRecord;
use mc_trace::{ArgValue, Category, SpanEvent, TraceEvent};
use serde::{DeError, Deserialize, Serialize, Value};

/// Minimum handoff-penalty share of wall time for an
/// **epilogue-handoff** verdict: below this the accumulator drain is
/// amortized into the makespan (paper Fig. 8 shows the crossover
/// between N = 16 and N = 32, where the penalty falls from ~7% of the
/// launch to well under 1%).
pub const HANDOFF_FRACTION_MIN: f64 = 0.05;

/// Minimum share of issue-stream cycles spent in waitcnt / barrier /
/// s_nop slots for a **barrier-stall** verdict.
pub const WAIT_STALL_MIN: f64 = 0.25;

/// Minimum exposed-DRAM share of wall time for a **DRAM-bound**
/// verdict: double-buffered kernels only expose the traffic their
/// compute cannot cover, so any sizable share means the memory system
/// is pacing the kernel.
pub const MEMORY_STALL_MIN: f64 = 0.15;

/// Pair-utilization floor under which a kernel is **occupancy-limited**:
/// fewer than half the die's SIMD pairs had resident work, so latency
/// cannot be hidden regardless of per-pair efficiency.
pub const PAIR_UTILIZATION_MIN: f64 = 0.5;

/// The bottleneck taxonomy (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bottleneck {
    /// Near the Eq. 2 ceiling; the arithmetic pipelines pace the kernel.
    ComputeBound,
    /// Exposed HBM traffic paces the kernel.
    DramBound,
    /// Too few resident wavefronts to hide latency.
    OccupancyLimited,
    /// Synchronization slots dominate the issue stream.
    BarrierStall,
    /// The accumulator-drain epilogue is a visible share of the launch.
    EpilogueHandoff,
}

impl Bottleneck {
    /// Every verdict, in taxonomy order.
    pub const ALL: [Bottleneck; 5] = [
        Bottleneck::ComputeBound,
        Bottleneck::DramBound,
        Bottleneck::OccupancyLimited,
        Bottleneck::BarrierStall,
        Bottleneck::EpilogueHandoff,
    ];

    /// The stable kebab-case label used in envelopes and metrics names.
    pub fn label(&self) -> &'static str {
        match self {
            Bottleneck::ComputeBound => "compute-bound",
            Bottleneck::DramBound => "dram-bound",
            Bottleneck::OccupancyLimited => "occupancy-limited",
            Bottleneck::BarrierStall => "barrier-stall",
            Bottleneck::EpilogueHandoff => "epilogue-handoff",
        }
    }

    /// Parses a label produced by [`Bottleneck::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        Bottleneck::ALL.into_iter().find(|b| b.label() == label)
    }

    /// Whether this verdict is consistent with a roofline regime
    /// (`"compute-bound"` / `"memory-bound"` from the attribution
    /// ledger). Compute- and DRAM-bound verdicts must agree with the
    /// roofline placement; the three stall verdicts are latency
    /// explanations orthogonal to it.
    pub fn consistent_with_regime(&self, regime: &str) -> bool {
        match self {
            Bottleneck::ComputeBound => regime == "compute-bound",
            Bottleneck::DramBound => regime == "memory-bound",
            _ => true,
        }
    }
}

impl Serialize for Bottleneck {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl Deserialize for Bottleneck {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => {
                Bottleneck::from_label(s).ok_or_else(|| DeError::custom("unknown bottleneck label"))
            }
            _ => Err(DeError::expected("string", "bottleneck label")),
        }
    }
}

/// The measurements a verdict is derived from — every threshold in
/// [`classify`] reads exactly one of these fields, so the verdict is
/// re-derivable from its own evidence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Evidence {
    /// Achieved fraction of the Eq. 2 peak (attribution ledger).
    pub achieved_fraction: f64,
    /// Fraction of dispatch rounds bounded by an arithmetic pipeline
    /// (engine span arg).
    pub compute_bound_fraction: f64,
    /// Exposed-DRAM share of wall time (engine span arg).
    pub memory_stall_fraction: f64,
    /// Waitcnt/barrier/s_nop share of the issue stream (engine span
    /// arg).
    pub wait_stall_fraction: f64,
    /// HBM transfer-window share of the wall clock (`dram_time_s`
    /// against the span duration; exceeds `memory_stall_fraction`
    /// whenever double buffering hides traffic under compute).
    pub hbm_utilization: f64,
    /// Matrix-pipe busy share of the compute window (pipeline spans).
    pub matrix_busy_fraction: f64,
    /// SIMD issue-port busy share of the compute window.
    pub simd_busy_fraction: f64,
    /// Duration-weighted mean fraction of SIMD pairs with resident work
    /// (round spans).
    pub pair_utilization: f64,
    /// Resident matrix-unit occupancy (waves) from the engine span.
    pub occupancy_waves: f64,
    /// The limiting pipeline of the longest dispatch round
    /// (`RoundBound` debug form, `"-"` when no rounds were traced).
    pub dominant_round_bound: String,
    /// Handoff-penalty share of wall time (plan span; 0 when the launch
    /// had no library plan span or no penalty).
    pub handoff_fraction: f64,
    /// Roofline regime from the attribution ledger.
    pub regime: String,
    /// Arithmetic intensity in FLOP per DRAM byte.
    pub intensity_flop_per_byte: f64,
}

/// One kernel launch, diagnosed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelVerdict {
    /// Kernel name from the trace span.
    pub kernel: String,
    /// Package-spec name the kernel ran on.
    pub spec: String,
    /// Die index within the package.
    pub die: u32,
    /// Launch start on the trace timeline, in microseconds.
    pub t0_us: f64,
    /// Wall time of the launch in seconds.
    pub wall_time_s: f64,
    /// The verdict.
    pub bottleneck: Bottleneck,
    /// The measurements behind it.
    pub evidence: Evidence,
    /// Eq. 2 analytic prediction from the enclosing plan span, when the
    /// launch went through the library planner.
    pub predicted_time_s: Option<f64>,
    /// Relative model drift, `predicted / engine-comparable − 1`, when
    /// a prediction exists (see [`crate::drift`]).
    pub drift: Option<f64>,
    /// Human-readable one-line justification.
    pub explanation: String,
}

fn arg_f64(span: &SpanEvent, name: &str) -> Option<f64> {
    span.args.iter().find_map(|(k, v)| match v {
        ArgValue::F64(x) if k == name => Some(*x),
        ArgValue::U64(u) if k == name => Some(*u as f64),
        _ => None,
    })
}

fn arg_str<'a>(span: &'a SpanEvent, name: &str) -> Option<&'a str> {
    span.args.iter().find_map(|(k, v)| match v {
        ArgValue::Str(s) if k == name => Some(s.as_str()),
        _ => None,
    })
}

/// Classifies one evidence bundle (see module docs for the taxonomy and
/// the `*_MIN` thresholds). The rules run in severity order — a visible
/// handoff or synchronization stall explains a slow kernel better than
/// its roofline placement does — and the final fallback defers to the
/// roofline regime, so every kernel receives exactly one verdict and
/// compute/DRAM verdicts are roofline-consistent by construction.
pub fn classify(e: &Evidence) -> Bottleneck {
    if e.handoff_fraction >= HANDOFF_FRACTION_MIN {
        Bottleneck::EpilogueHandoff
    } else if e.wait_stall_fraction >= WAIT_STALL_MIN {
        Bottleneck::BarrierStall
    } else if e.memory_stall_fraction >= MEMORY_STALL_MIN {
        Bottleneck::DramBound
    } else if e.pair_utilization < PAIR_UTILIZATION_MIN
        || e.dominant_round_bound == "DependentChain"
    {
        Bottleneck::OccupancyLimited
    } else if e.regime == "memory-bound" {
        Bottleneck::DramBound
    } else {
        Bottleneck::ComputeBound
    }
}

/// Renders the one-line justification for a classified evidence bundle.
pub fn explain(bottleneck: Bottleneck, e: &Evidence) -> String {
    match bottleneck {
        Bottleneck::ComputeBound => format!(
            "compute-bound: {:.0}% of the Eq. 2 peak, matrix pipe busy {:.0}% of the compute window",
            e.achieved_fraction * 100.0,
            e.matrix_busy_fraction * 100.0
        ),
        Bottleneck::DramBound => format!(
            "DRAM-bound: exposed HBM time is {:.0}% of wall at {:.1} FLOP/B intensity",
            e.memory_stall_fraction * 100.0,
            e.intensity_flop_per_byte
        ),
        Bottleneck::OccupancyLimited => format!(
            "occupancy-limited: {:.0}% of SIMD pairs occupied, dominant round bound {}",
            e.pair_utilization * 100.0,
            e.dominant_round_bound
        ),
        Bottleneck::BarrierStall => format!(
            "barrier-stall: {:.0}% of issue slots spent on waitcnt/barrier/s_nop",
            e.wait_stall_fraction * 100.0
        ),
        Bottleneck::EpilogueHandoff => format!(
            "epilogue-handoff: accumulator drain costs {:.1}% of the launch",
            e.handoff_fraction * 100.0
        ),
    }
}

/// Joins kernel spans, round/pipeline spans, plan spans, and the
/// attribution ledger into one verdict per attributed launch, in ledger
/// order. Records whose kernel span cannot be found (pruned trace) are
/// diagnosed from the ledger plane alone.
pub fn diagnose(events: &[TraceEvent], records: &[AttributionRecord]) -> Vec<KernelVerdict> {
    let spans: Vec<&SpanEvent> = events.iter().filter_map(|e| e.as_span()).collect();
    records.iter().map(|r| diagnose_one(&spans, r)).collect()
}

fn diagnose_one(spans: &[&SpanEvent], r: &AttributionRecord) -> KernelVerdict {
    let kernel_span = spans.iter().find(|s| {
        s.category == Category::Kernel
            && s.device == r.die
            && s.name == r.kernel
            && (s.t0_us - r.t0_us).abs() < 1e-6
    });

    let mut evidence = Evidence {
        achieved_fraction: r.achieved_fraction,
        compute_bound_fraction: 0.0,
        memory_stall_fraction: 0.0,
        wait_stall_fraction: 0.0,
        hbm_utilization: 0.0,
        matrix_busy_fraction: 0.0,
        simd_busy_fraction: 0.0,
        pair_utilization: 1.0,
        occupancy_waves: 0.0,
        dominant_round_bound: "-".to_string(),
        handoff_fraction: 0.0,
        regime: r.regime.clone(),
        intensity_flop_per_byte: r.intensity_flop_per_byte,
    };
    let mut predicted_time_s = None;
    let mut drift = None;

    if let Some(k) = kernel_span {
        let wall_s = k.dur_us / 1e6;
        evidence.compute_bound_fraction = arg_f64(k, "compute_bound_fraction").unwrap_or(0.0);
        evidence.memory_stall_fraction = arg_f64(k, "memory_stall_fraction").unwrap_or(0.0);
        evidence.wait_stall_fraction = arg_f64(k, "wait_stall_fraction").unwrap_or(0.0);
        evidence.occupancy_waves = arg_f64(k, "matrix_occupancy").unwrap_or(0.0);
        if wall_s > 0.0 {
            let dram_s = arg_f64(k, "dram_time_s").unwrap_or(0.0);
            evidence.hbm_utilization = (dram_s / wall_s).clamp(0.0, 1.0);
        }

        // Dispatch rounds and pipeline busy windows inside the kernel's
        // wall window on the same device.
        let eps = 1e-6;
        let within = |s: &SpanEvent| {
            s.device == k.device && s.t0_us >= k.t0_us - eps && s.end_us() <= k.end_us() + eps
        };
        let rounds: Vec<&&SpanEvent> = spans
            .iter()
            .filter(|s| s.category == Category::Round && within(s))
            .collect();
        let round_total_us: f64 = rounds.iter().map(|s| s.dur_us).sum();
        if round_total_us > 0.0 {
            evidence.pair_utilization = rounds
                .iter()
                .map(|s| arg_f64(s, "pair_utilization").unwrap_or(0.0) * s.dur_us)
                .sum::<f64>()
                / round_total_us;
            if let Some(longest) = rounds.iter().max_by(|a, b| a.dur_us.total_cmp(&b.dur_us)) {
                evidence.dominant_round_bound =
                    arg_str(longest, "bound").unwrap_or("-").to_string();
            }
            let busy_share = |name: &str| {
                spans
                    .iter()
                    .filter(|s| s.category == Category::Pipeline && s.name == name && within(s))
                    .map(|s| s.dur_us)
                    .sum::<f64>()
                    / round_total_us
            };
            evidence.matrix_busy_fraction = busy_share("matrix busy").min(1.0);
            evidence.simd_busy_fraction = busy_share("simd issue busy").min(1.0);
        }

        // The library plan span covering the same wall window carries
        // the Eq. 2 prediction and the handoff penalty.
        if let Some(plan) = spans.iter().find(|s| {
            s.category == Category::Plan
                && s.device == k.device
                && (s.t0_us - k.t0_us).abs() < 1e-3
                && (s.dur_us - k.dur_us).abs() < 1e-3
        }) {
            let handoff_s = arg_f64(plan, "handoff_penalty_s").unwrap_or(0.0);
            if wall_s > 0.0 {
                evidence.handoff_fraction = (handoff_s / wall_s).clamp(0.0, 1.0);
            }
            if let Some(predicted) = arg_f64(plan, "predicted_time_s") {
                predicted_time_s = Some(predicted);
                let comparable = wall_s + handoff_s;
                if comparable > 0.0 {
                    drift = Some(predicted / comparable - 1.0);
                }
            }
        }
    }

    let bottleneck = classify(&evidence);
    let explanation = explain(bottleneck, &evidence);
    KernelVerdict {
        kernel: r.kernel.clone(),
        spec: r.spec.clone(),
        die: r.die,
        t0_us: r.t0_us,
        wall_time_s: r.wall_time_s,
        bottleneck,
        evidence,
        predicted_time_s,
        drift,
        explanation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evidence() -> Evidence {
        Evidence {
            achieved_fraction: 0.9,
            compute_bound_fraction: 1.0,
            memory_stall_fraction: 0.0,
            wait_stall_fraction: 0.05,
            hbm_utilization: 0.3,
            matrix_busy_fraction: 0.95,
            simd_busy_fraction: 0.2,
            pair_utilization: 1.0,
            occupancy_waves: 440.0,
            dominant_round_bound: "MatrixCore".to_string(),
            handoff_fraction: 0.0,
            regime: "compute-bound".to_string(),
            intensity_flop_per_byte: 500.0,
        }
    }

    #[test]
    fn taxonomy_rules_fire_in_severity_order() {
        let base = evidence();
        assert_eq!(classify(&base), Bottleneck::ComputeBound);

        let mut e = base.clone();
        e.memory_stall_fraction = 0.4;
        e.regime = "memory-bound".to_string();
        assert_eq!(classify(&e), Bottleneck::DramBound);

        e.wait_stall_fraction = 0.5;
        assert_eq!(classify(&e), Bottleneck::BarrierStall);

        e.handoff_fraction = 0.1;
        assert_eq!(classify(&e), Bottleneck::EpilogueHandoff);

        let mut e = base.clone();
        e.pair_utilization = 0.2;
        assert_eq!(classify(&e), Bottleneck::OccupancyLimited);

        let mut e = base.clone();
        e.dominant_round_bound = "DependentChain".to_string();
        assert_eq!(classify(&e), Bottleneck::OccupancyLimited);

        // The fallback defers to the roofline regime.
        let mut e = base;
        e.regime = "memory-bound".to_string();
        assert_eq!(classify(&e), Bottleneck::DramBound);
    }

    #[test]
    fn verdict_labels_round_trip_and_check_regime_consistency() {
        for b in Bottleneck::ALL {
            assert_eq!(Bottleneck::from_label(b.label()), Some(b));
        }
        assert!(Bottleneck::from_label("launch-bound").is_none());
        assert!(Bottleneck::ComputeBound.consistent_with_regime("compute-bound"));
        assert!(!Bottleneck::ComputeBound.consistent_with_regime("memory-bound"));
        assert!(Bottleneck::DramBound.consistent_with_regime("memory-bound"));
        assert!(!Bottleneck::DramBound.consistent_with_regime("compute-bound"));
        assert!(Bottleneck::BarrierStall.consistent_with_regime("compute-bound"));
        assert!(Bottleneck::OccupancyLimited.consistent_with_regime("memory-bound"));
    }

    #[test]
    fn explanations_cite_the_deciding_evidence() {
        let e = evidence();
        assert!(explain(Bottleneck::ComputeBound, &e).contains("90% of the Eq. 2 peak"));
        assert!(explain(Bottleneck::OccupancyLimited, &e).contains("MatrixCore"));
        let mut stalled = e;
        stalled.wait_stall_fraction = 0.42;
        assert!(explain(Bottleneck::BarrierStall, &stalled).contains("42%"));
    }

    #[test]
    fn bottleneck_serializes_as_its_label() {
        let v = serde_json::to_value(&Bottleneck::EpilogueHandoff);
        assert_eq!(v, Value::Str("epilogue-handoff".to_string()));
        let back: Bottleneck = serde_json::from_value(v).unwrap();
        assert_eq!(back, Bottleneck::EpilogueHandoff);
        assert!(serde_json::from_value::<Bottleneck>(Value::Str("nope".into())).is_err());
    }
}
