//! The model-drift detector: Eq. 2 predictions vs engine measurements.
//!
//! Every library launch records its analytic prediction next to its
//! measured wall time on the plan span ([`mc_blas::BlasHandle`]), and
//! every plan search persists both tiers' scores per finalist
//! ([`mc_blas::FinalistScore`]) and per winner
//! ([`mc_blas::PlanDbEntry`]). This module turns those pairs into:
//!
//! * [`DriftObservation`]s — one relative error per launch, comparing
//!   the prediction against the engine-comparable measurement (wall
//!   time plus the handoff penalty the engine's slot model does not
//!   see);
//! * a [`DriftReport`] bounding the distribution against a calibrated
//!   band (the `insight` gate fails when any launch drifts outside it);
//! * [`InversionRecord`]s — finalist pairs the analytic model *ranked
//!   wrongly* relative to the engine, i.e. the mistakes the autotuner
//!   would have shipped without its dry-run tier.

use mc_blas::{FinalistScore, SearchOutcome};
use mc_trace::{ArgValue, Category, Histogram, SpanEvent, TraceEvent};
use serde::{Deserialize, Serialize};

/// The calibrated drift band: every Fig. 6/7 corpus launch on every
/// built-in device keeps `|predicted / measured − 1|` within this bound
/// (the observed worst case is ≈0.29, on mid-size shapes where the
/// Eq. 2 ramp model runs optimistic against the engine's matrix-slot
/// rounds; the band leaves headroom without masking a real model
/// regression, which typically lands well past 2×).
pub const DEFAULT_DRIFT_BAND: f64 = 0.40;

/// One launch's prediction-vs-measurement pair, read from a plan span.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftObservation {
    /// Plan span name (`plan <kernel>`).
    pub plan: String,
    /// Die the launch ran on.
    pub device: u32,
    /// Routine (`op` span arg, e.g. `"sgemm"`).
    pub op: String,
    /// Problem rows.
    pub m: u64,
    /// Problem columns.
    pub n: u64,
    /// Problem inner dimension.
    pub k: u64,
    /// Eq. 2 analytic prediction, in seconds.
    pub predicted_time_s: f64,
    /// Measured wall time of the launch, in seconds.
    pub measured_time_s: f64,
    /// Handoff penalty the analytic model adds but the engine does not
    /// see, in seconds.
    pub handoff_penalty_s: f64,
    /// Relative drift: `predicted / (measured + handoff) − 1`.
    /// Positive means the analytic model was pessimistic.
    pub drift: f64,
}

fn arg_f64(span: &SpanEvent, name: &str) -> Option<f64> {
    span.args.iter().find_map(|(key, value)| match value {
        ArgValue::F64(x) if key == name => Some(*x),
        ArgValue::U64(u) if key == name => Some(*u as f64),
        _ => None,
    })
}

fn arg_u64(span: &SpanEvent, name: &str) -> u64 {
    span.args
        .iter()
        .find_map(|(key, value)| match value {
            ArgValue::U64(u) if key == name => Some(*u),
            _ => None,
        })
        .unwrap_or(0)
}

fn arg_str(span: &SpanEvent, name: &str) -> String {
    span.args
        .iter()
        .find_map(|(key, value)| match value {
            ArgValue::Str(s) if key == name => Some(s.clone()),
            _ => None,
        })
        .unwrap_or_default()
}

/// Extracts one [`DriftObservation`] per plan span carrying a
/// prediction, in event order. Spans without `predicted_time_s` (traces
/// from older builds) are skipped.
pub fn plan_drift(events: &[TraceEvent]) -> Vec<DriftObservation> {
    events
        .iter()
        .filter_map(|e| e.as_span())
        .filter(|s| s.category == Category::Plan)
        .filter_map(|span| {
            let predicted = arg_f64(span, "predicted_time_s")?;
            let measured = arg_f64(span, "measured_time_s").unwrap_or(span.dur_us / 1e6);
            let handoff = arg_f64(span, "handoff_penalty_s").unwrap_or(0.0);
            let comparable = measured + handoff;
            if comparable <= 0.0 {
                return None;
            }
            Some(DriftObservation {
                plan: span.name.clone(),
                device: span.device,
                op: arg_str(span, "op"),
                m: arg_u64(span, "m"),
                n: arg_u64(span, "n"),
                k: arg_u64(span, "k"),
                predicted_time_s: predicted,
                measured_time_s: measured,
                handoff_penalty_s: handoff,
                drift: predicted / comparable - 1.0,
            })
        })
        .collect()
}

/// A drift distribution bounded against a band.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// The band `|drift|` must stay within.
    pub band: f64,
    /// Every observation, in event order.
    pub observations: Vec<DriftObservation>,
    /// Mean of `|drift|` (0 for an empty report).
    pub mean_abs_drift: f64,
    /// Worst `|drift|` (0 for an empty report).
    pub max_abs_drift: f64,
    /// Observations with `|drift|` outside the band.
    pub out_of_band: usize,
}

impl DriftReport {
    /// Summarizes observations against a band.
    pub fn new(observations: Vec<DriftObservation>, band: f64) -> Self {
        let n = observations.len();
        let mean_abs_drift = if n > 0 {
            observations.iter().map(|o| o.drift.abs()).sum::<f64>() / n as f64
        } else {
            0.0
        };
        let max_abs_drift = observations
            .iter()
            .map(|o| o.drift.abs())
            .fold(0.0_f64, f64::max);
        let out_of_band = observations.iter().filter(|o| o.drift.abs() > band).count();
        DriftReport {
            band,
            observations,
            mean_abs_drift,
            max_abs_drift,
            out_of_band,
        }
    }

    /// Whether every observation sits inside the band.
    pub fn within_band(&self) -> bool {
        self.out_of_band == 0
    }

    /// The `|drift|` distribution as a log-bucketed histogram
    /// ([`Histogram::relative_error`] shape), ready for OpenMetrics
    /// exposition.
    pub fn histogram(&self) -> Histogram {
        let mut h = Histogram::relative_error();
        for o in &self.observations {
            h.record(o.drift.abs());
        }
        h
    }
}

/// Builds a [`DriftReport`] over every plan span in a trace.
pub fn drift_report(events: &[TraceEvent], band: f64) -> DriftReport {
    DriftReport::new(plan_drift(events), band)
}

/// One ranking mistake the analytic model would have made: a finalist
/// pair where the model's ordering contradicts the engine's.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InversionRecord {
    /// Device the search ran against.
    pub device: String,
    /// Routine searched.
    pub op: String,
    /// Problem size (square corpus shapes; `n` of the descriptor).
    pub n: u64,
    /// The finalist the analytic model preferred.
    pub preferred_by_model: String,
    /// The finalist the engine preferred.
    pub preferred_by_engine: String,
    /// Relative analytic gap between the pair (slower/faster − 1).
    pub analytic_gap: f64,
    /// Relative engine gap between the pair.
    pub engine_gap: f64,
}

fn relative_gap(a: f64, b: f64) -> f64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if lo > 0.0 {
        hi / lo - 1.0
    } else {
        0.0
    }
}

/// Labels every ranking inversion in a search outcome (see
/// [`SearchOutcome::ranking_inversions`]).
pub fn inversions_from_outcome(
    device: &str,
    op: &str,
    n: u64,
    outcome: &SearchOutcome,
) -> Vec<InversionRecord> {
    outcome
        .ranking_inversions()
        .into_iter()
        .map(|(i, j)| {
            let (a, b): (&FinalistScore, &FinalistScore) =
                (&outcome.finalists[i], &outcome.finalists[j]);
            let (by_model, by_engine) = if a.analytic_time_s < b.analytic_time_s {
                (&a.label, &b.label)
            } else {
                (&b.label, &a.label)
            };
            InversionRecord {
                device: device.to_string(),
                op: op.to_string(),
                n,
                preferred_by_model: by_model.clone(),
                preferred_by_engine: by_engine.clone(),
                analytic_gap: relative_gap(a.analytic_time_s, b.analytic_time_s),
                engine_gap: relative_gap(a.engine_time_s, b.engine_time_s),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_trace::{SpanEvent, Track};

    fn plan_span(predicted: f64, measured: f64, handoff: f64) -> TraceEvent {
        TraceEvent::Span(SpanEvent {
            name: "plan k".to_string(),
            category: Category::Plan,
            device: 0,
            track: Track::Plan,
            t0_us: 0.0,
            dur_us: measured * 1e6,
            args: vec![
                ("op".to_string(), ArgValue::Str("sgemm".to_string())),
                ("m".to_string(), ArgValue::U64(64)),
                ("n".to_string(), ArgValue::U64(64)),
                ("k".to_string(), ArgValue::U64(64)),
                ("predicted_time_s".to_string(), ArgValue::F64(predicted)),
                ("measured_time_s".to_string(), ArgValue::F64(measured)),
                ("handoff_penalty_s".to_string(), ArgValue::F64(handoff)),
            ],
        })
    }

    #[test]
    fn drift_compares_against_the_engine_comparable_time() {
        let events = vec![plan_span(1.2e-3, 1.0e-3, 0.2e-3)];
        let obs = plan_drift(&events);
        assert_eq!(obs.len(), 1);
        // predicted 1.2ms vs measured+handoff 1.2ms: zero drift.
        assert!(obs[0].drift.abs() < 1e-12, "{}", obs[0].drift);
        assert_eq!(obs[0].op, "sgemm");
        assert_eq!((obs[0].m, obs[0].n, obs[0].k), (64, 64, 64));
    }

    #[test]
    fn report_bounds_the_distribution() {
        let events = vec![
            plan_span(1.1e-3, 1.0e-3, 0.0), // +10%
            plan_span(0.5e-3, 1.0e-3, 0.0), // −50%
        ];
        let report = drift_report(&events, 0.2);
        assert_eq!(report.observations.len(), 2);
        assert!((report.max_abs_drift - 0.5).abs() < 1e-12);
        assert!((report.mean_abs_drift - 0.3).abs() < 1e-12);
        assert_eq!(report.out_of_band, 1);
        assert!(!report.within_band());
        assert!(drift_report(&events, 0.6).within_band());

        let h = report.histogram();
        assert_eq!(h.count(), 2);

        // Spans without predictions are skipped, not zero-drift.
        assert!(drift_report(&[], 0.1).within_band());
    }

    #[test]
    fn inversions_name_both_sides_of_the_disagreement() {
        use mc_blas::{GemmDesc, GemmOp};
        let die = mc_isa::specs::mi250x().die;
        let plan = mc_blas::plan_gemm(&die, &GemmDesc::square(GemmOp::Sgemm, 64)).unwrap();
        let mk = |label: &str, analytic: f64, engine: f64| FinalistScore {
            label: label.to_string(),
            analytic_time_s: analytic,
            engine_time_s: engine,
            is_static: false,
        };
        let outcome = SearchOutcome {
            plan,
            searched_time_s: 1.0,
            analytic_time_s: 1.0,
            static_time_s: 1.0,
            finalists: vec![mk("a", 1.0, 2.0), mk("b", 2.0, 1.0)],
            enumerated: 2,
            lint_rejected: 0,
            flow_rejected: 0,
        };
        let inv = inversions_from_outcome("gcd0", "sgemm", 64, &outcome);
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].preferred_by_model, "a");
        assert_eq!(inv[0].preferred_by_engine, "b");
        assert!((inv[0].analytic_gap - 1.0).abs() < 1e-12);
        assert!((inv[0].engine_gap - 1.0).abs() < 1e-12);
        let json = serde_json::to_string(&serde_json::to_value(&inv[0])).unwrap();
        let round_trip: InversionRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(round_trip, inv[0]);
    }
}
