//! Host-plane bottleneck verdicts over `mc-hostprof` attribution.
//!
//! The GPU-plane taxonomy ([`crate::verdict`]) explains a simulated
//! launch; this module explains the *host* GEMM plane — the CPU tier
//! ladder whose phase decomposition `mc-hostprof` extracts from a
//! profiling session. One [`HostVerdict`] per
//! [`HostAttributionRecord`], with the thresholds documented as
//! constants so the `hostprof` gate (and a reviewer) can re-derive
//! every classification from the record it came with.
//!
//! The taxonomy mirrors the paper's host-side observations: packing
//! cost dominates small packed problems (§VII's small-N discussion —
//! **pack-bound**), low arithmetic intensity leaves the cache hierarchy
//! pacing the sweep (**memory-bandwidth-bound**), problems under the
//! crossover edge are all call overhead (**dispatch-overhead**), and a
//! rayon pool whose workers sit idle inside fan-out windows wastes the
//! cores the crossover model assumed (**parallel-imbalance**).

use mc_hostprof::HostAttributionRecord;
use serde::{DeError, Deserialize, Serialize, Value};

/// Parallel-efficiency floor for a **parallel-imbalance** verdict: at
/// or below it, workers sat idle for ≥ 20% of the pool's capacity
/// inside fan-out windows (busy-time / (threads × fan-out span)), so
/// adding cores is repaying less than the crossover model assumed.
pub const HOST_EFFICIENCY_MIN: f64 = 0.8;

/// Packing share of packed-tier work (`pack / (pack + microkernel)`)
/// above which a region is **pack-bound**: more than a third of the
/// worked seconds went into panel layout rather than FMAs, the regime
/// where the packing-buffer pool and smaller `KC` pay off.
pub const HOST_PACK_RATIO_MAX: f64 = 0.35;

/// Arithmetic-intensity floor, in FLOPs per *matrix element* touched
/// (`2mnk / (mk + kn + 2mn)`), below which a packed region is
/// **memory-bandwidth-bound**: a square problem crosses it near
/// N = 48, where the B panel stops fitting in L1 but the microkernel
/// still re-streams operands faster than it computes on them. Element
/// (not byte) units keep the threshold dtype-independent — the record
/// does not carry the element width.
pub const HOST_INTENSITY_MIN_FLOP_PER_ELEM: f64 = 24.0;

/// The host-plane bottleneck taxonomy (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HostBottleneck {
    /// Workers idle ≥ 20% of the fan-out windows' pooled capacity.
    ParallelImbalance,
    /// Panel packing dominates the packed-tier work.
    PackBound,
    /// Too little arithmetic per element touched; operand streaming
    /// paces the sweep.
    MemoryBandwidthBound,
    /// Routed to the naive loop below the crossover edge — the call is
    /// fixed dispatch/loop overhead, not a tuned kernel.
    DispatchOverhead,
    /// The microkernel FMA sweep paces the region.
    ComputeBound,
}

impl HostBottleneck {
    /// Every verdict, in classification-precedence order.
    pub const ALL: [HostBottleneck; 5] = [
        HostBottleneck::ParallelImbalance,
        HostBottleneck::PackBound,
        HostBottleneck::MemoryBandwidthBound,
        HostBottleneck::DispatchOverhead,
        HostBottleneck::ComputeBound,
    ];

    /// The stable kebab-case label used in envelopes and metric names.
    pub fn label(&self) -> &'static str {
        match self {
            HostBottleneck::ParallelImbalance => "parallel-imbalance",
            HostBottleneck::PackBound => "pack-bound",
            HostBottleneck::MemoryBandwidthBound => "memory-bandwidth-bound",
            HostBottleneck::DispatchOverhead => "dispatch-overhead",
            HostBottleneck::ComputeBound => "compute-bound",
        }
    }

    /// Parses a label produced by [`HostBottleneck::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        HostBottleneck::ALL.into_iter().find(|b| b.label() == label)
    }
}

impl Serialize for HostBottleneck {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl Deserialize for HostBottleneck {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => HostBottleneck::from_label(s)
                .ok_or_else(|| DeError::custom("unknown host bottleneck label")),
            _ => Err(DeError::expected("string", "host bottleneck label")),
        }
    }
}

/// One host GEMM region, diagnosed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostVerdict {
    /// Region id from the attribution record.
    pub region: u32,
    /// Routed backend (`naive`, `blocked`, `simd`).
    pub backend: String,
    /// The verdict.
    pub bottleneck: HostBottleneck,
    /// Arithmetic intensity in FLOPs per element touched (the
    /// [`HOST_INTENSITY_MIN_FLOP_PER_ELEM`] input).
    pub intensity_flop_per_elem: f64,
    /// Human-readable one-line justification.
    pub explanation: String,
}

/// FLOPs per matrix element touched: `2mnk / (mk + kn + 2mn)` (A and B
/// read once, C read and D written).
pub fn host_intensity(r: &HostAttributionRecord) -> f64 {
    let (m, n, k) = (r.m as f64, r.n as f64, r.k as f64);
    let elems = m * k + k * n + 2.0 * m * n;
    if elems > 0.0 {
        2.0 * m * n * k / elems
    } else {
        0.0
    }
}

/// Classifies one attribution record (thresholds above, precedence =
/// [`HostBottleneck::ALL`] order). Imbalance is checked first — an
/// idle pool invalidates the other figures' denominators — then the
/// two work-composition verdicts, then the routing fallbacks.
pub fn classify_host(r: &HostAttributionRecord) -> HostBottleneck {
    let intensity = host_intensity(r);
    if r.threads > 1 && r.fanout_s > 0.0 && r.parallel_efficiency < HOST_EFFICIENCY_MIN {
        HostBottleneck::ParallelImbalance
    } else if r.backend != "naive" && r.pack_ratio > HOST_PACK_RATIO_MAX {
        HostBottleneck::PackBound
    } else if r.backend != "naive" && intensity < HOST_INTENSITY_MIN_FLOP_PER_ELEM {
        HostBottleneck::MemoryBandwidthBound
    } else if r.backend == "naive" {
        HostBottleneck::DispatchOverhead
    } else {
        HostBottleneck::ComputeBound
    }
}

/// Renders the one-line justification for a classified record.
pub fn explain_host(bottleneck: HostBottleneck, r: &HostAttributionRecord) -> String {
    match bottleneck {
        HostBottleneck::ParallelImbalance => format!(
            "parallel-imbalance: workers busy {:.0}% of a {}-thread pool's fan-out capacity",
            r.parallel_efficiency * 100.0,
            r.threads
        ),
        HostBottleneck::PackBound => format!(
            "pack-bound: {:.0}% of packed-tier work is panel packing",
            r.pack_ratio * 100.0
        ),
        HostBottleneck::MemoryBandwidthBound => format!(
            "memory-bandwidth-bound: {:.1} FLOP per element touched at {:.1} GFLOP/s",
            host_intensity(r),
            r.gflops
        ),
        HostBottleneck::DispatchOverhead => format!(
            "dispatch-overhead: ∛(mnk) = {:.0} ≤ crossover {} routed to the naive loop",
            r.geomean_n, r.crossover_n
        ),
        HostBottleneck::ComputeBound => format!(
            "compute-bound: microkernel holds {:.0}% of packed-tier work at {:.1} GFLOP/s",
            (1.0 - r.pack_ratio) * 100.0,
            r.gflops
        ),
    }
}

/// Diagnoses a whole ledger, in ledger order.
pub fn diagnose_host(records: &[HostAttributionRecord]) -> Vec<HostVerdict> {
    records
        .iter()
        .map(|r| {
            let bottleneck = classify_host(r);
            HostVerdict {
                region: r.region,
                backend: r.backend.clone(),
                bottleneck,
                intensity_flop_per_elem: host_intensity(r),
                explanation: explain_host(bottleneck, r),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_hostprof::HOSTPROF_SCHEMA_VERSION;

    fn record(backend: &str, n: u64, threads: u64) -> HostAttributionRecord {
        HostAttributionRecord {
            schema_version: HOSTPROF_SCHEMA_VERSION,
            region: 1,
            backend: backend.to_owned(),
            m: n,
            n,
            k: n,
            threads,
            workers: threads,
            wall_s: 0.01,
            crossover_n: 40,
            geomean_n: n as f64,
            simd: true,
            pack_a_s: 0.001,
            pack_b_s: 0.001,
            microkernel_s: 0.007,
            epilogue_s: 0.0005,
            fanout_s: 0.009,
            compute_s: 0.0,
            caller_s: 0.0095,
            worker_busy_s: 0.008 * threads as f64,
            gflops: 10.0,
            pack_ratio: 0.002 / 0.009,
            parallel_efficiency: 0.89,
            reconcile_rel_err: 0.05,
            pool_hits: 4,
            pool_misses: 1,
            pool_recycled: 5,
            pool_discarded: 0,
            pool_allocated_bytes: 4096,
        }
    }

    #[test]
    fn labels_round_trip() {
        for b in HostBottleneck::ALL {
            assert_eq!(HostBottleneck::from_label(b.label()), Some(b));
        }
        assert_eq!(HostBottleneck::from_label("nope"), None);
    }

    #[test]
    fn big_balanced_packed_region_is_compute_bound() {
        let r = record("simd", 1024, 4);
        assert_eq!(classify_host(&r), HostBottleneck::ComputeBound);
    }

    #[test]
    fn idle_pool_trumps_everything() {
        let mut r = record("simd", 1024, 8);
        r.parallel_efficiency = 0.5;
        assert_eq!(classify_host(&r), HostBottleneck::ParallelImbalance);
        // …but a single-thread pool cannot be imbalanced.
        r.threads = 1;
        assert_eq!(classify_host(&r), HostBottleneck::ComputeBound);
    }

    #[test]
    fn packing_heavy_region_is_pack_bound() {
        let mut r = record("blocked", 256, 1);
        r.pack_ratio = 0.45;
        assert_eq!(classify_host(&r), HostBottleneck::PackBound);
    }

    #[test]
    fn small_packed_region_is_memory_bandwidth_bound() {
        // N = 40 ⇒ 2n³/4n² = 20 FLOP/element < 24.
        let r = record("simd", 40, 1);
        assert!(host_intensity(&r) < HOST_INTENSITY_MIN_FLOP_PER_ELEM);
        assert_eq!(classify_host(&r), HostBottleneck::MemoryBandwidthBound);
    }

    #[test]
    fn naive_routed_region_is_dispatch_overhead() {
        let mut r = record("naive", 16, 1);
        r.compute_s = 0.0095;
        r.pack_ratio = 0.0;
        assert_eq!(classify_host(&r), HostBottleneck::DispatchOverhead);
        let verdicts = diagnose_host(&[r]);
        assert!(verdicts[0].explanation.contains("crossover 40"));
    }

    #[test]
    fn verdicts_serialize_with_stable_labels() {
        let verdicts = diagnose_host(&[record("simd", 1024, 4)]);
        let json = serde_json::to_string(&serde_json::to_value(&verdicts[0])).unwrap();
        assert!(json.contains("\"compute-bound\""), "{json}");
    }
}
