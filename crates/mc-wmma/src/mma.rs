//! The `mma_sync` operation: functional matrix fused multiply-add with
//! hardware-faithful precision semantics.
//!
//! The Matrix Core datapath multiplies input elements exactly (FP16 and
//! BF16 products are exactly representable in FP32; FP32/FP64 products
//! round once in the accumulator type) and accumulates *sequentially in
//! the C/D datatype* along `k`. This implementation reproduces that:
//! conversions in, one rounding per multiply, one per accumulate.

use mc_isa::{ampere_catalog, cdna2_catalog, MatrixArch, MatrixInstruction};
use mc_types::Real;

use crate::error::WmmaError;
use crate::fragment::{Accumulator, Fragment, MatrixA, MatrixB};

/// Performs `D ← A·B + C` on CDNA2 (the rocWMMA default target).
///
/// Returns the Matrix Core instruction the operation lowers to, so
/// callers can account FLOPs and cycles. Fails with
/// [`WmmaError::Unsupported`] when no instruction matches — e.g.
/// `FP16 ← FP16` on CDNA2 (paper Table I).
///
/// ```
/// use mc_wmma::{mma_sync, Fragment, MatrixA, MatrixB, Accumulator};
/// use mc_types::F16;
///
/// let mut a = Fragment::<MatrixA, F16, 16, 16, 16>::new();
/// let mut b = Fragment::<MatrixB, F16, 16, 16, 16>::new();
/// let c = Fragment::<Accumulator, f32, 16, 16, 16>::new();
/// let mut d = Fragment::<Accumulator, f32, 16, 16, 16>::new();
/// a.fill(F16::ONE);
/// b.fill(F16::ONE);
/// let instr = mma_sync(&mut d, &a, &b, &c).unwrap();
/// assert_eq!(instr.mnemonic(), "v_mfma_f32_16x16x16f16");
/// assert_eq!(d.get(0, 0), 16.0); // row of ones · column of ones
/// ```
pub fn mma_sync<AB, CD, const M: usize, const N: usize, const K: usize>(
    d: &mut Fragment<Accumulator, CD, M, N, K>,
    a: &Fragment<MatrixA, AB, M, N, K>,
    b: &Fragment<MatrixB, AB, M, N, K>,
    c: &Fragment<Accumulator, CD, M, N, K>,
) -> Result<&'static MatrixInstruction, WmmaError>
where
    AB: Real,
    CD: Real,
{
    mma_sync_on(MatrixArch::Cdna2, d, a, b, c)
}

/// [`mma_sync`] with an explicit target architecture (the paper runs the
/// same WMMA code on both platforms by adapting shapes, §IV-A).
pub fn mma_sync_on<AB, CD, const M: usize, const N: usize, const K: usize>(
    arch: MatrixArch,
    d: &mut Fragment<Accumulator, CD, M, N, K>,
    a: &Fragment<MatrixA, AB, M, N, K>,
    b: &Fragment<MatrixB, AB, M, N, K>,
    c: &Fragment<Accumulator, CD, M, N, K>,
) -> Result<&'static MatrixInstruction, WmmaError>
where
    AB: Real,
    CD: Real,
{
    let catalog = match arch {
        MatrixArch::Cdna1 => mc_isa::cdna1_catalog(),
        MatrixArch::Cdna2 => cdna2_catalog(),
        MatrixArch::Ampere => ampere_catalog(),
    };
    let instr = catalog
        .find(CD::DTYPE, AB::DTYPE, M as u32, N as u32, K as u32)
        .ok_or(WmmaError::Unsupported {
            arch,
            cd: CD::DTYPE,
            ab: AB::DTYPE,
            shape: (M, N, K),
        })?;

    // Sequential accumulation in the C/D type, as the hardware does:
    // each product rounds once into the accumulator type (exact for
    // f16/bf16 inputs into f32; one rounding for f32/f64), then one
    // rounding per accumulate. The shared kernel reproduces that chain
    // with the conversions hoisted out of the inner loop.
    mc_compute::mma_accumulate(
        M,
        N,
        K,
        a.as_slice(),
        b.as_slice(),
        c.as_slice(),
        d.as_mut_slice(),
    );
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_types::{ApproxEq, F16};

    fn idx_f16(i: usize) -> F16 {
        F16::from_f32((i % 7) as f32 - 3.0)
    }

    #[test]
    fn identity_multiplication() {
        // A · I + 0 = A, the paper's correctness check pattern (§IV-A).
        let mut a = Fragment::<MatrixA, f64, 16, 16, 4>::new();
        let mut b = Fragment::<MatrixB, f64, 16, 16, 4>::new();
        let c = Fragment::<Accumulator, f64, 16, 16, 4>::new();
        let mut d = Fragment::<Accumulator, f64, 16, 16, 4>::new();
        for i in 0..16 {
            for k in 0..4 {
                a.set(i, k, (i * 4 + k) as f64);
            }
        }
        for k in 0..4 {
            b.set(k, k, 1.0);
        }
        let instr = mma_sync(&mut d, &a, &b, &c).unwrap();
        assert_eq!(instr.mnemonic(), "v_mfma_f64_16x16x4f64");
        for i in 0..16 {
            for j in 0..4 {
                assert_eq!(d.get(i, j), a.get(i, j));
            }
            for j in 4..16 {
                assert_eq!(d.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn ones_times_identity_plus_ones_is_twos() {
        // The exact rocBLAS validation pattern from §IV-A: A=1, B=I, C=1
        // => D filled with 2 ... restricted here to the k columns where
        // I has its ones.
        let mut a = Fragment::<MatrixA, F16, 16, 16, 16>::new();
        let mut b = Fragment::<MatrixB, F16, 16, 16, 16>::new();
        let mut c = Fragment::<Accumulator, f32, 16, 16, 16>::new();
        let mut d = Fragment::<Accumulator, f32, 16, 16, 16>::new();
        a.fill(F16::ONE);
        for k in 0..16 {
            b.set(k, k, F16::ONE);
        }
        c.fill(1.0);
        mma_sync(&mut d, &a, &b, &c).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(d.get(i, j), 2.0);
            }
        }
    }

    #[test]
    fn mixed_precision_matches_f64_reference_within_accumulator_ulps() {
        let mut a = Fragment::<MatrixA, F16, 16, 16, 16>::new();
        let mut b = Fragment::<MatrixB, F16, 16, 16, 16>::new();
        let c = Fragment::<Accumulator, f32, 16, 16, 16>::new();
        let mut d = Fragment::<Accumulator, f32, 16, 16, 16>::new();
        for i in 0..16 {
            for k in 0..16 {
                a.set(i, k, idx_f16(i * 16 + k));
                b.set(k, i, idx_f16(i * 31 + k));
            }
        }
        mma_sync(&mut d, &a, &b, &c).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                let mut reference = 0.0f64;
                for k in 0..16 {
                    reference += a.get(i, k).to_f64() * b.get(k, j).to_f64();
                }
                let got = f64::from(d.get(i, j));
                // Sequential f32 accumulation: within a few ULP of the
                // f64 reference for this small k.
                assert!(
                    (got as f32).approx_eq_ulps(&(reference as f32), 8),
                    "({i},{j}): {got} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn unsupported_combination_is_rejected() {
        // FP16 <- FP16 has no CDNA2 instruction (Table I).
        let a = Fragment::<MatrixA, F16, 16, 16, 16>::new();
        let b = Fragment::<MatrixB, F16, 16, 16, 16>::new();
        let c = Fragment::<Accumulator, F16, 16, 16, 16>::new();
        let mut d = Fragment::<Accumulator, F16, 16, 16, 16>::new();
        let err = mma_sync(&mut d, &a, &b, &c).unwrap_err();
        assert!(matches!(err, WmmaError::Unsupported { .. }));
    }

    #[test]
    fn ampere_supports_f16_accumulate_but_not_f32_inputs() {
        let a = Fragment::<MatrixA, F16, 16, 8, 16>::new();
        let b = Fragment::<MatrixB, F16, 16, 8, 16>::new();
        let c = Fragment::<Accumulator, F16, 16, 8, 16>::new();
        let mut d = Fragment::<Accumulator, F16, 16, 8, 16>::new();
        let i = mma_sync_on(MatrixArch::Ampere, &mut d, &a, &b, &c).unwrap();
        assert_eq!(i.mnemonic(), "mma.sync.aligned.m16n8k16.f16.f16");

        let a = Fragment::<MatrixA, f32, 16, 8, 16>::new();
        let b = Fragment::<MatrixB, f32, 16, 8, 16>::new();
        let c = Fragment::<Accumulator, f32, 16, 8, 16>::new();
        let mut d = Fragment::<Accumulator, f32, 16, 8, 16>::new();
        assert!(mma_sync_on(MatrixArch::Ampere, &mut d, &a, &b, &c).is_err());
    }

    #[test]
    fn fp16_products_are_exact_in_f32_accumulator() {
        // (1 + 2^-10)^2 = 1 + 2^-9 + 2^-20 is exact in f32 but not f16:
        // the MFMA must keep the full product.
        let x = F16::from_f32(1.0 + 2.0f32.powi(-10));
        let mut a = Fragment::<MatrixA, F16, 16, 16, 16>::new();
        let mut b = Fragment::<MatrixB, F16, 16, 16, 16>::new();
        let c = Fragment::<Accumulator, f32, 16, 16, 16>::new();
        let mut d = Fragment::<Accumulator, f32, 16, 16, 16>::new();
        a.set(0, 0, x);
        b.set(0, 0, x);
        mma_sync(&mut d, &a, &b, &c).unwrap();
        let expect = (1.0 + 2.0f32.powi(-10)) * (1.0 + 2.0f32.powi(-10));
        assert_eq!(d.get(0, 0), expect);
    }

    #[test]
    fn accumulation_order_is_sequential_in_k() {
        // With f32 accumulation, (big + small) + (-big) != big + (small - big)
        // in general; pin the sequential-k order.
        let mut a = Fragment::<MatrixA, f32, 16, 16, 4>::new();
        let mut b = Fragment::<MatrixB, f32, 16, 16, 4>::new();
        let c = Fragment::<Accumulator, f32, 16, 16, 4>::new();
        let mut d = Fragment::<Accumulator, f32, 16, 16, 4>::new();
        // k=0: 1e8, k=1: 1.0 (absorbed), k=2: -1e8, k=3: 1.0
        let vals = [1e8f32, 1.0, -1e8, 1.0];
        for (k, v) in vals.iter().enumerate() {
            a.set(0, k, *v);
            b.set(k, 0, 1.0);
        }
        mma_sync(&mut d, &a, &b, &c).unwrap();
        // Sequential: ((0 + 1e8) + 1) + (-1e8) + 1 = 1e8 + (-1e8) + 1 = 1.
        assert_eq!(d.get(0, 0), 1.0);
    }
}
