//! Fragments: the register-distributed matrix abstraction.
//!
//! A fragment logically holds one operand block of an MMA operation;
//! physically (on hardware) its elements live scattered across the 64
//! lanes' registers, in the layout described by [`mc_isa::regmap`]. The
//! fragment API exists precisely so users never see that layout — and
//! this implementation honours that: elements are addressed by matrix
//! coordinates, while [`Fragment::register_location`] exposes the
//! underlying mapping for the curious (as AMD's calculator tool does).

use core::marker::PhantomData;

use mc_isa::regmap::{self, ElementCoord, Operand, RegisterLocation};
use mc_isa::{cdna2_catalog, MatrixInstruction};
use mc_types::Real;

use crate::error::WmmaError;

/// Marker: fragment holds the `m×k` A operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixA;

/// Marker: fragment holds the `k×n` B operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatrixB;

/// Marker: fragment holds an `m×n` accumulator (C or D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Accumulator;

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::MatrixA {}
    impl Sealed for super::MatrixB {}
    impl Sealed for super::Accumulator {}
}

/// The role a fragment plays in `D ← A·B + C`, determining its shape.
pub trait FragmentUse: sealed::Sealed + 'static {
    /// Rows of the fragment for an `M×N×K` operation.
    fn rows(m: usize, n: usize, k: usize) -> usize;
    /// Columns of the fragment.
    fn cols(m: usize, n: usize, k: usize) -> usize;
    /// The corresponding register-map operand.
    fn operand() -> Operand;
}

impl FragmentUse for MatrixA {
    fn rows(m: usize, _n: usize, _k: usize) -> usize {
        m
    }
    fn cols(_m: usize, _n: usize, k: usize) -> usize {
        k
    }
    fn operand() -> Operand {
        Operand::A
    }
}

impl FragmentUse for MatrixB {
    fn rows(_m: usize, _n: usize, k: usize) -> usize {
        k
    }
    fn cols(_m: usize, n: usize, _k: usize) -> usize {
        n
    }
    fn operand() -> Operand {
        Operand::B
    }
}

impl FragmentUse for Accumulator {
    fn rows(m: usize, _n: usize, _k: usize) -> usize {
        m
    }
    fn cols(_m: usize, n: usize, _k: usize) -> usize {
        n
    }
    fn operand() -> Operand {
        Operand::D
    }
}

/// Memory layout of a source/destination matrix in device memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Layout {
    /// Row-major (`mem_row_major` in rocWMMA).
    #[default]
    RowMajor,
    /// Column-major (`mem_col_major`).
    ColMajor,
}

/// A wave-cooperative matrix fragment for an `M×N×K` operation.
///
/// ```
/// use mc_wmma::{Fragment, MatrixA, Layout};
/// use mc_types::F16;
///
/// let tile: Vec<F16> = (0..16 * 16).map(|i| F16::from_f32(i as f32)).collect();
/// let mut a = Fragment::<MatrixA, F16, 16, 16, 16>::new();
/// a.load_matrix_sync(&tile, 16, Layout::RowMajor).unwrap();
/// assert_eq!(a.get(2, 3).to_f32(), (2 * 16 + 3) as f32);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Fragment<Use: FragmentUse, T: Real, const M: usize, const N: usize, const K: usize> {
    data: Vec<T>,
    _use: PhantomData<Use>,
}

impl<Use: FragmentUse, T: Real, const M: usize, const N: usize, const K: usize> Default
    for Fragment<Use, T, M, N, K>
{
    fn default() -> Self {
        Self::new()
    }
}

impl<Use: FragmentUse, T: Real, const M: usize, const N: usize, const K: usize>
    Fragment<Use, T, M, N, K>
{
    /// Creates a zero-filled fragment.
    pub fn new() -> Self {
        Fragment {
            data: vec![T::zero(); Self::rows() * Self::cols()],
            _use: PhantomData,
        }
    }

    /// Fragment rows (depends on the operand role).
    pub fn rows() -> usize {
        Use::rows(M, N, K)
    }

    /// Fragment columns.
    pub fn cols() -> usize {
        Use::cols(M, N, K)
    }

    /// Total elements in the fragment.
    pub fn num_elements() -> usize {
        Self::rows() * Self::cols()
    }

    /// rocWMMA `fill_fragment`: sets every element to `value`.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the fragment.
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(
            row < Self::rows() && col < Self::cols(),
            "fragment index out of range"
        );
        self.data[row * Self::cols() + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the coordinate is outside the fragment.
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < Self::rows() && col < Self::cols(),
            "fragment index out of range"
        );
        self.data[row * Self::cols() + col] = value;
    }

    /// The fragment's elements, row-major (`rows × cols`).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the fragment's row-major elements.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// rocWMMA `load_matrix_sync`: loads the fragment from a matrix in
    /// memory with leading dimension `ld`.
    pub fn load_matrix_sync(
        &mut self,
        src: &[T],
        ld: usize,
        layout: Layout,
    ) -> Result<(), WmmaError> {
        let (rows, cols) = (Self::rows(), Self::cols());
        let (minor, major) = match layout {
            Layout::RowMajor => (cols, rows),
            Layout::ColMajor => (rows, cols),
        };
        if ld < minor {
            return Err(WmmaError::BadLeadingDimension { ld, min: minor });
        }
        let required = (major - 1) * ld + minor;
        if src.len() < required {
            return Err(WmmaError::OutOfBounds {
                what: "load_matrix_sync source",
                required,
                available: src.len(),
            });
        }
        for r in 0..rows {
            for c in 0..cols {
                let idx = match layout {
                    Layout::RowMajor => r * ld + c,
                    Layout::ColMajor => c * ld + r,
                };
                self.data[r * cols + c] = src[idx];
            }
        }
        Ok(())
    }

    /// rocWMMA `store_matrix_sync`: writes the fragment to memory.
    pub fn store_matrix_sync(
        &self,
        dst: &mut [T],
        ld: usize,
        layout: Layout,
    ) -> Result<(), WmmaError> {
        let (rows, cols) = (Self::rows(), Self::cols());
        let (minor, major) = match layout {
            Layout::RowMajor => (cols, rows),
            Layout::ColMajor => (rows, cols),
        };
        if ld < minor {
            return Err(WmmaError::BadLeadingDimension { ld, min: minor });
        }
        let required = (major - 1) * ld + minor;
        if dst.len() < required {
            return Err(WmmaError::OutOfBounds {
                what: "store_matrix_sync destination",
                required,
                available: dst.len(),
            });
        }
        for r in 0..rows {
            for c in 0..cols {
                let idx = match layout {
                    Layout::RowMajor => r * ld + c,
                    Layout::ColMajor => c * ld + r,
                };
                dst[idx] = self.data[r * cols + c];
            }
        }
        Ok(())
    }

    /// The CDNA2 matrix instruction this fragment shape corresponds to
    /// for a given accumulator type, if one exists.
    pub fn instruction_for<CD: Real>() -> Option<&'static MatrixInstruction> {
        cdna2_catalog().find(CD::DTYPE, T::DTYPE, M as u32, N as u32, K as u32)
    }

    /// Where element `(row, col)` physically lives in the wavefront's
    /// registers, per the CDNA2 layout (block 0). Returns `None` when no
    /// matching CDNA2 instruction exists for this fragment.
    pub fn register_location<CD: Real>(row: usize, col: usize) -> Option<RegisterLocation> {
        let instr = Self::instruction_for::<CD>()?;
        regmap::element_location(
            instr,
            Use::operand(),
            ElementCoord {
                block: 0,
                row: row as u32,
                col: col as u32,
            },
        )
        .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_types::F16;

    type FragA = Fragment<MatrixA, F16, 16, 16, 16>;
    type FragAcc = Fragment<Accumulator, f32, 16, 16, 16>;

    #[test]
    fn shapes_follow_operand_role() {
        assert_eq!(FragA::rows(), 16);
        assert_eq!(FragA::cols(), 16);
        type B = Fragment<MatrixB, f64, 16, 16, 4>;
        assert_eq!(B::rows(), 4);
        assert_eq!(B::cols(), 16);
        type A4 = Fragment<MatrixA, f64, 16, 16, 4>;
        assert_eq!(A4::cols(), 4);
        assert_eq!(FragAcc::num_elements(), 256);
    }

    #[test]
    fn fill_and_get() {
        let mut f = FragAcc::new();
        assert_eq!(f.get(0, 0), 0.0);
        f.fill(2.5);
        assert_eq!(f.get(15, 15), 2.5);
    }

    #[test]
    fn load_store_row_major_roundtrip() {
        let src: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let mut f = FragAcc::new();
        f.load_matrix_sync(&src, 16, Layout::RowMajor).unwrap();
        let mut dst = vec![0.0f32; 256];
        f.store_matrix_sync(&mut dst, 16, Layout::RowMajor).unwrap();
        assert_eq!(src, dst);
    }

    #[test]
    fn col_major_load_transposes() {
        let mut src = vec![0.0f32; 256];
        src[3 * 16 + 7] = 42.0; // column-major (r=3, c=7) lives at c*ld+r = 7*16+3
        let mut f = FragAcc::new();
        f.load_matrix_sync(&src, 16, Layout::ColMajor).unwrap();
        assert_eq!(f.get(7, 3), 42.0);
    }

    #[test]
    fn strided_load_respects_leading_dimension() {
        // A 16x16 tile inside a 64-wide matrix.
        let ld = 64;
        let src: Vec<f32> = (0..16 * ld).map(|i| i as f32).collect();
        let mut f = FragAcc::new();
        f.load_matrix_sync(&src, ld, Layout::RowMajor).unwrap();
        assert_eq!(f.get(2, 5), (2 * ld + 5) as f32);
    }

    #[test]
    fn bounds_and_ld_validation() {
        let mut f = FragAcc::new();
        let small = vec![0.0f32; 10];
        assert!(matches!(
            f.load_matrix_sync(&small, 16, Layout::RowMajor),
            Err(WmmaError::OutOfBounds { .. })
        ));
        let src = vec![0.0f32; 256];
        assert!(matches!(
            f.load_matrix_sync(&src, 8, Layout::RowMajor),
            Err(WmmaError::BadLeadingDimension { ld: 8, min: 16 })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let f = FragA::new();
        let _ = f.get(16, 0);
    }

    #[test]
    fn register_location_exposed_for_supported_ops() {
        // Mixed 16x16x16 A fragment: element (3, 9) -> lane 35, vgpr 0 hi.
        let loc = FragA::register_location::<f32>(3, 9).unwrap();
        assert_eq!(loc.lane, 35);
        assert_eq!(loc.vgpr, 0);
        assert_eq!(loc.half, 1);
        // FP16 accumulators have no CDNA2 instruction: no location.
        assert!(Fragment::<Accumulator, F16, 16, 16, 16>::register_location::<F16>(0, 0).is_none());
    }

    #[test]
    fn instruction_lookup_matches_catalog() {
        let i = FragA::instruction_for::<f32>().unwrap();
        assert_eq!(i.mnemonic(), "v_mfma_f32_16x16x16f16");
        assert!(FragA::instruction_for::<F16>().is_none());
    }
}
