//! A rocWMMA-style *wave matrix multiply-accumulate* API (paper §III).
//!
//! rocWMMA abstracts Matrix Core programming behind *fragments* — objects
//! that hide the mapping of matrix elements to wavefront registers — and
//! a small set of cooperative operations: `load_matrix_sync`,
//! `store_matrix_sync`, `fill_fragment`, and `mma_sync`. This crate
//! provides the same API surface with two coupled backends:
//!
//! * a **functional** backend ([`fragment`], [`mma`]) that actually
//!   computes `D ← A·B + C` with hardware-faithful precision semantics
//!   (exact products, sequential accumulation in the C/D datatype), used
//!   for numerical validation;
//! * a **performance** backend ([`builder`]) that lowers the same
//!   operations to [`mc_isa`] instruction streams executed on the
//!   [`mc_sim`] simulator — the paper's micro-benchmarks are expressed
//!   through it.
//!
//! Like rocWMMA, an operation is only valid if the underlying
//! architecture has a matching matrix instruction; the crossed-out cells
//! of the paper's Table I (`FP16←FP16` on CDNA2, `FP32←FP32` on Ampere)
//! surface here as [`WmmaError::Unsupported`].

#![deny(missing_docs)]

pub mod blocked;
pub mod builder;
pub mod fragment;
pub mod mma;

mod error;

pub use blocked::{mma_sync_blocked, mma_sync_blocked_with, BlockedFragments};
pub use builder::{mma_loop_kernel, wmma_gemm_tile_kernel, LoopKernelParams};
pub use error::WmmaError;
pub use fragment::{Accumulator, Fragment, Layout, MatrixA, MatrixB};
pub use mma::{mma_sync, mma_sync_on};
