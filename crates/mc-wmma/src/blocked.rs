//! Multi-block MMA: the CDNA2 small-shape instructions.
//!
//! "AMD CDNA2 also supports smaller shapes, where a Matrix Core can
//! execute up to four parallel MFMA operations on independent
//! (A, B, C, D) matrices. For example, with the shape 16×16×4, one can
//! execute four parallel matrix FMA operations for the datatypes
//! FP32 ← FP16" (paper §II — sixteen for the 4×4 shapes). This module
//! exposes those instructions: a [`BlockedFragments`] bundle holds `B`
//! independent fragments, and [`mma_sync_blocked`] executes all blocks
//! with a *single* Matrix Core instruction.

use mc_isa::modifiers::MfmaModifiers;
use mc_isa::{cdna2_catalog, MatrixInstruction};
use mc_types::Real;

use crate::error::WmmaError;
use crate::fragment::{Accumulator, Fragment, FragmentUse, MatrixA, MatrixB};
use crate::mma::mma_sync;

/// `B` independent operand fragments for a multi-block instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockedFragments<
    Use: FragmentUse,
    T: Real,
    const M: usize,
    const N: usize,
    const K: usize,
    const B: usize,
> {
    blocks: Vec<Fragment<Use, T, M, N, K>>,
}

impl<Use: FragmentUse, T: Real, const M: usize, const N: usize, const K: usize, const B: usize>
    Default for BlockedFragments<Use, T, M, N, K, B>
{
    fn default() -> Self {
        Self::new()
    }
}

impl<Use: FragmentUse, T: Real, const M: usize, const N: usize, const K: usize, const B: usize>
    BlockedFragments<Use, T, M, N, K, B>
{
    /// Creates `B` zeroed fragments.
    pub fn new() -> Self {
        BlockedFragments {
            blocks: (0..B).map(|_| Fragment::new()).collect(),
        }
    }

    /// Number of blocks.
    pub const fn num_blocks() -> usize {
        B
    }

    /// Immutable block access.
    ///
    /// # Panics
    /// Panics if `block >= B`.
    pub fn block(&self, block: usize) -> &Fragment<Use, T, M, N, K> {
        &self.blocks[block]
    }

    /// Mutable block access.
    ///
    /// # Panics
    /// Panics if `block >= B`.
    pub fn block_mut(&mut self, block: usize) -> &mut Fragment<Use, T, M, N, K> {
        &mut self.blocks[block]
    }

    /// Fills every block with `value`.
    pub fn fill(&mut self, value: T) {
        for b in &mut self.blocks {
            b.fill(value);
        }
    }
}

/// Executes `D_i ← A_i·B_i + C_i` for all `B` blocks with one CDNA2
/// multi-block MFMA instruction. Fails when no instruction with exactly
/// this shape, type pair, *and block count* exists.
pub fn mma_sync_blocked<AB, CD, const M: usize, const N: usize, const K: usize, const B: usize>(
    d: &mut BlockedFragments<Accumulator, CD, M, N, K, B>,
    a: &BlockedFragments<MatrixA, AB, M, N, K, B>,
    b: &BlockedFragments<MatrixB, AB, M, N, K, B>,
    c: &BlockedFragments<Accumulator, CD, M, N, K, B>,
) -> Result<&'static MatrixInstruction, WmmaError>
where
    AB: Real,
    CD: Real,
{
    mma_sync_blocked_with(MfmaModifiers::default(), d, a, b, c)
}

/// [`mma_sync_blocked`] with CBSZ/ABID/BLGP broadcast modifiers: block
/// `i` consumes `A[mods.a_source_block(i)]` and
/// `B[mods.b_source_block(i)]` (see [`mc_isa::modifiers`]).
pub fn mma_sync_blocked_with<
    AB,
    CD,
    const M: usize,
    const N: usize,
    const K: usize,
    const B: usize,
>(
    mods: MfmaModifiers,
    d: &mut BlockedFragments<Accumulator, CD, M, N, K, B>,
    a: &BlockedFragments<MatrixA, AB, M, N, K, B>,
    b: &BlockedFragments<MatrixB, AB, M, N, K, B>,
    c: &BlockedFragments<Accumulator, CD, M, N, K, B>,
) -> Result<&'static MatrixInstruction, WmmaError>
where
    AB: Real,
    CD: Real,
{
    let instr = cdna2_catalog()
        .find(CD::DTYPE, AB::DTYPE, M as u32, N as u32, K as u32)
        .filter(|i| i.shape.blocks as usize == B)
        .ok_or(WmmaError::Unsupported {
            arch: mc_isa::MatrixArch::Cdna2,
            cd: CD::DTYPE,
            ab: AB::DTYPE,
            shape: (M, N, K),
        })?;
    mods.validate(instr).map_err(|_| WmmaError::Unsupported {
        arch: mc_isa::MatrixArch::Cdna2,
        cd: CD::DTYPE,
        ab: AB::DTYPE,
        shape: (M, N, K),
    })?;

    // Each block is an independent single-block MMA with the same
    // datapath semantics; the modifiers redirect operand sourcing.
    for i in 0..B {
        let a_src = mods.a_source_block(i as u32) as usize;
        let b_src = mods.b_source_block(i as u32, B as u32) as usize;
        compute_one_block(d.block_mut(i), a.block(a_src), b.block(b_src), c.block(i));
    }
    Ok(instr)
}

fn compute_one_block<AB, CD, const M: usize, const N: usize, const K: usize>(
    d: &mut Fragment<Accumulator, CD, M, N, K>,
    a: &Fragment<MatrixA, AB, M, N, K>,
    b: &Fragment<MatrixB, AB, M, N, K>,
    c: &Fragment<Accumulator, CD, M, N, K>,
) where
    AB: Real,
    CD: Real,
{
    // Reuse mma_sync when a single-block twin exists; otherwise compute
    // with identical semantics (exact products, sequential accumulate).
    if mma_sync(d, a, b, c).is_ok() {
        return;
    }
    for i in 0..M {
        for j in 0..N {
            let mut acc = c.get(i, j);
            for kk in 0..K {
                let prod = CD::from_f64(a.get(i, kk).to_f64() * b.get(kk, j).to_f64());
                acc = CD::from_f64(acc.to_f64() + prod.to_f64());
            }
            d.set(i, j, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_types::F16;

    #[test]
    fn four_parallel_16x16x4_mixed_blocks() {
        // The paper's §II example: four parallel FP32 <- FP16 MFMAs.
        let mut a = BlockedFragments::<MatrixA, F16, 16, 16, 4, 4>::new();
        let mut b = BlockedFragments::<MatrixB, F16, 16, 16, 4, 4>::new();
        let c = BlockedFragments::<Accumulator, f32, 16, 16, 4, 4>::new();
        let mut d = BlockedFragments::<Accumulator, f32, 16, 16, 4, 4>::new();
        for blk in 0..4 {
            a.block_mut(blk).fill(F16::from_f32((blk + 1) as f32));
            for k in 0..4 {
                b.block_mut(blk).set(k, k, F16::ONE);
            }
        }
        let instr = mma_sync_blocked(&mut d, &a, &b, &c).unwrap();
        assert_eq!(instr.mnemonic(), "v_mfma_f32_16x16x4f16");
        assert_eq!(instr.shape.blocks, 4);
        // Block i: row of (i+1)'s times identity columns -> (i+1) in the
        // first 4 columns, 0 beyond.
        for blk in 0..4 {
            assert_eq!(d.block(blk).get(0, 0), (blk + 1) as f32);
            assert_eq!(d.block(blk).get(5, 3), (blk + 1) as f32);
            assert_eq!(d.block(blk).get(0, 4), 0.0);
        }
    }

    #[test]
    fn sixteen_parallel_4x4_blocks() {
        let mut a = BlockedFragments::<MatrixA, f32, 4, 4, 1, 16>::new();
        let mut b = BlockedFragments::<MatrixB, f32, 4, 4, 1, 16>::new();
        let mut c = BlockedFragments::<Accumulator, f32, 4, 4, 1, 16>::new();
        let mut d = BlockedFragments::<Accumulator, f32, 4, 4, 1, 16>::new();
        for blk in 0..16 {
            a.block_mut(blk).set(2, 0, 3.0);
            b.block_mut(blk).set(0, 1, blk as f32);
            c.block_mut(blk).set(2, 1, 1.0);
        }
        let instr = mma_sync_blocked(&mut d, &a, &b, &c).unwrap();
        assert_eq!(instr.shape.blocks, 16);
        for blk in 0..16 {
            assert_eq!(d.block(blk).get(2, 1), 3.0 * blk as f32 + 1.0);
        }
    }

    #[test]
    fn wrong_block_count_is_rejected() {
        // 16x16x4 mixed exists with 4 blocks, not 2.
        let mut d = BlockedFragments::<Accumulator, f32, 16, 16, 4, 2>::new();
        let a = BlockedFragments::<MatrixA, F16, 16, 16, 4, 2>::new();
        let b = BlockedFragments::<MatrixB, F16, 16, 16, 4, 2>::new();
        let c = BlockedFragments::<Accumulator, f32, 16, 16, 4, 2>::new();
        assert!(matches!(
            mma_sync_blocked(&mut d, &a, &b, &c),
            Err(WmmaError::Unsupported { .. })
        ));
    }

    #[test]
    fn fp64_small_shape_four_blocks() {
        let mut a = BlockedFragments::<MatrixA, f64, 4, 4, 4, 4>::new();
        let mut b = BlockedFragments::<MatrixB, f64, 4, 4, 4, 4>::new();
        let c = BlockedFragments::<Accumulator, f64, 4, 4, 4, 4>::new();
        let mut d = BlockedFragments::<Accumulator, f64, 4, 4, 4, 4>::new();
        a.fill(1.0);
        b.fill(1.0);
        let instr = mma_sync_blocked(&mut d, &a, &b, &c).unwrap();
        assert_eq!(instr.mnemonic(), "v_mfma_f64_4x4x4f64");
        for blk in 0..4 {
            assert_eq!(d.block(blk).get(3, 3), 4.0); // row·col of ones, k=4
        }
    }

    #[test]
    fn broadcast_modifiers_redirect_operands() {
        use mc_isa::modifiers::{Blgp, MfmaModifiers};
        let mut a = BlockedFragments::<MatrixA, F16, 4, 4, 4, 16>::new();
        let mut b = BlockedFragments::<MatrixB, F16, 4, 4, 4, 16>::new();
        let c = BlockedFragments::<Accumulator, f32, 4, 4, 4, 16>::new();
        let mut d = BlockedFragments::<Accumulator, f32, 4, 4, 4, 16>::new();
        // Distinct A per block; identity-ish B per block.
        for blk in 0..16 {
            a.block_mut(blk).set(0, 0, F16::from_f32(blk as f32));
            b.block_mut(blk).set(0, 0, F16::ONE);
        }
        // CBSZ=2/ABID=1: groups of 4 read A block (group*4 + 1);
        // BLGP broadcast block 0 of B everywhere.
        let mods = MfmaModifiers {
            cbsz: 2,
            abid: 1,
            blgp: Blgp::BroadcastBlock0,
        };
        mma_sync_blocked_with(mods, &mut d, &a, &b, &c).unwrap();
        for blk in 0..16 {
            let expected_a = (blk / 4) * 4 + 1;
            assert_eq!(d.block(blk).get(0, 0), expected_a as f32, "block {blk}");
        }
        // Invalid modifiers surface as Unsupported.
        let bad = MfmaModifiers {
            cbsz: 7,
            ..Default::default()
        };
        assert!(mma_sync_blocked_with(bad, &mut d, &a, &b, &c).is_err());
    }

    #[test]
    fn blocked_flops_match_instruction_accounting() {
        let instr = cdna2_catalog()
            .find(mc_types::DType::F32, mc_types::DType::F16, 4, 4, 4)
            .unwrap();
        // 2·4·4·4·16 = 2048 FLOPs from one instruction.
        assert_eq!(instr.flops(), 2048);
        assert_eq!(instr.shape.blocks, 16);
    }
}
