//! Error type for WMMA operations.

use core::fmt;

use mc_isa::MatrixArch;
use mc_types::DType;

/// Errors from fragment operations and `mma_sync`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WmmaError {
    /// No matrix instruction exists for this type/shape combination on
    /// the target architecture (a Table I crossed-out cell, or an
    /// unsupported shape).
    Unsupported {
        /// Target architecture.
        arch: MatrixArch,
        /// Output (C/D) datatype.
        cd: DType,
        /// Input (A/B) datatype.
        ab: DType,
        /// Requested shape.
        shape: (usize, usize, usize),
    },
    /// A source/destination slice is too small for the requested
    /// load/store geometry.
    OutOfBounds {
        /// What was being accessed.
        what: &'static str,
        /// Elements required.
        required: usize,
        /// Elements available.
        available: usize,
    },
    /// The leading dimension is smaller than the fragment's minor extent.
    BadLeadingDimension {
        /// Supplied leading dimension.
        ld: usize,
        /// Minimum valid value.
        min: usize,
    },
    /// The built kernel failed static verification (`mc-lint`): the
    /// report carries the error-severity diagnostics.
    Lint(mc_lint::LintReport),
    /// The built kernel failed dataflow verification (`mc-flow`): an
    /// LDS race, an insufficient waitcnt, or a register working set the
    /// builder cannot hold.
    Flow(mc_flow::FlowReport),
}

impl fmt::Display for WmmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WmmaError::Unsupported {
                arch,
                cd,
                ab,
                shape,
            } => write!(
                f,
                "{arch} has no {cd} <- {ab} matrix instruction of shape {}x{}x{}",
                shape.0, shape.1, shape.2
            ),
            WmmaError::OutOfBounds {
                what,
                required,
                available,
            } => write!(f, "{what}: need {required} elements, have {available}"),
            WmmaError::BadLeadingDimension { ld, min } => {
                write!(f, "leading dimension {ld} below minimum {min}")
            }
            WmmaError::Lint(report) => {
                write!(
                    f,
                    "kernel `{}` failed static verification with {} error(s):\n{}",
                    report.subject,
                    report.error_count(),
                    report.render()
                )
            }
            WmmaError::Flow(report) => {
                write!(
                    f,
                    "kernel `{}` failed dataflow verification with {} error(s):\n{}",
                    report.subject,
                    report.error_count(),
                    report.render()
                )
            }
        }
    }
}

impl std::error::Error for WmmaError {}
