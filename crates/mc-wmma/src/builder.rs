//! Lowering WMMA operations to simulator kernels.
//!
//! The paper's micro-benchmarks are rocWMMA loops that the HIP compiler
//! turns into `V_MFMA_*` instruction streams (verified with `-S`, §IV-A).
//! This module performs the same lowering: given a type/shape
//! combination, it validates against the instruction catalog and emits a
//! [`KernelDesc`] whose loop body is the MFMA instruction, with fragment
//! loads in the prologue and the accumulator store in the epilogue —
//! exactly the structure the paper describes ("this benchmark excludes
//! the impact of data transfer to registers as no load/store operations
//! are performed" inside the loop).

use mc_isa::{
    ampere_catalog, cdna2_catalog, KernelDesc, LdsAccess, MatrixArch, MatrixInstruction, SlotOp,
    WaitSpec, WaveProgram,
};
use mc_types::DType;

use crate::error::WmmaError;

/// Verifies a freshly-built kernel against the reference die of its
/// target architecture: lint first, then the dataflow engine.
/// Error-severity diagnostics reject the kernel (the builder equivalent
/// of a compile error), warnings go to stderr.
fn verify_built(arch: MatrixArch, kernel: &KernelDesc) -> Result<(), WmmaError> {
    let die = mc_lint::default_die_for(arch);
    let report = mc_lint::lint_kernel(&die, kernel);
    for w in report.warnings() {
        eprintln!("{}", w.render(&report.subject));
    }
    if report.has_errors() {
        return Err(WmmaError::Lint(report));
    }
    let flow = mc_flow::analyze_kernel(&die, kernel);
    for w in flow.warnings() {
        eprintln!("{}", w.render(&flow.subject));
    }
    if flow.has_errors() {
        return Err(WmmaError::Flow(flow));
    }
    Ok(())
}

/// The `S_NOP` padding a kernel must place between an MFMA and the first
/// read of its accumulator, as a `SlotOp` operand.
fn snop_gap(instr: &MatrixInstruction) -> u8 {
    u8::try_from(mc_lint::required_snop_gap(instr)).expect("hazard gaps are single-digit")
}

/// Parameters for [`mma_loop_kernel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopKernelParams {
    /// Target architecture.
    pub arch: MatrixArch,
    /// Accumulator (C/D) datatype.
    pub cd: DType,
    /// Input (A/B) datatype.
    pub ab: DType,
    /// Operation shape `m×n×k`.
    pub shape: (u32, u32, u32),
    /// Wavefronts to launch.
    pub wavefronts: u64,
    /// MFMA iterations per wavefront.
    pub iterations: u64,
}

fn find_instruction(
    arch: MatrixArch,
    cd: DType,
    ab: DType,
    (m, n, k): (u32, u32, u32),
) -> Result<&'static MatrixInstruction, WmmaError> {
    let catalog = match arch {
        MatrixArch::Cdna1 => mc_isa::cdna1_catalog(),
        MatrixArch::Cdna2 => cdna2_catalog(),
        MatrixArch::Ampere => ampere_catalog(),
    };
    catalog.find(cd, ab, m, n, k).ok_or(WmmaError::Unsupported {
        arch,
        cd,
        ab,
        shape: (m as usize, n as usize, k as usize),
    })
}

/// Builds the paper's throughput micro-benchmark kernel: each wavefront
/// loads its fragments once, executes `iterations` MFMA operations in a
/// loop, and stores the accumulator once.
pub fn mma_loop_kernel(params: LoopKernelParams) -> Result<KernelDesc, WmmaError> {
    let instr = find_instruction(params.arch, params.cd, params.ab, params.shape)?;
    let lanes = match params.arch {
        MatrixArch::Cdna1 | MatrixArch::Cdna2 => 64u64,
        MatrixArch::Ampere => 32u64,
    };

    // Fragment loads: A, B, and C bytes per lane.
    let ab_bytes = (instr.shape.a_elements_total() + instr.shape.b_elements_total())
        * params.ab.size_bytes() as u64;
    let cd_bytes = instr.shape.cd_elements_total() * params.cd.size_bytes() as u64;
    let load_bpl = (ab_bytes / lanes).max(1) as u32;
    let store_bpl = (cd_bytes / lanes).max(1) as u32;

    let program = WaveProgram {
        prologue: vec![
            SlotOp::global_load(load_bpl),
            SlotOp::global_load(store_bpl),
            SlotOp::Waitcnt(WaitSpec::vm(0)),
        ],
        body: vec![SlotOp::Mfma(*instr)],
        body_iterations: params.iterations,
        epilogue: vec![
            // Hardware requires independent cycles before reading
            // AccVGPRs written by MFMA (paper §III); the width scales
            // with the instruction's pipeline depth.
            SlotOp::SNop(snop_gap(instr)),
            SlotOp::global_store(store_bpl),
        ],
    };

    let kernel = KernelDesc {
        workgroups: params.wavefronts,
        waves_per_workgroup: 1,
        arch_vgprs: instr.a_vgprs_per_lane() + instr.b_vgprs_per_lane() + 16,
        acc_vgprs: instr.cd_agprs_per_lane(),
        ..KernelDesc::new(format!("wmma_loop_{}", instr.mnemonic()), program)
    };
    verify_built(params.arch, &kernel)?;
    Ok(kernel)
}

/// Builds a single-tile WMMA GEMM kernel: one workgroup of four waves
/// cooperatively computing a macro-tile via LDS-staged fragments. Used
/// by examples as a realistic (non-microbenchmark) WMMA workload.
pub fn wmma_gemm_tile_kernel(
    arch: MatrixArch,
    cd: DType,
    ab: DType,
    shape: (u32, u32, u32),
    k_tiles: u64,
) -> Result<KernelDesc, WmmaError> {
    let instr = find_instruction(arch, cd, ab, shape)?;
    let ab_tile_bytes =
        (instr.shape.a_elements_total() + instr.shape.b_elements_total()) * ab.size_bytes() as u64;

    let ab_bpl = (ab_tile_bytes / 64).max(1) as u32;
    let cd_bpl = ((instr.shape.cd_elements_total() * cd.size_bytes() as u64) / 64).max(1) as u32;
    // Single-buffered LDS staging: the panel lives in stage 0 of buffer
    // 0, so each iteration needs two barriers — one publishing the
    // freshly-written stage to the readers, one protecting the next
    // iteration's overwrite from this iteration's readers (the back-edge
    // WAR hazard mc-flow proves absent).
    let stage = LdsAccess::fixed(0);
    // Issue slots after the MFMA inside the body (`Scalar`, `Barrier`)
    // already cover part of its hazard window; pad only the remainder.
    let pad = snop_gap(instr).saturating_sub(2);
    let mut epilogue = Vec::new();
    if pad > 0 {
        epilogue.push(SlotOp::SNop(pad));
    }
    epilogue.push(SlotOp::global_store(cd_bpl));
    let program = WaveProgram {
        prologue: vec![SlotOp::global_load(cd_bpl)],
        body: vec![
            SlotOp::global_load(ab_bpl),
            SlotOp::Waitcnt(WaitSpec::vm(0)),
            SlotOp::lds_write(ab_bpl, stage),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            SlotOp::Barrier,
            SlotOp::lds_read(ab_bpl, stage),
            SlotOp::Waitcnt(WaitSpec::lgkm(0)),
            SlotOp::Mfma(*instr),
            SlotOp::Scalar,
            SlotOp::Barrier,
        ],
        body_iterations: k_tiles,
        epilogue,
    };

    let kernel = KernelDesc {
        workgroups: 1,
        waves_per_workgroup: 4,
        lds_bytes_per_workgroup: (ab_tile_bytes * 4) as u32,
        arch_vgprs: instr.a_vgprs_per_lane() + instr.b_vgprs_per_lane() + 24,
        acc_vgprs: instr.cd_agprs_per_lane(),
        ..KernelDesc::new(format!("wmma_gemm_tile_{}", instr.mnemonic()), program)
    };
    verify_built(arch, &kernel)?;
    Ok(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_params(waves: u64, iters: u64) -> LoopKernelParams {
        LoopKernelParams {
            arch: MatrixArch::Cdna2,
            cd: DType::F32,
            ab: DType::F16,
            shape: (16, 16, 16),
            wavefronts: waves,
            iterations: iters,
        }
    }

    #[test]
    fn loop_kernel_structure_matches_paper_methodology() {
        let k = mma_loop_kernel(mixed_params(440, 10_000_000)).unwrap();
        // No load/store inside the loop.
        assert!(k
            .program
            .body
            .iter()
            .all(|op| matches!(op, SlotOp::Mfma(_))));
        assert_eq!(k.program.body_iterations, 10_000_000);
        // 2mnk · N_iter FLOPs per wave.
        assert_eq!(k.program.mfma_flops(), 8192 * 10_000_000);
        assert_eq!(k.total_waves(), 440);
    }

    #[test]
    fn unsupported_shape_rejected_like_a_compile_error() {
        let bad = LoopKernelParams {
            cd: DType::F16,
            ab: DType::F16,
            ..mixed_params(1, 1)
        };
        assert!(matches!(
            mma_loop_kernel(bad),
            Err(WmmaError::Unsupported { .. })
        ));
        let bad_shape = LoopKernelParams {
            shape: (17, 16, 16),
            ..mixed_params(1, 1)
        };
        assert!(mma_loop_kernel(bad_shape).is_err());
    }

    #[test]
    fn ampere_kernel_uses_warp_lanes() {
        let p = LoopKernelParams {
            arch: MatrixArch::Ampere,
            shape: (16, 8, 16),
            ..mixed_params(432, 1000)
        };
        let k = mma_loop_kernel(p).unwrap();
        assert!(k.name.contains("mma.sync"));
        assert_eq!(k.program.mfma_flops(), 2 * 16 * 8 * 16 * 1000);
    }

    #[test]
    fn register_footprint_reflects_instruction() {
        let k = mma_loop_kernel(mixed_params(1, 1)).unwrap();
        // Mixed 16x16x16: A 2 + B 2 + scratch 16 arch VGPRs, 4 AccVGPRs.
        assert_eq!(k.arch_vgprs, 20);
        assert_eq!(k.acc_vgprs, 4);
    }

    #[test]
    fn gemm_tile_kernel_stages_through_lds() {
        let k = wmma_gemm_tile_kernel(MatrixArch::Cdna2, DType::F32, DType::F16, (16, 16, 16), 64)
            .unwrap();
        assert!(k.lds_bytes_per_workgroup > 0);
        assert_eq!(k.waves_per_workgroup, 4);
        let has_barrier = k
            .program
            .body
            .iter()
            .any(|op| matches!(op, SlotOp::Barrier));
        assert!(has_barrier);
    }

    #[test]
    fn snop_padding_scales_with_pipeline_depth() {
        // 16x16x16 (32 cycles) needs s_nop 4; 32x32x8 (64 cycles) s_nop 8.
        let k16 = mma_loop_kernel(mixed_params(1, 8)).unwrap();
        assert_eq!(k16.program.epilogue[0], SlotOp::SNop(4));
        let k32 = mma_loop_kernel(LoopKernelParams {
            shape: (32, 32, 8),
            ..mixed_params(1, 8)
        })
        .unwrap();
        assert_eq!(k32.program.epilogue[0], SlotOp::SNop(8));
    }

    #[test]
    fn built_kernels_lint_clean() {
        let die = mc_lint::default_die_for(MatrixArch::Cdna2);
        for k in [
            mma_loop_kernel(mixed_params(440, 1000)).unwrap(),
            wmma_gemm_tile_kernel(MatrixArch::Cdna2, DType::F32, DType::F16, (32, 32, 8), 16)
                .unwrap(),
        ] {
            let report = mc_lint::lint_kernel(&die, &k);
            assert!(report.is_clean(), "{}", report.render());
        }
    }

    #[test]
    fn built_kernels_execute_on_the_simulator() {
        let mut gpu = mc_sim::Gpu::mi250x();
        let k = mma_loop_kernel(mixed_params(440, 100_000)).unwrap();
        let r = gpu.launch(0, &k).unwrap();
        let tflops = r.tflops();
        assert!(
            (tflops - 175.0).abs() < 4.0,
            "one-GCD mixed plateau, got {tflops}"
        );
    }
}
