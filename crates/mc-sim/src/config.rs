//! Simulator configuration: the microarchitectural parameters that are
//! *calibrated* (measured once against published numbers) rather than
//! derived from first principles. DESIGN.md §6 lists the calibration
//! sources; every parameter here is held fixed across all experiments.

use mc_isa::specs::PackageSpec;
use mc_isa::MatrixArch;
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// Matrix-load-dependent clock-residency model.
///
/// Under sustained matrix-unit load, CDNA2 (like most modern GPUs) does
/// not hold its boost clock: effective frequency degrades roughly
/// linearly with matrix-pipe occupancy, more steeply for wider datatypes
/// (more switching capacitance per issue). This single mechanism
/// reproduces three observations at once: the paper's clean Table II
/// latencies (one wavefront ⇒ negligible load ⇒ full boost), the linear
/// low-occupancy region of Fig. 3, and the sustained plateaus at 85 / 90
/// / 92 % of peak for double/single/mixed (§V-B).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClockResidency {
    /// Fractional boost-clock loss at 100 % FP64 matrix occupancy.
    pub kappa_f64: f64,
    /// Loss at 100 % FP32 matrix occupancy.
    pub kappa_f32: f64,
    /// Loss at 100 % FP16/BF16/INT8 matrix occupancy.
    pub kappa_f16: f64,
    /// Loss at 100 % vector-ALU occupancy (mild).
    pub kappa_valu: f64,
}

impl ClockResidency {
    /// The loss coefficient for a matrix instruction's input datatype.
    pub fn kappa_for(&self, ab: DType) -> f64 {
        match ab {
            DType::F64 => self.kappa_f64,
            DType::F32 => self.kappa_f32,
            _ => self.kappa_f16,
        }
    }
}

/// Full simulator configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The package being simulated.
    pub package: PackageSpec,
    /// Clock-residency model (see [`ClockResidency`]).
    pub residency: ClockResidency,
    /// Whether the package power governor is enabled. When enabled, the
    /// clock is reduced so package power stays at or below
    /// `governor_target_fraction × power_cap` (the mechanism behind the
    /// paper's FP64 two-GCD anomaly, §V-C/§VI).
    pub governor_enabled: bool,
    /// Governor set-point as a fraction of the power cap.
    pub governor_target_fraction: f64,
    /// Fixed kernel launch/teardown latency in seconds (host→device
    /// doorbell, CP dispatch). Dominates tiny kernels (Fig. 6/8 at N=16).
    pub launch_overhead_s: f64,
    /// DRAM efficiency for well-behaved streaming access (fraction of
    /// peak pin bandwidth).
    pub dram_streaming_efficiency: f64,
    /// DRAM efficiency multiplier under power-of-two channel camping
    /// with an L2-exceeding working set.
    pub dram_pow2_penalty: f64,
    /// LDS bandwidth per CU in bytes per cycle.
    pub lds_bytes_per_cycle_per_cu: f64,
    /// Relative amplitude of the deterministic telemetry noise injected
    /// into power samples (the paper reports <2 % variance).
    pub telemetry_noise: f64,
}

impl SimConfig {
    /// Calibrated configuration for the architecture of `package`.
    pub fn for_package(package: PackageSpec) -> Self {
        let residency = match package.die.arch {
            MatrixArch::Cdna1 | MatrixArch::Cdna2 => ClockResidency {
                // Calibrated once against §V-B sustained plateaus:
                // 85 % (FP64), 90 % (FP32), 92 % (FP16-mixed) of peak.
                kappa_f64: 0.144,
                kappa_f32: 0.101,
                kappa_f16: 0.087,
                kappa_valu: 0.05,
            },
            MatrixArch::Ampere => ClockResidency {
                // §V-C: A100 reaches 99 % (FP64) and 93 % (mixed) of peak.
                kappa_f64: 0.005,
                kappa_f32: 0.07,
                kappa_f16: 0.07,
                kappa_valu: 0.04,
            },
        };
        SimConfig {
            package,
            residency,
            governor_enabled: true,
            governor_target_fraction: 0.966, // ≈541 W of the 560 W cap
            launch_overhead_s: 8e-6,
            dram_streaming_efficiency: 0.88,
            dram_pow2_penalty: 0.55,
            lds_bytes_per_cycle_per_cu: 128.0,
            telemetry_noise: 0.015,
        }
    }

    /// MI250X with default calibration.
    pub fn mi250x() -> Self {
        Self::for_package(mc_isa::specs::mi250x())
    }

    /// A100 with default calibration.
    pub fn a100() -> Self {
        Self::for_package(mc_isa::specs::a100())
    }

    /// Returns the configuration with the power governor disabled
    /// (used by the `ablation_governor` bench).
    pub fn without_governor(mut self) -> Self {
        self.governor_enabled = false;
        self
    }

    /// Validates the configuration, returning a description of the first
    /// inconsistency found. Useful when constructing custom devices.
    pub fn validate(&self) -> Result<(), String> {
        let die = &self.package.die;
        if die.compute_units == 0 || die.clock_mhz == 0 || die.simd_units_per_cu == 0 {
            return Err("die must have compute units, SIMDs, and a clock".into());
        }
        if self.package.dies == 0 {
            return Err("package needs at least one die".into());
        }
        if !(0.0..1.0).contains(&self.residency.kappa_f64)
            || !(0.0..1.0).contains(&self.residency.kappa_f16)
        {
            return Err("residency coefficients must be in [0, 1)".into());
        }
        if self.governor_target_fraction <= 0.0 || self.governor_target_fraction > 1.0 {
            return Err("governor target must be a fraction of the cap in (0, 1]".into());
        }
        if self.package.idle_power_w >= self.package.power_cap_w {
            return Err("idle power must sit below the power cap".into());
        }
        if self.dram_streaming_efficiency <= 0.0 || self.dram_streaming_efficiency > 1.0 {
            return Err("DRAM streaming efficiency must be in (0, 1]".into());
        }
        if self.launch_overhead_s < 0.0 || self.telemetry_noise < 0.0 {
            return Err("overheads and noise must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_calibration_identities() {
        // kappa values must reproduce the paper's sustained fractions.
        let cfg = SimConfig::mi250x();
        assert!((1.0 - cfg.residency.kappa_f64 - 0.856).abs() < 0.01);
        assert!((1.0 - cfg.residency.kappa_f32 - 0.899).abs() < 0.01);
        assert!((1.0 - cfg.residency.kappa_f16 - 0.913).abs() < 0.01);
    }

    #[test]
    fn governor_target_below_cap() {
        let cfg = SimConfig::mi250x();
        let target = cfg.governor_target_fraction * cfg.package.power_cap_w;
        assert!(target < cfg.package.power_cap_w);
        assert!((target - 541.0).abs() < 1.0); // the paper's peak FP64 draw
    }

    #[test]
    fn kappa_lookup() {
        let r = SimConfig::mi250x().residency;
        assert_eq!(r.kappa_for(DType::F64), r.kappa_f64);
        assert_eq!(r.kappa_for(DType::F16), r.kappa_f16);
        assert_eq!(r.kappa_for(DType::Bf16), r.kappa_f16);
        assert_eq!(r.kappa_for(DType::I8), r.kappa_f16);
    }

    #[test]
    fn stock_configurations_validate() {
        SimConfig::mi250x().validate().unwrap();
        SimConfig::a100().validate().unwrap();
        SimConfig::for_package(mc_isa::specs::mi100())
            .validate()
            .unwrap();
    }

    #[test]
    fn broken_configurations_are_caught() {
        let mut c = SimConfig::mi250x();
        c.package.die.compute_units = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::mi250x();
        c.governor_target_fraction = 1.5;
        assert!(c.validate().is_err());

        let mut c = SimConfig::mi250x();
        c.package.idle_power_w = 600.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::mi250x();
        c.residency.kappa_f64 = 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn without_governor_only_toggles_governor() {
        let a = SimConfig::mi250x();
        let b = a.clone().without_governor();
        assert!(!b.governor_enabled);
        assert_eq!(a.package, b.package);
        assert_eq!(a.residency, b.residency);
    }
}
