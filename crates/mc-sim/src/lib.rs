//! Event-driven, cycle-approximate simulator of the GPUs the paper
//! characterizes: the AMD MI250X (two CDNA2 GCDs) and the NVIDIA A100.
//!
//! The simulator executes [`mc_isa::KernelDesc`] instruction streams at
//! wavefront granularity with closed-form aggregation, modelling:
//!
//! - per-CU Matrix Core and SIMD pipelines with contention ([`engine`]);
//! - dispatch rounds (wavefronts do not migrate), reproducing the
//!   paper's partially-idle >440-wavefront phases;
//! - a matrix-load-dependent clock-residency model calibrated to the
//!   paper's sustained plateaus ([`config`]);
//! - DRAM bandwidth with power-of-two channel-camping effects
//!   ([`memory`]);
//! - MI200-style hardware performance counters ([`counters`]);
//! - physics-first power accounting with a package power-cap governor
//!   ([`device`]), plus ROCm-SMI-style telemetry sampling ([`smi`]);
//! - the paper's latency and throughput micro-benchmarks as reusable
//!   harnesses ([`microbench`]).

#![deny(missing_docs)]

pub mod cluster;
pub mod config;
pub mod counters;
pub mod device;
pub mod engine;
pub mod memory;
pub mod microbench;
pub mod occupancy;
pub mod registry;
pub mod shared;
pub mod smi;

pub use cluster::{frontier_projection, Cluster, ClusterResult};
pub use config::{ClockResidency, SimConfig};
pub use counters::{HwCounters, UnknownCounter, COUNTER_NAMES};
pub use device::{dominant_mfma_type, Gpu, KernelResult, PackageResult, PowerProfile};
pub use engine::{
    dynamic_energy_j, emit_kernel_events, execute, execute_with_sink, wave_demand,
    workgroups_per_cu, KernelExec, LaunchError, RoundBound, RoundTrace, TracePlacement, WaveDemand,
};
pub use microbench::{
    fig3_wavefront_sweep, measure_latency, throughput_run, throughput_run_all_dies, LatencyResult,
    ThroughputResult, LATENCY_LOOP_ITERS,
};
pub use occupancy::{occupancy, OccupancyLimit, OccupancyReport};
pub use registry::{DeviceId, DeviceRegistry, RegistryError};
pub use shared::SharedGpu;
pub use smi::{
    power_sample_histogram, register_sample_histogram, sample_stats, PowerSample, SampleStats, Smi,
};
