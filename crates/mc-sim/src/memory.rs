//! DRAM/L2 memory-system model.
//!
//! The simulator does not model individual cache lines; the GEMM planner
//! (which owns the blocking structure) estimates post-L2 DRAM traffic and
//! passes it via [`mc_isa::MemHints`]. This module turns that traffic into
//! time: effective bandwidth is peak pin bandwidth derated by a streaming
//! efficiency, with an additional penalty when large power-of-two strides
//! cause channel/bank camping on an L2-exceeding working set — the
//! mechanism behind the paper's Fig. 6/7 throughput dips at N = 2^k
//! (8192/16384/32768) that vanish again at the non-power-of-two N = 65000.

use mc_isa::specs::DieSpec;
use mc_isa::MemHints;

use crate::config::SimConfig;

/// Effective DRAM bandwidth in bytes/second for a kernel on one die.
pub fn effective_bandwidth(die: &DieSpec, cfg: &SimConfig, hints: &MemHints) -> f64 {
    let peak = die.hbm_bandwidth_gbs * 1e9;
    let mut eff = cfg.dram_streaming_efficiency;
    if hints.pow2_stride && exceeds_l2(die, hints) {
        eff *= cfg.dram_pow2_penalty;
    }
    // Working sets approaching HBM capacity pay growing TLB/page-walk
    // and row-buffer-locality costs: a mild linear decay, up to 15 % at
    // a full device — why the paper's largest problems sit slightly
    // below, not at, the mid-size throughput peaks.
    let resident = hints.working_set_bytes as f64 / ((u64::from(die.hbm_gib) << 30) as f64);
    eff *= 1.0 - 0.15 * resident.min(1.0);
    peak * eff
}

/// Time in seconds to move the kernel's DRAM traffic.
pub fn dram_time_s(die: &DieSpec, cfg: &SimConfig, hints: &MemHints) -> f64 {
    if hints.hbm_bytes == 0 {
        return 0.0;
    }
    hints.hbm_bytes as f64 / effective_bandwidth(die, cfg, hints)
}

/// Whether the kernel's working set exceeds the die's L2 capacity.
pub fn exceeds_l2(die: &DieSpec, hints: &MemHints) -> bool {
    hints.working_set_bytes > u64::from(die.l2_kib) * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> DieSpec {
        mc_isa::specs::mi250x().die
    }

    fn cfg() -> SimConfig {
        SimConfig::mi250x()
    }

    #[test]
    fn streaming_bandwidth_derated_from_peak() {
        let hints = MemHints {
            hbm_bytes: 1_000_000_000,
            working_set_bytes: 1 << 20,
            ..MemHints::default()
        };
        let bw = effective_bandwidth(&die(), &cfg(), &hints);
        // Tiny working set: capacity decay is negligible (<0.01%).
        assert!((bw - 1638.0e9 * 0.88).abs() / bw < 1e-4, "{bw}");
    }

    #[test]
    fn pow2_penalty_requires_l2_overflow() {
        // pow2 stride but tiny working set: no penalty (fits in L2).
        let small = MemHints {
            hbm_bytes: 1,
            working_set_bytes: 1 << 20,
            pow2_stride: true,
            ..MemHints::default()
        };
        let big = MemHints {
            working_set_bytes: 1 << 30,
            ..small
        };
        let c = cfg();
        let d = die();
        assert!(effective_bandwidth(&d, &c, &small) > effective_bandwidth(&d, &c, &big));
        let ratio = effective_bandwidth(&d, &c, &big) / effective_bandwidth(&d, &c, &small);
        // The penalty, modulo the (sub-percent) capacity-decay difference.
        assert!((ratio - c.dram_pow2_penalty).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn capacity_decay_reduces_bandwidth_near_full_device() {
        let small = MemHints {
            hbm_bytes: 1,
            working_set_bytes: 1 << 20,
            ..MemHints::default()
        };
        let full = MemHints {
            working_set_bytes: 64 << 30,
            ..small
        };
        let d = die();
        let c = cfg();
        let ratio = effective_bandwidth(&d, &c, &full) / effective_bandwidth(&d, &c, &small);
        assert!((ratio - 0.85).abs() < 0.001, "{ratio}");
    }

    #[test]
    fn zero_traffic_takes_zero_time() {
        let hints = MemHints::default();
        assert_eq!(dram_time_s(&die(), &cfg(), &hints), 0.0);
    }

    #[test]
    fn dram_time_scales_linearly() {
        let mk = |bytes| MemHints {
            hbm_bytes: bytes,
            working_set_bytes: 1 << 33,
            ..MemHints::default()
        };
        let t1 = dram_time_s(&die(), &cfg(), &mk(1 << 30));
        let t2 = dram_time_s(&die(), &cfg(), &mk(1 << 31));
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
