//! The execution engine: turns a [`KernelDesc`] into cycles, time,
//! occupancy, and counter increments for one die.
//!
//! # Execution model
//!
//! The engine works at wavefront-instruction granularity with closed-form
//! aggregation (DESIGN.md decision 1). Each CU pairs each of its four
//! SIMD units with one Matrix Core. A wavefront executes its program
//! in order; when `w` wavefronts are resident on one SIMD/Matrix-Core
//! pair, each pipeline serializes their demands. The per-iteration time
//! for one wave is therefore
//!
//! ```text
//! T_iter(w) = max( self-serial latency,          — dependent-issue chain
//!                  w · Σ matrix-unit cycles,     — Matrix Core occupancy
//!                  w · Σ SIMD issue cycles,      — issue-port occupancy
//!                  w · Σ LDS cycles / pair-share) — LDS bandwidth
//! ```
//!
//! Workgroups are dispatched in rounds (as on hardware: waves do not
//! migrate). The paper's own description of the >440-wavefront regime —
//! "440 will execute immediately ... the remaining 220 will then execute
//! in a second phase during which half the Matrix Cores are idle"
//! (§V-B) — is exactly this round model.
//!
//! Clock behaviour follows the calibrated residency model in
//! [`crate::config::ClockResidency`]: one wavefront measuring instruction
//! latency sees the full boost clock (clean Table II numbers); a die full
//! of MFMA traffic settles at the sustained plateau.

use mc_isa::specs::{DieSpec, PackageSpec};
use mc_isa::{KernelDesc, SlotOp, WaveProgram};
use mc_types::DType;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::counters::HwCounters;
use crate::memory;

/// Aggregate pipeline demand of one pass over a slice of slots.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct SliceDemand {
    /// Serial (dependent-chain) cycles: every op's latency back to back.
    self_cycles: f64,
    /// Matrix-unit busy cycles.
    mc_cycles: f64,
    /// SIMD issue-port cycles (VALU passes + one issue slot per other op).
    simd_cycles: f64,
    /// LDS bytes moved per wavefront.
    lds_bytes: f64,
    /// Matrix-unit cycles broken down by input datatype (for residency).
    mc_cycles_f64: f64,
    mc_cycles_f32: f64,
    mc_cycles_f16: f64,
    /// Synchronization-stall cycles inside the dependent chain:
    /// `s_waitcnt`, `s_barrier`, and `s_nop` hazard slots. A subset of
    /// `self_cycles`; the diagnostic layer reads their share to call a
    /// kernel barrier-stalled.
    wait_cycles: f64,
}

impl SliceDemand {
    fn add(&mut self, op: &SlotOp, times: f64) {
        match op {
            SlotOp::Mfma(i) => {
                let c = f64::from(i.latency_cycles) * times;
                self.mc_cycles += c;
                // Issuing an MFMA occupies the SIMD issue port for the
                // four quarter-wave operand-read passes.
                self.simd_cycles += 4.0 * times;
                self.self_cycles += c;
                match i.ab {
                    DType::F64 => self.mc_cycles_f64 += c,
                    DType::F32 => self.mc_cycles_f32 += c,
                    _ => self.mc_cycles_f16 += c,
                }
            }
            SlotOp::Valu(v) => {
                let c = f64::from(v.issue_cycles()) * times;
                self.simd_cycles += c;
                self.self_cycles += c;
            }
            SlotOp::GlobalLoad { .. } | SlotOp::GlobalStore { .. } => {
                // One issue slot; latency is modelled at kernel level via
                // the DRAM time, overlapped with compute or serialized
                // behind it per the kernel's `MemHints::buffering`.
                self.simd_cycles += times;
                self.self_cycles += times;
            }
            SlotOp::LdsRead { bytes_per_lane, .. } | SlotOp::LdsWrite { bytes_per_lane, .. } => {
                self.simd_cycles += times;
                self.self_cycles += times;
                self.lds_bytes += f64::from(*bytes_per_lane) * 64.0 * times;
            }
            SlotOp::SNop(n) => {
                self.self_cycles += f64::from(*n) * times;
                self.wait_cycles += f64::from(*n) * times;
            }
            SlotOp::Waitcnt(_) | SlotOp::Barrier => {
                // Synchronization: one scalar-pipe slot each, but the
                // wave is stalled, not working — tallied separately so
                // the stall share is observable downstream.
                self.self_cycles += times;
                self.wait_cycles += times;
            }
            SlotOp::Scalar => {
                // Scalar pipe work: free on the vector pipes, one issue slot.
                self.self_cycles += times;
            }
        }
    }

    fn of_program(p: &WaveProgram) -> SliceDemand {
        let mut d = SliceDemand::default();
        for (op, times) in p.dynamic_slots() {
            d.add(op, times as f64);
        }
        d
    }
}

/// Per-wave pipeline demand of a kernel's program: the same aggregation
/// the engine's dispatch-round loop prices every round with, exposed so
/// analytic scorers (`mc-blas`'s Eq. 2 tier) can mirror the engine's
/// first-order cost structure without running it — and so the `insight`
/// drift gate measures genuine model residuals instead of bookkeeping
/// differences.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WaveDemand {
    /// Serial dependent-chain cycles: every op's latency back to back.
    pub dependent_chain_cycles: f64,
    /// Matrix-unit busy cycles per wave.
    pub mc_cycles: f64,
    /// SIMD issue-port cycles per wave (VALU passes plus one issue slot
    /// per load/store/LDS op, four per MFMA operand read).
    pub simd_cycles: f64,
    /// LDS bytes moved per wave.
    pub lds_bytes: f64,
    /// Matrix cycles by input datatype `(f64, f32, f16-class)` — the
    /// weights the residency model applies to the clock.
    pub mc_cycles_by_type: (f64, f64, f64),
}

/// Computes the per-wave [`WaveDemand`] of a kernel's program.
pub fn wave_demand(k: &KernelDesc) -> WaveDemand {
    let d = SliceDemand::of_program(&k.program);
    WaveDemand {
        dependent_chain_cycles: d.self_cycles,
        mc_cycles: d.mc_cycles,
        simd_cycles: d.simd_cycles,
        lds_bytes: d.lds_bytes,
        mc_cycles_by_type: (d.mc_cycles_f64, d.mc_cycles_f32, d.mc_cycles_f16),
    }
}

/// How many workgroups of this kernel fit on one CU simultaneously.
///
/// Returns `None` if a single workgroup exceeds CU resources.
pub fn workgroups_per_cu(die: &DieSpec, k: &KernelDesc) -> Option<u32> {
    if k.waves_per_workgroup == 0 {
        return None;
    }
    // LDS limit.
    let by_lds = die
        .lds_bytes_per_cu
        .checked_div(k.lds_bytes_per_workgroup)
        .unwrap_or(u32::MAX);
    // Register limits bound waves per SIMD.
    let by_vgpr = die
        .vgprs_per_simd
        .checked_div(k.arch_vgprs)
        .unwrap_or(die.max_waves_per_simd);
    let by_agpr = die
        .vgprs_per_simd
        .checked_div(k.acc_vgprs)
        .unwrap_or(die.max_waves_per_simd);
    let waves_per_simd = die.max_waves_per_simd.min(by_vgpr).min(by_agpr);
    let waves_per_cu = waves_per_simd * die.simd_units_per_cu;
    let by_waves = waves_per_cu / k.waves_per_workgroup;
    let limit = by_lds.min(by_waves);
    (limit >= 1).then_some(limit)
}

/// What limited one dispatch round's duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundBound {
    /// Matrix-unit occupancy was the bottleneck.
    MatrixCore,
    /// SIMD issue bandwidth was the bottleneck.
    SimdIssue,
    /// LDS bandwidth was the bottleneck.
    Lds,
    /// The serial dependent-instruction chain (low occupancy).
    DependentChain,
    /// No work.
    Empty,
}

/// One dispatch round of a kernel execution (the unit of the paper's
/// "first phase / second phase" description for >440 wavefronts, §V-B).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// Workgroups dispatched in this round.
    pub workgroups: u64,
    /// Wavefronts resident per SIMD/Matrix-Core pair (most-loaded CU).
    pub waves_per_pair: f64,
    /// Round makespan in cycles.
    pub cycles: f64,
    /// Fraction of the die's SIMD pairs that had work this round.
    pub pair_utilization: f64,
    /// The limiting pipeline.
    pub bound: RoundBound,
    /// Matrix-unit busy cycles on the most-loaded SIMD pair this round
    /// (≤ `cycles`; the tracer renders these as pipeline busy spans).
    pub mc_busy_cycles: f64,
    /// SIMD issue-port busy cycles on the most-loaded pair (≤ `cycles`).
    pub simd_busy_cycles: f64,
    /// LDS busy cycles on the most-loaded pair (≤ `cycles`).
    pub lds_busy_cycles: f64,
}

/// The result of executing one kernel on one die (pre-governor).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelExec {
    /// Compute-side cycles (makespan over all dispatch rounds).
    pub compute_cycles: f64,
    /// Effective clock in Hz after the residency model.
    pub effective_clock_hz: f64,
    /// DRAM transfer time in seconds.
    pub dram_time_s: f64,
    /// Total kernel time in seconds (max of compute/DRAM, plus launch
    /// overhead) at the residency clock, before any governor action.
    pub time_s: f64,
    /// Total operations performed (FLOPs, or integer ops).
    pub flops: u64,
    /// Operations delivered by matrix units.
    pub mfma_flops: u64,
    /// Matrix-unit FLOPs by input datatype: (f64, f32, f16-class).
    pub mfma_flops_by_type: (u64, u64, u64),
    /// Vector-ALU FLOPs.
    pub valu_flops: u64,
    /// DRAM traffic in bytes.
    pub hbm_bytes: u64,
    /// Average matrix-unit occupancy across the kernel (0–1).
    pub matrix_occupancy: f64,
    /// Average SIMD issue occupancy (0–1).
    pub simd_occupancy: f64,
    /// Counter increments produced by this launch.
    pub counters: HwCounters,
    /// Fraction of compute time that is matrix-unit bound (diagnostic).
    pub compute_bound_fraction: f64,
    /// Share of the per-wave dependent chain spent in synchronization
    /// stalls (`s_waitcnt`, `s_barrier`, `s_nop` hazard slots), in
    /// `[0, 1]`. High values flag a kernel whose serial chain is
    /// dominated by waiting rather than issuing.
    pub wait_stall_fraction: f64,
    /// DRAM time not hidden behind compute, in seconds: the whole
    /// transfer for single-buffered kernels, the overhang
    /// `max(0, dram − compute)` for double-buffered ones.
    pub exposed_dram_time_s: f64,
    /// Share of the kernel wall time stalled on exposed DRAM transfers
    /// (`exposed_dram_time_s / time_s`), in `[0, 1]`.
    pub memory_stall_fraction: f64,
    /// Per-dispatch-round execution trace.
    pub rounds: Vec<RoundTrace>,
}

/// Errors from kernel validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// The kernel requests more resources than one CU provides.
    ResourceExhausted {
        /// Explanation of the exceeded resource.
        what: String,
    },
    /// The kernel has no work (zero workgroups or empty program).
    EmptyLaunch,
    /// Die index out of range for the package.
    InvalidDie {
        /// The requested die index.
        die: usize,
        /// Number of dies in the package.
        dies: usize,
    },
}

impl core::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LaunchError::ResourceExhausted { what } => {
                write!(f, "kernel exceeds CU resources: {what}")
            }
            LaunchError::EmptyLaunch => write!(f, "kernel has no work"),
            LaunchError::InvalidDie { die, dies } => {
                write!(f, "die index {die} out of range (package has {dies})")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Executes one kernel on one die, returning timing, occupancy, and
/// counters. Deterministic and closed-form.
pub fn execute(die: &DieSpec, cfg: &SimConfig, k: &KernelDesc) -> Result<KernelExec, LaunchError> {
    if k.workgroups == 0
        || (k.program.body.is_empty()
            && k.program.prologue.is_empty()
            && k.program.epilogue.is_empty())
    {
        return Err(LaunchError::EmptyLaunch);
    }
    if k.lds_bytes_per_workgroup > die.lds_bytes_per_cu {
        return Err(LaunchError::ResourceExhausted {
            what: format!(
                "LDS {} B per workgroup > {} B per CU",
                k.lds_bytes_per_workgroup, die.lds_bytes_per_cu
            ),
        });
    }
    let wg_per_cu = workgroups_per_cu(die, k).ok_or_else(|| LaunchError::ResourceExhausted {
        what: format!(
            "workgroup of {} waves with {}v/{}a VGPRs does not fit a CU",
            k.waves_per_workgroup, k.arch_vgprs, k.acc_vgprs
        ),
    })?;

    // Static-verification backstop: compile paths (mc-wmma's builder,
    // mc-blas's planner) lint before handing a kernel to the engine, so
    // an error-level finding reaching this point is a bug in the caller.
    // Debug builds only — the check is redundant on the release sweeps.
    #[cfg(debug_assertions)]
    {
        let report = mc_lint::lint_kernel(die, k);
        debug_assert!(
            !report.has_errors(),
            "kernel reached the engine with static-verification errors:\n{}",
            report.render()
        );
    }

    let demand = SliceDemand::of_program(&k.program);
    let simds = f64::from(die.simd_units_per_cu);
    let cus = f64::from(die.compute_units);
    let pairs_total = cus * simds;

    // Dispatch rounds. Each round fills up to `wg_per_cu` workgroups on
    // every CU; the most-loaded SIMD pair of the round sets its makespan.
    let capacity_per_round = u64::from(wg_per_cu) * die.compute_units as u64;
    let mut remaining = k.workgroups;
    let mut total_cycles = 0.0_f64;
    let mut mc_busy_weighted = 0.0_f64; // Σ round_cycles × occupancy
    let mut simd_busy_weighted = 0.0_f64;

    // LDS bandwidth share per SIMD pair, bytes per cycle.
    let lds_share = cfg.lds_bytes_per_cycle_per_cu / simds;

    let round_count = k.workgroups.div_ceil(capacity_per_round.max(1)) as usize;
    let mut rounds = Vec::with_capacity(round_count);
    while remaining > 0 {
        let this_round = remaining.min(capacity_per_round);
        remaining -= this_round;

        // Workgroups per CU this round (ceil: the most-loaded CU governs).
        let wg_cu = this_round.div_ceil(die.compute_units as u64);
        let waves_cu = wg_cu * u64::from(k.waves_per_workgroup);
        // Waves per SIMD pair on the most-loaded CU.
        let w = (waves_cu as f64 / simds).ceil().max(1.0);

        let mc = w * demand.mc_cycles;
        let simd = w * demand.simd_cycles;
        let lds = if lds_share > 0.0 {
            w * demand.lds_bytes / lds_share
        } else {
            0.0
        };
        // The binding resource is selected by max-index, not by
        // re-comparing floats for equality afterwards: the earliest
        // entry attaining the maximum wins, so exact ties resolve
        // deterministically in priority order (Matrix Core > SIMD >
        // LDS > dependent chain) without any epsilon.
        let candidates = [
            (mc, RoundBound::MatrixCore),
            (simd, RoundBound::SimdIssue),
            (lds, RoundBound::Lds),
            (demand.self_cycles, RoundBound::DependentChain),
        ];
        let mut best = candidates.len() - 1;
        for i in (0..candidates.len()).rev() {
            if candidates[i].0 >= candidates[best].0 {
                best = i;
            }
        }
        let t_wave = candidates[best].0;
        total_cycles += t_wave;

        // Occupancy bookkeeping: how busy matrix units and SIMDs are,
        // averaged over all pairs on the die during this round.
        let active_pairs =
            ((this_round * u64::from(k.waves_per_workgroup)) as f64).min(pairs_total * w);
        let pair_fraction = (active_pairs / w).min(pairs_total) / pairs_total;
        if t_wave > 0.0 {
            mc_busy_weighted += t_wave * (mc / t_wave).min(1.0) * pair_fraction;
            simd_busy_weighted += t_wave * (simd / t_wave).min(1.0) * pair_fraction;
        }

        // Trace entry: what bound this round.
        let bound = if t_wave <= 0.0 {
            RoundBound::Empty
        } else {
            candidates[best].1
        };
        rounds.push(RoundTrace {
            workgroups: this_round,
            waves_per_pair: w,
            cycles: t_wave,
            pair_utilization: pair_fraction,
            bound,
            mc_busy_cycles: mc.min(t_wave),
            simd_busy_cycles: simd.min(t_wave),
            lds_busy_cycles: lds.min(t_wave),
        });
    }

    let matrix_occupancy = if total_cycles > 0.0 {
        mc_busy_weighted / total_cycles
    } else {
        0.0
    };
    let simd_occupancy = if total_cycles > 0.0 {
        simd_busy_weighted / total_cycles
    } else {
        0.0
    };

    // Residency: weight each datatype's kappa by its share of matrix time.
    let mc_all = demand.mc_cycles_f64 + demand.mc_cycles_f32 + demand.mc_cycles_f16;
    let kappa_mc = if mc_all > 0.0 {
        (cfg.residency.kappa_f64 * demand.mc_cycles_f64
            + cfg.residency.kappa_f32 * demand.mc_cycles_f32
            + cfg.residency.kappa_f16 * demand.mc_cycles_f16)
            / mc_all
    } else {
        0.0
    };
    let clock_loss = kappa_mc * matrix_occupancy
        + cfg.residency.kappa_valu * simd_occupancy * (1.0 - matrix_occupancy);
    let effective_clock_hz = die.clock_hz() * (1.0 - clock_loss).clamp(0.05, 1.0);

    let compute_time_s = total_cycles / effective_clock_hz;
    let dram_time_s = memory::dram_time_s(die, cfg, &k.mem_hints);
    // Double-buffered kernels hide DRAM latency behind compute (the two
    // phases pipeline, so the slower one sets the pace); single-buffered
    // kernels wait for each panel before computing on it, so the phases
    // serialize. The planner declares which discipline it compiled.
    let overlapped = match k.mem_hints.buffering {
        mc_isa::Buffering::Double => compute_time_s.max(dram_time_s),
        mc_isa::Buffering::Single => compute_time_s + dram_time_s,
    };
    let time_s = overlapped + cfg.launch_overhead_s;
    // DRAM time the compute pipeline actually waits for: the whole
    // transfer when single-buffered, only the overhang when the
    // double-buffered pipeline hides it behind compute.
    let exposed_dram_time_s = match k.mem_hints.buffering {
        mc_isa::Buffering::Double => (dram_time_s - compute_time_s).max(0.0),
        mc_isa::Buffering::Single => dram_time_s,
    };

    // FLOP and counter accounting.
    let total_waves = k.total_waves();
    let mut counters = HwCounters::default();
    for (op, times) in k.program.dynamic_slots() {
        counters.record(op, times * total_waves);
    }
    counters.waves_launched = total_waves;
    counters.workgroups_launched = k.workgroups;

    let flops = k.program.flops() * total_waves;
    let mfma_flops = k.program.mfma_flops() * total_waves;
    let mut by_type = (0u64, 0u64, 0u64);
    for (op, times) in k.program.dynamic_slots() {
        if let SlotOp::Mfma(i) = op {
            let f = i.flops() * times * total_waves;
            match i.ab {
                DType::F64 => by_type.0 += f,
                DType::F32 => by_type.1 += f,
                _ => by_type.2 += f,
            }
        }
    }

    Ok(KernelExec {
        compute_cycles: total_cycles,
        effective_clock_hz,
        dram_time_s,
        time_s,
        flops,
        mfma_flops,
        mfma_flops_by_type: by_type,
        valu_flops: flops - mfma_flops,
        hbm_bytes: k.mem_hints.hbm_bytes,
        matrix_occupancy,
        simd_occupancy,
        counters,
        compute_bound_fraction: if time_s > 0.0 {
            compute_time_s / (compute_time_s + dram_time_s).max(f64::MIN_POSITIVE)
        } else {
            1.0
        },
        wait_stall_fraction: if demand.self_cycles > 0.0 {
            (demand.wait_cycles / demand.self_cycles).clamp(0.0, 1.0)
        } else {
            0.0
        },
        exposed_dram_time_s,
        memory_stall_fraction: if time_s > 0.0 {
            (exposed_dram_time_s / time_s).clamp(0.0, 1.0)
        } else {
            0.0
        },
        rounds,
    })
}

/// Dynamic (per-operation) energy of one execution in joules, charged
/// from the package's energy table (Eq. 3 dynamic term): matrix-unit
/// FLOPs priced per input datatype, VALU FLOPs, and HBM traffic per
/// byte. The static idle/baseline terms accrue with wall time and are
/// accounted by the package power model, not here.
pub fn dynamic_energy_j(spec: &PackageSpec, e: &KernelExec) -> f64 {
    let t = &spec.energy_pj;
    let (f64f, f32f, f16f) = e.mfma_flops_by_type;
    (f64f as f64 * t.mfma_f64
        + f32f as f64 * t.mfma_f32
        + f16f as f64 * t.mfma_f16
        + e.valu_flops as f64 * t.valu
        + e.hbm_bytes as f64 * t.hbm_per_byte)
        * 1e-12
}

/// Where one kernel's events land on a shared trace timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePlacement<'a> {
    /// Die index (becomes the trace "process").
    pub die: u32,
    /// Launch start on the trace timeline, in seconds.
    pub t0_s: f64,
    /// Governor clock scale applied on top of the residency clock
    /// (1.0 = no throttling).
    pub clock_scale: f64,
    /// Wall time of the kernel after governor action, in seconds.
    pub wall_time_s: f64,
    /// Name of the package specification the kernel ran on — the join
    /// key `mc-obs` uses to attribute kernel spans back to a device
    /// (empty when the caller has no package context).
    pub spec: &'a str,
    /// Dynamic energy charged to this kernel in joules (Eq. 3 dynamic
    /// term; idle/baseline static power is apportioned downstream).
    pub dynamic_energy_j: f64,
}

/// Emits the execution timeline of one kernel into a trace sink: the
/// kernel span (tagged with every non-zero hardware counter as a
/// `ctr.*` argument), one span per dispatch round, per-pipeline busy
/// intervals of the most-loaded CU, the HBM transfer window, and
/// occupancy counter samples.
///
/// No-op when the sink is disabled; untraced launches build no events.
pub fn emit_kernel_events(
    sink: &dyn mc_trace::TraceSink,
    at: &TracePlacement,
    k: &KernelDesc,
    e: &KernelExec,
) {
    use mc_trace::{ArgValue, Category, SpanEvent, TraceEvent, Track};

    if !sink.enabled() {
        return;
    }
    let t0 = at.t0_s * 1e6;
    let wall = at.wall_time_s * 1e6;
    let clock_hz = e.effective_clock_hz * at.clock_scale;
    let us_per_cycle = 1e6 / clock_hz;

    let mut args: Vec<(String, ArgValue)> = vec![
        ("spec".into(), at.spec.into()),
        ("flops".into(), e.flops.into()),
        ("mfma_flops".into(), e.mfma_flops.into()),
        ("mfma_flops_f64".into(), e.mfma_flops_by_type.0.into()),
        ("mfma_flops_f32".into(), e.mfma_flops_by_type.1.into()),
        ("mfma_flops_f16".into(), e.mfma_flops_by_type.2.into()),
        ("valu_flops".into(), e.valu_flops.into()),
        ("hbm_bytes".into(), e.hbm_bytes.into()),
        ("compute_cycles".into(), e.compute_cycles.into()),
        ("effective_clock_hz".into(), clock_hz.into()),
        ("clock_scale".into(), at.clock_scale.into()),
        ("dram_time_s".into(), e.dram_time_s.into()),
        ("dynamic_energy_j".into(), at.dynamic_energy_j.into()),
        ("matrix_occupancy".into(), e.matrix_occupancy.into()),
        ("simd_occupancy".into(), e.simd_occupancy.into()),
        ("rounds".into(), (e.rounds.len() as u64).into()),
        (
            "compute_bound_fraction".into(),
            e.compute_bound_fraction.into(),
        ),
        ("wait_stall_fraction".into(), e.wait_stall_fraction.into()),
        ("exposed_dram_time_s".into(), e.exposed_dram_time_s.into()),
        (
            "memory_stall_fraction".into(),
            e.memory_stall_fraction.into(),
        ),
    ];
    for (name, value) in e.counters.iter() {
        if value > 0 {
            args.push((format!("ctr.{name}"), value.into()));
        }
    }
    sink.record(TraceEvent::Span(SpanEvent {
        name: k.name.clone(),
        category: Category::Kernel,
        device: at.die,
        track: Track::Launch,
        t0_us: t0,
        dur_us: wall,
        args,
    }));

    // Dispatch rounds tile the compute window back to back; their total
    // (compute_cycles / clock) never exceeds the wall time.
    let mut cursor = t0;
    for (i, round) in e.rounds.iter().enumerate() {
        let dur = round.cycles * us_per_cycle;
        sink.record(TraceEvent::Span(SpanEvent {
            name: format!("round {i}"),
            category: Category::Round,
            device: at.die,
            track: Track::Launch,
            t0_us: cursor,
            dur_us: dur,
            args: vec![
                ("workgroups".into(), round.workgroups.into()),
                ("waves_per_pair".into(), round.waves_per_pair.into()),
                ("pair_utilization".into(), round.pair_utilization.into()),
                ("bound".into(), format!("{:?}", round.bound).into()),
            ],
        }));
        let pipes = [
            (round.mc_busy_cycles, Track::MatrixPipe(0), "matrix busy"),
            (
                round.simd_busy_cycles,
                Track::SimdPipe(0),
                "simd issue busy",
            ),
            (round.lds_busy_cycles, Track::LdsPipe(0), "lds busy"),
        ];
        for (busy_cycles, track, name) in pipes {
            let busy_us = busy_cycles.min(round.cycles) * us_per_cycle;
            if busy_us > 0.0 {
                sink.record(TraceEvent::Span(SpanEvent {
                    name: name.to_owned(),
                    category: Category::Pipeline,
                    device: at.die,
                    track,
                    t0_us: cursor,
                    dur_us: busy_us,
                    args: vec![("busy_cycles".into(), busy_cycles.into())],
                }));
            }
        }
        cursor += dur;
    }

    // HBM transfer window (overlapped with compute by the engine model,
    // so it starts at launch and is bounded by the wall time).
    if e.hbm_bytes > 0 && e.dram_time_s > 0.0 {
        sink.record(TraceEvent::Span(SpanEvent {
            name: "hbm transfer".to_owned(),
            category: Category::Memory,
            device: at.die,
            track: Track::Memory,
            t0_us: t0,
            dur_us: (e.dram_time_s * 1e6).min(wall),
            args: vec![("bytes".into(), e.hbm_bytes.into())],
        }));
    }

    // Occupancy counter tracks: step up at launch, back to zero at end.
    for (name, value) in [
        ("matrix_occupancy", e.matrix_occupancy),
        ("simd_occupancy", e.simd_occupancy),
    ] {
        sink.record(TraceEvent::Counter {
            name: name.to_owned(),
            device: at.die,
            t_us: t0,
            value,
        });
        sink.record(TraceEvent::Counter {
            name: name.to_owned(),
            device: at.die,
            t_us: t0 + wall,
            value: 0.0,
        });
    }
}

/// Executes one kernel and emits its timeline into `sink` at the origin
/// of the trace timeline (placement `t0_s = 0`, no governor scaling).
/// Packages launched through [`crate::Gpu`] get placement and governor
/// context automatically; this entry point serves engine-level tooling.
pub fn execute_with_sink(
    die: &DieSpec,
    cfg: &SimConfig,
    k: &KernelDesc,
    sink: &dyn mc_trace::TraceSink,
) -> Result<KernelExec, LaunchError> {
    let exec = execute(die, cfg, k)?;
    emit_kernel_events(
        sink,
        &TracePlacement {
            die: 0,
            t0_s: 0.0,
            clock_scale: 1.0,
            wall_time_s: exec.time_s,
            spec: &cfg.package.name,
            dynamic_energy_j: dynamic_energy_j(&cfg.package, &exec),
        },
        k,
        &exec,
    );
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::{cdna2_catalog, KernelDesc, WaveProgram};

    fn die() -> DieSpec {
        mc_isa::specs::mi250x().die
    }

    fn cfg() -> SimConfig {
        SimConfig::mi250x()
    }

    fn mfma_loop_kernel(n_waves: u64, iters: u64) -> KernelDesc {
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        let program = WaveProgram::looped(vec![SlotOp::Mfma(i)], iters);
        KernelDesc {
            workgroups: n_waves,
            waves_per_workgroup: 1,
            ..KernelDesc::new("mfma_loop", program)
        }
    }

    #[test]
    fn single_wave_sees_pure_latency_and_boost_clock() {
        let k = mfma_loop_kernel(1, 1_000_000);
        let e = execute(&die(), &cfg(), &k).unwrap();
        // 32 cycles per iteration, no contention.
        assert!((e.compute_cycles - 32.0e6).abs() < 1.0);
        // Occupancy 1/440: essentially full boost clock.
        assert!(e.effective_clock_hz > 0.999 * die().clock_hz() * (1.0 - 0.087));
        assert!(e.effective_clock_hz <= die().clock_hz());
    }

    #[test]
    fn saturated_die_hits_calibrated_plateau() {
        let k = mfma_loop_kernel(440, 100_000);
        let e = execute(&die(), &cfg(), &k).unwrap();
        let tflops = e.flops as f64 / e.time_s / 1e12;
        // One-GCD mixed plateau: ~175 TFLOPS (paper §V-B), 91-92% of 191.6.
        assert!((tflops - 175.0).abs() < 3.0, "got {tflops}");
    }

    #[test]
    fn plateau_flat_beyond_saturation() {
        let t = |waves| {
            let k = mfma_loop_kernel(waves, 50_000);
            let e = execute(&die(), &cfg(), &k).unwrap();
            e.flops as f64 / e.time_s / 1e12
        };
        let t440 = t(440);
        let t880 = t(880);
        let t1320 = t(1320);
        assert!((t880 - t440).abs() / t440 < 0.02, "{t440} vs {t880}");
        assert!((t1320 - t440).abs() / t440 < 0.02);
    }

    #[test]
    fn partial_saturation_penalized_as_paper_describes() {
        // 660 waves: two phases, second at half utilization -> 75% of plateau.
        let k660 = mfma_loop_kernel(660, 50_000);
        let k440 = mfma_loop_kernel(440, 50_000);
        let e660 = execute(&die(), &cfg(), &k660).unwrap();
        let e440 = execute(&die(), &cfg(), &k440).unwrap();
        let r = (e660.flops as f64 / e660.time_s) / (e440.flops as f64 / e440.time_s);
        assert!((r - 0.75).abs() < 0.03, "ratio {r}");
    }

    #[test]
    fn linear_region_scales_with_waves() {
        let t = |waves| {
            let k = mfma_loop_kernel(waves, 50_000);
            let e = execute(&die(), &cfg(), &k).unwrap();
            e.flops as f64 / e.time_s
        };
        let r = t(128) / t(64);
        assert!(
            (r - 2.0).abs() < 0.05,
            "doubling waves ~ doubles throughput, got {r}"
        );
    }

    #[test]
    fn fp64_plateau_is_85_percent() {
        let i = *cdna2_catalog()
            .find(DType::F64, DType::F64, 16, 16, 4)
            .unwrap();
        let program = WaveProgram::looped(vec![SlotOp::Mfma(i)], 100_000);
        let k = KernelDesc {
            workgroups: 440,
            waves_per_workgroup: 1,
            ..KernelDesc::new("f64", program)
        };
        let e = execute(&die(), &cfg(), &k).unwrap();
        let tflops = e.flops as f64 / e.time_s / 1e12;
        // ~41 TFLOPS = 85.6% of 47.9 (paper §V-B).
        assert!((tflops - 41.0).abs() < 1.0, "got {tflops}");
    }

    #[test]
    fn memory_bound_kernel_limited_by_dram() {
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        let program = WaveProgram::looped(vec![SlotOp::Mfma(i)], 10);
        let mut k = KernelDesc {
            workgroups: 440,
            waves_per_workgroup: 1,
            ..KernelDesc::new("membound", program)
        };
        k.mem_hints.hbm_bytes = 10 << 30; // 10 GiB of traffic
        let e = execute(&die(), &cfg(), &k).unwrap();
        assert!(
            e.time_s > 6e-3,
            "10 GiB at ~1.4 TB/s takes ~7 ms, got {}",
            e.time_s
        );
        assert!(e.compute_bound_fraction < 0.1);
    }

    #[test]
    fn single_buffering_serializes_dram_behind_compute() {
        use mc_isa::Buffering;
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        let program = WaveProgram::looped(vec![SlotOp::Mfma(i)], 100_000);
        let mut k = KernelDesc {
            workgroups: 440,
            waves_per_workgroup: 1,
            ..KernelDesc::new("buffered", program)
        };
        k.mem_hints.hbm_bytes = 1 << 30;
        let d = die();
        let c = cfg();
        let double = execute(&d, &c, &k).unwrap();
        k.mem_hints.buffering = Buffering::Single;
        let single = execute(&d, &c, &k).unwrap();
        // Same compute, same traffic; only the overlap model differs.
        assert_eq!(double.compute_cycles, single.compute_cycles);
        assert_eq!(double.dram_time_s, single.dram_time_s);
        let compute_s = double.compute_cycles / double.effective_clock_hz;
        let overhead = c.launch_overhead_s;
        let want_double = compute_s.max(double.dram_time_s) + overhead;
        let want_single = compute_s + single.dram_time_s + overhead;
        assert!((double.time_s - want_double).abs() / want_double < 1e-12);
        assert!((single.time_s - want_single).abs() / want_single < 1e-12);
        assert!(single.time_s > double.time_s, "serialization must cost");
    }

    #[test]
    fn counters_accumulate_per_wave() {
        let k = mfma_loop_kernel(10, 100);
        let e = execute(&die(), &cfg(), &k).unwrap();
        assert_eq!(e.counters.waves_launched, 10);
        assert_eq!(e.counters.mfma_mops_f16, 10 * 100 * 8192 / 512);
        assert_eq!(e.flops, 10 * 100 * 8192);
    }

    #[test]
    fn empty_and_oversized_kernels_rejected() {
        let k = KernelDesc::new("empty", WaveProgram::default());
        assert!(matches!(
            execute(&die(), &cfg(), &k),
            Err(LaunchError::EmptyLaunch)
        ));

        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        let program = WaveProgram::looped(vec![SlotOp::Mfma(i)], 1);
        let k = KernelDesc {
            lds_bytes_per_workgroup: 1 << 20,
            ..KernelDesc::new("fat", program)
        };
        assert!(matches!(
            execute(&die(), &cfg(), &k),
            Err(LaunchError::ResourceExhausted { .. })
        ));
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let d = die();
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        let program = WaveProgram::looped(vec![SlotOp::Mfma(i)], 1);
        let k = KernelDesc {
            arch_vgprs: 256, // only 2 waves per SIMD fit
            waves_per_workgroup: 1,
            ..KernelDesc::new("fatregs", program)
        };
        assert_eq!(workgroups_per_cu(&d, &k), Some(8));
        let k2 = KernelDesc {
            arch_vgprs: 64,
            ..k
        };
        assert_eq!(workgroups_per_cu(&d, &k2), Some(32)); // capped by max 8/SIMD
    }

    #[test]
    fn round_trace_reflects_two_phase_dispatch() {
        // 660 waves: phase 1 at full width, phase 2 half idle (§V-B).
        let k = mfma_loop_kernel(660, 1000);
        let e = execute(&die(), &cfg(), &k).unwrap();
        // Single round model with ceil distribution: one round, 2 waves
        // on the most-loaded pairs, 75% pair utilization.
        assert_eq!(e.rounds.len(), 1);
        assert_eq!(e.rounds[0].waves_per_pair, 2.0);
        assert!((e.rounds[0].pair_utilization - 0.75).abs() < 0.01);
        assert_eq!(e.rounds[0].bound, RoundBound::MatrixCore);

        // A saturated single-wave-per-pair kernel is bound by the
        // dependent chain and the matrix unit equally; we report MC.
        let k440 = mfma_loop_kernel(440, 1000);
        let e = execute(&die(), &cfg(), &k440).unwrap();
        assert_eq!(e.rounds.len(), 1);
        assert_eq!(e.rounds[0].bound, RoundBound::MatrixCore);
    }

    #[test]
    fn multi_round_kernels_trace_every_round() {
        // Occupancy cap is 32 waves/CU for this kernel: 110*32 = 3520
        // per round; 8000 waves need 3 rounds.
        let k = mfma_loop_kernel(8000, 100);
        let e = execute(&die(), &cfg(), &k).unwrap();
        assert_eq!(e.rounds.len(), 3);
        let total: u64 = e.rounds.iter().map(|r| r.workgroups).sum();
        assert_eq!(total, 8000);
        assert!((e.rounds.iter().map(|r| r.cycles).sum::<f64>() - e.compute_cycles).abs() < 1e-6);
    }

    #[test]
    fn round_invariants_hold_across_occupancy_regimes() {
        // The tracer consumes RoundTrace as ground truth; pin down its
        // invariants: busy ≤ makespan per round, rounds partition the
        // workgroup count, and waves-per-pair matches the ceil
        // distribution of the round's workgroups over SIMD pairs.
        let d = die();
        let simds = f64::from(d.simd_units_per_cu);
        for waves in [1u64, 64, 440, 660, 3520, 8000] {
            let k = mfma_loop_kernel(waves, 100);
            let e = execute(&d, &cfg(), &k).unwrap();
            assert!(!e.rounds.is_empty());
            let total_wg: u64 = e.rounds.iter().map(|r| r.workgroups).sum();
            assert_eq!(total_wg, k.workgroups, "waves {waves}");
            let cap = u64::from(workgroups_per_cu(&d, &k).unwrap()) * u64::from(d.compute_units);
            for r in &e.rounds {
                assert!(r.cycles > 0.0);
                assert!(r.workgroups > 0 && r.workgroups <= cap);
                assert!(r.mc_busy_cycles <= r.cycles + 1e-9);
                assert!(r.simd_busy_cycles <= r.cycles + 1e-9);
                assert!(r.lds_busy_cycles <= r.cycles + 1e-9);
                assert!(r.pair_utilization > 0.0 && r.pair_utilization <= 1.0);
                let wg_cu = r.workgroups.div_ceil(u64::from(d.compute_units));
                let expect_w = ((wg_cu * u64::from(k.waves_per_workgroup)) as f64 / simds)
                    .ceil()
                    .max(1.0);
                assert_eq!(r.waves_per_pair, expect_w, "waves {waves}");
            }
            // Only the last round may be ragged: every earlier round is full.
            for r in &e.rounds[..e.rounds.len() - 1] {
                assert_eq!(r.workgroups, cap, "waves {waves}");
            }
            // Round cycles tile the compute makespan monotonically.
            let total: f64 = e.rounds.iter().map(|r| r.cycles).sum();
            assert!((total - e.compute_cycles).abs() < 1e-6 * e.compute_cycles.max(1.0));
        }
    }

    #[test]
    fn execute_with_sink_emits_a_self_consistent_timeline() {
        let k = mfma_loop_kernel(8000, 100);
        let sink = mc_trace::RingSink::new();
        let e = execute_with_sink(&die(), &cfg(), &k, &sink).unwrap();
        let events = sink.events();
        assert_eq!(sink.dropped(), 0);

        // The timeline passes every structural invariant check.
        let violations = mc_trace::check_invariants(&events);
        assert!(violations.is_empty(), "{violations:?}");

        // One kernel span, one round span per RoundTrace entry.
        let spans: Vec<&mc_trace::SpanEvent> =
            events.iter().filter_map(|ev| ev.as_span()).collect();
        let kernel_spans: Vec<_> = spans
            .iter()
            .filter(|s| s.category == mc_trace::Category::Kernel)
            .collect();
        assert_eq!(kernel_spans.len(), 1);
        let rounds = spans
            .iter()
            .filter(|s| s.category == mc_trace::Category::Round)
            .count();
        assert_eq!(rounds, e.rounds.len());

        // Counter args on the kernel span reproduce HwCounters exactly.
        for (name, value) in e.counters.iter() {
            if value == 0 {
                continue;
            }
            let arg = kernel_spans[0]
                .args
                .iter()
                .find(|(k, _)| k == &format!("ctr.{name}"))
                .unwrap_or_else(|| panic!("missing ctr.{name}"));
            assert_eq!(arg.1, mc_trace::ArgValue::U64(value), "{name}");
        }
    }

    #[test]
    fn disabled_sink_receives_nothing() {
        let k = mfma_loop_kernel(64, 10);
        let sink = mc_trace::NullSink;
        let e = execute_with_sink(&die(), &cfg(), &k, &sink).unwrap();
        assert!(e.flops > 0); // execution itself is unaffected
    }

    #[test]
    fn stall_shares_track_buffering_and_sync_slots() {
        use mc_isa::Buffering;
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        // Pure MFMA loop: no sync slots, no DRAM traffic.
        let clean = mfma_loop_kernel(440, 1000);
        let e = execute(&die(), &cfg(), &clean).unwrap();
        assert_eq!(e.wait_stall_fraction, 0.0);
        assert_eq!(e.exposed_dram_time_s, 0.0);
        assert_eq!(e.memory_stall_fraction, 0.0);

        // A wait-heavy loop: each MFMA (32 cyc) behind a waitcnt slot
        // and a 16-cycle hazard nop -> 17/49 of the chain is stalling.
        let program = WaveProgram::looped(
            vec![
                SlotOp::Waitcnt(mc_isa::WaitSpec::zero()),
                SlotOp::SNop(16),
                SlotOp::Mfma(i),
            ],
            1000,
        );
        let k = KernelDesc {
            workgroups: 440,
            waves_per_workgroup: 1,
            ..KernelDesc::new("waity", program)
        };
        let e = execute(&die(), &cfg(), &k).unwrap();
        assert!(
            (e.wait_stall_fraction - 17.0 / 49.0).abs() < 1e-12,
            "{}",
            e.wait_stall_fraction
        );

        // DRAM-heavy kernel: single-buffering exposes the whole
        // transfer, double-buffering only the overhang.
        let mut mem = mfma_loop_kernel(440, 10);
        mem.mem_hints.hbm_bytes = 10 << 30;
        let d = die();
        let c = cfg();
        let double = execute(&d, &c, &mem).unwrap();
        assert!(double.memory_stall_fraction > 0.9, "{double:?}");
        assert!(
            (double.exposed_dram_time_s
                - (double.dram_time_s - double.compute_cycles / double.effective_clock_hz))
                .abs()
                < 1e-12
        );
        mem.mem_hints.buffering = Buffering::Single;
        let single = execute(&d, &c, &mem).unwrap();
        assert_eq!(single.exposed_dram_time_s, single.dram_time_s);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let k = mfma_loop_kernel(1, 1);
        let e = execute(&die(), &cfg(), &k).unwrap();
        assert!(e.time_s >= cfg().launch_overhead_s);
        assert!(e.time_s < cfg().launch_overhead_s * 1.01);
    }
}
