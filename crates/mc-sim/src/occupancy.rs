//! Occupancy analysis: which CU resource limits a kernel's residency.
//!
//! The equivalent of ROCm's occupancy calculators: given a kernel's
//! register/LDS footprint and workgroup shape, report the waves-per-CU
//! ceiling and the binding resource. Occupancy is what determines how
//! many of a GCD's 440 Matrix Cores a kernel can feed simultaneously —
//! the `min(N_WF, 440)` term of the paper's Eq. 2 in practice.

use mc_isa::specs::DieSpec;
use mc_isa::KernelDesc;
use serde::{Deserialize, Serialize};

/// The resource that bounds occupancy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimit {
    /// The hardware wave-slot ceiling per SIMD.
    WaveSlots,
    /// Architectural VGPR file capacity.
    ArchVgprs,
    /// Accumulation VGPR file capacity.
    AccVgprs,
    /// Local data share capacity.
    Lds,
    /// Workgroup shape quantization (waves per workgroup granularity).
    WorkgroupShape,
}

/// An occupancy report for one kernel on one die.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OccupancyReport {
    /// Workgroups resident per CU.
    pub workgroups_per_cu: u32,
    /// Wavefronts resident per CU.
    pub waves_per_cu: u32,
    /// Wavefronts per SIMD (of the `max_waves_per_simd` ceiling).
    pub waves_per_simd: u32,
    /// Fraction of the wave-slot ceiling achieved (0–1).
    pub fraction: f64,
    /// The binding resource.
    pub limited_by: OccupancyLimit,
    /// Per-resource waves-per-SIMD ceilings, for diagnostics:
    /// `(wave slots, arch VGPRs, acc VGPRs, LDS)`.
    pub ceilings: (u32, u32, u32, u32),
    /// Matrix Cores this kernel can feed simultaneously on the die.
    pub matrix_cores_reachable: u32,
}

/// Computes the occupancy report for a kernel.
pub fn occupancy(die: &DieSpec, k: &KernelDesc) -> OccupancyReport {
    let slots = die.max_waves_per_simd;
    let by_vgpr = die
        .vgprs_per_simd
        .checked_div(k.arch_vgprs)
        .unwrap_or(slots);
    let by_agpr = die.vgprs_per_simd.checked_div(k.acc_vgprs).unwrap_or(slots);
    let by_lds_wg = die
        .lds_bytes_per_cu
        .checked_div(k.lds_bytes_per_workgroup)
        .unwrap_or(u32::MAX);

    let waves_per_simd_regs = slots.min(by_vgpr).min(by_agpr);
    let waves_per_cu_regs = waves_per_simd_regs * die.simd_units_per_cu;
    let wg_by_waves = waves_per_cu_regs
        .checked_div(k.waves_per_workgroup)
        .unwrap_or(0);
    let workgroups_per_cu = wg_by_waves.min(by_lds_wg);
    let waves_per_cu = workgroups_per_cu * k.waves_per_workgroup;
    let waves_per_simd = waves_per_cu / die.simd_units_per_cu;

    // LDS expressed as a waves-per-SIMD ceiling for the diagnostics.
    let lds_ceiling = if by_lds_wg == u32::MAX {
        slots
    } else {
        (by_lds_wg * k.waves_per_workgroup / die.simd_units_per_cu).min(slots)
    };

    let limited_by = if workgroups_per_cu == by_lds_wg && by_lds_wg < wg_by_waves {
        OccupancyLimit::Lds
    } else if waves_per_simd_regs == by_agpr && by_agpr < slots && by_agpr <= by_vgpr {
        OccupancyLimit::AccVgprs
    } else if waves_per_simd_regs == by_vgpr && by_vgpr < slots {
        OccupancyLimit::ArchVgprs
    } else if waves_per_cu < waves_per_cu_regs {
        OccupancyLimit::WorkgroupShape
    } else {
        OccupancyLimit::WaveSlots
    };

    OccupancyReport {
        workgroups_per_cu,
        waves_per_cu,
        waves_per_simd,
        fraction: f64::from(waves_per_cu) / f64::from(slots * die.simd_units_per_cu),
        limited_by,
        ceilings: (slots, by_vgpr.min(slots), by_agpr.min(slots), lds_ceiling),
        matrix_cores_reachable: die
            .total_matrix_units()
            .min(die.compute_units * waves_per_cu.min(die.matrix_units_per_cu * slots)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::{cdna2_catalog, SlotOp, WaveProgram};
    use mc_types::DType;

    fn die() -> DieSpec {
        mc_isa::specs::mi250x().die
    }

    fn base_kernel() -> KernelDesc {
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        KernelDesc {
            workgroups: 1000,
            waves_per_workgroup: 4,
            ..KernelDesc::new("k", WaveProgram::looped(vec![SlotOp::Mfma(i)], 10))
        }
    }

    #[test]
    fn light_kernel_hits_wave_slot_ceiling() {
        let r = occupancy(&die(), &base_kernel());
        assert_eq!(r.limited_by, OccupancyLimit::WaveSlots);
        assert_eq!(r.waves_per_simd, 8);
        assert_eq!(r.fraction, 1.0);
        assert_eq!(r.matrix_cores_reachable, 440);
    }

    #[test]
    fn fat_arch_vgprs_limit() {
        let k = KernelDesc {
            arch_vgprs: 200, // 512/200 = 2 waves/SIMD
            ..base_kernel()
        };
        let r = occupancy(&die(), &k);
        assert_eq!(r.limited_by, OccupancyLimit::ArchVgprs);
        assert_eq!(r.waves_per_simd, 2);
        assert_eq!(r.fraction, 0.25);
    }

    #[test]
    fn accumulator_pressure_limit() {
        // FP64 GEMM wave: 128 AccVGPRs -> 4 waves/SIMD.
        let k = KernelDesc {
            acc_vgprs: 128,
            ..base_kernel()
        };
        let r = occupancy(&die(), &k);
        assert_eq!(r.limited_by, OccupancyLimit::AccVgprs);
        assert_eq!(r.waves_per_simd, 4);
    }

    #[test]
    fn lds_limit() {
        let k = KernelDesc {
            lds_bytes_per_workgroup: 32 * 1024, // 2 workgroups per 64 KiB CU
            ..base_kernel()
        };
        let r = occupancy(&die(), &k);
        assert_eq!(r.limited_by, OccupancyLimit::Lds);
        assert_eq!(r.workgroups_per_cu, 2);
        assert_eq!(r.waves_per_cu, 8);
    }

    #[test]
    fn workgroup_shape_quantization() {
        // 5-wave workgroups into a 32-wave CU: 6 workgroups = 30 waves,
        // quantization leaves 2 slots idle.
        let k = KernelDesc {
            waves_per_workgroup: 5,
            ..base_kernel()
        };
        let r = occupancy(&die(), &k);
        assert_eq!(r.workgroups_per_cu, 6);
        assert_eq!(r.waves_per_cu, 30);
        assert_eq!(r.limited_by, OccupancyLimit::WorkgroupShape);
        assert!(r.fraction < 1.0);
    }

    #[test]
    fn report_is_consistent_with_engine_admission() {
        // The engine's workgroups_per_cu must agree with the report.
        for k in [
            base_kernel(),
            KernelDesc {
                arch_vgprs: 200,
                ..base_kernel()
            },
            KernelDesc {
                lds_bytes_per_workgroup: 16 * 1024,
                ..base_kernel()
            },
        ] {
            let r = occupancy(&die(), &k);
            let engine = crate::engine::workgroups_per_cu(&die(), &k).unwrap();
            assert_eq!(r.workgroups_per_cu, engine, "{k:?}");
        }
    }
}
