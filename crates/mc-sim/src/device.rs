//! The simulated GPU package: dies, launches, power, and the governor.
//!
//! Power is *physics-first* (DESIGN.md decision 2): every retired
//! operation is charged its datatype's dynamic energy from the
//! [`mc_isa::specs::EnergyTable`], DRAM traffic is charged per byte, and
//! static power (package idle + per-die active baseline) accrues with
//! time. The package governor then enforces the 560 W cap by scaling the
//! clock: dynamic power scales with throughput, so the sustained
//! operating point is the fixed point where package power meets the
//! governor target — the mechanism behind the paper's FP64 two-GCD
//! anomaly (72 % of peak vs 85 % on one GCD, §V-C).

use std::sync::Arc;

use mc_isa::specs::PackageSpec;
use mc_isa::KernelDesc;
use mc_trace::{ArgValue, Category, TraceEvent, TraceSink, Track, PACKAGE_DEVICE};
use mc_types::DType;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::counters::HwCounters;
use crate::engine::{self, KernelExec, LaunchError, TracePlacement};

/// A piecewise-constant power trace over a launch's lifetime.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// `(start_s, end_s, watts)` segments, contiguous and ordered.
    pub segments: Vec<(f64, f64, f64)>,
}

impl PowerProfile {
    /// Total duration covered by the profile.
    pub fn duration_s(&self) -> f64 {
        self.segments.last().map_or(0.0, |s| s.1)
    }

    /// Instantaneous power at time `t` (clamped to the profile range).
    pub fn power_at(&self, t: f64) -> f64 {
        for &(a, b, w) in &self.segments {
            if t >= a && t < b {
                return w;
            }
        }
        self.segments.last().map_or(0.0, |s| s.2)
    }

    /// Time-weighted average power.
    pub fn average_w(&self) -> f64 {
        let d = self.duration_s();
        if d == 0.0 {
            return 0.0;
        }
        self.segments
            .iter()
            .map(|&(a, b, w)| (b - a) * w)
            .sum::<f64>()
            / d
    }

    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.segments.iter().map(|&(a, b, w)| (b - a) * w).sum()
    }
}

/// Result of one kernel launch on one die.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelResult {
    /// Kernel name.
    pub name: String,
    /// Die the kernel ran on.
    pub die: usize,
    /// Wall-clock kernel time in seconds (after any governor action).
    pub time_s: f64,
    /// Effective clock in Hz (residency × governor).
    pub effective_clock_hz: f64,
    /// Total operations performed.
    pub flops: u64,
    /// Operations delivered by matrix units.
    pub mfma_flops: u64,
    /// Achieved throughput in TFLOPS.
    pub tflops: f64,
    /// Counter increments from this launch.
    pub counters: HwCounters,
    /// Dynamic energy charged to this kernel in joules (excludes static).
    pub dynamic_energy_j: f64,
    /// The engine-level execution detail (pre-governor timing).
    pub exec: KernelExec,
}

/// Result of a (possibly multi-die) package launch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PackageResult {
    /// Per-launch results.
    pub kernels: Vec<KernelResult>,
    /// Package makespan in seconds.
    pub time_s: f64,
    /// Package power trace over the makespan.
    pub profile: PowerProfile,
    /// Time-averaged package power in watts.
    pub avg_power_w: f64,
    /// Peak instantaneous package power in watts.
    pub peak_power_w: f64,
    /// Total package energy in joules.
    pub energy_j: f64,
    /// Clock scale the governor applied (1.0 = no throttling).
    pub governor_scale: f64,
}

impl PackageResult {
    /// Aggregate throughput across all kernels in TFLOPS.
    pub fn tflops(&self) -> f64 {
        let flops: u64 = self.kernels.iter().map(|k| k.flops).sum();
        flops as f64 / self.time_s / 1e12
    }

    /// Power efficiency in GFLOPS per watt (the paper's §VI metric).
    pub fn gflops_per_watt(&self) -> f64 {
        let flops: u64 = self.kernels.iter().map(|k| k.flops).sum();
        (flops as f64 / self.time_s / 1e9) / self.avg_power_w
    }

    /// Registers this launch's telemetry in a metrics registry: `sim.*`
    /// timing/throughput, `power.*` package power, and the aggregated
    /// `counters.*` bank across all kernels of the launch.
    pub fn register_metrics(&self, registry: &mut mc_trace::MetricsRegistry) {
        use mc_trace::Unit;
        let flops: u64 = self.kernels.iter().map(|k| k.flops).sum();
        let mfma: u64 = self.kernels.iter().map(|k| k.mfma_flops).sum();
        let hbm: u64 = self.kernels.iter().map(|k| k.exec.hbm_bytes).sum();
        registry.set("sim.time_s", Unit::Seconds, self.time_s);
        registry.set("sim.flops", Unit::Flops, flops as f64);
        registry.set("sim.mfma_flops", Unit::Flops, mfma as f64);
        registry.set("sim.hbm_bytes", Unit::Bytes, hbm as f64);
        registry.set(
            "sim.flops_per_s",
            Unit::FlopsPerSecond,
            flops as f64 / self.time_s.max(f64::MIN_POSITIVE),
        );
        registry.set("power.avg_w", Unit::Watts, self.avg_power_w);
        registry.set("power.peak_w", Unit::Watts, self.peak_power_w);
        registry.set("power.energy_j", Unit::Joules, self.energy_j);
        registry.set("power.governor_scale", Unit::Ratio, self.governor_scale);
        let mut counters = HwCounters::default();
        for k in &self.kernels {
            counters.merge(&k.counters);
        }
        counters.register_metrics(registry);
    }
}

/// The simulated GPU package.
#[derive(Clone, Debug)]
pub struct Gpu {
    cfg: SimConfig,
    die_counters: Vec<HwCounters>,
    sink: Arc<dyn TraceSink>,
    trace_clock_s: f64,
}

impl Gpu {
    /// Creates a package from a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        let dies = cfg.package.dies as usize;
        Gpu {
            cfg,
            die_counters: vec![HwCounters::default(); dies],
            sink: Arc::new(mc_trace::NullSink),
            trace_clock_s: 0.0,
        }
    }

    /// Attaches a trace sink: subsequent launches emit their execution
    /// timelines into it. The default is the no-op [`mc_trace::NullSink`],
    /// which costs one `enabled()` check per launch.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    /// The attached trace sink.
    pub fn trace_sink(&self) -> &Arc<dyn TraceSink> {
        &self.sink
    }

    /// Position of the next launch on this device's trace timeline, in
    /// seconds. Advances by the package makespan after every launch, so
    /// sequential launches never overlap in the trace.
    pub fn trace_time_s(&self) -> f64 {
        self.trace_clock_s
    }

    /// An MI250X with default calibration.
    pub fn mi250x() -> Self {
        Gpu::new(SimConfig::mi250x())
    }

    /// An A100 with default calibration.
    pub fn a100() -> Self {
        Gpu::new(SimConfig::a100())
    }

    /// The package specification.
    pub fn spec(&self) -> &PackageSpec {
        &self.cfg.package
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Cumulative counters of one die (rocprof reads these as deltas).
    pub fn counters(&self, die: usize) -> Result<HwCounters, LaunchError> {
        self.die_counters
            .get(die)
            .copied()
            .ok_or(LaunchError::InvalidDie {
                die,
                dies: self.die_counters.len(),
            })
    }

    /// Launches one kernel on one die (the other dies idle).
    ///
    /// ```
    /// use mc_sim::Gpu;
    /// use mc_isa::{cdna2_catalog, KernelDesc, SlotOp, WaveProgram};
    /// use mc_types::DType;
    ///
    /// let mut gpu = Gpu::mi250x();
    /// let mfma = *cdna2_catalog().find(DType::F32, DType::F16, 16, 16, 16).unwrap();
    /// let kernel = KernelDesc {
    ///     workgroups: 440, // one wavefront per Matrix Core
    ///     waves_per_workgroup: 1,
    ///     ..KernelDesc::new("saturate", WaveProgram::looped(vec![SlotOp::Mfma(mfma)], 100_000))
    /// };
    /// let result = gpu.launch(0, &kernel).unwrap();
    /// let tflops = result.tflops();
    /// assert!((tflops - 175.0).abs() < 4.0); // the paper's one-GCD mixed plateau
    /// ```
    pub fn launch(
        &mut self,
        die: usize,
        kernel: &KernelDesc,
    ) -> Result<PackageResult, LaunchError> {
        self.launch_parallel(&[(die, kernel.clone())])
    }

    /// Launches kernels concurrently, at most one per die — the paper's
    /// "one process per GCD" methodology (§VI).
    pub fn launch_parallel(
        &mut self,
        launches: &[(usize, KernelDesc)],
    ) -> Result<PackageResult, LaunchError> {
        let dies = self.die_counters.len();
        for &(die, _) in launches {
            if die >= dies {
                return Err(LaunchError::InvalidDie { die, dies });
            }
        }
        if launches.is_empty() {
            return Err(LaunchError::EmptyLaunch);
        }

        // Phase 1: engine estimates at residency clock.
        let mut execs = Vec::with_capacity(launches.len());
        for (die, k) in launches {
            let e = engine::execute(&self.cfg.package.die, &self.cfg, k)?;
            execs.push((*die, k, e));
        }

        // Phase 2: governor — find the largest clock scale x ≤ 1 with
        // peak package power ≤ target. Dynamic power is monotone in x.
        let target = self.cfg.governor_target_fraction * self.cfg.package.power_cap_w;
        let mut scale = 1.0;
        if self.cfg.governor_enabled && self.peak_power(&execs, 1.0) > target {
            let (mut lo, mut hi) = (0.05, 1.0);
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if self.peak_power(&execs, mid) > target {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            scale = lo;
        }

        // Phase 3: assemble results and power profile.
        let mut kernels = Vec::with_capacity(execs.len());
        let mut events: Vec<(f64, f64)> = Vec::new(); // (end time, dyn+base watts while running)
        let mut makespan = 0.0_f64;
        for (die, k, e) in &execs {
            let time = Self::scaled_time(e, scale, self.cfg.launch_overhead_s);
            let dyn_e = self.dynamic_energy_j(e);
            let power_while_running = self.cfg.package.active_baseline_w_per_die + dyn_e / time;
            events.push((time, power_while_running));
            makespan = makespan.max(time);
            engine::emit_kernel_events(
                self.sink.as_ref(),
                &TracePlacement {
                    die: *die as u32,
                    t0_s: self.trace_clock_s,
                    clock_scale: scale,
                    wall_time_s: time,
                    spec: &self.cfg.package.name,
                    dynamic_energy_j: dyn_e,
                },
                k,
                e,
            );
            let counters = e.counters;
            self.die_counters[*die].merge(&counters);
            kernels.push(KernelResult {
                name: k.name.clone(),
                die: *die,
                time_s: time,
                effective_clock_hz: e.effective_clock_hz * scale,
                flops: e.flops,
                mfma_flops: e.mfma_flops,
                tflops: e.flops as f64 / time / 1e12,
                counters,
                dynamic_energy_j: dyn_e,
                exec: e.clone(),
            });
        }

        // Build a piecewise-constant package power profile: at each
        // moment, idle + the contributions of still-running kernels.
        let mut cut_points: Vec<f64> = events.iter().map(|e| e.0).collect();
        cut_points.sort_by(f64::total_cmp);
        cut_points.dedup();
        let mut segments = Vec::new();
        let mut t0 = 0.0;
        for &t1 in &cut_points {
            let watts = self.cfg.package.idle_power_w
                + events
                    .iter()
                    .filter(|(end, _)| *end > t0)
                    .map(|(_, w)| w)
                    .sum::<f64>();
            segments.push((t0, t1, watts));
            t0 = t1;
        }
        let profile = PowerProfile { segments };
        let avg_power_w = profile.average_w();
        let peak_power_w = profile.segments.iter().map(|s| s.2).fold(0.0_f64, f64::max);

        self.emit_package_events(&profile, scale, target);
        self.trace_clock_s += makespan;

        Ok(PackageResult {
            kernels,
            time_s: makespan,
            energy_j: profile.energy_j(),
            avg_power_w,
            peak_power_w,
            profile,
            governor_scale: scale,
        })
    }

    /// Package-level telemetry events for one launch: a `package_w`
    /// counter track following the power profile, the governor's clock
    /// scale, and a DVFS-transition instant when the governor clamped.
    fn emit_package_events(&self, profile: &PowerProfile, scale: f64, target_w: f64) {
        if !self.sink.enabled() {
            return;
        }
        let t0 = self.trace_clock_s * 1e6;
        for &(a, _, watts) in &profile.segments {
            self.sink.record(TraceEvent::Counter {
                name: "package_w".to_owned(),
                device: PACKAGE_DEVICE,
                t_us: t0 + a * 1e6,
                value: watts,
            });
        }
        if let Some(&(_, end, _)) = profile.segments.last() {
            self.sink.record(TraceEvent::Counter {
                name: "package_w".to_owned(),
                device: PACKAGE_DEVICE,
                t_us: t0 + end * 1e6,
                value: self.cfg.package.idle_power_w,
            });
        }
        self.sink.record(TraceEvent::Counter {
            name: "governor_scale".to_owned(),
            device: PACKAGE_DEVICE,
            t_us: t0,
            value: scale,
        });
        if scale < 1.0 - 1e-9 {
            self.sink.record(TraceEvent::Instant {
                name: "governor clamp".to_owned(),
                category: Category::Power,
                device: PACKAGE_DEVICE,
                track: Track::Power,
                t_us: t0,
                args: vec![
                    ("clock_scale".to_owned(), ArgValue::F64(scale)),
                    ("target_w".to_owned(), ArgValue::F64(target_w)),
                ],
            });
        }
    }

    /// Launches kernels back to back on one die, concatenating their
    /// power profiles into a single application-level timeline — how
    /// the paper's tooling would observe a multi-kernel workload (e.g.
    /// a blocked factorization) through SMI.
    pub fn launch_sequence(
        &mut self,
        die: usize,
        kernels: &[KernelDesc],
    ) -> Result<PackageResult, LaunchError> {
        if kernels.is_empty() {
            return Err(LaunchError::EmptyLaunch);
        }
        let mut all = Vec::with_capacity(kernels.len());
        let mut segments: Vec<(f64, f64, f64)> = Vec::new();
        let mut t = 0.0_f64;
        let mut scale_min = 1.0_f64;
        for k in kernels {
            let r = self.launch(die, k)?;
            scale_min = scale_min.min(r.governor_scale);
            for &(a, b, w) in &r.profile.segments {
                segments.push((t + a, t + b, w));
            }
            t += r.time_s;
            all.extend(r.kernels);
        }
        let profile = PowerProfile { segments };
        let avg_power_w = profile.average_w();
        let peak_power_w = profile.segments.iter().map(|s| s.2).fold(0.0_f64, f64::max);
        Ok(PackageResult {
            kernels: all,
            time_s: t,
            energy_j: profile.energy_j(),
            avg_power_w,
            peak_power_w,
            profile,
            governor_scale: scale_min,
        })
    }

    fn scaled_time(e: &KernelExec, scale: f64, launch_overhead_s: f64) -> f64 {
        let compute = e.compute_cycles / (e.effective_clock_hz * scale);
        compute.max(e.dram_time_s) + launch_overhead_s
    }

    /// Dynamic energy of one execution in joules.
    pub fn dynamic_energy_j(&self, e: &KernelExec) -> f64 {
        engine::dynamic_energy_j(&self.cfg.package, e)
    }

    fn peak_power(&self, execs: &[(usize, &KernelDesc, KernelExec)], scale: f64) -> f64 {
        let mut p = self.cfg.package.idle_power_w;
        for (_, _, e) in execs {
            let time = Self::scaled_time(e, scale, self.cfg.launch_overhead_s);
            p += self.cfg.package.active_baseline_w_per_die + self.dynamic_energy_j(e) / time;
        }
        p
    }
}

/// Convenience: classify a kernel's dominant MFMA input type (used by
/// experiment harnesses for labelling).
pub fn dominant_mfma_type(e: &KernelExec) -> Option<DType> {
    let (f64f, f32f, f16f) = e.mfma_flops_by_type;
    if f64f >= f32f && f64f >= f16f && f64f > 0 {
        Some(DType::F64)
    } else if f32f >= f16f && f32f > 0 {
        Some(DType::F32)
    } else if f16f > 0 {
        Some(DType::F16)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::{cdna2_catalog, KernelDesc, SlotOp, WaveProgram};

    fn loop_kernel(ab: DType, m: u32, n: u32, k: u32, waves: u64, iters: u64) -> KernelDesc {
        let cd = if ab == DType::F64 {
            DType::F64
        } else {
            DType::F32
        };
        let i = *cdna2_catalog().find(cd, ab, m, n, k).unwrap();
        let program = WaveProgram::looped(vec![SlotOp::Mfma(i)], iters);
        KernelDesc {
            workgroups: waves,
            waves_per_workgroup: 1,
            ..KernelDesc::new(format!("{}_loop", ab), program)
        }
    }

    #[test]
    fn two_gcd_mixed_reaches_350_tflops() {
        let mut gpu = Gpu::mi250x();
        let k = loop_kernel(DType::F16, 16, 16, 16, 440, 200_000);
        let r = gpu.launch_parallel(&[(0, k.clone()), (1, k)]).unwrap();
        let t = r.tflops();
        assert!((t - 350.0).abs() < 6.0, "got {t}");
        assert!(
            (r.governor_scale - 1.0).abs() < 1e-9,
            "mixed must not throttle"
        );
    }

    #[test]
    fn two_gcd_fp64_throttles_to_about_70_tflops() {
        let mut gpu = Gpu::mi250x();
        let k = loop_kernel(DType::F64, 16, 16, 4, 440, 200_000);
        let r = gpu.launch_parallel(&[(0, k.clone()), (1, k)]).unwrap();
        let t = r.tflops();
        // Paper: 69 TFLOPS (72% of 95.7) at 541 W, vs 2×41=82 unthrottled.
        assert!(t < 75.0 && t > 65.0, "got {t}");
        assert!(r.governor_scale < 0.95);
        assert!(
            (r.peak_power_w - 541.0).abs() < 3.0,
            "power {}",
            r.peak_power_w
        );
    }

    #[test]
    fn one_gcd_fp64_does_not_throttle() {
        let mut gpu = Gpu::mi250x();
        let k = loop_kernel(DType::F64, 16, 16, 4, 440, 200_000);
        let r = gpu.launch(0, &k).unwrap();
        assert!((r.governor_scale - 1.0).abs() < 1e-9);
        let t = r.tflops();
        assert!((t - 41.0).abs() < 1.0, "got {t}");
    }

    #[test]
    fn governor_disabled_removes_the_anomaly() {
        let mut gpu = Gpu::new(SimConfig::mi250x().without_governor());
        let k = loop_kernel(DType::F64, 16, 16, 4, 440, 200_000);
        let r = gpu.launch_parallel(&[(0, k.clone()), (1, k)]).unwrap();
        let t = r.tflops();
        assert!((t - 82.0).abs() < 2.0, "got {t}");
        assert!(
            r.peak_power_w > 560.0,
            "would exceed the cap: {}",
            r.peak_power_w
        );
    }

    #[test]
    fn power_matches_eq3_model() {
        // Eq. 3 (double): PC = 5.88·Th + 130 at 2 GCDs. Our intercept is
        // idle+2·baseline = 123; slope is the FP64 energy (5.88 pJ/FLOP).
        let mut gpu = Gpu::new(SimConfig::mi250x().without_governor());
        for waves in [55u64, 110, 220, 440] {
            let k = loop_kernel(DType::F64, 16, 16, 4, waves, 200_000);
            let r = gpu.launch_parallel(&[(0, k.clone()), (1, k)]).unwrap();
            let th = r.tflops();
            let expected = 5.88 * th + 123.0;
            assert!(
                (r.peak_power_w - expected).abs() < 2.0,
                "waves {waves}: {} vs {expected}",
                r.peak_power_w
            );
        }
    }

    #[test]
    fn idle_power_with_no_kernel_is_88w() {
        let gpu = Gpu::mi250x();
        assert_eq!(gpu.spec().idle_power_w, 88.0);
    }

    #[test]
    fn counters_accumulate_across_launches() {
        let mut gpu = Gpu::mi250x();
        let k = loop_kernel(DType::F16, 16, 16, 16, 4, 100);
        gpu.launch(0, &k).unwrap();
        gpu.launch(0, &k).unwrap();
        gpu.launch(1, &k).unwrap();
        let c0 = gpu.counters(0).unwrap();
        let c1 = gpu.counters(1).unwrap();
        assert_eq!(c0.mfma_mops_f16, 2 * 4 * 100 * 8192 / 512);
        assert_eq!(c1.mfma_mops_f16, 4 * 100 * 8192 / 512);
        assert!(gpu.counters(5).is_err());
    }

    #[test]
    fn profile_average_and_energy_consistent() {
        let mut gpu = Gpu::mi250x();
        let k = loop_kernel(DType::F32, 16, 16, 4, 440, 100_000);
        let r = gpu.launch(0, &k).unwrap();
        let p = &r.profile;
        assert!((p.energy_j() - r.energy_j).abs() < 1e-9);
        assert!((p.average_w() - r.avg_power_w).abs() < 1e-9);
        assert!(p.duration_s() > 0.0);
        assert!(p.power_at(0.0) > gpu.spec().idle_power_w);
    }

    #[test]
    fn invalid_die_rejected() {
        let mut gpu = Gpu::mi250x();
        let k = loop_kernel(DType::F32, 16, 16, 4, 4, 10);
        assert!(matches!(
            gpu.launch(7, &k),
            Err(LaunchError::InvalidDie { die: 7, dies: 2 })
        ));
    }

    #[test]
    fn sequence_concatenates_profiles_and_times() {
        let mut gpu = Gpu::mi250x();
        let k1 = loop_kernel(DType::F16, 16, 16, 16, 440, 100_000);
        let k2 = loop_kernel(DType::F64, 16, 16, 4, 440, 100_000);
        let r1 = gpu.launch(0, &k1).unwrap();
        let r2 = gpu.launch(0, &k2).unwrap();
        let seq = gpu.launch_sequence(0, &[k1, k2]).unwrap();
        assert_eq!(seq.kernels.len(), 2);
        assert!((seq.time_s - (r1.time_s + r2.time_s)).abs() < 1e-12);
        assert!((seq.energy_j - (r1.energy_j + r2.energy_j)).abs() < 1e-9);
        // The profile timeline covers both phases: power at a point in
        // the second kernel's window equals that kernel's level.
        let mid2 = r1.time_s + 0.5 * r2.time_s;
        assert!((seq.profile.power_at(mid2) - r2.profile.power_at(0.5 * r2.time_s)).abs() < 1e-9);
        assert!(gpu.launch_sequence(0, &[]).is_err());
    }

    #[test]
    fn traced_launches_emit_package_telemetry_and_advance_the_clock() {
        let sink = Arc::new(mc_trace::RingSink::new());
        let mut gpu = Gpu::mi250x();
        gpu.set_trace_sink(sink.clone());
        let k = loop_kernel(DType::F64, 16, 16, 4, 440, 50_000);
        let r = gpu
            .launch_parallel(&[(0, k.clone()), (1, k.clone())])
            .unwrap();
        assert!((gpu.trace_time_s() - r.time_s).abs() < 1e-12);

        let events = sink.events();
        let violations = mc_trace::check_invariants(&events);
        assert!(violations.is_empty(), "{violations:?}");

        // Two kernel spans, one per die, both starting at t=0.
        let kernels: Vec<_> = events
            .iter()
            .filter_map(|e| e.as_span())
            .filter(|s| s.category == mc_trace::Category::Kernel)
            .collect();
        assert_eq!(kernels.len(), 2);
        assert!(kernels.iter().any(|s| s.device == 0));
        assert!(kernels.iter().any(|s| s.device == 1));

        // Package power counter follows the profile; the FP64 two-GCD
        // launch throttles, so a governor-clamp instant is present.
        assert!(events.iter().any(|e| matches!(
            e,
            mc_trace::TraceEvent::Counter { name, device, .. }
                if name == "package_w" && *device == mc_trace::PACKAGE_DEVICE
        )));
        assert!(r.governor_scale < 1.0);
        assert!(events.iter().any(|e| matches!(
            e,
            mc_trace::TraceEvent::Instant { name, .. } if name == "governor clamp"
        )));

        // A second launch lands after the first on the trace timeline.
        gpu.launch(0, &k).unwrap();
        let kernels2: Vec<_> = sink
            .events()
            .iter()
            .filter_map(|e| e.as_span().cloned())
            .filter(|s| s.category == mc_trace::Category::Kernel)
            .collect();
        assert_eq!(kernels2.len(), 3);
        let second_start = kernels2.last().unwrap().t0_us;
        assert!((second_start - r.time_s * 1e6).abs() < 1e-6);
    }

    #[test]
    fn untraced_launches_are_bitwise_identical_to_traced_results() {
        let mut plain = Gpu::mi250x();
        let mut traced = Gpu::mi250x();
        traced.set_trace_sink(Arc::new(mc_trace::RingSink::new()));
        let k = loop_kernel(DType::F16, 16, 16, 16, 440, 10_000);
        let a = plain.launch(0, &k).unwrap();
        let b = traced.launch(0, &k).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn launch_metrics_register_all_three_surfaces() {
        let mut gpu = Gpu::mi250x();
        let k = loop_kernel(DType::F32, 16, 16, 4, 440, 10_000);
        let r = gpu.launch(0, &k).unwrap();
        let mut reg = mc_trace::MetricsRegistry::new();
        r.register_metrics(&mut reg);
        assert_eq!(reg.value("sim.time_s"), Some(r.time_s));
        assert_eq!(reg.value("power.peak_w"), Some(r.peak_power_w));
        assert_eq!(
            reg.value("counters.SQ_WAVES"),
            Some(r.kernels[0].counters.waves_launched as f64)
        );
        assert!(reg.value("sim.flops_per_s").unwrap() > 0.0);
    }

    #[test]
    fn a100_mixed_reaches_290_tflops() {
        let mut gpu = Gpu::a100();
        let i = *mc_isa::ampere_catalog()
            .find(DType::F32, DType::F16, 16, 8, 16)
            .unwrap();
        let program = WaveProgram::looped(vec![SlotOp::Mfma(i)], 200_000);
        let k = KernelDesc {
            workgroups: 432, // 108 SMs × 4 tensor cores
            waves_per_workgroup: 1,
            ..KernelDesc::new("a100_mixed", program)
        };
        let r = gpu.launch(0, &k).unwrap();
        let t = r.tflops();
        // Paper: 290 TFLOPS (93% of 312).
        assert!((t - 290.0).abs() < 4.0, "got {t}");
    }

    #[test]
    fn a100_fp64_reaches_19_4_tflops() {
        let mut gpu = Gpu::a100();
        let i = *mc_isa::ampere_catalog()
            .find(DType::F64, DType::F64, 8, 8, 4)
            .unwrap();
        let program = WaveProgram::looped(vec![SlotOp::Mfma(i)], 200_000);
        let k = KernelDesc {
            workgroups: 432,
            waves_per_workgroup: 1,
            ..KernelDesc::new("a100_dmma", program)
        };
        let r = gpu.launch(0, &k).unwrap();
        let t = r.tflops();
        // Paper: 19.4 TFLOPS (99% of 19.5).
        assert!((t - 19.4).abs() < 0.3, "got {t}");
    }
}
