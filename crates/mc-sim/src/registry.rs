//! The device registry: the single constructor path for every simulated
//! device in the workspace.
//!
//! The paper characterizes a fixed device matrix — MI100, MI250X (as a
//! package and as a single GCD, since each GCD is a separate HIP
//! device), and the A100 — and every experiment, example, and test used
//! to construct those ad hoc (`Gpu::mi250x()`, `BlasHandle::
//! new_mi250x_gcd()`, …). [`DeviceRegistry`] replaces that: built-in
//! devices are addressed by [`DeviceId`], custom calibrations are
//! registered by name, and both hand out validated [`SimConfig`]s and
//! ready [`Gpu`]s from one place. New device generations (MI300A-class
//! follow-ups) slot in as one registry entry instead of a constructor
//! per call site.

use std::sync::Arc;

use mc_isa::specs;
use mc_trace::TraceSink;

use crate::config::SimConfig;
use crate::device::Gpu;

/// Identifier of a built-in device model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceId {
    /// AMD Instinct MI100 (one CDNA1 die) — the first Matrix Core
    /// generation.
    Mi100,
    /// AMD Instinct MI250X full package (two CDNA2 GCDs).
    Mi250x,
    /// One GCD of the MI250X, presented as its own device (each GCD is a
    /// separate HIP device, paper §II). Same package model as
    /// [`DeviceId::Mi250x`]; launches pin to die 0.
    Mi250xGcd,
    /// NVIDIA A100-SXM4-40GB (single die).
    A100,
}

impl DeviceId {
    /// Every built-in device, in canonical order.
    pub const ALL: [DeviceId; 4] = [
        DeviceId::Mi100,
        DeviceId::Mi250x,
        DeviceId::Mi250xGcd,
        DeviceId::A100,
    ];

    /// Stable registry name of this device.
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceId::Mi100 => "mi100",
            DeviceId::Mi250x => "mi250x",
            DeviceId::Mi250xGcd => "mi250x-gcd",
            DeviceId::A100 => "a100",
        }
    }

    /// Parses a registry name back into an id.
    pub fn parse(name: &str) -> Option<DeviceId> {
        DeviceId::ALL.into_iter().find(|id| id.as_str() == name)
    }

    /// The die launches should default to for this device view.
    pub fn default_die(self) -> usize {
        0
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from registering a custom device.
#[derive(Clone, Debug, PartialEq)]
pub enum RegistryError {
    /// A device with this name already exists.
    DuplicateName(String),
    /// The configuration failed [`SimConfig::validate`].
    InvalidConfig(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::DuplicateName(name) => {
                write!(f, "device `{name}` is already registered")
            }
            RegistryError::InvalidConfig(reason) => {
                write!(f, "invalid device configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Registry of simulated device configurations.
///
/// ```
/// use mc_sim::{DeviceId, DeviceRegistry};
///
/// let devices = DeviceRegistry::builtin();
/// let mut gpu = devices.gpu(DeviceId::Mi250x);
/// assert_eq!(gpu.spec().dies, 2);
/// assert_eq!(devices.gpu(DeviceId::A100).spec().name, "NVIDIA A100");
/// ```
#[derive(Clone, Debug)]
pub struct DeviceRegistry {
    entries: Vec<(String, SimConfig)>,
    sink: Option<Arc<dyn TraceSink>>,
}

impl DeviceRegistry {
    /// A registry holding the four built-in devices.
    pub fn builtin() -> Self {
        let mut registry = DeviceRegistry {
            entries: Vec::new(),
            sink: None,
        };
        for id in DeviceId::ALL {
            let package = match id {
                DeviceId::Mi100 => specs::mi100(),
                DeviceId::Mi250x | DeviceId::Mi250xGcd => specs::mi250x(),
                DeviceId::A100 => specs::a100(),
            };
            registry
                .register(id.as_str(), SimConfig::for_package(package))
                .expect("built-in devices are valid and unique");
        }
        registry
    }

    /// Registers a custom device configuration under a unique name.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        config: SimConfig,
    ) -> Result<(), RegistryError> {
        let name = name.into();
        if self.config_named(&name).is_some() {
            return Err(RegistryError::DuplicateName(name));
        }
        config.validate().map_err(RegistryError::InvalidConfig)?;
        self.entries.push((name, config));
        Ok(())
    }

    /// The configuration of a built-in device.
    pub fn config(&self, id: DeviceId) -> &SimConfig {
        self.config_named(id.as_str())
            .expect("built-in devices are always registered")
    }

    /// The configuration registered under `name`, if any.
    pub fn config_named(&self, name: &str) -> Option<&SimConfig> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, config)| config)
    }

    /// Attaches a default trace sink: every [`Gpu`] subsequently
    /// constructed through this registry emits its launch timelines
    /// into it. Devices handed out earlier are unaffected.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// The default trace sink, if one is attached.
    pub fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.sink.as_ref()
    }

    /// Constructs a fresh GPU for a built-in device.
    pub fn gpu(&self, id: DeviceId) -> Gpu {
        let mut gpu = Gpu::new(self.config(id).clone());
        if let Some(sink) = &self.sink {
            gpu.set_trace_sink(sink.clone());
        }
        gpu
    }

    /// Constructs a fresh GPU for any registered device.
    pub fn gpu_named(&self, name: &str) -> Option<Gpu> {
        let mut gpu = self.config_named(name).cloned().map(Gpu::new)?;
        if let Some(sink) = &self.sink {
            gpu.set_trace_sink(sink.clone());
        }
        Some(gpu)
    }

    /// Registered device names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(name, _)| name.as_str())
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty (never true for [`Self::builtin`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for DeviceRegistry {
    fn default() -> Self {
        DeviceRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_devices_resolve_by_id_and_name() {
        let devices = DeviceRegistry::builtin();
        assert_eq!(devices.len(), 4);
        for id in DeviceId::ALL {
            assert_eq!(DeviceId::parse(id.as_str()), Some(id));
            assert!(devices.config_named(id.as_str()).is_some());
            assert_eq!(devices.gpu(id).spec().name, devices.config(id).package.name);
        }
        assert_eq!(DeviceId::parse("mi300a"), None);
    }

    #[test]
    fn gcd_view_shares_the_package_model() {
        let devices = DeviceRegistry::builtin();
        assert_eq!(
            devices.config(DeviceId::Mi250xGcd).package,
            devices.config(DeviceId::Mi250x).package
        );
        assert_eq!(DeviceId::Mi250xGcd.default_die(), 0);
    }

    #[test]
    fn custom_devices_register_and_validate() {
        let mut devices = DeviceRegistry::builtin();

        // A hypothetical next-generation part: more CUs, faster clock.
        let mut config = devices.config(DeviceId::Mi250x).clone();
        config.package.name = "Hypothetical MI-Next".into();
        config.package.die.compute_units = 228;
        devices.register("mi-next", config).unwrap();
        assert_eq!(devices.len(), 5);
        let gpu = devices.gpu_named("mi-next").unwrap();
        assert_eq!(gpu.spec().die.compute_units, 228);

        // Duplicate names are rejected.
        let dup = devices.config(DeviceId::Mi100).clone();
        assert_eq!(
            devices.register("mi-next", dup),
            Err(RegistryError::DuplicateName("mi-next".into()))
        );

        // Invalid configurations are rejected.
        let mut broken = devices.config(DeviceId::Mi100).clone();
        broken.package.die.compute_units = 0;
        assert!(matches!(
            devices.register("broken", broken),
            Err(RegistryError::InvalidConfig(_))
        ));
    }

    #[test]
    fn fresh_gpus_do_not_share_counters() {
        let devices = DeviceRegistry::builtin();
        let mut a = devices.gpu(DeviceId::Mi250x);
        let b = devices.gpu(DeviceId::Mi250x);
        let kernel = mc_isa::KernelDesc {
            workgroups: 4,
            waves_per_workgroup: 1,
            ..mc_isa::KernelDesc::new(
                "touch",
                mc_isa::WaveProgram::looped(
                    vec![mc_isa::SlotOp::Mfma(
                        *mc_isa::cdna2_catalog()
                            .find(mc_types::DType::F32, mc_types::DType::F16, 16, 16, 16)
                            .unwrap(),
                    )],
                    100,
                ),
            )
        };
        a.launch(0, &kernel).unwrap();
        assert!(a.counters(0).unwrap().mfma_mops_f16 > 0);
        assert_eq!(b.counters(0).unwrap().mfma_mops_f16, 0);
    }
}
