//! Multi-GPU aggregation: the paper's testbed (four MI250X, §IV) and
//! the Frontier-scale framing of §II ("37,000 MI250X GPUs ... 1.1
//! ExaFlops").
//!
//! Node- and system-level numbers are aggregates of independent package
//! launches — the paper's benchmarks never communicate across GPUs — so
//! the cluster model is embarrassingly parallel: per-GPU results plus
//! aggregate throughput, power, and energy.

use mc_isa::KernelDesc;
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::device::{Gpu, PackageResult};
use crate::engine::LaunchError;

/// A set of identical GPU packages.
#[derive(Debug)]
pub struct Cluster {
    gpus: Vec<Gpu>,
}

/// Aggregate result of a cluster-wide launch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterResult {
    /// Per-GPU results.
    pub per_gpu: Vec<PackageResult>,
    /// Makespan across the cluster (all GPUs start together).
    pub time_s: f64,
    /// Aggregate throughput in TFLOPS.
    pub tflops: f64,
    /// Aggregate average power in watts.
    pub power_w: f64,
    /// Aggregate energy in joules.
    pub energy_j: f64,
}

impl Cluster {
    /// Builds a cluster of `count` identical packages.
    pub fn new(cfg: SimConfig, count: usize) -> Self {
        Cluster {
            gpus: (0..count).map(|_| Gpu::new(cfg.clone())).collect(),
        }
    }

    /// The paper's AMD testbed: four MI250X packages (§IV).
    pub fn testbed() -> Self {
        Cluster::new(SimConfig::mi250x(), 4)
    }

    /// Number of GPUs.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// `true` if the cluster has no GPUs.
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// Access one GPU.
    pub fn gpu_mut(&mut self, idx: usize) -> Option<&mut Gpu> {
        self.gpus.get_mut(idx)
    }

    /// Runs the same kernel on every die of every GPU (the paper's
    /// one-process-per-GCD scaling methodology).
    pub fn launch_everywhere(&mut self, kernel: &KernelDesc) -> Result<ClusterResult, LaunchError> {
        let mut per_gpu = Vec::with_capacity(self.gpus.len());
        for gpu in &mut self.gpus {
            let dies = gpu.spec().dies as usize;
            let launches: Vec<(usize, KernelDesc)> =
                (0..dies).map(|d| (d, kernel.clone())).collect();
            per_gpu.push(gpu.launch_parallel(&launches)?);
        }
        let time_s = per_gpu.iter().map(|r| r.time_s).fold(0.0_f64, f64::max);
        let flops: f64 = per_gpu
            .iter()
            .map(|r| r.kernels.iter().map(|k| k.flops).sum::<u64>() as f64)
            .sum();
        let power_w = per_gpu.iter().map(|r| r.avg_power_w).sum();
        let energy_j = per_gpu.iter().map(|r| r.energy_j).sum();
        Ok(ClusterResult {
            time_s,
            tflops: flops / time_s / 1e12,
            power_w,
            energy_j,
            per_gpu,
        })
    }
}

/// Projects a sustained per-package throughput to a Frontier-scale
/// system (`gpus` packages), returning `(exaflops, megawatts)`.
pub fn frontier_projection(
    per_package_tflops: f64,
    per_package_watts: f64,
    gpus: u64,
) -> (f64, f64) {
    (
        per_package_tflops * gpus as f64 / 1e6,
        per_package_watts * gpus as f64 / 1e6,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::{cdna2_catalog, SlotOp, WaveProgram};
    use mc_types::DType;

    fn kernel(iters: u64) -> KernelDesc {
        let i = *cdna2_catalog()
            .find(DType::F64, DType::F64, 16, 16, 4)
            .unwrap();
        KernelDesc {
            workgroups: 440,
            waves_per_workgroup: 1,
            ..KernelDesc::new("k", WaveProgram::looped(vec![SlotOp::Mfma(i)], iters))
        }
    }

    #[test]
    fn testbed_scales_linearly_without_communication() {
        let mut cluster = Cluster::testbed();
        assert_eq!(cluster.len(), 4);
        let r = cluster.launch_everywhere(&kernel(200_000)).unwrap();
        // 4 packages × ~71 TFLOPS throttled FP64.
        assert!((r.tflops - 4.0 * 71.0).abs() < 12.0, "{}", r.tflops);
        // Per-GPU results are identical (no cross-GPU interference).
        for w in r.per_gpu.windows(2) {
            assert_eq!(w[0].time_s, w[1].time_s);
        }
        // Aggregate power: 4 × ~541 W.
        assert!((r.power_w - 4.0 * 541.0).abs() < 20.0, "{}", r.power_w);
    }

    #[test]
    fn frontier_scale_projection_lands_in_the_exaflops() {
        // §II framing: 37,000 MI250X. Our sustained FP64 matrix point:
        // ~71 TFLOPS at ~541 W -> ~2.6 EF and ~20 MW.
        let (ef, mw) = frontier_projection(71.0, 541.0, 37_000);
        assert!(ef > 2.0 && ef < 3.0, "{ef}");
        assert!(mw > 15.0 && mw < 25.0, "{mw}");
    }

    #[test]
    fn empty_cluster_behaviour() {
        let cluster = Cluster::new(SimConfig::mi250x(), 0);
        assert!(cluster.is_empty());
    }
}
