//! Hardware performance counters, mirroring the `rocprof` counters the
//! paper uses in §IV-B (Eq. 1) to attribute floating-point operations to
//! Matrix Cores versus SIMD units.

use core::fmt;

use mc_isa::{SlotOp, ValuOpKind};
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// One GCD's (or SM cluster's) performance-counter bank.
///
/// Counter semantics follow the MI200 hardware:
///
/// * `SQ_INSTS_VALU_MFMA_MOPS_F*` increments **once every 512 matrix
///   operations** (paper §IV-B), so `flops = 512 × counter`.
/// * `SQ_INSTS_VALU_{ADD,MUL,FMA}_F*` count **per-SIMD wavefront
///   instructions**; multiply by 64 lanes (and ×2 for FMA) for FLOPs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field names are the counter names; documented above
pub struct HwCounters {
    pub mfma_mops_f64: u64,
    pub mfma_mops_f32: u64,
    pub mfma_mops_f16: u64,
    pub mfma_mops_bf16: u64,
    pub mfma_mops_i8: u64,
    pub valu_add_f16: u64,
    pub valu_add_f32: u64,
    pub valu_add_f64: u64,
    pub valu_mul_f16: u64,
    pub valu_mul_f32: u64,
    pub valu_mul_f64: u64,
    pub valu_fma_f16: u64,
    pub valu_fma_f32: u64,
    pub valu_fma_f64: u64,
    pub valu_other: u64,
    pub salu_insts: u64,
    pub flat_loads: u64,
    pub flat_stores: u64,
    pub lds_reads: u64,
    pub lds_writes: u64,
    pub waves_launched: u64,
    pub workgroups_launched: u64,
}

/// rocprof-style counter names accepted by [`HwCounters::get`].
pub const COUNTER_NAMES: &[&str] = &[
    "SQ_INSTS_VALU_MFMA_MOPS_F64",
    "SQ_INSTS_VALU_MFMA_MOPS_F32",
    "SQ_INSTS_VALU_MFMA_MOPS_F16",
    "SQ_INSTS_VALU_MFMA_MOPS_BF16",
    "SQ_INSTS_VALU_MFMA_MOPS_I8",
    "SQ_INSTS_VALU_ADD_F16",
    "SQ_INSTS_VALU_ADD_F32",
    "SQ_INSTS_VALU_ADD_F64",
    "SQ_INSTS_VALU_MUL_F16",
    "SQ_INSTS_VALU_MUL_F32",
    "SQ_INSTS_VALU_MUL_F64",
    "SQ_INSTS_VALU_FMA_F16",
    "SQ_INSTS_VALU_FMA_F32",
    "SQ_INSTS_VALU_FMA_F64",
    "SQ_INSTS_VALU",
    "SQ_INSTS_SALU",
    "SQ_INSTS_FLAT",
    "SQ_INSTS_LDS",
    "SQ_WAVES",
];

/// Error returned by [`HwCounters::get`] for unknown counter names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownCounter(pub String);

impl fmt::Display for UnknownCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown hardware counter `{}`", self.0)
    }
}

impl std::error::Error for UnknownCounter {}

impl HwCounters {
    /// Looks a counter up by its rocprof name.
    pub fn get(&self, name: &str) -> Result<u64, UnknownCounter> {
        Ok(match name {
            "SQ_INSTS_VALU_MFMA_MOPS_F64" => self.mfma_mops_f64,
            "SQ_INSTS_VALU_MFMA_MOPS_F32" => self.mfma_mops_f32,
            "SQ_INSTS_VALU_MFMA_MOPS_F16" => self.mfma_mops_f16,
            "SQ_INSTS_VALU_MFMA_MOPS_BF16" => self.mfma_mops_bf16,
            "SQ_INSTS_VALU_MFMA_MOPS_I8" => self.mfma_mops_i8,
            "SQ_INSTS_VALU_ADD_F16" => self.valu_add_f16,
            "SQ_INSTS_VALU_ADD_F32" => self.valu_add_f32,
            "SQ_INSTS_VALU_ADD_F64" => self.valu_add_f64,
            "SQ_INSTS_VALU_MUL_F16" => self.valu_mul_f16,
            "SQ_INSTS_VALU_MUL_F32" => self.valu_mul_f32,
            "SQ_INSTS_VALU_MUL_F64" => self.valu_mul_f64,
            "SQ_INSTS_VALU_FMA_F16" => self.valu_fma_f16,
            "SQ_INSTS_VALU_FMA_F32" => self.valu_fma_f32,
            "SQ_INSTS_VALU_FMA_F64" => self.valu_fma_f64,
            "SQ_INSTS_VALU" => self.total_valu_insts(),
            "SQ_INSTS_SALU" => self.salu_insts,
            "SQ_INSTS_FLAT" => self.flat_loads + self.flat_stores,
            "SQ_INSTS_LDS" => self.lds_reads + self.lds_writes,
            "SQ_WAVES" => self.waves_launched,
            other => return Err(UnknownCounter(other.to_owned())),
        })
    }

    /// Iterates every published counter as a `(name, value)` pair, in
    /// [`COUNTER_NAMES`] order. This is the enumeration surface the
    /// trace exporter and [`mc_trace::MetricsRegistry`] are built on —
    /// callers no longer need to hard-code rocprof names.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        COUNTER_NAMES
            .iter()
            .map(|name| (*name, self.get(name).expect("published names resolve")))
    }

    /// Registers every counter in a metrics registry under the
    /// `counters.` prefix (e.g. `counters.SQ_INSTS_VALU_MFMA_MOPS_F32`).
    pub fn register_metrics(&self, registry: &mut mc_trace::MetricsRegistry) {
        for (name, value) in self.iter() {
            registry.set(
                &format!("counters.{name}"),
                mc_trace::Unit::Count,
                value as f64,
            );
        }
    }

    /// All VALU instructions (arithmetic + moves/conversions).
    pub fn total_valu_insts(&self) -> u64 {
        self.valu_add_f16
            + self.valu_add_f32
            + self.valu_add_f64
            + self.valu_mul_f16
            + self.valu_mul_f32
            + self.valu_mul_f64
            + self.valu_fma_f16
            + self.valu_fma_f32
            + self.valu_fma_f64
            + self.valu_other
    }

    /// Records the retirement of `times` executions of one slot by a
    /// single wavefront.
    pub fn record(&mut self, op: &SlotOp, times: u64) {
        match op {
            SlotOp::Mfma(i) => {
                let mops = i.flops() * times / 512;
                match i.ab {
                    DType::F64 => self.mfma_mops_f64 += mops,
                    DType::F32 => self.mfma_mops_f32 += mops,
                    DType::F16 => self.mfma_mops_f16 += mops,
                    DType::Bf16 => self.mfma_mops_bf16 += mops,
                    DType::I8 | DType::I32 => self.mfma_mops_i8 += mops,
                }
            }
            SlotOp::Valu(v) => {
                let slot = match (v.kind, v.dtype) {
                    (ValuOpKind::Add, DType::F16) => &mut self.valu_add_f16,
                    (ValuOpKind::Add, DType::F64) => &mut self.valu_add_f64,
                    (ValuOpKind::Add, _) => &mut self.valu_add_f32,
                    (ValuOpKind::Mul, DType::F16) => &mut self.valu_mul_f16,
                    (ValuOpKind::Mul, DType::F64) => &mut self.valu_mul_f64,
                    (ValuOpKind::Mul, _) => &mut self.valu_mul_f32,
                    (ValuOpKind::Fma, DType::F16) => &mut self.valu_fma_f16,
                    (ValuOpKind::Fma, DType::F64) => &mut self.valu_fma_f64,
                    (ValuOpKind::Fma, _) => &mut self.valu_fma_f32,
                    // Packed f16 FMA performs two fused MACs per lane; the
                    // hardware FMA_F16 counter advances by the packing
                    // factor so Eq. 1-style derivations stay exact.
                    (ValuOpKind::PackedFma, _) => {
                        self.valu_fma_f16 += 2 * times;
                        return;
                    }
                    (ValuOpKind::Move, _) => &mut self.valu_other,
                };
                *slot += times;
            }
            SlotOp::GlobalLoad { .. } => self.flat_loads += times,
            SlotOp::GlobalStore { .. } => self.flat_stores += times,
            SlotOp::LdsRead { .. } => self.lds_reads += times,
            SlotOp::LdsWrite { .. } => self.lds_writes += times,
            SlotOp::Scalar | SlotOp::Waitcnt(_) | SlotOp::Barrier | SlotOp::SNop(_) => {
                self.salu_insts += times;
            }
        }
    }

    /// Adds another counter bank into this one.
    pub fn merge(&mut self, other: &HwCounters) {
        *self = self.merged(other);
    }

    /// Returns the sum of two counter banks.
    pub fn merged(&self, o: &HwCounters) -> HwCounters {
        HwCounters {
            mfma_mops_f64: self.mfma_mops_f64 + o.mfma_mops_f64,
            mfma_mops_f32: self.mfma_mops_f32 + o.mfma_mops_f32,
            mfma_mops_f16: self.mfma_mops_f16 + o.mfma_mops_f16,
            mfma_mops_bf16: self.mfma_mops_bf16 + o.mfma_mops_bf16,
            mfma_mops_i8: self.mfma_mops_i8 + o.mfma_mops_i8,
            valu_add_f16: self.valu_add_f16 + o.valu_add_f16,
            valu_add_f32: self.valu_add_f32 + o.valu_add_f32,
            valu_add_f64: self.valu_add_f64 + o.valu_add_f64,
            valu_mul_f16: self.valu_mul_f16 + o.valu_mul_f16,
            valu_mul_f32: self.valu_mul_f32 + o.valu_mul_f32,
            valu_mul_f64: self.valu_mul_f64 + o.valu_mul_f64,
            valu_fma_f16: self.valu_fma_f16 + o.valu_fma_f16,
            valu_fma_f32: self.valu_fma_f32 + o.valu_fma_f32,
            valu_fma_f64: self.valu_fma_f64 + o.valu_fma_f64,
            valu_other: self.valu_other + o.valu_other,
            salu_insts: self.salu_insts + o.salu_insts,
            flat_loads: self.flat_loads + o.flat_loads,
            flat_stores: self.flat_stores + o.flat_stores,
            lds_reads: self.lds_reads + o.lds_reads,
            lds_writes: self.lds_writes + o.lds_writes,
            waves_launched: self.waves_launched + o.waves_launched,
            workgroups_launched: self.workgroups_launched + o.workgroups_launched,
        }
    }

    /// Counter-wise difference (`self - earlier`), for session deltas.
    /// Saturates at zero rather than panicking on counter wrap.
    pub fn delta_from(&self, earlier: &HwCounters) -> HwCounters {
        HwCounters {
            mfma_mops_f64: self.mfma_mops_f64.saturating_sub(earlier.mfma_mops_f64),
            mfma_mops_f32: self.mfma_mops_f32.saturating_sub(earlier.mfma_mops_f32),
            mfma_mops_f16: self.mfma_mops_f16.saturating_sub(earlier.mfma_mops_f16),
            mfma_mops_bf16: self.mfma_mops_bf16.saturating_sub(earlier.mfma_mops_bf16),
            mfma_mops_i8: self.mfma_mops_i8.saturating_sub(earlier.mfma_mops_i8),
            valu_add_f16: self.valu_add_f16.saturating_sub(earlier.valu_add_f16),
            valu_add_f32: self.valu_add_f32.saturating_sub(earlier.valu_add_f32),
            valu_add_f64: self.valu_add_f64.saturating_sub(earlier.valu_add_f64),
            valu_mul_f16: self.valu_mul_f16.saturating_sub(earlier.valu_mul_f16),
            valu_mul_f32: self.valu_mul_f32.saturating_sub(earlier.valu_mul_f32),
            valu_mul_f64: self.valu_mul_f64.saturating_sub(earlier.valu_mul_f64),
            valu_fma_f16: self.valu_fma_f16.saturating_sub(earlier.valu_fma_f16),
            valu_fma_f32: self.valu_fma_f32.saturating_sub(earlier.valu_fma_f32),
            valu_fma_f64: self.valu_fma_f64.saturating_sub(earlier.valu_fma_f64),
            valu_other: self.valu_other.saturating_sub(earlier.valu_other),
            salu_insts: self.salu_insts.saturating_sub(earlier.salu_insts),
            flat_loads: self.flat_loads.saturating_sub(earlier.flat_loads),
            flat_stores: self.flat_stores.saturating_sub(earlier.flat_stores),
            lds_reads: self.lds_reads.saturating_sub(earlier.lds_reads),
            lds_writes: self.lds_writes.saturating_sub(earlier.lds_writes),
            waves_launched: self.waves_launched.saturating_sub(earlier.waves_launched),
            workgroups_launched: self
                .workgroups_launched
                .saturating_sub(earlier.workgroups_launched),
        }
    }
}

impl fmt::Display for HwCounters {
    /// A rocprof-style counter dump: one `NAME value` line per
    /// published counter, in [`COUNTER_NAMES`] order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            writeln!(f, "{name:<32} {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::{cdna2_catalog, ValuOp};

    #[test]
    fn mfma_mops_increments_every_512_ops() {
        let mut c = HwCounters::default();
        let f64i = *cdna2_catalog()
            .find(DType::F64, DType::F64, 16, 16, 4)
            .unwrap();
        // One FP64 16x16x4 = 2048 FLOPs = 4 MOPS ticks.
        c.record(&SlotOp::Mfma(f64i), 1);
        assert_eq!(c.mfma_mops_f64, 4);
        c.record(&SlotOp::Mfma(f64i), 999);
        assert_eq!(c.mfma_mops_f64, 4000);
    }

    #[test]
    fn valu_counters_count_wavefront_instructions() {
        let mut c = HwCounters::default();
        c.record(&SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, DType::F64)), 10);
        c.record(&SlotOp::Valu(ValuOp::new(ValuOpKind::Add, DType::F64)), 5);
        assert_eq!(c.valu_fma_f64, 10);
        assert_eq!(c.valu_add_f64, 5);
        // Eq. 1 reconstruction: 128*FMA + 64*ADD FLOPs.
        assert_eq!(128 * c.valu_fma_f64 + 64 * c.valu_add_f64, 1600);
    }

    #[test]
    fn packed_fma_advances_counter_by_packing_factor() {
        let mut c = HwCounters::default();
        c.record(
            &SlotOp::Valu(ValuOp::new(ValuOpKind::PackedFma, DType::F16)),
            3,
        );
        assert_eq!(c.valu_fma_f16, 6);
    }

    #[test]
    fn named_lookup_and_errors() {
        let mut c = HwCounters::default();
        let mixed = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        c.record(&SlotOp::Mfma(mixed), 64);
        assert_eq!(
            c.get("SQ_INSTS_VALU_MFMA_MOPS_F16").unwrap(),
            64 * 8192 / 512
        );
        assert_eq!(c.get("SQ_INSTS_VALU_MFMA_MOPS_F64").unwrap(), 0);
        assert!(c.get("NOT_A_COUNTER").is_err());
        // Every published name resolves.
        for name in COUNTER_NAMES {
            assert!(c.get(name).is_ok(), "{name}");
        }
    }

    #[test]
    fn merge_and_delta_roundtrip() {
        let mut a = HwCounters::default();
        a.record(&SlotOp::global_load(8), 7);
        a.record(&SlotOp::Scalar, 3);
        let mut b = a;
        b.record(&SlotOp::global_store(8), 2);
        let d = b.delta_from(&a);
        assert_eq!(d.flat_loads, 0);
        assert_eq!(d.flat_stores, 2);
        let merged = a.merged(&d);
        assert_eq!(merged, b);
    }

    #[test]
    fn iterator_agrees_with_get_on_every_counter() {
        let mut c = HwCounters::default();
        let mixed = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        c.record(&SlotOp::Mfma(mixed), 64);
        c.record(&SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, DType::F32)), 5);
        c.record(&SlotOp::global_load(8), 3);
        c.waves_launched = 7;
        let pairs: Vec<(&str, u64)> = c.iter().collect();
        assert_eq!(pairs.len(), COUNTER_NAMES.len());
        for (name, value) in &pairs {
            assert_eq!(c.get(name).unwrap(), *value, "{name}");
        }
        // Order matches the published name list.
        let names: Vec<&str> = pairs.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, COUNTER_NAMES);
    }

    #[test]
    fn display_dumps_every_counter() {
        let mut c = HwCounters::default();
        c.record(&SlotOp::Scalar, 11);
        let dump = format!("{c}");
        assert_eq!(dump.lines().count(), COUNTER_NAMES.len());
        assert!(dump.contains("SQ_INSTS_SALU"));
        assert!(dump
            .lines()
            .any(|l| l.starts_with("SQ_INSTS_SALU") && l.ends_with(" 11")));
    }

    #[test]
    fn metrics_registration_uses_counters_prefix() {
        let mut c = HwCounters::default();
        c.record(&SlotOp::Scalar, 4);
        let mut reg = mc_trace::MetricsRegistry::new();
        c.register_metrics(&mut reg);
        assert_eq!(reg.len(), COUNTER_NAMES.len());
        assert_eq!(reg.value("counters.SQ_INSTS_SALU"), Some(4.0));
    }

    #[test]
    fn moves_count_as_valu_but_not_arithmetic() {
        let mut c = HwCounters::default();
        c.record(&SlotOp::Valu(ValuOp::new(ValuOpKind::Move, DType::F32)), 9);
        assert_eq!(c.get("SQ_INSTS_VALU").unwrap(), 9);
        assert_eq!(c.valu_add_f32 + c.valu_mul_f32 + c.valu_fma_f32, 0);
    }
}
