//! The paper's micro-benchmarks (§IV-A) as reusable harnesses.
//!
//! * [`measure_latency`] — one wavefront executes the same MFMA in a long
//!   dependent loop; average cycles per instruction are derived from the
//!   loop timing, exactly like the paper's `clock64()` methodology. No
//!   loads or stores are in the loop, so the result is pure instruction
//!   latency (Table II).
//! * [`throughput_run`] — a configurable number of wavefronts each
//!   iterate `n_iter` MFMA operations; throughput is derived from the
//!   kernel wall time (HIP-events methodology) and the closed-form FLOP
//!   count `2·m·n·k · N_iter · N_WF` (§V-A).

use mc_isa::{KernelDesc, MatrixInstruction, SlotOp, WaveProgram};

use crate::device::{Gpu, PackageResult};
use crate::engine::LaunchError;

/// Default loop iterations for latency measurement (the paper uses 40 M).
pub const LATENCY_LOOP_ITERS: u64 = 40_000_000;

/// Result of a latency measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyResult {
    /// Average cycles per instruction over the loop.
    pub cycles: f64,
    /// FLOPs/CU/cycle this latency implies with four matrix units
    /// (the `8·m·n·k/c` validation identity of §V-A).
    pub flops_per_cu_per_cycle: f64,
}

/// Measures the issue latency of one matrix instruction using a single
/// wavefront looping `iters` times (paper Table II methodology).
///
/// ```
/// use mc_sim::{measure_latency, Gpu};
/// use mc_types::DType;
///
/// let mut gpu = Gpu::mi250x();
/// let instr = mc_isa::cdna2_catalog().find(DType::F64, DType::F64, 16, 16, 4).unwrap();
/// let r = measure_latency(&mut gpu, 0, instr, 1_000_000).unwrap();
/// assert!((r.cycles - 32.0).abs() < 0.1);              // paper Table II
/// assert!((r.flops_per_cu_per_cycle - 256.0).abs() < 1.0); // CDNA2 whitepaper
/// ```
pub fn measure_latency(
    gpu: &mut Gpu,
    die: usize,
    instr: &MatrixInstruction,
    iters: u64,
) -> Result<LatencyResult, LaunchError> {
    let program = WaveProgram::looped(vec![SlotOp::Mfma(*instr)], iters);
    let kernel = KernelDesc {
        workgroups: 1,
        waves_per_workgroup: 1,
        ..KernelDesc::new(format!("latency_{}", instr.mnemonic()), program)
    };
    let result = gpu.launch(die, &kernel)?;
    let exec = &result.kernels[0].exec;
    // clock64() counts device clock ticks: cycles = compute cycles / iters.
    let cycles = exec.compute_cycles / iters as f64;
    Ok(LatencyResult {
        cycles,
        flops_per_cu_per_cycle: 4.0 * instr.flops() as f64 / cycles,
    })
}

/// Result of a throughput run.
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputResult {
    /// Wavefronts launched.
    pub wavefronts: u64,
    /// Measured throughput in TFLOPS.
    pub tflops: f64,
    /// Kernel time in seconds.
    pub time_s: f64,
    /// Full launch result (power, counters, governor state).
    pub package: PackageResult,
}

/// Runs the throughput micro-benchmark: `n_waves` wavefronts each
/// iterating `n_iter` MFMA operations on one die.
pub fn throughput_run(
    gpu: &mut Gpu,
    die: usize,
    instr: &MatrixInstruction,
    n_waves: u64,
    n_iter: u64,
) -> Result<ThroughputResult, LaunchError> {
    let kernel = throughput_kernel(instr, n_waves, n_iter);
    let package = gpu.launch(die, &kernel)?;
    Ok(summarize(n_waves, package))
}

/// Runs the throughput micro-benchmark in parallel on every die of the
/// package — the paper's whole-GPU comparison methodology (§V-C: "we
/// execute the throughput benchmark in parallel on both GCDs").
pub fn throughput_run_all_dies(
    gpu: &mut Gpu,
    instr: &MatrixInstruction,
    n_waves_per_die: u64,
    n_iter: u64,
) -> Result<ThroughputResult, LaunchError> {
    let kernel = throughput_kernel(instr, n_waves_per_die, n_iter);
    let dies = gpu.spec().dies as usize;
    let launches: Vec<(usize, KernelDesc)> = (0..dies).map(|d| (d, kernel.clone())).collect();
    let package = gpu.launch_parallel(&launches)?;
    Ok(summarize(n_waves_per_die * dies as u64, package))
}

fn throughput_kernel(instr: &MatrixInstruction, n_waves: u64, n_iter: u64) -> KernelDesc {
    let program = WaveProgram::looped(vec![SlotOp::Mfma(*instr)], n_iter);
    KernelDesc {
        workgroups: n_waves,
        waves_per_workgroup: 1,
        arch_vgprs: instr.a_vgprs_per_lane() + instr.b_vgprs_per_lane() + 16,
        acc_vgprs: instr.cd_agprs_per_lane(),
        ..KernelDesc::new(format!("throughput_{}", instr.mnemonic()), program)
    }
}

fn summarize(wavefronts: u64, package: PackageResult) -> ThroughputResult {
    let tflops = package.tflops();
    ThroughputResult {
        wavefronts,
        tflops,
        time_s: package.time_s,
        package,
    }
}

/// The wavefront counts the paper sweeps in Fig. 3: multiples of four up
/// to 440 (doubling), then multiples of 440 to avoid partially-idle
/// phases.
pub fn fig3_wavefront_sweep() -> Vec<u64> {
    let mut v = vec![4u64];
    while *v.last().unwrap() < 440 {
        let next = (v.last().unwrap() * 2).min(440);
        v.push(next);
    }
    for m in 2..=4u64 {
        v.push(440 * m);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::cdna2_catalog;
    use mc_types::DType;

    #[test]
    fn table2_latencies_reproduced() {
        // The whole of Table II must come out of the microbenchmark.
        let mut gpu = Gpu::mi250x();
        let cases = [
            (DType::F32, DType::F32, 32, 32, 2, 64.0),
            (DType::F32, DType::F32, 16, 16, 4, 32.0),
            (DType::F32, DType::F16, 32, 32, 8, 64.0),
            (DType::F32, DType::F16, 16, 16, 16, 32.0),
            (DType::F64, DType::F64, 16, 16, 4, 32.0),
        ];
        for (cd, ab, m, n, k, expect) in cases {
            let i = *cdna2_catalog().find(cd, ab, m, n, k).unwrap();
            // Use fewer iterations than 40M to keep tests fast; the
            // measurement is exact either way.
            let r = measure_latency(&mut gpu, 0, &i, 100_000).unwrap();
            assert!(
                (r.cycles - expect).abs() < 0.01,
                "{}: {} vs {expect}",
                i.mnemonic(),
                r.cycles
            );
        }
    }

    #[test]
    fn latency_implies_datasheet_rate() {
        let mut gpu = Gpu::mi250x();
        let i = *cdna2_catalog()
            .find(DType::F64, DType::F64, 16, 16, 4)
            .unwrap();
        let r = measure_latency(&mut gpu, 0, &i, 100_000).unwrap();
        assert!((r.flops_per_cu_per_cycle - 256.0).abs() < 0.1);
    }

    #[test]
    fn throughput_scales_then_plateaus() {
        let mut gpu = Gpu::mi250x();
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        let t64 = throughput_run(&mut gpu, 0, &i, 64, 100_000).unwrap().tflops;
        let t440 = throughput_run(&mut gpu, 0, &i, 440, 100_000)
            .unwrap()
            .tflops;
        let t880 = throughput_run(&mut gpu, 0, &i, 880, 100_000)
            .unwrap()
            .tflops;
        assert!(t440 > 6.0 * t64);
        assert!((t880 - t440).abs() / t440 < 0.02);
        assert!(
            (t440 - 175.0).abs() < 3.0,
            "one-GCD mixed plateau, got {t440}"
        );
    }

    #[test]
    fn whole_package_run_doubles_mixed_throughput() {
        let mut gpu = Gpu::mi250x();
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        let r = throughput_run_all_dies(&mut gpu, &i, 440, 100_000).unwrap();
        assert_eq!(r.wavefronts, 880);
        assert!((r.tflops - 350.0).abs() < 6.0, "got {}", r.tflops);
    }

    #[test]
    fn fig3_sweep_shape() {
        let sweep = fig3_wavefront_sweep();
        assert_eq!(sweep.first(), Some(&4));
        assert!(sweep.contains(&440));
        assert!(sweep.contains(&1760));
        // Strictly increasing.
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        // All entries multiples of 4; entries above 440 multiples of 440.
        assert!(sweep.iter().all(|&n| n % 4 == 0));
        assert!(sweep.iter().filter(|&&n| n > 440).all(|&n| n % 440 == 0));
    }
}
