//! Thread-safe device sharing.
//!
//! The paper's measurement setup is inherently multi-process: a
//! benchmark drives the GPU while a *separate* background tool polls
//! SMI (§IV-C). [`SharedGpu`] reproduces that topology in-process: a
//! `parking_lot`-mutex-guarded device handle that a workload thread and
//! observer threads (counters, telemetry) can use concurrently.

use std::sync::Arc;

use mc_isa::KernelDesc;
use parking_lot::Mutex;

use crate::counters::HwCounters;
use crate::device::{Gpu, PackageResult};
use crate::engine::LaunchError;

/// A cloneable, thread-safe handle to one simulated GPU.
#[derive(Clone, Debug)]
pub struct SharedGpu {
    inner: Arc<Mutex<Gpu>>,
}

impl SharedGpu {
    /// Wraps a GPU for shared use.
    pub fn new(gpu: Gpu) -> Self {
        SharedGpu {
            inner: Arc::new(Mutex::new(gpu)),
        }
    }

    /// A shared MI250X.
    pub fn mi250x() -> Self {
        SharedGpu::new(Gpu::mi250x())
    }

    /// Launches a kernel (serializing with other users of the handle).
    pub fn launch(&self, die: usize, kernel: &KernelDesc) -> Result<PackageResult, LaunchError> {
        self.inner.lock().launch(die, kernel)
    }

    /// Reads one die's cumulative counters — safe to call from an
    /// observer thread while another thread launches.
    pub fn counters(&self, die: usize) -> Result<HwCounters, LaunchError> {
        self.inner.lock().counters(die)
    }

    /// Runs a closure with exclusive access to the device (for anything
    /// not covered by the convenience methods).
    pub fn with<R>(&self, f: impl FnOnce(&mut Gpu) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::{cdna2_catalog, SlotOp, WaveProgram};
    use mc_types::DType;

    fn kernel(iters: u64) -> KernelDesc {
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        KernelDesc {
            workgroups: 64,
            waves_per_workgroup: 1,
            ..KernelDesc::new("shared", WaveProgram::looped(vec![SlotOp::Mfma(i)], iters))
        }
    }

    #[test]
    fn workload_and_observer_threads_share_one_device() {
        let gpu = SharedGpu::mi250x();
        let observer = {
            let gpu = gpu.clone();
            std::thread::spawn(move || {
                // Poll counters until the workload's MFMA traffic appears
                // (bounded; the workload thread runs concurrently).
                for _ in 0..10_000 {
                    let c = gpu.counters(0).expect("die 0");
                    if c.mfma_mops_f16 > 0 {
                        return c.mfma_mops_f16;
                    }
                    std::thread::yield_now();
                }
                0
            })
        };
        let workload = {
            let gpu = gpu.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    gpu.launch(0, &kernel(1000)).expect("launch");
                }
            })
        };
        workload.join().unwrap();
        let seen = observer.join().unwrap();
        assert!(seen > 0, "observer must see live counters");
        // Final totals reflect all 50 launches.
        let total = gpu.counters(0).unwrap();
        assert_eq!(total.mfma_mops_f16, 50 * 64 * 1000 * 8192 / 512);
    }

    #[test]
    fn with_gives_exclusive_access() {
        let gpu = SharedGpu::mi250x();
        let name = gpu.with(|g| g.spec().name.clone());
        assert!(name.contains("MI250X"));
    }

    #[test]
    fn clones_share_state() {
        let a = SharedGpu::mi250x();
        let b = a.clone();
        a.launch(0, &kernel(10)).unwrap();
        assert!(b.counters(0).unwrap().mfma_mops_f16 > 0);
    }
}
