//! System Management Interface (SMI) emulation.
//!
//! The paper measures power through the ROCm SMI library's
//! `rsmi_dev_power_ave_get()` (§IV-C), polled by a background process at
//! a 100 ms period. This module exposes the same shape of interface over
//! the simulator's power profiles, including the small telemetry noise
//! real sensors exhibit (the paper reports <2 % variance and validates
//! 10 ms against 100 ms periods).

use serde::{Deserialize, Serialize};

use crate::device::PowerProfile;

/// One timestamped power sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Sample timestamp in seconds from kernel start.
    pub t_s: f64,
    /// Power in watts.
    pub watts: f64,
}

/// An SMI client bound to one device's telemetry.
///
/// Mirrors the ROCm SMI API shape: `power_ave` answers "average socket
/// power over the sensor window", which the tool polls periodically.
#[derive(Clone, Debug)]
pub struct Smi {
    profile: PowerProfile,
    noise_amplitude: f64,
    seed: u64,
}

impl Smi {
    /// Binds an SMI client to a power profile (one launch's telemetry).
    pub fn attach(profile: PowerProfile, noise_amplitude: f64, seed: u64) -> Self {
        Smi {
            profile,
            noise_amplitude,
            seed,
        }
    }

    /// `rsmi_dev_power_ave_get` equivalent: instantaneous sensor reading
    /// at time `t`, with deterministic sensor noise.
    pub fn power_ave(&self, t_s: f64) -> f64 {
        let base = self.profile.power_at(t_s);
        base * (1.0 + self.noise_amplitude * self.noise_at(t_s))
    }

    /// Polls the sensor at a fixed period over the whole profile, the
    /// paper's background-sampler methodology. Returns all samples.
    pub fn sample_period(&self, period_s: f64) -> Vec<PowerSample> {
        assert!(period_s > 0.0, "sampling period must be positive");
        let duration = self.profile.duration_s();
        let n = (duration / period_s).floor() as usize;
        (0..=n)
            .map(|i| {
                let t = i as f64 * period_s;
                PowerSample {
                    t_s: t,
                    watts: self.power_ave(t),
                }
            })
            .collect()
    }

    /// Deterministic noise in [-1, 1] from a hash of the timestamp —
    /// reproducible across runs, uncorrelated across samples.
    ///
    /// # Noise model
    ///
    /// The sensor reading at time `t` is
    /// `power_at(t) × (1 + noise_amplitude × noise(t))` where
    /// `noise(t)` is produced by the SplitMix64 finalizer applied to
    /// `seed XOR t.to_bits()` and mapped linearly onto `[-1, 1]`.
    /// The pipeline is pure integer arithmetic plus one IEEE-754
    /// division, so identical `(profile, noise_amplitude, seed)`
    /// inputs yield **byte-identical** sample streams on every
    /// platform and across calls — there is no hidden RNG state; the
    /// timestamp itself is the stream position. The multiplicative
    /// form mirrors real SMI telemetry, whose variance the paper
    /// reports as a fraction of the reading (<2 %, §IV-C), and keeps
    /// an idle device's samples proportionally quiet.
    fn noise_at(&self, t_s: f64) -> f64 {
        let mut x = self.seed ^ t_s.to_bits();
        // SplitMix64 finalizer.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x as f64 / u64::MAX as f64) * 2.0 - 1.0
    }
}

/// Summary statistics over a set of samples (used by experiments).
///
/// Beyond the classic min/mean/max summary, the stats carry streaming
/// p50/p95/p99 quantile estimates from the [`mc_trace::Histogram`]
/// primitive — the distribution view the paper's >1000-sample SMI
/// methodology supports but a min/mean/max triple cannot express.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    /// Number of samples.
    pub count: usize,
    /// Mean power in watts.
    pub mean_w: f64,
    /// Minimum sample.
    pub min_w: f64,
    /// Maximum sample.
    pub max_w: f64,
    /// Population standard deviation.
    pub stddev_w: f64,
    /// Median power estimate in watts (log-bucketed histogram, 0 when
    /// there are no samples).
    pub p50_w: f64,
    /// 95th-percentile power estimate in watts.
    pub p95_w: f64,
    /// 99th-percentile power estimate in watts.
    pub p99_w: f64,
}

/// The histogram shape every power-sample stream records through:
/// 0.1 W to 10 kW, 50 log buckets per decade (≤ 4.7 % relative bucket
/// width, well inside the sensor's own <2 % noise band).
pub fn power_sample_histogram() -> mc_trace::Histogram {
    mc_trace::Histogram::log_bucketed(mc_trace::Unit::Watts, 0.1, 10_000.0, 50)
}

impl SampleStats {
    /// Registers these statistics in a metrics registry under the
    /// `power.smi.` prefix (e.g. `power.smi.mean_w`,
    /// `power.smi.p99_w`).
    pub fn register_metrics(&self, registry: &mut mc_trace::MetricsRegistry) {
        use mc_trace::Unit;
        registry.set("power.smi.samples", Unit::Count, self.count as f64);
        registry.set("power.smi.mean_w", Unit::Watts, self.mean_w);
        registry.set("power.smi.min_w", Unit::Watts, self.min_w);
        registry.set("power.smi.max_w", Unit::Watts, self.max_w);
        registry.set("power.smi.stddev_w", Unit::Watts, self.stddev_w);
        registry.set("power.smi.p50_w", Unit::Watts, self.p50_w);
        registry.set("power.smi.p95_w", Unit::Watts, self.p95_w);
        registry.set("power.smi.p99_w", Unit::Watts, self.p99_w);
    }
}

/// Computes summary statistics of a sample train, including streaming
/// quantile estimates through [`power_sample_histogram`].
pub fn sample_stats(samples: &[PowerSample]) -> SampleStats {
    if samples.is_empty() {
        return SampleStats::default();
    }
    let n = samples.len() as f64;
    let mean = samples.iter().map(|s| s.watts).sum::<f64>() / n;
    let var = samples
        .iter()
        .map(|s| (s.watts - mean).powi(2))
        .sum::<f64>()
        / n;
    let mut hist = power_sample_histogram();
    for s in samples {
        hist.record(s.watts);
    }
    SampleStats {
        count: samples.len(),
        mean_w: mean,
        min_w: samples
            .iter()
            .map(|s| s.watts)
            .fold(f64::INFINITY, f64::min),
        max_w: samples.iter().map(|s| s.watts).fold(0.0, f64::max),
        stddev_w: var.sqrt(),
        p50_w: hist.quantile(0.5).unwrap_or(0.0),
        p95_w: hist.quantile(0.95).unwrap_or(0.0),
        p99_w: hist.quantile(0.99).unwrap_or(0.0),
    }
}

/// Records a sample train into a [`power_sample_histogram`] and
/// registers it under `name` in `registry` — the OpenMetrics histogram
/// family the `.om` snapshots expose next to the `power.smi.*` gauges.
pub fn register_sample_histogram(
    registry: &mut mc_trace::MetricsRegistry,
    name: &str,
    samples: &[PowerSample],
) {
    let mut hist = power_sample_histogram();
    for s in samples {
        hist.record(s.watts);
    }
    registry.register_histogram(name, hist);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_profile(duration: f64, watts: f64) -> PowerProfile {
        PowerProfile {
            segments: vec![(0.0, duration, watts)],
        }
    }

    #[test]
    fn sampling_period_yields_expected_count() {
        // Paper methodology: ≥1000 samples at 100 ms needs a ≥100 s run.
        let smi = Smi::attach(flat_profile(120.0, 300.0), 0.0, 1);
        let samples = smi.sample_period(0.1);
        assert!(samples.len() >= 1000, "{}", samples.len());
    }

    #[test]
    fn noiseless_sampling_returns_profile_power() {
        let smi = Smi::attach(flat_profile(1.0, 250.0), 0.0, 7);
        for s in smi.sample_period(0.01) {
            assert_eq!(s.watts, 250.0);
        }
    }

    #[test]
    fn noise_stays_within_amplitude_and_is_deterministic() {
        let smi = Smi::attach(flat_profile(10.0, 400.0), 0.015, 42);
        let a = smi.sample_period(0.1);
        let b = smi.sample_period(0.1);
        assert_eq!(a, b, "telemetry must be reproducible");
        for s in &a {
            assert!((s.watts - 400.0).abs() <= 400.0 * 0.015 + 1e-9);
        }
        let stats = sample_stats(&a);
        assert!((stats.mean_w - 400.0).abs() < 4.0);
        assert!(stats.stddev_w < 400.0 * 0.015);
    }

    #[test]
    fn short_and_long_periods_agree_on_mean() {
        // The paper checked 10 ms vs 100 ms periods give similar results.
        let smi = Smi::attach(flat_profile(100.0, 333.0), 0.015, 9);
        let fast = sample_stats(&smi.sample_period(0.01));
        let slow = sample_stats(&smi.sample_period(0.1));
        assert!((fast.mean_w - slow.mean_w).abs() < 2.0);
    }

    #[test]
    fn golden_sample_stream_is_byte_identical() {
        // Pinned bit patterns for (flat 400 W over 1 s, amplitude
        // 0.015, seed 42) sampled at 250 ms. Any change to the noise
        // model, hash constants, or sampling grid shows up here as a
        // bit-level diff — the cross-platform determinism contract.
        const GOLDEN: &[(u64, u64)] = &[
            (0x0000000000000000, 0x40792E61659CA3F0),
            (0x3FD0000000000000, 0x4078E479014BA78B),
            (0x3FE0000000000000, 0x40790228C31EA42E),
            (0x3FE8000000000000, 0x4078D834C3CB177A),
            (0x3FF0000000000000, 0x40794281FC2EB982),
        ];
        let smi = Smi::attach(flat_profile(1.0, 400.0), 0.015, 42);
        let samples = smi.sample_period(0.25);
        assert_eq!(samples.len(), GOLDEN.len());
        for (s, &(t_bits, w_bits)) in samples.iter().zip(GOLDEN) {
            assert_eq!(s.t_s.to_bits(), t_bits, "t={}", s.t_s);
            assert_eq!(s.watts.to_bits(), w_bits, "w={}", s.watts);
        }
        // And a repeated run is identical bit for bit.
        let again = smi.sample_period(0.25);
        assert_eq!(samples, again);
    }

    #[test]
    fn stats_register_under_power_smi_prefix() {
        let smi = Smi::attach(flat_profile(10.0, 300.0), 0.0, 1);
        let stats = sample_stats(&smi.sample_period(0.1));
        let mut reg = mc_trace::MetricsRegistry::new();
        stats.register_metrics(&mut reg);
        assert_eq!(reg.value("power.smi.mean_w"), Some(300.0));
        assert_eq!(reg.value("power.smi.samples"), Some(101.0));
        // Quantiles ride along as power.smi.p*_w gauges.
        for name in ["power.smi.p50_w", "power.smi.p95_w", "power.smi.p99_w"] {
            let v = reg.value(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!((v - 300.0).abs() < 300.0 * 0.05, "{name} = {v}");
        }
    }

    #[test]
    fn quantiles_order_and_bracket_the_noise_band() {
        let smi = Smi::attach(flat_profile(120.0, 400.0), 0.015, 42);
        let stats = sample_stats(&smi.sample_period(0.1));
        assert!(stats.count >= 1000);
        assert!(stats.p50_w <= stats.p95_w && stats.p95_w <= stats.p99_w);
        assert!(stats.min_w <= stats.p50_w && stats.p99_w <= stats.max_w * 1.0001);
        // ±1.5 % multiplicative noise: every quantile stays within the
        // histogram's bucket resolution of the 400 W band.
        for q in [stats.p50_w, stats.p95_w, stats.p99_w] {
            assert!((q - 400.0).abs() < 400.0 * 0.07, "{q}");
        }
    }

    #[test]
    fn sample_histograms_register_for_exposition() {
        let smi = Smi::attach(flat_profile(10.0, 300.0), 0.0, 1);
        let samples = smi.sample_period(0.1);
        let mut reg = mc_trace::MetricsRegistry::new();
        register_sample_histogram(&mut reg, "power.smi.watts", &samples);
        let h = reg.histogram("power.smi.watts").expect("registered");
        assert_eq!(h.count(), samples.len() as u64);
        let text = mc_trace::openmetrics(&reg);
        assert!(text.contains("# TYPE power_smi_watts histogram"), "{text}");
        assert!(text.contains("power_smi_watts_count 101"), "{text}");
    }

    #[test]
    fn stats_on_empty_are_zero() {
        let s = sample_stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_w, 0.0);
    }

    #[test]
    fn segmented_profile_sampled_correctly() {
        let p = PowerProfile {
            segments: vec![(0.0, 1.0, 100.0), (1.0, 2.0, 500.0)],
        };
        let smi = Smi::attach(p, 0.0, 3);
        assert_eq!(smi.power_ave(0.5), 100.0);
        assert_eq!(smi.power_ave(1.5), 500.0);
    }
}
