//! `mc-flow`: dataflow race & synchronization verifier for pipelined
//! kernel plans.
//!
//! `mc-lint` answers "is every instruction individually legal?"; this
//! crate answers the question the paper's §III programming model makes
//! hard in practice: *is the pipeline between those instructions
//! correct?* Hand-scheduled Matrix-Core kernels overlap global loads,
//! LDS staging, and MFMA issue across loop iterations, and the three
//! classic failure modes — an LDS race across wavefronts, an
//! insufficient `s_waitcnt` before a consumer, and a register working
//! set that outgrows the declared budget — all produce *plausible but
//! wrong* simulated numbers rather than crashes.
//!
//! The engine abstractly interprets a [`mc_isa::KernelDesc`] over the
//! shared steady-state walk ([`mc_isa::walk::steady_passes`], also used
//! by `mc-lint`'s hazard scan) with [`FLOW_UNROLL`] loop iterations, so
//! double-buffer stage rotation ([`mc_isa::StageTag::Rotating`]) is
//! proven across adjacent iterations rather than assumed. Four analyses
//! run per kernel:
//!
//! * **LDS race detection** — events are partitioned into *barrier
//!   intervals* (the count of `Barrier` ops preceding them); two
//!   accesses to the same `(buffer, resolved stage)` in the same
//!   interval with at least one write race across wavefronts, because
//!   nothing orders one wave's slot against another's between barriers.
//! * **Waitcnt sufficiency** — saturating per-class counters (`vmcnt`,
//!   `lgkmcnt`) are tracked symbolically; a consumer whose producing
//!   load has not retired under the waits seen so far is flagged, as is
//!   a `Barrier` with LDS traffic still outstanding (CDNA's `s_barrier`
//!   synchronizes *execution*, not *memory*).
//! * **Dead-store analysis** — an LDS write whose `(buffer, stage set)`
//!   intersects no read is wasted staging bandwidth.
//! * **Max-live estimation** — a def-use pass over load→consumer
//!   intervals tightens the declared-VGPR check into an estimate of the
//!   actual peak register working set.
//!
//! Verdicts surface as [`FlowDiagnostic`]s in a [`FlowReport`] mirroring
//! `mc-lint`'s report API (and reusing its [`Severity`]/[`Span`]
//! vocabulary), so compile paths can treat both gates uniformly. See
//! `docs/DATAFLOW.md` for the lattice and the waitcnt model.

#![deny(missing_docs)]

use core::fmt;
use std::collections::{HashMap, HashSet};

use mc_isa::specs::DieSpec;
use mc_isa::walk::{steady_passes, PassKind};
use mc_isa::{CounterClass, KernelDesc, MatrixArch, SlotOp};
pub use mc_lint::{Section, Severity, Span};
use serde::{Deserialize, Serialize};

/// Loop iterations the steady-state walk models. Three is the smallest
/// count that exhibits every adjacency a period-2 stage rotation can
/// produce (iteration 0→1 *and* 1→2 differ when `Fixed` and `Rotating`
/// tags mix), so it proves double-buffered plans rather than sampling
/// them.
pub const FLOW_UNROLL: u64 = 3;

/// Baseline per-wave scratch (address arithmetic, loop counters, scalars
/// spilled to VGPRs) assumed by the max-live estimate.
const SCRATCH_VGPRS: u32 = 8;

/// Cap on the VGPRs a single streaming load can hold live: real kernels
/// stage wider transfers through a bounded register window (waitcnt
/// batching), so one interval never accounts for more than this.
const STREAM_WINDOW_VGPRS: u32 = 16;

/// Stable identifiers for every dataflow rule. Documented in
/// `docs/DATAFLOW.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowRule {
    /// A wave may read an LDS location another wave is still writing in
    /// the same barrier interval (read-after-write race).
    LdsRaceRaw,
    /// A wave may overwrite an LDS location another wave is still
    /// reading in the same barrier interval (write-after-read race).
    LdsRaceWar,
    /// Two waves may write the same LDS location in the same barrier
    /// interval (write-after-write race).
    LdsRaceWaw,
    /// A `Barrier` executes with LDS traffic still outstanding on
    /// `lgkmcnt`; `s_barrier` does not wait memory, so other waves can
    /// observe stale LDS after the barrier.
    BarrierLgkmPending,
    /// A consumer reads data whose producing load has not retired under
    /// the `s_waitcnt` bounds seen so far.
    InsufficientWaitcnt,
    /// An LDS write whose `(buffer, stage set)` no read ever overlaps.
    DeadLdsStore,
    /// The estimated peak register working set exceeds the physical
    /// register file.
    MaxLiveOverflow,
    /// The estimated peak register working set exceeds the kernel's
    /// declared `arch_vgprs` budget.
    MaxLiveUnderdeclared,
}

impl FlowRule {
    /// All rules, in documentation order.
    pub const ALL: &'static [FlowRule] = &[
        FlowRule::LdsRaceRaw,
        FlowRule::LdsRaceWar,
        FlowRule::LdsRaceWaw,
        FlowRule::BarrierLgkmPending,
        FlowRule::InsufficientWaitcnt,
        FlowRule::DeadLdsStore,
        FlowRule::MaxLiveOverflow,
        FlowRule::MaxLiveUnderdeclared,
    ];

    /// The stable kebab-case name used in reports and `docs/DATAFLOW.md`.
    pub fn as_str(self) -> &'static str {
        match self {
            FlowRule::LdsRaceRaw => "lds-race-raw",
            FlowRule::LdsRaceWar => "lds-race-war",
            FlowRule::LdsRaceWaw => "lds-race-waw",
            FlowRule::BarrierLgkmPending => "barrier-lgkm-pending",
            FlowRule::InsufficientWaitcnt => "insufficient-waitcnt",
            FlowRule::DeadLdsStore => "dead-lds-store",
            FlowRule::MaxLiveOverflow => "max-live-overflow",
            FlowRule::MaxLiveUnderdeclared => "max-live-underdeclared",
        }
    }

    /// The severity this rule always fires at.
    pub fn severity(self) -> Severity {
        match self {
            FlowRule::DeadLdsStore | FlowRule::MaxLiveUnderdeclared => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for FlowRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One dataflow finding.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowDiagnostic {
    /// Error or warning (always [`FlowRule::severity`] of the rule).
    pub severity: Severity,
    /// The rule that fired.
    pub rule: FlowRule,
    /// Program location of the offending op, when the finding points at
    /// one slot.
    pub span: Option<Span>,
    /// Human-readable description of the defect.
    pub message: String,
    /// Suggested fix, when one exists.
    pub help: Option<String>,
}

impl FlowDiagnostic {
    /// Builds a diagnostic at the rule's intrinsic severity.
    pub fn new(rule: FlowRule, span: Option<Span>, message: impl Into<String>) -> Self {
        FlowDiagnostic {
            severity: rule.severity(),
            rule,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Renders this diagnostic rustc-style, labelled with the kernel it
    /// was produced for.
    pub fn render(&self, subject: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.rule, self.message);
        match self.span {
            Some(span) => out.push_str(&format!("  --> `{subject}`, {span}\n")),
            None => out.push_str(&format!("  --> `{subject}`\n")),
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }
}

/// The result of dataflow-verifying one kernel.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowReport {
    /// The kernel name.
    pub subject: String,
    /// Findings in walk order.
    pub diagnostics: Vec<FlowDiagnostic>,
}

impl FlowReport {
    /// Builds a report for a subject from raw diagnostics.
    pub fn new(subject: impl Into<String>, diagnostics: Vec<FlowDiagnostic>) -> Self {
        FlowReport {
            subject: subject.into(),
            diagnostics,
        }
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// `true` when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> Vec<&FlowDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// Warning-severity findings only.
    pub fn warnings(&self) -> Vec<&FlowDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect()
    }

    /// `true` when the given rule fired at least once.
    pub fn fired(&self, rule: FlowRule) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// Renders every finding rustc-style, followed by a summary line.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return format!("`{}`: flow clean\n", self.subject);
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(&self.subject));
        }
        out.push_str(&format!(
            "`{}`: {} error(s), {} warning(s)\n",
            self.subject,
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One op occurrence in the unrolled steady-state walk.
struct Event<'a> {
    /// Location of the static op this occurrence came from.
    span: Span,
    /// The op itself.
    op: &'a SlotOp,
    /// Loop iteration of the pass (0 for prologue/epilogue walk passes).
    iteration: u64,
    /// Number of `Barrier` ops preceding this event in the walk — its
    /// barrier interval.
    phase: u32,
}

fn section_of(kind: PassKind) -> Section {
    match kind {
        PassKind::Prologue => Section::Prologue,
        PassKind::Body => Section::Body,
        PassKind::Epilogue => Section::Epilogue,
    }
}

/// Flattens the steady-state walk into one event stream with barrier
/// intervals assigned.
fn collect_events(k: &KernelDesc) -> Vec<Event<'_>> {
    let mut events = Vec::new();
    let mut phase = 0u32;
    for pass in steady_passes(&k.program, FLOW_UNROLL) {
        let section = section_of(pass.kind);
        for (slot, op) in pass.ops.iter().enumerate() {
            events.push(Event {
                span: Span { section, slot },
                op,
                iteration: pass.iteration,
                phase,
            });
            if matches!(op, SlotOp::Barrier) {
                phase += 1;
            }
        }
    }
    events
}

/// Runs all dataflow analyses over one kernel for one target die and
/// returns the combined report.
///
/// Race and dead-store analyses run for every architecture. The waitcnt
/// and max-live analyses model GCN/CDNA semantics (`s_waitcnt` counter
/// classes, explicit VGPR streaming windows) and are skipped on Ampere,
/// whose `mma.sync` pipeline interlocks in hardware and whose register
/// allocation the PTX toolchain owns.
pub fn analyze_kernel(die: &DieSpec, k: &KernelDesc) -> FlowReport {
    let events = collect_events(k);
    let mut diags = Vec::new();
    if k.waves_per_workgroup > 1 {
        check_races(&events, &mut diags);
    }
    if die.arch != MatrixArch::Ampere {
        check_waitcnt(&events, &mut diags);
        check_max_live(die, k, &events, &mut diags);
    }
    check_dead_stores(&events, &mut diags);
    FlowReport::new(k.name.clone(), diags)
}

/// An LDS access in the event stream, with its stage resolved for the
/// concrete iteration it executed in.
struct LdsEvent {
    span: Span,
    iteration: u64,
    phase: u32,
    buffer: u8,
    stage: u8,
    write: bool,
}

fn check_races(events: &[Event<'_>], diags: &mut Vec<FlowDiagnostic>) {
    let mut accesses = Vec::new();
    for ev in events {
        let (access, write) = match ev.op {
            SlotOp::LdsRead { access, .. } => (access, false),
            SlotOp::LdsWrite { access, .. } => (access, true),
            _ => continue,
        };
        accesses.push(LdsEvent {
            span: ev.span,
            iteration: ev.iteration,
            phase: ev.phase,
            buffer: access.buffer,
            stage: access.stage.resolve(ev.iteration),
            write,
        });
    }
    let mut seen: HashSet<(FlowRule, Span, Span)> = HashSet::new();
    for (i, a) in accesses.iter().enumerate() {
        for b in accesses.iter().skip(i + 1) {
            if a.phase != b.phase || a.buffer != b.buffer || a.stage != b.stage {
                continue;
            }
            let rule = match (a.write, b.write) {
                (true, true) => FlowRule::LdsRaceWaw,
                (true, false) => FlowRule::LdsRaceRaw,
                (false, true) => FlowRule::LdsRaceWar,
                (false, false) => continue,
            };
            if !seen.insert((rule, a.span, b.span)) {
                continue;
            }
            let kinds = |w: bool| if w { "write" } else { "read" };
            diags.push(
                FlowDiagnostic::new(
                    rule,
                    Some(b.span),
                    format!(
                        "lds {} at {} (iteration {}) and lds {} at {} (iteration {}) touch \
                         buffer {} stage {} inside the same barrier interval; nothing orders \
                         one wave's access against another's",
                        kinds(a.write),
                        a.span,
                        a.iteration,
                        kinds(b.write),
                        b.span,
                        b.iteration,
                        a.buffer,
                        a.stage,
                    ),
                )
                .with_help(
                    "insert a Barrier between the conflicting accesses, or stage them \
                     through different buffers/stages (double-buffering)",
                ),
            );
        }
    }
}

fn check_waitcnt(events: &[Event<'_>], diags: &mut Vec<FlowDiagnostic>) {
    // Outstanding op event indices per counter class, in issue order
    // (both counters retire strictly in order on GCN).
    let mut outstanding: HashMap<CounterClass, Vec<usize>> = HashMap::new();
    outstanding.insert(CounterClass::Vm, Vec::new());
    outstanding.insert(CounterClass::Lgkm, Vec::new());
    let mut last_load: Option<usize> = None;
    let mut last_producer: Option<usize> = None;
    let mut seen: HashSet<(FlowRule, Span)> = HashSet::new();
    let pending = |outstanding: &HashMap<CounterClass, Vec<usize>>, idx: usize| {
        outstanding.values().any(|v| v.contains(&idx))
    };
    for (idx, ev) in events.iter().enumerate() {
        match ev.op {
            SlotOp::GlobalLoad { counter, .. } => {
                outstanding.get_mut(counter).unwrap().push(idx);
                last_load = Some(idx);
                last_producer = Some(idx);
            }
            SlotOp::GlobalStore { counter, .. } => {
                outstanding.get_mut(counter).unwrap().push(idx);
            }
            SlotOp::LdsRead { .. } => {
                outstanding.get_mut(&CounterClass::Lgkm).unwrap().push(idx);
                last_producer = Some(idx);
            }
            SlotOp::LdsWrite { .. } => {
                if let Some(p) = last_load {
                    if pending(&outstanding, p)
                        && seen.insert((FlowRule::InsufficientWaitcnt, ev.span))
                    {
                        diags.push(
                            FlowDiagnostic::new(
                                FlowRule::InsufficientWaitcnt,
                                Some(ev.span),
                                format!(
                                    "lds write stages data from the global load at {} before \
                                     any s_waitcnt retires it",
                                    events[p].span
                                ),
                            )
                            .with_help("insert `Waitcnt(WaitSpec::vm(0))` before the lds write"),
                        );
                    }
                }
                outstanding.get_mut(&CounterClass::Lgkm).unwrap().push(idx);
            }
            SlotOp::Waitcnt(spec) => {
                for class in [CounterClass::Vm, CounterClass::Lgkm] {
                    if spec.bounds(class) {
                        let bound = usize::from(spec.bound(class));
                        let queue = outstanding.get_mut(&class).unwrap();
                        while queue.len() > bound {
                            queue.remove(0);
                        }
                    }
                }
            }
            SlotOp::Barrier => {
                let lgkm = &outstanding[&CounterClass::Lgkm];
                if !lgkm.is_empty() && seen.insert((FlowRule::BarrierLgkmPending, ev.span)) {
                    diags.push(
                        FlowDiagnostic::new(
                            FlowRule::BarrierLgkmPending,
                            Some(ev.span),
                            format!(
                                "barrier executes with {} lds/scalar op(s) still outstanding \
                                 on lgkmcnt (first: {}); s_barrier synchronizes execution, \
                                 not memory",
                                lgkm.len(),
                                events[lgkm[0]].span
                            ),
                        )
                        .with_help("insert `Waitcnt(WaitSpec::lgkm(0))` before the Barrier"),
                    );
                }
            }
            SlotOp::Mfma(_) | SlotOp::Valu(_) => {
                if let Some(p) = last_producer {
                    if pending(&outstanding, p)
                        && seen.insert((FlowRule::InsufficientWaitcnt, ev.span))
                    {
                        let (class, mnem) = match events[p].op {
                            SlotOp::LdsRead { .. } => ("lgkmcnt", "lds read"),
                            _ => ("vmcnt", "global load"),
                        };
                        diags.push(
                            FlowDiagnostic::new(
                                FlowRule::InsufficientWaitcnt,
                                Some(ev.span),
                                format!(
                                    "consumer reads data from the {mnem} at {} before any \
                                     s_waitcnt retires it on {class}",
                                    events[p].span
                                ),
                            )
                            .with_help(format!(
                                "insert a `Waitcnt` bounding {class} between the {mnem} and \
                                 this consumer"
                            )),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

fn check_dead_stores(events: &[Event<'_>], diags: &mut Vec<FlowDiagnostic>) {
    let mut read_stages: HashMap<u8, HashSet<u8>> = HashMap::new();
    for ev in events {
        if let SlotOp::LdsRead { access, .. } = ev.op {
            read_stages
                .entry(access.buffer)
                .or_default()
                .extend(access.stage.stage_set());
        }
    }
    let mut seen: HashSet<Span> = HashSet::new();
    for ev in events {
        if let SlotOp::LdsWrite { access, .. } = ev.op {
            if !seen.insert(ev.span) {
                continue;
            }
            let reads = read_stages.get(&access.buffer);
            let live = access
                .stage
                .stage_set()
                .any(|s| reads.is_some_and(|r| r.contains(&s)));
            if !live {
                diags.push(
                    FlowDiagnostic::new(
                        FlowRule::DeadLdsStore,
                        Some(ev.span),
                        format!(
                            "lds write to buffer {} stage(s) {:?} is never read by any lds \
                             read in the program",
                            access.buffer,
                            access.stage.stage_set().collect::<Vec<_>>(),
                        ),
                    )
                    .with_help(
                        "drop the store, or fix the stage tag so a consumer's stage set \
                         overlaps it",
                    ),
                );
            }
        }
    }
}

/// VGPRs one streaming interval holds live: a quarter-VGPR per byte per
/// lane, capped by the streaming window.
fn stream_vgprs(bytes_per_lane: u32) -> u32 {
    bytes_per_lane.div_ceil(4).min(STREAM_WINDOW_VGPRS)
}

/// A producer→consumer def-use interval over the event stream.
struct Interval {
    start: usize,
    end: usize,
    vgprs: u32,
    /// Whether the interval occupies architectural VGPRs. Loads consumed
    /// by MFMA land in fragment registers (already counted via the
    /// instruction's operand footprint) and stores drain accumulators,
    /// so only `LdsWrite`/`Valu`-consumed streams count.
    counted: bool,
}

fn check_max_live(
    die: &DieSpec,
    k: &KernelDesc,
    events: &[Event<'_>],
    diags: &mut Vec<FlowDiagnostic>,
) {
    // Match each load to its nearest later consumer (newest-open-first,
    // mirroring how hand-scheduled kernels chain registers).
    let mut open: Vec<(usize, u32, bool)> = Vec::new(); // (event, vgprs, is_lds_read)
    let mut intervals: Vec<Interval> = Vec::new();
    let close = |open: &mut Vec<(usize, u32, bool)>,
                 intervals: &mut Vec<Interval>,
                 end: usize,
                 counted: bool,
                 loads_only: bool| {
        let pos = open
            .iter()
            .rposition(|&(_, _, is_lds)| !loads_only || !is_lds);
        if let Some(pos) = pos {
            let (start, vgprs, _) = open.remove(pos);
            intervals.push(Interval {
                start,
                end,
                vgprs,
                counted,
            });
        }
    };
    for (idx, ev) in events.iter().enumerate() {
        match ev.op {
            SlotOp::GlobalLoad { bytes_per_lane, .. } => {
                open.push((idx, stream_vgprs(*bytes_per_lane), false));
            }
            SlotOp::LdsRead { bytes_per_lane, .. } => {
                open.push((idx, stream_vgprs(*bytes_per_lane), true));
            }
            SlotOp::LdsWrite { .. } => close(&mut open, &mut intervals, idx, true, true),
            SlotOp::Valu(_) => close(&mut open, &mut intervals, idx, true, false),
            SlotOp::Mfma(_) => close(&mut open, &mut intervals, idx, false, false),
            SlotOp::GlobalStore { .. } => close(&mut open, &mut intervals, idx, false, false),
            _ => {}
        }
    }
    // A load nothing ever consumes still holds its destination registers
    // to the end of the program: count it conservatively.
    for (start, vgprs, _) in open {
        intervals.push(Interval {
            start,
            end: events.len(),
            vgprs,
            counted: true,
        });
    }
    let peak = (0..events.len())
        .map(|t| {
            intervals
                .iter()
                .filter(|iv| iv.counted && iv.start <= t && t < iv.end)
                .map(|iv| iv.vgprs)
                .sum::<u32>()
        })
        .max()
        .unwrap_or(0);
    let req_arch = events
        .iter()
        .filter_map(|ev| match ev.op {
            SlotOp::Mfma(i) => Some(i.a_vgprs_per_lane() + i.b_vgprs_per_lane()),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let est = SCRATCH_VGPRS + req_arch + peak;
    if est > die.vgprs_per_simd {
        diags.push(
            FlowDiagnostic::new(
                FlowRule::MaxLiveOverflow,
                None,
                format!(
                    "estimated peak register working set ({est} VGPRs = {SCRATCH_VGPRS} \
                     scratch + {req_arch} operand + {peak} streaming) exceeds the register \
                     file ({} per SIMD)",
                    die.vgprs_per_simd
                ),
            )
            .with_help("retire loads sooner (waitcnt batching) or shrink the tile"),
        );
    } else if est > k.arch_vgprs {
        diags.push(
            FlowDiagnostic::new(
                FlowRule::MaxLiveUnderdeclared,
                None,
                format!(
                    "estimated peak register working set ({est} VGPRs = {SCRATCH_VGPRS} \
                     scratch + {req_arch} operand + {peak} streaming) exceeds the declared \
                     arch_vgprs budget ({})",
                    k.arch_vgprs
                ),
            )
            .with_help("raise arch_vgprs so the occupancy model sees the real footprint"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_isa::specs;
    use mc_isa::{LdsAccess, WaitSpec, WaveProgram};
    use mc_types::DType;

    fn die() -> DieSpec {
        specs::mi250x().die
    }

    fn kernel(program: WaveProgram) -> KernelDesc {
        KernelDesc {
            waves_per_workgroup: 4,
            workgroups: 8,
            lds_bytes_per_workgroup: 16 * 1024,
            arch_vgprs: 64,
            acc_vgprs: 16,
            ..KernelDesc::new("flow-test", program)
        }
    }

    fn mfma() -> SlotOp {
        SlotOp::Mfma(
            *mc_isa::cdna2_catalog()
                .find(DType::F32, DType::F16, 16, 16, 16)
                .unwrap(),
        )
    }

    #[test]
    fn single_buffered_handwritten_pipeline_is_clean() {
        let stage = LdsAccess::fixed(0);
        let program = WaveProgram {
            prologue: vec![SlotOp::Scalar],
            body: vec![
                SlotOp::global_load(16),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(16, stage),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                SlotOp::Barrier,
                SlotOp::lds_read(16, stage),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                mfma(),
                SlotOp::Scalar,
                SlotOp::Barrier,
            ],
            body_iterations: 8,
            epilogue: vec![SlotOp::global_store(16)],
        };
        let report = analyze_kernel(&die(), &kernel(program));
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn double_buffered_rotation_is_proven_race_free() {
        let program = WaveProgram {
            prologue: vec![
                SlotOp::global_load(16),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(16, LdsAccess::fixed(0)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                SlotOp::Barrier,
            ],
            body: vec![
                SlotOp::global_load(16),
                SlotOp::lds_read(16, LdsAccess::rotating(0, 0, 2)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                mfma(),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(16, LdsAccess::rotating(0, 1, 2)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                SlotOp::Barrier,
            ],
            body_iterations: 8,
            epilogue: vec![SlotOp::global_store(16)],
        };
        let report = analyze_kernel(&die(), &kernel(program));
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn missing_barrier_races_raw_and_war() {
        let stage = LdsAccess::fixed(0);
        let program = WaveProgram {
            prologue: vec![],
            body: vec![
                SlotOp::global_load(16),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(16, stage),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                SlotOp::lds_read(16, stage),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                mfma(),
            ],
            body_iterations: 4,
            epilogue: vec![SlotOp::global_store(16)],
        };
        let report = analyze_kernel(&die(), &kernel(program));
        assert!(report.fired(FlowRule::LdsRaceRaw), "{}", report.render());
        assert!(report.fired(FlowRule::LdsRaceWaw), "{}", report.render());
        assert!(report.has_errors());
    }

    #[test]
    fn single_wave_workgroups_cannot_race() {
        let stage = LdsAccess::fixed(0);
        let program = WaveProgram {
            prologue: vec![],
            body: vec![
                SlotOp::global_load(16),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(16, stage),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                SlotOp::lds_read(16, stage),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                mfma(),
            ],
            body_iterations: 4,
            epilogue: vec![SlotOp::global_store(16)],
        };
        let mut k = kernel(program);
        k.waves_per_workgroup = 1;
        let report = analyze_kernel(&die(), &k);
        assert!(!report.fired(FlowRule::LdsRaceRaw), "{}", report.render());
        assert!(!report.fired(FlowRule::LdsRaceWaw), "{}", report.render());
    }

    #[test]
    fn stale_stage_tag_is_a_cross_iteration_race() {
        // Both the read and the write resolve to stage i%2: the write
        // clobbers the stage the *other* waves are still reading.
        let program = WaveProgram {
            prologue: vec![],
            body: vec![
                SlotOp::global_load(16),
                SlotOp::lds_read(16, LdsAccess::rotating(0, 0, 2)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                mfma(),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(16, LdsAccess::rotating(0, 0, 2)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                SlotOp::Barrier,
            ],
            body_iterations: 8,
            epilogue: vec![],
        };
        let report = analyze_kernel(&die(), &kernel(program));
        assert!(report.fired(FlowRule::LdsRaceWar), "{}", report.render());
    }

    #[test]
    fn unretired_load_consumers_are_flagged() {
        let program = WaveProgram {
            prologue: vec![],
            body: vec![
                SlotOp::global_load(16),
                SlotOp::Valu(mc_isa::ValuOp::new(mc_isa::ValuOpKind::Fma, DType::F32)),
            ],
            body_iterations: 4,
            epilogue: vec![],
        };
        let report = analyze_kernel(&die(), &kernel(program));
        assert!(
            report.fired(FlowRule::InsufficientWaitcnt),
            "{}",
            report.render()
        );
    }

    #[test]
    fn barrier_with_pending_lds_writes_is_flagged() {
        let stage = LdsAccess::fixed(0);
        let program = WaveProgram {
            prologue: vec![],
            body: vec![
                SlotOp::global_load(16),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(16, stage),
                // Missing Waitcnt(lgkm(0)) here.
                SlotOp::Barrier,
                SlotOp::lds_read(16, stage),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                mfma(),
                SlotOp::Scalar,
                SlotOp::Barrier,
            ],
            body_iterations: 4,
            epilogue: vec![],
        };
        let report = analyze_kernel(&die(), &kernel(program));
        assert!(
            report.fired(FlowRule::BarrierLgkmPending),
            "{}",
            report.render()
        );
    }

    #[test]
    fn unread_stage_is_a_dead_store() {
        let program = WaveProgram {
            prologue: vec![],
            body: vec![
                SlotOp::global_load(16),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(16, LdsAccess::fixed(1)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                SlotOp::Barrier,
                SlotOp::lds_read(16, LdsAccess::fixed(0)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                mfma(),
                SlotOp::Scalar,
                SlotOp::Barrier,
            ],
            body_iterations: 4,
            epilogue: vec![],
        };
        let report = analyze_kernel(&die(), &kernel(program));
        assert!(report.fired(FlowRule::DeadLdsStore), "{}", report.render());
        // Dead store is a warning, not an error.
        assert_eq!(report.error_count(), 0, "{}", report.render());
    }

    #[test]
    fn trailing_double_buffer_prefetch_is_not_a_dead_store() {
        // The rotating write's stage set {0,1} overlaps the rotating
        // read's {0,1} even though the final iteration's write is never
        // consumed — the stage-set semantics deliberately accept it.
        let program = WaveProgram {
            prologue: vec![],
            body: vec![
                SlotOp::lds_read(16, LdsAccess::rotating(0, 0, 2)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                mfma(),
                SlotOp::global_load(16),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::lds_write(16, LdsAccess::rotating(0, 1, 2)),
                SlotOp::Waitcnt(WaitSpec::lgkm(0)),
                SlotOp::Barrier,
            ],
            body_iterations: 8,
            epilogue: vec![],
        };
        let report = analyze_kernel(&die(), &kernel(program));
        assert!(!report.fired(FlowRule::DeadLdsStore), "{}", report.render());
    }

    #[test]
    fn hoarded_loads_blow_the_register_file() {
        // 40 unconsumed 64-byte loads hold 40 × 16 = 640 VGPRs live —
        // more than the 512-register file.
        let program = WaveProgram {
            prologue: vec![SlotOp::global_load(64); 40],
            body: vec![SlotOp::Scalar],
            body_iterations: 1,
            epilogue: vec![],
        };
        let report = analyze_kernel(&die(), &kernel(program));
        assert!(
            report.fired(FlowRule::MaxLiveOverflow),
            "{}",
            report.render()
        );
    }

    #[test]
    fn undeclared_streaming_footprint_warns() {
        let program = WaveProgram {
            prologue: vec![],
            body: vec![
                SlotOp::global_load(64),
                SlotOp::Waitcnt(WaitSpec::vm(0)),
                SlotOp::Valu(mc_isa::ValuOp::new(mc_isa::ValuOpKind::Fma, DType::F32)),
            ],
            body_iterations: 4,
            epilogue: vec![],
        };
        let mut k = kernel(program);
        k.arch_vgprs = 16; // est = 8 scratch + 16 streaming = 24 > 16.
        let report = analyze_kernel(&die(), &k);
        assert!(
            report.fired(FlowRule::MaxLiveUnderdeclared),
            "{}",
            report.render()
        );
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn ampere_skips_gcn_specific_analyses_but_not_races() {
        let a100 = specs::a100().die;
        let stage = LdsAccess::fixed(0);
        let program = WaveProgram {
            prologue: vec![],
            body: vec![
                SlotOp::global_load(16),
                SlotOp::lds_write(16, stage),
                SlotOp::lds_read(16, stage),
            ],
            body_iterations: 4,
            epilogue: vec![],
        };
        let report = analyze_kernel(&a100, &kernel(program));
        assert!(!report.fired(FlowRule::InsufficientWaitcnt));
        assert!(report.fired(FlowRule::LdsRaceRaw), "{}", report.render());
    }

    #[test]
    fn rule_names_are_stable_and_unique() {
        let names: HashSet<&str> = FlowRule::ALL.iter().map(|r| r.as_str()).collect();
        assert_eq!(names.len(), FlowRule::ALL.len());
        assert!(names.contains("lds-race-raw"));
        assert!(names.contains("insufficient-waitcnt"));
        assert!(names.contains("max-live-overflow"));
    }

    #[test]
    fn report_renders_like_lint() {
        let d =
            FlowDiagnostic::new(FlowRule::DeadLdsStore, None, "unused stage").with_help("drop it");
        let report = FlowReport::new("k", vec![d]);
        let text = report.render();
        assert!(text.contains("warning[dead-lds-store]"), "{text}");
        assert!(text.contains("= help: drop it"), "{text}");
        assert!(FlowReport::new("k", vec![]).render().contains("flow clean"));
        let json = serde_json::to_string(&report);
        assert!(json.is_ok());
    }
}
