//! Crossover calibration sweep: times the three tiers at a range of
//! square sizes on the current rayon pool so the `default_crossover`
//! constants can be re-derived on new hardware. Run with
//! `cargo run --release -p mc-compute --example calibrate [sizes...]`.
//!
//! Besides the console table, the sweep lands as a schema-versioned
//! `results/CALIBRATE_crossover.json` (see `mc_compute::calibrate`),
//! which the `regress` gate diffs against the committed baseline so a
//! tier slowdown that invalidates the crossover edges is caught in CI.
//! Set `MC_CALIBRATE_OUT` to redirect the artifact directory.

use std::path::PathBuf;
use std::time::Instant;

use mc_compute::calibrate::{CalibrateFile, CalibrateRow, CALIBRATE_FILE};
use mc_compute::{Blocked, Epilogue, GemmParams, MatMul, Naive, Simd};

fn fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mantissa = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64;
        *v = (mantissa / (1u64 << 23) as f64 * 2.0 - 1.0) as f32;
    }
}

fn time<K: MatMul>(kernel: &K, n: usize, reps: usize) -> f64 {
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    fill(&mut a, 0x9E37_79B9_7F4A_7C15);
    fill(&mut b, 0xD1B5_4A32_D192_ED03);
    let c = vec![0.0f32; n * n];
    let mut d = vec![0.0f32; n * n];
    let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        kernel
            .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
            .unwrap();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let sizes = if sizes.is_empty() {
        vec![32, 48, 64, 96, 128, 192, 256, 512, 1024]
    } else {
        sizes
    };
    let mut file = CalibrateFile::new(rayon::current_num_threads(), Simd::vector_available());
    println!("threads={} simd_vector={}", file.threads, file.simd_vector);
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "N", "naive_s", "blocked_s", "simd_s", "simd GF/s"
    );
    for n in sizes {
        let reps = if n >= 512 { 2 } else { 5 };
        let naive = if n <= 512 {
            Some(time(&Naive, n, reps))
        } else {
            None
        };
        let blocked = time(&Blocked, n, reps);
        let simd = time(&Simd::from_env(), n, reps);
        let gf = 2.0 * (n as f64).powi(3) / simd / 1e9;
        let naive_cell = naive.unwrap_or(f64::NAN);
        println!("{n:>6} {naive_cell:>12.6} {blocked:>12.6} {simd:>12.6} {gf:>10.2}");
        file.rows.push(CalibrateRow {
            n: n as u64,
            naive_s: naive,
            blocked_s: blocked,
            simd_s: simd,
            simd_gflops: gf,
        });
    }
    let out_dir = std::env::var("MC_CALIBRATE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    let path = out_dir.join(CALIBRATE_FILE);
    let write = std::fs::create_dir_all(&out_dir).and_then(|()| {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&file).expect("timings are always serializable"),
        )
    });
    match write {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("error: could not write {}: {e}", path.display()),
    }
}
