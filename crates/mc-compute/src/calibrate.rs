//! Schema for the crossover-calibration artifact.
//!
//! The `calibrate` example times the three tiers over a size sweep and,
//! besides its console table, writes the measurements as
//! [`CALIBRATE_FILE`] so the sweep is diffable: the `regress` gate in
//! `mc-bench` pairs a committed baseline against a fresh run and flags
//! tier slowdowns that would invalidate the committed
//! [`default_crossover`](crate::default_crossover) edges. The schema
//! lives here (not in `mc-bench`) because the example that writes the
//! file and the gate that reads it sit on opposite sides of the
//! dependency graph, and `mc-compute` is the shared ancestor.
//!
//! Layout rules mirror `BENCH_hotpaths.json`: a `schema_version`
//! header the reader checks before trusting anything, a thread count
//! so runs on different pool sizes never pair, and one row per square
//! dimension. The naive tier is only timed up to its cap (the cubic
//! loop at 1024³ would dominate the sweep), so `naive_s` is an
//! `Option` — JSON has no NaN, and an absent measurement is not a zero.

use serde::{Deserialize, Serialize};

/// Name of the calibration artifact, written into `results/` by the
/// calibrate example and read back by the `regress` gate.
pub const CALIBRATE_FILE: &str = "CALIBRATE_crossover.json";

/// Layout version of [`CalibrateFile`]. Bump on any breaking change;
/// readers treat a mismatched file as absent (skip, never gate).
pub const CALIBRATE_SCHEMA_VERSION: u32 = 1;

/// One timed square dimension of the calibration sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CalibrateRow {
    /// Square problem dimension (m = n = k).
    pub n: u64,
    /// Best-of-reps naive wall time, absent above the naive timing cap.
    pub naive_s: Option<f64>,
    /// Best-of-reps blocked-tier wall time.
    pub blocked_s: f64,
    /// Best-of-reps SIMD-tier wall time.
    pub simd_s: f64,
    /// SIMD-tier throughput, `2n³ / simd_s / 1e9`.
    pub simd_gflops: f64,
}

/// The schema-versioned calibration artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CalibrateFile {
    /// Layout version ([`CALIBRATE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Rayon pool size the sweep ran on. Crossover edges are
    /// thread-aware, so timings from different pool sizes never pair.
    pub threads: u64,
    /// Whether the AVX2 vector microkernel was active (vs the scalar
    /// unrolled fallback).
    pub simd_vector: bool,
    /// Timed rows, one per swept dimension, in sweep order.
    pub rows: Vec<CalibrateRow>,
}

impl CalibrateFile {
    /// An empty artifact stamped with the current schema version and
    /// the given machine configuration.
    pub fn new(threads: usize, simd_vector: bool) -> Self {
        CalibrateFile {
            schema_version: CALIBRATE_SCHEMA_VERSION,
            threads: threads as u64,
            simd_vector,
            rows: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_including_absent_naive_cells() {
        let mut f = CalibrateFile::new(8, true);
        f.rows.push(CalibrateRow {
            n: 64,
            naive_s: Some(0.001),
            blocked_s: 0.002,
            simd_s: 0.0005,
            simd_gflops: 2.0 * 64f64.powi(3) / 0.0005 / 1e9,
        });
        f.rows.push(CalibrateRow {
            n: 1024,
            naive_s: None,
            blocked_s: 0.9,
            simd_s: 0.3,
            simd_gflops: 2.0 * 1024f64.powi(3) / 0.3 / 1e9,
        });
        let text = serde_json::to_string_pretty(&f).unwrap();
        assert!(text.contains("\"schema_version\": 1"));
        assert!(
            text.contains("null"),
            "absent naive cell must be null: {text}"
        );
        let back: CalibrateFile = serde_json::from_str(&text).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.rows[1].naive_s, None);
    }
}
