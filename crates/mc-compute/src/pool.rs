//! Packing-buffer pool: recycled scratch `Vec`s for the GEMM hot path.
//!
//! The blocked and SIMD backends pack operand panels into scratch
//! buffers on every call. Before this pool existed each call
//! round-tripped the allocator — tolerable for one large GEMM, a real
//! toll for the repeated mid-size calls the batched BLAS entry points
//! and the solver's BLAS-3 blocks issue. [`acquire`] hands out a
//! cleared buffer whose capacity is at least the requested element
//! count, rounded up to a power-of-two *size class*; dropping the
//! returned [`PooledVec`] recycles the buffer instead of freeing it.
//!
//! Two tiers back the freelist:
//!
//! * a **thread-local** freelist (no synchronization on the fast path),
//!   holding up to [`LOCAL_CAP`] buffers per size class;
//! * a global **shelf** (a mutex-guarded freelist, up to [`SHELF_CAP`]
//!   buffers per class) that catches buffers from dying threads. The
//!   vendored rayon pool spawns scoped OS threads per parallel region,
//!   so worker thread-locals do not survive between GEMM calls; the
//!   shelf is what turns those per-region buffers into steady-state
//!   hits for the next region.
//!
//! Accounting is global and lock-free: [`pool_stats`] exposes hit /
//! miss / recycle / discard counters plus the bytes freshly allocated,
//! and `mc-obs` re-exports them as `compute.pool.*` metrics. A *miss*
//! is exactly one allocator round-trip, so the batched-GEMM reuse test
//! asserts the miss delta over a steady-state window is zero.
//!
//! The pool is deliberately indifferent to contents: buffers come back
//! cleared (`len == 0`) and are never shrunk, so recycling can only
//! change *time*, never results — the bitwise-parity contract of the
//! compute backends is untouched.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Buffers kept per size class in each thread-local freelist.
pub const LOCAL_CAP: usize = 8;

/// Buffers kept per size class on the global shelf.
pub const SHELF_CAP: usize = 64;

/// Number of power-of-two size classes (class `i` holds buffers of
/// capacity `2^i` elements); covers everything up to 2^40 elements.
const CLASSES: usize = 41;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);
static DISCARDED: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the pool's global counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from a freelist (thread-local or shelf).
    pub hits: u64,
    /// Acquisitions that had to allocate — each miss is one allocator
    /// round-trip.
    pub misses: u64,
    /// Buffers returned to a freelist at drop.
    pub recycled: u64,
    /// Buffers dropped for real because both freelists were full (or
    /// the buffer was over the largest size class).
    pub discarded: u64,
    /// Bytes of fresh allocation performed by misses.
    pub allocated_bytes: u64,
}

impl PoolStats {
    /// Hit rate in `[0, 1]`; `1.0` when no acquisitions happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reads the global pool counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        discarded: DISCARDED.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
    }
}

/// Resets the global pool counters to zero (the freelists themselves
/// are left warm). Intended for tests and for experiment runs that
/// want a per-phase delta.
pub fn reset_pool_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    RECYCLED.store(0, Ordering::Relaxed);
    DISCARDED.store(0, Ordering::Relaxed);
    ALLOCATED_BYTES.store(0, Ordering::Relaxed);
}

/// The per-thread freelist: one stack of spare buffers per size class.
/// On thread exit the [`Drop`] impl moves everything to the global
/// shelf so buffers packed by ephemeral rayon workers survive the
/// region that created them.
pub struct LocalLists<T: PoolElem> {
    classes: Vec<Vec<Vec<T>>>,
}

impl<T: PoolElem> LocalLists<T> {
    fn new() -> Self {
        LocalLists {
            classes: Vec::new(),
        }
    }

    fn take(&mut self, class: usize) -> Option<Vec<T>> {
        self.classes.get_mut(class).and_then(|c| c.pop())
    }

    fn put(&mut self, class: usize, buf: Vec<T>) -> Result<(), Vec<T>> {
        if self.classes.len() <= class {
            self.classes.resize_with(class + 1, Vec::new);
        }
        let slot = &mut self.classes[class];
        if slot.len() < LOCAL_CAP {
            slot.push(buf);
            Ok(())
        } else {
            Err(buf)
        }
    }
}

impl<T: PoolElem> Drop for LocalLists<T> {
    fn drop(&mut self) {
        let mut shelf = match T::shelf().lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        for (class, bufs) in self.classes.drain(..).enumerate() {
            for buf in bufs {
                shelf_put(&mut shelf, class, buf);
            }
        }
    }
}

type Shelf<T> = Vec<Vec<Vec<T>>>;

fn shelf_put<T>(shelf: &mut Shelf<T>, class: usize, buf: Vec<T>) {
    if shelf.len() <= class {
        shelf.resize_with(class + 1, Vec::new);
    }
    let slot = &mut shelf[class];
    if slot.len() < SHELF_CAP {
        slot.push(buf);
    } else {
        DISCARDED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Element types the pool maintains freelists for. Implemented for the
/// packing scalar types (`f32`, `f64`); each implementation owns one
/// thread-local freelist and one global shelf.
pub trait PoolElem: Sized + Send + 'static {
    /// Runs `f` with this thread's freelist.
    #[doc(hidden)]
    fn with_local<R>(f: impl FnOnce(&mut LocalLists<Self>) -> R) -> R;

    /// The global shelf shared by all threads.
    #[doc(hidden)]
    fn shelf() -> &'static Mutex<Shelf<Self>>;
}

macro_rules! impl_pool_elem {
    ($t:ty, $local:ident, $shelf:ident) => {
        thread_local! {
            static $local: RefCell<LocalLists<$t>> = RefCell::new(LocalLists::new());
        }
        static $shelf: Mutex<Shelf<$t>> = Mutex::new(Vec::new());

        impl PoolElem for $t {
            fn with_local<R>(f: impl FnOnce(&mut LocalLists<Self>) -> R) -> R {
                $local.with(|l| f(&mut l.borrow_mut()))
            }

            fn shelf() -> &'static Mutex<Shelf<Self>> {
                &$shelf
            }
        }
    };
}

impl_pool_elem!(f32, LOCAL_F32, SHELF_F32);
impl_pool_elem!(f64, LOCAL_F64, SHELF_F64);

/// The size class for a requested capacity: buffers are rounded up to
/// the next power of two so near-miss requests still reuse each other.
fn size_class(min_capacity: usize) -> Option<usize> {
    let cap = min_capacity.max(1).next_power_of_two();
    let class = cap.trailing_zeros() as usize;
    (class < CLASSES).then_some(class)
}

/// A pooled scratch buffer. Dereferences to its inner `Vec<T>`; comes
/// back empty (`len == 0`) with at least the requested capacity, and
/// returns to the pool when dropped.
pub struct PooledVec<T: PoolElem> {
    buf: Vec<T>,
    /// `None` marks an over-class buffer that drops for real.
    class: Option<usize>,
}

impl<T: PoolElem> std::ops::Deref for PooledVec<T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T: PoolElem> std::ops::DerefMut for PooledVec<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T: PoolElem> Drop for PooledVec<T> {
    fn drop(&mut self) {
        let Some(class) = self.class else {
            DISCARDED.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        let overflow = T::with_local(|local| local.put(class, buf).err());
        if let Some(buf) = overflow {
            let mut shelf = match T::shelf().lock() {
                Ok(s) => s,
                Err(poisoned) => poisoned.into_inner(),
            };
            shelf_put(&mut shelf, class, buf);
        }
        RECYCLED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Hands out a cleared buffer with capacity for at least `min_capacity`
/// elements, reusing a freelisted buffer when one of the right size
/// class is available (thread-local first, then the global shelf).
pub fn acquire<T: PoolElem>(min_capacity: usize) -> PooledVec<T> {
    let Some(class) = size_class(min_capacity) else {
        // Absurdly large request: serve it unpooled.
        MISSES.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(
            (min_capacity * std::mem::size_of::<T>()) as u64,
            Ordering::Relaxed,
        );
        return PooledVec {
            buf: Vec::with_capacity(min_capacity),
            class: None,
        };
    };
    if let Some(buf) = T::with_local(|local| local.take(class)) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return PooledVec {
            buf,
            class: Some(class),
        };
    }
    let shelved = {
        let mut shelf = match T::shelf().lock() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        shelf.get_mut(class).and_then(|c| c.pop())
    };
    if let Some(buf) = shelved {
        HITS.fetch_add(1, Ordering::Relaxed);
        return PooledVec {
            buf,
            class: Some(class),
        };
    }
    let cap = 1usize << class;
    MISSES.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add((cap * std::mem::size_of::<T>()) as u64, Ordering::Relaxed);
    PooledVec {
        buf: Vec::with_capacity(cap),
        class: Some(class),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-global, so these tests assert deltas on
    // buffers large enough that no other concurrently-running test's
    // pool traffic shares the size class.
    const ODD_CAP: usize = 1 << 19;

    #[test]
    fn acquire_rounds_up_to_the_size_class() {
        let v: PooledVec<f64> = acquire(ODD_CAP - 3);
        assert!(v.capacity() >= ODD_CAP - 3);
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn drop_then_acquire_reuses_the_buffer() {
        let mut v: PooledVec<f64> = acquire(ODD_CAP + 1);
        v.push(42.0);
        let ptr = v.as_ptr();
        drop(v);
        let before = pool_stats();
        let again: PooledVec<f64> = acquire(ODD_CAP + 1);
        let after = pool_stats();
        assert_eq!(again.as_ptr(), ptr, "same buffer must come back");
        assert_eq!(again.len(), 0, "recycled buffers come back cleared");
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn cross_thread_buffers_land_on_the_shelf() {
        let cap = 1 << 20; // distinct class from the other tests
        std::thread::spawn(move || {
            let _warm: PooledVec<f32> = acquire(cap);
            // Dropped at thread exit: local list drains to the shelf.
        })
        .join()
        .unwrap();
        let before = pool_stats();
        let v: PooledVec<f32> = acquire(cap);
        let after = pool_stats();
        assert!(v.capacity() >= cap);
        assert_eq!(after.hits - before.hits, 1, "shelf must serve the hit");
    }

    #[test]
    fn hit_rate_reads_one_when_idle_and_tracks_traffic() {
        assert_eq!(PoolStats::default().hit_rate(), 1.0);
        let s = PoolStats {
            hits: 3,
            misses: 1,
            ..PoolStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
