//! Host-plane profiling hooks: low-overhead phase/region events for
//! the GEMM tiers.
//!
//! The simulated-GPU plane is traced through `mc-trace` sinks, but the
//! host hot path — tier dispatch, panel packing, the microkernel sweep,
//! the epilogue, and the rayon fan-out — was a black box. This module
//! is the host-side producer: the [`Auto`] dispatcher opens a *region*
//! per GEMM call, and the blocked/SIMD tiers mark named *phases* inside
//! it, each tagged with the *lane* (caller thread or rayon worker) that
//! executed it. `mc-hostprof` converts the collected [`HostEvent`]s
//! into `mc-trace` span/counter events and attribution records.
//!
//! ## Overhead contract
//!
//! Profiling is off by default and the untraced hot path must stay
//! untraced: every instrumentation site checks [`enabled`] — a single
//! relaxed atomic load — before doing *anything* (no clock reads, no
//! allocation, no formatting). Sites fire per phase boundary (a few
//! thousand per large GEMM), never per FLOP. When enabled, events are
//! fixed-size [`Copy`] values batched into bounded thread-local buffers
//! and drained into a global collector when full, when the worker
//! thread exits (scoped rayon workers die at region end), and at
//! [`Session::finish`] — the `hostprof` gate experiment bounds the
//! enabled-path overhead at 3% on a 1024³ GEMM.
//!
//! ## Sessions
//!
//! Collection is process-global (the rayon workers executing a GEMM
//! have no other channel to a caller-scoped sink), so profiling runs as
//! an exclusive [`Session`]: [`session`] takes a global lock, bumps the
//! session generation (stale buffers from a previous session flush to
//! the void, not into the new profile), and enables the hooks;
//! [`Session::finish`] disables them and returns the [`HostProfile`].
//! Regions only open on threads *attached* to the live session (the
//! session's creator, plus any thread that calls [`attach`]), and
//! phases only record inside an open region — so GEMMs issued by
//! unrelated threads (parallel tests) never leak into a profile.
//!
//! [`Auto`]: crate::Auto

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::pool;

/// Capacity of each thread-local event buffer (events); the buffer
/// drains to the global collector when full.
pub const EVENT_BUF_CAP: usize = 4096;

/// Capacity of the global event collector; events past it are counted
/// as dropped, never silently lost.
pub const COLLECTOR_CAP: usize = 1 << 20;

/// A named phase of host GEMM execution (the host-plane taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HostPhase {
    /// Packing an A row panel into the compute-scalar layout.
    PackA,
    /// Packing a B column panel / strip.
    PackB,
    /// The register/microkernel accumulation sweep over packed panels.
    Microkernel,
    /// The α/β epilogue (`d ← epi(α·acc, β·c)`).
    Epilogue,
    /// A rayon fan-out: the caller-side window of one parallel region.
    Fanout,
    /// The naive triple loop (the whole compute of a naive-routed
    /// region).
    Compute,
}

impl HostPhase {
    /// Stable lowercase name (trace span names, attribution keys).
    pub fn as_str(self) -> &'static str {
        match self {
            HostPhase::PackA => "pack-a",
            HostPhase::PackB => "pack-b",
            HostPhase::Microkernel => "microkernel",
            HostPhase::Epilogue => "epilogue",
            HostPhase::Fanout => "fanout",
            HostPhase::Compute => "compute",
        }
    }

    /// Every phase, for table-driven consumers.
    pub const ALL: [HostPhase; 6] = [
        HostPhase::PackA,
        HostPhase::PackB,
        HostPhase::Microkernel,
        HostPhase::Epilogue,
        HostPhase::Fanout,
        HostPhase::Compute,
    ];
}

/// The thread lane a phase executed on: the caller thread that issued
/// the GEMM (and runs pack-B/fan-out/epilogue), or one rayon worker
/// executing chunk work. The caller claims a worker lane too when it
/// executes a chunk inline, so every chunk's work is worker-lane time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lane {
    /// A caller thread, numbered per session.
    Call(u32),
    /// A rayon worker (or the caller's inline chunk share), numbered
    /// per session.
    Worker(u32),
}

/// Packing-pool counter deltas over one region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolDelta {
    /// Freelist hits.
    pub hits: u64,
    /// Allocating misses.
    pub misses: u64,
    /// Buffers recycled at drop.
    pub recycled: u64,
    /// Buffers discarded at drop.
    pub discarded: u64,
    /// Bytes freshly allocated.
    pub allocated_bytes: u64,
}

/// One host profiling event. Fixed-size and [`Copy`] so recording is a
/// buffer push, never an allocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HostEvent {
    /// The tier-dispatch decision at the top of a region: which rung of
    /// the ladder fired and the inputs that decided it.
    Dispatch {
        /// Region this decision opened.
        region: u32,
        /// Routed backend (`"naive"`, `"blocked"`, `"simd"`).
        backend: &'static str,
        /// Problem rows.
        m: u32,
        /// Problem columns.
        n: u32,
        /// Problem depth.
        k: u32,
        /// Crossover edge in force.
        crossover_n: u32,
        /// Geometric-mean dimension `∛(m·n·k)` compared to the edge.
        geomean: f64,
        /// Whether the SIMD tier topped the ladder.
        simd: bool,
        /// Configured rayon pool size at dispatch.
        threads: u32,
        /// Decision timestamp, seconds since the profiling epoch.
        t_s: f64,
    },
    /// One GEMM call region (the span the dispatch covers).
    Region {
        /// Region id (unique per process).
        region: u32,
        /// Routed backend.
        backend: &'static str,
        /// Problem rows.
        m: u32,
        /// Problem columns.
        n: u32,
        /// Problem depth.
        k: u32,
        /// Caller lane that issued the call.
        lane: u32,
        /// Start, seconds since the profiling epoch.
        t0_s: f64,
        /// Wall duration in seconds.
        dur_s: f64,
        /// Packing-pool counter deltas over the region.
        pool: PoolDelta,
    },
    /// One named phase inside a region.
    Phase {
        /// Enclosing region id (0 = outside any region; dropped by the
        /// attributor).
        region: u32,
        /// Which phase.
        phase: HostPhase,
        /// Executing lane.
        lane: Lane,
        /// Start, seconds since the profiling epoch.
        t0_s: f64,
        /// Duration in seconds.
        dur_s: f64,
    },
}

/// A finished profiling session's events.
#[derive(Clone, Debug, Default)]
pub struct HostProfile {
    /// Collected events in drain order (per-thread batches; sort by
    /// time for timeline use).
    pub events: Vec<HostEvent>,
    /// Events lost to collector overflow.
    pub dropped: u64,
    /// Session start, seconds since the profiling epoch (rebase spans
    /// against this for a zero-based timeline).
    pub t0_s: f64,
    /// Configured rayon pool size when the session opened.
    pub threads: usize,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);
static REGION_IDS: AtomicU32 = AtomicU32::new(1);
static CALL_LANES: AtomicU32 = AtomicU32::new(0);
static WORKER_LANES: AtomicU32 = AtomicU32::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static SESSION_LOCK: Mutex<()> = Mutex::new(());
static COLLECTOR: Mutex<Vec<HostEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Whether a profiling session is live. Instrumentation sites check
/// this (one relaxed load) before touching the clock or the buffers.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the calling thread should open regions: a session is live
/// *and* this thread is attached to it. The dispatcher checks this at
/// region boundaries; it is the only additional cost an untraced run
/// pays (one relaxed load, then nothing).
#[inline]
pub fn active() -> bool {
    enabled() && ATTACHED.with(Cell::get) == GENERATION.load(Ordering::Relaxed)
}

/// Attaches the calling thread to the live session so its GEMM calls
/// open regions. The session's creator is attached automatically.
pub fn attach() {
    ATTACHED.with(|c| c.set(GENERATION.load(Ordering::Acquire)));
}

/// Seconds since the process profiling epoch (monotonic, shared by all
/// threads).
#[inline]
pub fn now_s() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

struct LocalBuf {
    generation: u64,
    events: Vec<HostEvent>,
}

impl LocalBuf {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        // A stale batch (session already over) flushes to the void —
        // it must not leak into the next session's profile.
        if self.generation != GENERATION.load(Ordering::Acquire) {
            self.events.clear();
            return;
        }
        let mut collector = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
        let room = COLLECTOR_CAP.saturating_sub(collector.len());
        let take = room.min(self.events.len());
        collector.extend(self.events.drain(..take));
        let lost = self.events.len() as u64;
        if lost > 0 {
            DROPPED.fetch_add(lost, Ordering::Relaxed);
            self.events.clear();
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<LocalBuf> = const {
        RefCell::new(LocalBuf {
            generation: 0,
            events: Vec::new(),
        })
    };
    static CURRENT_REGION: Cell<u32> = const { Cell::new(0) };
    // Generation of the session this thread is attached to.
    static ATTACHED: Cell<u64> = const { Cell::new(0) };
    // (generation, lane) pairs; a lane claimed in an older session is
    // re-claimed fresh so lane numbering restarts per session.
    static CALL_LANE: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
    static WORKER_LANE: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
}

/// Records one event into the calling thread's buffer.
pub fn record(event: HostEvent) {
    let generation = GENERATION.load(Ordering::Acquire);
    BUF.with(|b| {
        let mut buf = b.borrow_mut();
        if buf.generation != generation {
            buf.events.clear();
            buf.generation = generation;
            buf.events.reserve(EVENT_BUF_CAP);
        }
        buf.events.push(event);
        if buf.events.len() >= EVENT_BUF_CAP {
            buf.flush();
        }
    });
}

fn session_lane(slot: &'static std::thread::LocalKey<Cell<(u64, u32)>>, ids: &AtomicU32) -> u32 {
    let generation = GENERATION.load(Ordering::Acquire);
    slot.with(|cell| {
        let (gen, lane) = cell.get();
        if gen == generation {
            lane
        } else {
            let lane = ids.fetch_add(1, Ordering::Relaxed);
            cell.set((generation, lane));
            lane
        }
    })
}

/// The calling thread's caller-lane id for this session (claimed on
/// first use).
pub fn call_lane() -> u32 {
    session_lane(&CALL_LANE, &CALL_LANES)
}

/// The calling thread's worker-lane id for this session (claimed on
/// first use; the caller thread claims one too when it runs chunk work
/// inline).
pub fn worker_lane() -> u32 {
    session_lane(&WORKER_LANE, &WORKER_LANES)
}

/// The region id the calling thread is currently inside (0 = none).
/// Tier code reads this *before* a fan-out and captures the value into
/// the parallel closure, since workers have their own thread-locals.
#[inline]
pub fn current_region() -> u32 {
    CURRENT_REGION.with(Cell::get)
}

/// Records a phase that started at `t0_s` and ends now.
#[inline]
pub fn phase(region: u32, phase: HostPhase, lane: Lane, t0_s: f64) {
    let t1 = now_s();
    record(HostEvent::Phase {
        region,
        phase,
        lane,
        t0_s,
        dur_s: (t1 - t0_s).max(0.0),
    });
}

/// Open-region state returned by [`region_start`]; pass to
/// [`region_end`] when the dispatched call returns.
#[derive(Debug)]
pub struct RegionToken {
    region: u32,
    prev_region: u32,
    backend: &'static str,
    m: u32,
    n: u32,
    k: u32,
    lane: u32,
    t0_s: f64,
    pool0: pool::PoolStats,
}

/// Opens a region around one dispatched GEMM call and records the
/// dispatch decision. Call only when [`enabled`].
#[allow(clippy::too_many_arguments)]
pub fn region_start(
    backend: &'static str,
    m: usize,
    n: usize,
    k: usize,
    crossover_n: usize,
    simd: bool,
) -> RegionToken {
    let region = REGION_IDS.fetch_add(1, Ordering::Relaxed);
    let prev_region = CURRENT_REGION.with(|c| c.replace(region));
    let lane = call_lane();
    let t0_s = now_s();
    let geomean = (m as f64 * n as f64 * k as f64).cbrt();
    record(HostEvent::Dispatch {
        region,
        backend,
        m: m as u32,
        n: n as u32,
        k: k as u32,
        crossover_n: crossover_n as u32,
        geomean,
        simd,
        threads: rayon::current_num_threads() as u32,
        t_s: t0_s,
    });
    RegionToken {
        region,
        prev_region,
        backend,
        m: m as u32,
        n: n as u32,
        k: k as u32,
        lane,
        t0_s,
        pool0: pool::pool_stats(),
    }
}

/// Closes a region: records the region span with its pool deltas and
/// restores the thread's previous region.
pub fn region_end(token: RegionToken) {
    let t1 = now_s();
    let pool1 = pool::pool_stats();
    CURRENT_REGION.with(|c| c.set(token.prev_region));
    record(HostEvent::Region {
        region: token.region,
        backend: token.backend,
        m: token.m,
        n: token.n,
        k: token.k,
        lane: token.lane,
        t0_s: token.t0_s,
        dur_s: (t1 - token.t0_s).max(0.0),
        pool: PoolDelta {
            hits: pool1.hits.wrapping_sub(token.pool0.hits),
            misses: pool1.misses.wrapping_sub(token.pool0.misses),
            recycled: pool1.recycled.wrapping_sub(token.pool0.recycled),
            discarded: pool1.discarded.wrapping_sub(token.pool0.discarded),
            allocated_bytes: pool1
                .allocated_bytes
                .wrapping_sub(token.pool0.allocated_bytes),
        },
    });
}

/// An exclusive profiling session. Created by [`session`]; collection
/// stops when [`Session::finish`] returns the profile (or at drop if
/// the session escapes without finishing).
#[derive(Debug)]
pub struct Session {
    lock: Option<MutexGuard<'static, ()>>,
    t0_s: f64,
    threads: usize,
}

/// Starts an exclusive profiling session: takes the global session
/// lock (serializing concurrent profiled tests), clears the collector,
/// restarts lane numbering, and enables the instrumentation hooks.
pub fn session() -> Session {
    let lock = SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    GENERATION.fetch_add(1, Ordering::Release);
    COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()).clear();
    DROPPED.store(0, Ordering::Relaxed);
    CALL_LANES.store(0, Ordering::Relaxed);
    WORKER_LANES.store(0, Ordering::Relaxed);
    let t0_s = now_s();
    let threads = rayon::current_num_threads();
    attach();
    ENABLED.store(true, Ordering::SeqCst);
    Session {
        lock: Some(lock),
        t0_s,
        threads,
    }
}

impl Session {
    /// Stops collection and returns everything recorded since the
    /// session opened.
    pub fn finish(mut self) -> HostProfile {
        ENABLED.store(false, Ordering::SeqCst);
        // The caller's own buffer holds the tail batch; rayon workers
        // flushed theirs when their scoped threads exited.
        BUF.with(|b| b.borrow_mut().flush());
        let events = std::mem::take(&mut *COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()));
        let profile = HostProfile {
            events,
            dropped: DROPPED.load(Ordering::Relaxed),
            t0_s: self.t0_s,
            threads: self.threads,
        };
        self.lock.take();
        profile
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.lock.is_some() {
            ENABLED.store(false, Ordering::SeqCst);
            COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Auto, Epilogue, GemmParams, MatMul};

    fn run_gemm(n: usize, crossover: usize) {
        let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);
        let a = vec![1.0f32; n * n];
        let b = vec![0.5f32; n * n];
        let c = vec![0.0f32; n * n];
        let mut d = vec![0.0f32; n * n];
        Auto::with_crossover(crossover)
            .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
            .unwrap();
    }

    #[test]
    fn disabled_by_default_records_nothing() {
        // Cannot assert the global flag (parallel tests may hold a
        // session), but a session-free run through the instrumented
        // tiers must work and a fresh session must start empty.
        run_gemm(16, 0);
        let s = session();
        let profile = s.finish();
        assert_eq!(profile.dropped, 0);
        assert!(profile.events.is_empty(), "{:?}", profile.events);
    }

    #[test]
    fn session_captures_regions_phases_and_dispatch() {
        let s = session();
        run_gemm(96, 0); // force the packed tier
        run_gemm(16, 320); // force naive
        let profile = s.finish();
        assert_eq!(profile.dropped, 0);
        let regions: Vec<_> = profile
            .events
            .iter()
            .filter(|e| matches!(e, HostEvent::Region { .. }))
            .collect();
        assert_eq!(regions.len(), 2, "{regions:?}");
        let dispatches = profile
            .events
            .iter()
            .filter(|e| matches!(e, HostEvent::Dispatch { .. }))
            .count();
        assert_eq!(dispatches, 2);
        // The packed region carries phases; all phases reference a
        // live region and have sane times.
        let region_ids: Vec<u32> = profile
            .events
            .iter()
            .filter_map(|e| match e {
                HostEvent::Region { region, .. } => Some(*region),
                _ => None,
            })
            .collect();
        let mut phases = 0;
        for e in &profile.events {
            if let HostEvent::Phase {
                region,
                t0_s,
                dur_s,
                ..
            } = e
            {
                phases += 1;
                assert!(region_ids.contains(region), "{e:?}");
                assert!(t0_s.is_finite() && *dur_s >= 0.0, "{e:?}");
            }
        }
        assert!(phases > 0, "packed tier must emit phases");
        // The naive region has a caller-lane compute phase.
        assert!(
            profile.events.iter().any(|e| matches!(
                e,
                HostEvent::Phase {
                    phase: HostPhase::Compute,
                    lane: Lane::Call(_),
                    ..
                }
            )),
            "{:?}",
            profile.events
        );
    }

    #[test]
    fn sessions_are_exclusive_and_reset_lanes() {
        let s = session();
        run_gemm(96, 0);
        let first = s.finish();
        let s = session();
        run_gemm(96, 0);
        let second = s.finish();
        // Lane numbering restarts per session.
        let min_call = |p: &HostProfile| {
            p.events
                .iter()
                .filter_map(|e| match e {
                    HostEvent::Region { lane, .. } => Some(*lane),
                    _ => None,
                })
                .min()
        };
        assert_eq!(min_call(&first), Some(0));
        assert_eq!(min_call(&second), Some(0));
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(HostPhase::PackA.as_str(), "pack-a");
        assert_eq!(HostPhase::Fanout.as_str(), "fanout");
        assert_eq!(HostPhase::ALL.len(), 6);
    }
}
