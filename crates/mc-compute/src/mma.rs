//! Fragment-shaped accumulation for `mc-wmma`'s `mma_sync`.
//!
//! One warp-level MMA accumulates an `M×N×K` tile:
//! `D[i][j] ← chain(C[i][j]; A[i][·]·B[·][j])` with products and sums
//! rounded through the *output* fragment type `CD` (the hardware keeps
//! the accumulator registers in the destination format). This function
//! reproduces that chain bit for bit while hoisting the `AB → f64`
//! conversions out of the inner loop: B is packed column-major once per
//! call and A row-wise once per output row.

use mc_types::Real;

/// Accumulates `d = chain(c; a·b)` over an `m×n×k` fragment tile.
///
/// `a` is `m×k` row-major, `b` is `k×n` row-major, `c` and `d` are
/// `m×n` row-major. The per-element chain starts from `c[i][j]` and
/// folds the `k` products in ascending order, each step rounding
/// through `CD` — exactly the loop `mma_sync` originally inlined.
pub fn mma_accumulate<AB: Real, CD: Real>(
    m: usize,
    n: usize,
    k: usize,
    a: &[AB],
    b: &[AB],
    c: &[CD],
    d: &mut [CD],
) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n);
    debug_assert!(c.len() >= m * n && d.len() >= m * n);
    let mut b_cols = vec![0.0f64; k * n];
    for (p, brow) in b[..k * n].chunks_exact(n.max(1)).take(k).enumerate() {
        for (j, v) in brow.iter().enumerate() {
            b_cols[j * k + p] = v.to_f64();
        }
    }
    let mut a_row = vec![0.0f64; k];
    for i in 0..m {
        for (dst, src) in a_row.iter_mut().zip(&a[i * k..(i + 1) * k]) {
            *dst = src.to_f64();
        }
        for j in 0..n {
            let mut acc = c[i * n + j];
            for (&av, &bv) in a_row.iter().zip(&b_cols[j * k..(j + 1) * k]) {
                let prod = CD::from_f64(av * bv);
                acc = CD::from_f64(acc.to_f64() + prod.to_f64());
            }
            d[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_types::F16;

    #[test]
    fn matches_the_inline_chain() {
        let (m, n, k) = (4, 4, 8);
        let a: Vec<F16> = (0..m * k).map(|i| F16::from_f32(i as f32 / 16.0)).collect();
        let b: Vec<F16> = (0..k * n)
            .map(|i| F16::from_f32(1.0 - i as f32 / 32.0))
            .collect();
        let c: Vec<f32> = (0..m * n).map(|i| i as f32 / 4.0).collect();
        let mut d = vec![0.0f32; m * n];
        mma_accumulate(m, n, k, &a, &b, &c, &mut d);
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..k {
                    let prod = f32::from_f64(a[i * k + p].to_f64() * b[p * n + j].to_f64());
                    acc = f32::from_f64(acc.to_f64() + prod.to_f64());
                }
                assert_eq!(d[i * n + j], acc);
            }
        }
    }

    #[test]
    fn k_zero_copies_c() {
        let c = vec![3.5f32, -1.0];
        let mut d = vec![0.0f32; 2];
        mma_accumulate::<f32, f32>(1, 2, 0, &[], &[], &c, &mut d);
        assert_eq!(d, c);
    }
}
