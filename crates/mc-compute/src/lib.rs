//! Shared CPU compute backends for the matrix-core model.
//!
//! This crate owns the hot loops that every layer above funnels into:
//!
//! * [`MatMul`] — the backend trait over `mc-types` dtypes; `AB` is the
//!   input element type, `CD` the output type, `CT` the accumulation
//!   (compute) type, mirroring the paper's `CDFmt_ABFmt` naming.
//! * [`Naive`] — the retained reference triple loop (the pre-existing
//!   `run_simd` kernel, verbatim); the semantic ground truth.
//! * [`Blocked`] — the cache-blocked, packed-panel, rayon-parallel
//!   backend ([`MC`]×[`NC`]×[`KC`] tiling). Bit-identical to [`Naive`]
//!   for every dtype triple because it preserves the per-element
//!   ascending-k rounding chain; see `blocked.rs` for the argument.
//! * [`Simd`] — the explicit-SIMD microkernel tier: AVX2
//!   register-blocked microtiles (8-wide f32 / 4-wide f64, two vectors
//!   per row) with a portable scalar-unrolled fallback, runtime
//!   feature detection, and the [`SIMD_ENV`] escape hatch. Lanes carry
//!   independent rounding chains, so it too is bit-identical to
//!   [`Naive`]; see `simd.rs` for the double-rounding argument.
//! * [`Auto`] — shape-aware dispatch over the ladder: the naive loop
//!   at or below a thread-aware crossover edge, the best packed tier
//!   (SIMD where supported, blocked otherwise) above it.
//!   Bitwise-invisible because all backends agree bit for bit.
//! * Pool-backed scratch reuse — [`acquire`] / [`pool_stats`] /
//!   [`reset_pool_stats`]: the packing-buffer pool the packed tiers
//!   draw from, with hit/miss counters `mc-obs` exports as
//!   `compute.pool.*` metrics.
//! * [`gemm_i8`] / [`gemm_i8_reference`] — the int8→int32 quantized
//!   kernels (exact integer accumulation, so blocking is trivially
//!   safe).
//! * [`mma_accumulate`] — the fragment-shaped accumulation loop
//!   `mc-wmma` uses, with hoisted conversions.
//! * [`prof`] — host-plane profiling hooks: opt-in, session-scoped
//!   region/phase/dispatch events over the tier ladder, consumed by
//!   `mc-hostprof` for unified traces and per-phase attribution.
//! * [`calibrate`] — schema of the `CALIBRATE_crossover.json` artifact
//!   the calibrate example writes and the `regress` gate diffs.
//!
//! Consumers: `mc_blas::functional` (gemm/gemv/batched), the
//! `mc-solver` BLAS-3 blocks, and `mc-wmma`'s `mma_sync`.

#![deny(missing_docs)]

mod auto;
mod blocked;
pub mod calibrate;
mod int8;
mod mma;
mod naive;
mod params;
mod pool;
pub mod prof;
mod simd;

pub use auto::{crossover_from_env, default_crossover, effective_parallelism, Auto, CROSSOVER_ENV};
pub use blocked::{Blocked, KC, MC, NC};
pub use int8::{gemm_i8, gemm_i8_reference};
pub use mma::mma_accumulate;
pub use naive::Naive;
pub use params::{ComputeError, Epilogue, GemmParams, Trans};
pub use pool::{
    acquire, pool_stats, reset_pool_stats, PoolElem, PoolStats, PooledVec, LOCAL_CAP, SHELF_CAP,
};
pub use simd::{Simd, SimdMode, MR, SIMD_ENV};

use mc_types::Real;

/// A GEMM backend: `D (m×n) ← α · op(A)·op(B) + β · C` with the
/// products and sums rounded through the compute type `CT`.
///
/// Implementations must be deterministic and thread-count invariant:
/// the same `(params, a, b, c)` yields bitwise-identical `d` regardless
/// of the rayon pool size.
pub trait MatMul {
    /// A short identifier for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// Runs the GEMM. `a`/`b` hold op-shaped operands per
    /// `params.trans_a`/`trans_b`; `c` and `d` are `m×n` row-major and
    /// may not alias.
    fn gemm<AB, CD, CT>(
        &self,
        params: &GemmParams,
        a: &[AB],
        b: &[AB],
        c: &[CD],
        d: &mut [CD],
    ) -> Result<(), ComputeError>
    where
        AB: Real,
        CD: Real,
        CT: Real;
}
