//! The explicit-SIMD microkernel tier: vector-register GEMM with the
//! naive kernel's exact rounding chain.
//!
//! [`Simd`] is the innermost tier of the dispatch ladder (naive →
//! blocked → blocked+SIMD). It keeps the blocked backend's BLIS-style
//! packing but replaces the scalar-f64 microkernel with a
//! register-blocked tile kernel on `std::arch` x86-64 intrinsics: an
//! [`MR`]×16 f32 microtile on two 8-wide AVX2 vectors per row, and an
//! [`MR`]×8 f64 microtile on two 4-wide vectors. A portable
//! scalar-unrolled fallback with the identical loop nest runs when the
//! host lacks AVX2 or when [`SIMD_ENV`] requests it.
//!
//! ## Why vectorizing cannot change a bit
//!
//! The contract inherited from [`crate::Naive`] rounds every product
//! and every partial sum through the compute type `CT`, ascending in
//! `k`. Two facts make the vector kernel bit-identical to that chain:
//!
//! * **Lanes are independent chains.** A vector lane covers one output
//!   column; there is no horizontal reduction, so each element's sum
//!   order is exactly the naive ascending-`k` order. Vector width,
//!   tile shape, thread count, and row partitioning only change *which*
//!   chains run concurrently, never the order within a chain.
//! * **Native arithmetic equals round-through-f64 arithmetic.** The
//!   reference computes `f32(a_f64 · b_f64)` and `f32(acc_f64 +
//!   p_f64)`. For operands that are exactly representable in f32 the
//!   f64 product/sum double-rounds through 53 bits into 24 bits, and
//!   since `53 ≥ 2·24 + 2` double rounding is exact for `+` and `·`
//!   (Figueroa's theorem): the result equals the correctly-rounded
//!   native f32 operation — precisely what `vmulps`/`vaddps` compute.
//!   The f64 tier is the reference chain verbatim.
//!
//! The kernel therefore issues **separate multiply and add
//! instructions, never FMA**: a fused multiply-add would skip the
//! product's intermediate rounding and break parity. The golden tests
//! in `compute_parity` pin this reduction order.
//!
//! The embeddability premise limits which dtype triples may take the
//! f32 vector path: inputs must convert to f32 exactly (`f32`, `F16`,
//! `Bf16` — not `f64`). [`Simd::supports`] encodes the rule and
//! everything else falls back to [`Blocked`], so [`Simd`] is safe to
//! call for any dtype triple.
//!
//! ## Parallel structure
//!
//! Unlike [`Blocked`] (which forks per `(jc, pc)` block), the SIMD
//! tier enters **one** parallel region per call: the output rows are
//! split into one contiguous chunk per rayon worker, and each task
//! runs the full `pc → jc` loop nest over its rows, packing its own A
//! and B panels from the pool. Row partitioning never touches a
//! rounding chain, so results stay thread-count invariant, and the
//! single fork/join lets the 4–8 thread cells scale past n = 1024
//! where the per-block forking used to dominate.
//!
//! Packing buffers and the accumulator come from the crate's packing
//! pool ([`crate::acquire`]), so steady-state repeated GEMMs perform
//! no allocator round-trips.

use mc_types::{DType, Real};
use rayon::prelude::*;

use crate::blocked::{apply_epilogue, KC, MC, NC};
use crate::params::{ComputeError, GemmParams, Trans};
use crate::pool::{self, PoolElem};
use crate::prof::{self, HostPhase, Lane};
use crate::{Blocked, MatMul};

/// Environment variable controlling the SIMD tier: `off` removes it
/// from the [`crate::Auto`] ladder, `portable` forces the
/// scalar-unrolled kernel, anything else (or unset) auto-detects.
pub const SIMD_ENV: &str = "MC_GEMM_SIMD";

/// Microtile height in rows; the register block holds `MR` independent
/// accumulator rows of one vector-width-pair each.
pub const MR: usize = 4;

/// Which inner kernel the tier runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdMode {
    /// The AVX2 intrinsic microtile (requires runtime support).
    Vector,
    /// The scalar-unrolled portable microtile (identical loop nest and
    /// rounding chain; still auto-vectorizable by the compiler because
    /// the lanes are independent).
    Portable,
}

/// The explicit-SIMD GEMM backend.
#[derive(Clone, Copy, Debug)]
pub struct Simd {
    mode: SimdMode,
}

impl Simd {
    /// Backend with an explicit kernel choice. [`SimdMode::Vector`]
    /// silently degrades to the portable kernel when the host lacks
    /// AVX2 (checked at call time).
    pub fn with_mode(mode: SimdMode) -> Self {
        Simd { mode }
    }

    /// Backend configured from [`SIMD_ENV`]: the vector kernel when
    /// available unless `portable` is requested.
    pub fn from_env() -> Self {
        let portable = std::env::var(SIMD_ENV)
            .map(|v| {
                let v = v.to_ascii_lowercase();
                v == "portable" || v == "scalar"
            })
            .unwrap_or(false);
        if portable || !Self::vector_available() {
            Simd::with_mode(SimdMode::Portable)
        } else {
            Simd::with_mode(SimdMode::Vector)
        }
    }

    /// The kernel this backend instance runs.
    pub fn mode(&self) -> SimdMode {
        self.mode
    }

    /// Whether the host exposes the AVX2 vector unit the intrinsic
    /// microtile needs.
    pub fn vector_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Whether [`SIMD_ENV`] leaves the tier in the [`crate::Auto`]
    /// dispatch ladder (`off`/`0` removes it).
    pub fn enabled_from_env() -> bool {
        std::env::var(SIMD_ENV)
            .map(|v| {
                let v = v.to_ascii_lowercase();
                v != "off" && v != "0"
            })
            .unwrap_or(true)
    }

    /// Whether the tier has a native kernel for this dtype pairing:
    /// f64 accumulation takes any input dtype (every supported input
    /// embeds exactly in f64), f32 accumulation requires inputs that
    /// embed exactly in f32 (`f32`, `F16`, `Bf16`). Everything else —
    /// notably half-precision accumulation — delegates to [`Blocked`].
    pub fn supports<AB: Real, CT: Real>() -> bool {
        match CT::DTYPE {
            DType::F64 => true,
            DType::F32 => matches!(AB::DTYPE, DType::F32 | DType::F16 | DType::Bf16),
            _ => false,
        }
    }
}

impl Default for Simd {
    fn default() -> Self {
        Simd::from_env()
    }
}

/// Compute scalars the microtile kernels are instantiated at. Sealed in
/// practice: the pool backs only `f32`/`f64`, matching
/// [`Simd::supports`].
trait Kernel:
    Real + PoolElem + Copy + core::ops::Add<Output = Self> + core::ops::Mul<Output = Self>
{
    /// Microtile width in columns (two vector registers per row).
    const NR: usize;

    /// Runs the full-height ([`MR`]-row) vector microtile:
    /// `tile[r][c] += a[r][p] · b[p][c]` for `p` ascending, with each
    /// product and sum rounded in `Self` (separate mul and add — no
    /// FMA).
    ///
    /// # Safety
    ///
    /// Caller must ensure the AVX2 feature is available, `a` covers
    /// `(MR-1)·a_stride + kc` elements, `b` covers `kc·NR`, and `tile`
    /// covers `MR·NR`.
    unsafe fn tile_vector(a: &[Self], a_stride: usize, b: &[Self], tile: &mut [Self], kc: usize);
}

impl Kernel for f32 {
    const NR: usize = 16;

    unsafe fn tile_vector(a: &[f32], a_stride: usize, b: &[f32], tile: &mut [f32], kc: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            tile_f32_avx2(a, a_stride, b, tile, kc);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            tile_portable::<f32>(a, a_stride, b, tile, kc, MR);
        }
    }
}

impl Kernel for f64 {
    const NR: usize = 8;

    unsafe fn tile_vector(a: &[f64], a_stride: usize, b: &[f64], tile: &mut [f64], kc: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            tile_f64_avx2(a, a_stride, b, tile, kc);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            tile_portable::<f64>(a, a_stride, b, tile, kc, MR);
        }
    }
}

/// The 4×16 f32 microtile: 8 accumulator vectors (4 rows × two 8-wide
/// halves), B rows loaded once per `p` and shared across the rows.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tile_f32_avx2(a: &[f32], a_stride: usize, b: &[f32], tile: &mut [f32], kc: usize) {
    use core::arch::x86_64::*;
    debug_assert!(a.len() >= (MR - 1) * a_stride + kc);
    debug_assert!(b.len() >= kc * 16);
    debug_assert!(tile.len() >= MR * 16);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let tp = tile.as_mut_ptr();
    let mut c00 = _mm256_loadu_ps(tp);
    let mut c01 = _mm256_loadu_ps(tp.add(8));
    let mut c10 = _mm256_loadu_ps(tp.add(16));
    let mut c11 = _mm256_loadu_ps(tp.add(24));
    let mut c20 = _mm256_loadu_ps(tp.add(32));
    let mut c21 = _mm256_loadu_ps(tp.add(40));
    let mut c30 = _mm256_loadu_ps(tp.add(48));
    let mut c31 = _mm256_loadu_ps(tp.add(56));
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(p * 16));
        let b1 = _mm256_loadu_ps(bp.add(p * 16 + 8));
        // Separate mul then add, never FMA: fusing would skip the
        // product's f32 rounding and break bitwise parity with Naive.
        let a0 = _mm256_set1_ps(*ap.add(p));
        c00 = _mm256_add_ps(c00, _mm256_mul_ps(a0, b0));
        c01 = _mm256_add_ps(c01, _mm256_mul_ps(a0, b1));
        let a1 = _mm256_set1_ps(*ap.add(a_stride + p));
        c10 = _mm256_add_ps(c10, _mm256_mul_ps(a1, b0));
        c11 = _mm256_add_ps(c11, _mm256_mul_ps(a1, b1));
        let a2 = _mm256_set1_ps(*ap.add(2 * a_stride + p));
        c20 = _mm256_add_ps(c20, _mm256_mul_ps(a2, b0));
        c21 = _mm256_add_ps(c21, _mm256_mul_ps(a2, b1));
        let a3 = _mm256_set1_ps(*ap.add(3 * a_stride + p));
        c30 = _mm256_add_ps(c30, _mm256_mul_ps(a3, b0));
        c31 = _mm256_add_ps(c31, _mm256_mul_ps(a3, b1));
    }
    _mm256_storeu_ps(tp, c00);
    _mm256_storeu_ps(tp.add(8), c01);
    _mm256_storeu_ps(tp.add(16), c10);
    _mm256_storeu_ps(tp.add(24), c11);
    _mm256_storeu_ps(tp.add(32), c20);
    _mm256_storeu_ps(tp.add(40), c21);
    _mm256_storeu_ps(tp.add(48), c30);
    _mm256_storeu_ps(tp.add(56), c31);
}

/// The 4×8 f64 microtile, mirroring [`tile_f32_avx2`] on 4-wide
/// vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tile_f64_avx2(a: &[f64], a_stride: usize, b: &[f64], tile: &mut [f64], kc: usize) {
    use core::arch::x86_64::*;
    debug_assert!(a.len() >= (MR - 1) * a_stride + kc);
    debug_assert!(b.len() >= kc * 8);
    debug_assert!(tile.len() >= MR * 8);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let tp = tile.as_mut_ptr();
    let mut c00 = _mm256_loadu_pd(tp);
    let mut c01 = _mm256_loadu_pd(tp.add(4));
    let mut c10 = _mm256_loadu_pd(tp.add(8));
    let mut c11 = _mm256_loadu_pd(tp.add(12));
    let mut c20 = _mm256_loadu_pd(tp.add(16));
    let mut c21 = _mm256_loadu_pd(tp.add(20));
    let mut c30 = _mm256_loadu_pd(tp.add(24));
    let mut c31 = _mm256_loadu_pd(tp.add(28));
    for p in 0..kc {
        let b0 = _mm256_loadu_pd(bp.add(p * 8));
        let b1 = _mm256_loadu_pd(bp.add(p * 8 + 4));
        let a0 = _mm256_set1_pd(*ap.add(p));
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(a0, b0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(a0, b1));
        let a1 = _mm256_set1_pd(*ap.add(a_stride + p));
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(a1, b0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(a1, b1));
        let a2 = _mm256_set1_pd(*ap.add(2 * a_stride + p));
        c20 = _mm256_add_pd(c20, _mm256_mul_pd(a2, b0));
        c21 = _mm256_add_pd(c21, _mm256_mul_pd(a2, b1));
        let a3 = _mm256_set1_pd(*ap.add(3 * a_stride + p));
        c30 = _mm256_add_pd(c30, _mm256_mul_pd(a3, b0));
        c31 = _mm256_add_pd(c31, _mm256_mul_pd(a3, b1));
    }
    _mm256_storeu_pd(tp, c00);
    _mm256_storeu_pd(tp.add(4), c01);
    _mm256_storeu_pd(tp.add(8), c10);
    _mm256_storeu_pd(tp.add(12), c11);
    _mm256_storeu_pd(tp.add(16), c20);
    _mm256_storeu_pd(tp.add(20), c21);
    _mm256_storeu_pd(tp.add(24), c30);
    _mm256_storeu_pd(tp.add(28), c31);
}

/// The portable microtile: the same loop nest as the vector kernels
/// with `mr` valid rows (also the remainder-row path under vector
/// mode). The column loop carries independent rounding chains, so the
/// compiler may auto-vectorize it without any reassociation.
fn tile_portable<K: Kernel>(
    a: &[K],
    a_stride: usize,
    b: &[K],
    tile: &mut [K],
    kc: usize,
    mr: usize,
) {
    for p in 0..kc {
        let brow = &b[p * K::NR..(p + 1) * K::NR];
        for r in 0..mr {
            let av = a[r * a_stride + p];
            let trow = &mut tile[r * K::NR..(r + 1) * K::NR];
            for (t, &bv) in trow.iter_mut().zip(brow) {
                // Two statements on purpose: a separate mul and add is
                // never contracted into an FMA under strict FP.
                let prod = av * bv;
                *t = *t + prod;
            }
        }
    }
}

/// Packs `op(A)[row0..row0+mc_len][pc..pc+kc_len]` row-major into
/// `out` in the compute scalar (exact by [`Simd::supports`]).
fn pack_a_k<AB: Real, K: Kernel>(
    params: &GemmParams,
    a: &[AB],
    row0: usize,
    mc_len: usize,
    pc: usize,
    kc_len: usize,
    out: &mut Vec<K>,
) {
    out.clear();
    match params.trans_a {
        Trans::None => {
            for il in 0..mc_len {
                let base = (row0 + il) * params.k + pc;
                out.extend(
                    a[base..base + kc_len]
                        .iter()
                        .map(|x| K::from_f64(x.to_f64())),
                );
            }
        }
        Trans::Trans => {
            for il in 0..mc_len {
                for pl in 0..kc_len {
                    out.push(K::from_f64(a[(pc + pl) * params.m + row0 + il].to_f64()));
                }
            }
        }
    }
}

/// Packs `op(B)[pc..pc+kc_len][jc..jc+nc_len]` into `NR`-interleaved
/// strips (`out[strip][p][lane]`), zero-padding lanes past `nc_len` so
/// every vector load is full width. Padded lanes accumulate exact
/// zeros and are never stored back.
fn pack_b_k<AB: Real, K: Kernel>(
    params: &GemmParams,
    b: &[AB],
    pc: usize,
    kc_len: usize,
    jc: usize,
    nc_len: usize,
    out: &mut Vec<K>,
) {
    out.clear();
    for jl in (0..nc_len).step_by(K::NR) {
        let lanes = K::NR.min(nc_len - jl);
        for pl in 0..kc_len {
            let p = pc + pl;
            for lane in 0..K::NR {
                let v = if lane < lanes {
                    let j = jc + jl + lane;
                    let idx = match params.trans_b {
                        Trans::None => p * params.n + j,
                        Trans::Trans => j * params.k + p,
                    };
                    K::from_f64(b[idx].to_f64())
                } else {
                    K::zero()
                };
                out.push(v);
            }
        }
    }
}

/// Runs the microtile sweep for one `(jc, pc)` block over a task's
/// accumulator rows. `MC`-row sub-panels keep the A walk L2-resident;
/// within a sub-panel the B strip stays hot across the `MR`-row tiles.
#[allow(clippy::too_many_arguments)]
fn tiles<K: Kernel>(
    acc_rows: &mut [K],
    n: usize,
    jc: usize,
    nc_len: usize,
    kc_len: usize,
    a_panel: &[K],
    b_panel: &[K],
    vector: bool,
) {
    let mc_len = acc_rows.len() / n;
    let strip_len = kc_len * K::NR;
    // Stack tile sized for the widest kernel (f32: 4×16).
    let mut tile = [K::zero(); MR * 16];
    for ic in (0..mc_len).step_by(MC) {
        let ic_len = MC.min(mc_len - ic);
        for (strip, jl) in (0..nc_len).step_by(K::NR).enumerate() {
            let nr_len = K::NR.min(nc_len - jl);
            let b_strip = &b_panel[strip * strip_len..(strip + 1) * strip_len];
            for ir in (0..ic_len).step_by(MR) {
                let mr_len = MR.min(ic_len - ir);
                let row = ic + ir;
                for r in 0..mr_len {
                    let base = (row + r) * n + jc + jl;
                    for (c_ix, t) in tile[r * K::NR..r * K::NR + nr_len].iter_mut().enumerate() {
                        *t = acc_rows[base + c_ix];
                    }
                    for t in tile[r * K::NR + nr_len..(r + 1) * K::NR].iter_mut() {
                        *t = K::zero();
                    }
                }
                let a_rows = &a_panel[row * kc_len..(row + mr_len) * kc_len];
                if vector && mr_len == MR {
                    // SAFETY: `vector` is only true when AVX2 was
                    // detected; the slices cover MR rows × kc_len, the
                    // strip kc_len × NR, and the tile MR × NR.
                    unsafe {
                        K::tile_vector(a_rows, kc_len, b_strip, &mut tile[..MR * K::NR], kc_len)
                    };
                } else {
                    tile_portable::<K>(a_rows, kc_len, b_strip, &mut tile, kc_len, mr_len);
                }
                for r in 0..mr_len {
                    let base = (row + r) * n + jc + jl;
                    for (c_ix, t) in tile[r * K::NR..r * K::NR + nr_len].iter().enumerate() {
                        acc_rows[base + c_ix] = *t;
                    }
                }
            }
        }
    }
}

/// The monomorphic GEMM body at compute scalar `K`: one parallel
/// region over contiguous row chunks (one per worker), each task
/// packing its own pooled panels and walking `pc` ascending so every
/// element sees the naive rounding chain.
fn gemm_k<AB: Real, CD: Real, K: Kernel>(
    params: &GemmParams,
    a: &[AB],
    b: &[AB],
    c: &[CD],
    d: &mut [CD],
    vector: bool,
) -> Result<(), ComputeError> {
    params.check_buffers(a.len(), b.len(), c.len(), d.len())?;
    let (m, n, k) = (params.m, params.n, params.k);
    if m == 0 || n == 0 {
        return Ok(());
    }

    // Host profiling: one caller-lane fan-out phase around the single
    // parallel region, worker-lane pack/microkernel phases inside it.
    let region = prof::current_region();
    let on = prof::enabled() && region != 0;

    let mut acc = pool::acquire::<K>(m * n);
    acc.resize(m * n, K::zero());
    let workers = rayon::current_num_threads().max(1);
    // One chunk per worker, whole MR-row groups. Partitioning splits
    // the *output*, so it cannot touch any rounding chain: results are
    // identical for every worker count.
    let chunk_rows = m.div_ceil(workers).next_multiple_of(MR);
    let kc_max = KC.min(k.max(1));
    let bp_cap = kc_max * NC.min(n).next_multiple_of(K::NR);
    let t_fan = on.then(prof::now_s);
    acc.par_chunks_mut(chunk_rows * n)
        .enumerate()
        .for_each(|(chunk_idx, acc_rows)| {
            let row0 = chunk_idx * chunk_rows;
            let mc_len = acc_rows.len() / n;
            let mut a_panel = pool::acquire::<K>(mc_len * kc_max);
            let mut b_panel = pool::acquire::<K>(bp_cap);
            for pc in (0..k).step_by(KC) {
                let kc_len = KC.min(k - pc);
                let t0 = on.then(prof::now_s);
                pack_a_k(params, a, row0, mc_len, pc, kc_len, &mut a_panel);
                if let Some(t0) = t0 {
                    prof::phase(
                        region,
                        HostPhase::PackA,
                        Lane::Worker(prof::worker_lane()),
                        t0,
                    );
                }
                for jc in (0..n).step_by(NC) {
                    let nc_len = NC.min(n - jc);
                    let t0 = on.then(prof::now_s);
                    pack_b_k(params, b, pc, kc_len, jc, nc_len, &mut b_panel);
                    if let Some(t0) = t0 {
                        prof::phase(
                            region,
                            HostPhase::PackB,
                            Lane::Worker(prof::worker_lane()),
                            t0,
                        );
                    }
                    let t0 = on.then(prof::now_s);
                    tiles(acc_rows, n, jc, nc_len, kc_len, &a_panel, &b_panel, vector);
                    if let Some(t0) = t0 {
                        prof::phase(
                            region,
                            HostPhase::Microkernel,
                            Lane::Worker(prof::worker_lane()),
                            t0,
                        );
                    }
                }
            }
        });
    if let Some(t0) = t_fan {
        prof::phase(region, HostPhase::Fanout, Lane::Call(prof::call_lane()), t0);
    }

    apply_epilogue::<K, CD>(params, &acc, c, d);
    Ok(())
}

impl MatMul for Simd {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn gemm<AB, CD, CT>(
        &self,
        params: &GemmParams,
        a: &[AB],
        b: &[AB],
        c: &[CD],
        d: &mut [CD],
    ) -> Result<(), ComputeError>
    where
        AB: Real,
        CD: Real,
        CT: Real,
    {
        if !Self::supports::<AB, CT>() {
            return Blocked.gemm::<AB, CD, CT>(params, a, b, c, d);
        }
        let vector = self.mode == SimdMode::Vector && Self::vector_available();
        // `supports` pins CT's dtype to f32 or f64; instantiating the
        // kernel at the concrete scalar of that dtype computes the
        // identical chain (the dtype determines the arithmetic).
        match CT::DTYPE {
            DType::F32 => gemm_k::<AB, CD, f32>(params, a, b, c, d, vector),
            DType::F64 => gemm_k::<AB, CD, f64>(params, a, b, c, d, vector),
            _ => unreachable!("supports() gates the compute dtype"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Naive;
    use mc_types::{Bf16, F16};

    fn fill_ab<T: Real>(len: usize, seed: usize) -> Vec<T> {
        (0..len)
            .map(|i| T::from_f64(((i * seed + 3) % 17) as f64 / 8.0 - 1.0))
            .collect()
    }

    fn parity<AB: Real, CD: Real, CT: Real>(backend: &Simd, params: &GemmParams) {
        let (am, ak) = match params.trans_a {
            Trans::None => (params.m, params.k),
            Trans::Trans => (params.k, params.m),
        };
        let (bk, bn) = match params.trans_b {
            Trans::None => (params.k, params.n),
            Trans::Trans => (params.n, params.k),
        };
        let a: Vec<AB> = fill_ab(am * ak, 7);
        let b: Vec<AB> = fill_ab(bk * bn, 13);
        let c: Vec<CD> = fill_ab(params.m * params.n, 5);
        let mut d_naive = vec![CD::zero(); params.m * params.n];
        let mut d_simd = vec![CD::zero(); params.m * params.n];
        Naive
            .gemm::<AB, CD, CT>(params, &a, &b, &c, &mut d_naive)
            .unwrap();
        backend
            .gemm::<AB, CD, CT>(params, &a, &b, &c, &mut d_simd)
            .unwrap();
        for (i, (x, y)) in d_naive.iter().zip(&d_simd).enumerate() {
            assert!(x == y, "element {i}: {x:?} vs {y:?} ({params:?})");
        }
    }

    #[test]
    fn both_modes_match_naive_bitwise_across_dtypes() {
        for mode in [SimdMode::Vector, SimdMode::Portable] {
            let backend = Simd::with_mode(mode);
            for (m, n, k) in [(1, 1, 1), (17, 5, 3), (65, 129, 257), (64, 128, 256)] {
                for epilogue in [crate::Epilogue::Direct, crate::Epilogue::ComputeRounded] {
                    let p = GemmParams::new(m, n, k)
                        .with_scaling(0.1, 0.1)
                        .with_epilogue(epilogue);
                    parity::<f64, f64, f64>(&backend, &p);
                    parity::<f32, f32, f32>(&backend, &p);
                    parity::<F16, f32, f32>(&backend, &p);
                    parity::<Bf16, Bf16, f32>(&backend, &p);
                    // Unsupported combos must fall back, still bitwise.
                    parity::<F16, F16, F16>(&backend, &p);
                    parity::<f64, f32, f32>(&backend, &p);
                }
            }
        }
    }

    #[test]
    fn transposed_operands_match_naive() {
        for (ta, tb) in [
            (Trans::None, Trans::Trans),
            (Trans::Trans, Trans::None),
            (Trans::Trans, Trans::Trans),
        ] {
            let p = GemmParams::new(33, 21, 130)
                .with_scaling(-1.0, 1.0)
                .with_transposes(ta, tb);
            parity::<f32, f32, f32>(&Simd::from_env(), &p);
            parity::<f64, f64, f64>(&Simd::from_env(), &p);
        }
    }

    #[test]
    fn supports_encodes_the_embeddability_rule() {
        assert!(Simd::supports::<f32, f32>());
        assert!(Simd::supports::<F16, f32>());
        assert!(Simd::supports::<Bf16, f32>());
        assert!(Simd::supports::<f64, f64>());
        assert!(Simd::supports::<f32, f64>());
        assert!(!Simd::supports::<f64, f32>(), "f64 inputs do not embed");
        assert!(!Simd::supports::<F16, F16>(), "no half-precision chains");
    }

    #[test]
    fn k_zero_runs_the_pure_epilogue() {
        let p = GemmParams::new(3, 2, 0).with_scaling(9.0, 0.5);
        parity::<f32, f32, f32>(&Simd::from_env(), &p);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let p = GemmParams::new(130, 70, 90).with_scaling(0.1, 0.1);
        let a: Vec<f32> = fill_ab(130 * 90, 11);
        let b: Vec<f32> = fill_ab(90 * 70, 29);
        let c: Vec<f32> = fill_ab(130 * 70, 3);
        let mut runs: Vec<Vec<f32>> = Vec::new();
        for threads in [1, 2, 7] {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global()
                .unwrap();
            let mut d = vec![0.0f32; 130 * 70];
            Simd::from_env()
                .gemm::<f32, f32, f32>(&p, &a, &b, &c, &mut d)
                .unwrap();
            runs.push(d);
        }
        rayon::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn mode_env_round_trips() {
        // from_env picks *some* mode without panicking; Vector implies
        // the host actually has the feature.
        let s = Simd::from_env();
        if s.mode() == SimdMode::Vector {
            assert!(Simd::vector_available());
        }
    }
}
