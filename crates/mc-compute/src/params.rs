//! Problem descriptors for the compute backends.
//!
//! [`GemmParams`] is deliberately smaller than `mc_blas::GemmDesc`: no
//! routine/datatype tag (the element types are the generic parameters
//! of [`crate::MatMul::gemm`]) and no `k > 0` requirement — `k = 0`
//! degenerates to the pure epilogue `D ← β·C`, which the library layer
//! forbids but the solver's edge blocks and the parity tests exercise.

use core::fmt;

/// Transpose selector for an input operand (mirrors BLAS `N`/`T`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the operand as stored.
    #[default]
    None,
    /// Use the operand's transpose.
    Trans,
}

/// How the α/β epilogue rounds, matching the two historical paths of
/// `mc_blas::functional` bit for bit.
///
/// Both compute `ab = ct(α·acc)` and `bc = ct(β·c)` in the compute
/// type; they differ in how the sum reaches the output type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Epilogue {
    /// `d = cd(ab + bc)` — one rounding straight into the output type
    /// (the SIMD path's per-element MAC epilogue).
    #[default]
    Direct,
    /// `d = cd(ct(ab + bc))` — the sum rounds through the compute type
    /// before the output cast (the Matrix Core path's writeback, which
    /// leaves the accumulator registers in the compute type).
    ComputeRounded,
}

/// A GEMM problem for the compute backends:
/// `D (m×n) ← α · op(A)·op(B) + β · C`, row-major, leading dimension
/// equal to each matrix's width.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GemmParams {
    /// Rows of op(A), C, and D.
    pub m: usize,
    /// Columns of op(B), C, and D.
    pub n: usize,
    /// Inner dimension (0 is allowed: `D ← β·C`).
    pub k: usize,
    /// Scalar on `op(A)·op(B)`.
    pub alpha: f64,
    /// Scalar on `C`.
    pub beta: f64,
    /// Transpose selector for A (stored `m×k` when `None`, `k×m` when
    /// `Trans`).
    pub trans_a: Trans,
    /// Transpose selector for B (stored `k×n` when `None`, `n×k` when
    /// `Trans`).
    pub trans_b: Trans,
    /// Epilogue rounding variant.
    pub epilogue: Epilogue,
}

impl GemmParams {
    /// A plain `α = 1, β = 0`, untransposed problem.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        GemmParams {
            m,
            n,
            k,
            alpha: 1.0,
            beta: 0.0,
            trans_a: Trans::None,
            trans_b: Trans::None,
            epilogue: Epilogue::Direct,
        }
    }

    /// Sets the α/β scalars.
    pub fn with_scaling(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Sets the transpose selectors.
    pub fn with_transposes(mut self, trans_a: Trans, trans_b: Trans) -> Self {
        self.trans_a = trans_a;
        self.trans_b = trans_b;
        self
    }

    /// Sets the epilogue rounding variant.
    pub fn with_epilogue(mut self, epilogue: Epilogue) -> Self {
        self.epilogue = epilogue;
        self
    }

    /// Index of `op(A)[i][p]` in A's stored row-major layout.
    #[inline]
    pub fn a_index(&self, i: usize, p: usize) -> usize {
        match self.trans_a {
            Trans::None => i * self.k + p,
            Trans::Trans => p * self.m + i,
        }
    }

    /// Index of `op(B)[p][j]` in B's stored row-major layout.
    #[inline]
    pub fn b_index(&self, p: usize, j: usize) -> usize {
        match self.trans_b {
            Trans::None => p * self.n + j,
            Trans::Trans => j * self.k + p,
        }
    }

    /// Validates the four host buffers against the problem shape.
    pub fn check_buffers(
        &self,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
    ) -> Result<(), ComputeError> {
        let need = [
            ("A", self.m * self.k, a),
            ("B", self.k * self.n, b),
            ("C", self.m * self.n, c),
            ("D", self.m * self.n, d),
        ];
        for (operand, required, provided) in need {
            if provided < required {
                return Err(ComputeError::BufferTooSmall {
                    operand,
                    required,
                    provided,
                });
            }
        }
        Ok(())
    }
}

/// Errors from the compute backends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ComputeError {
    /// A host buffer is smaller than the problem requires.
    BufferTooSmall {
        /// Which operand.
        operand: &'static str,
        /// Required length in elements.
        required: usize,
        /// Provided length.
        provided: usize,
    },
}

impl fmt::Display for ComputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeError::BufferTooSmall {
                operand,
                required,
                provided,
            } => write!(
                f,
                "operand {operand}: need {required} elements, got {provided}"
            ),
        }
    }
}

impl std::error::Error for ComputeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_follows_transpose_selectors() {
        let p = GemmParams::new(3, 4, 5);
        assert_eq!(p.a_index(2, 4), 2 * 5 + 4);
        assert_eq!(p.b_index(4, 3), 4 * 4 + 3);
        let t = p.with_transposes(Trans::Trans, Trans::Trans);
        assert_eq!(t.a_index(2, 4), 4 * 3 + 2);
        assert_eq!(t.b_index(4, 3), 3 * 5 + 4);
    }

    #[test]
    fn zero_k_is_valid() {
        let p = GemmParams::new(2, 2, 0);
        assert!(p.check_buffers(0, 0, 4, 4).is_ok());
    }

    #[test]
    fn buffer_checks_name_the_operand() {
        let p = GemmParams::new(2, 2, 2);
        assert_eq!(
            p.check_buffers(4, 3, 4, 4),
            Err(ComputeError::BufferTooSmall {
                operand: "B",
                required: 4,
                provided: 3
            })
        );
    }
}
