//! The retained naive reference backend.
//!
//! A direct `i/j/p` triple loop with one conversion per element access —
//! exactly the kernel `mc_blas::functional::run_simd` shipped before the
//! blocked backend existed. It stays in the crate as the semantic
//! ground truth: [`crate::Blocked`] must match it bit for bit (the
//! parity suite in `tests/compute_parity.rs` proves it), and the `perf`
//! experiment measures speedup against it.

use mc_types::Real;

use crate::params::{ComputeError, Epilogue, GemmParams};
use crate::MatMul;

/// The single-threaded reference backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct Naive;

impl MatMul for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn gemm<AB, CD, CT>(
        &self,
        params: &GemmParams,
        a: &[AB],
        b: &[AB],
        c: &[CD],
        d: &mut [CD],
    ) -> Result<(), ComputeError>
    where
        AB: Real,
        CD: Real,
        CT: Real,
    {
        params.check_buffers(a.len(), b.len(), c.len(), d.len())?;
        let (m, n, k) = (params.m, params.n, params.k);
        for i in 0..m {
            for j in 0..n {
                let mut acc = CT::zero();
                for p in 0..k {
                    let prod = CT::from_f64(
                        a[params.a_index(i, p)].to_f64() * b[params.b_index(p, j)].to_f64(),
                    );
                    acc = CT::from_f64(acc.to_f64() + prod.to_f64());
                }
                let ab = CT::from_f64(params.alpha * acc.to_f64());
                let bc = CT::from_f64(params.beta * c[i * n + j].to_f64());
                d[i * n + j] = match params.epilogue {
                    Epilogue::Direct => CD::from_f64(ab.to_f64() + bc.to_f64()),
                    Epilogue::ComputeRounded => {
                        CD::from_f64(CT::from_f64(ab.to_f64() + bc.to_f64()).to_f64())
                    }
                };
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_integer_gemm_is_exact() {
        let p = GemmParams::new(3, 3, 3).with_scaling(1.0, 1.0);
        let a: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..9).map(|i| (i % 2) as f64).collect();
        let c = vec![1.0f64; 9];
        let mut d = vec![0.0f64; 9];
        Naive.gemm::<f64, f64, f64>(&p, &a, &b, &c, &mut d).unwrap();
        // Row 0 of A is [0,1,2]; column 0 of B is [0,1,0] -> 1 (+1).
        assert_eq!(d[0], 2.0);
    }

    #[test]
    fn k_zero_is_beta_scaling_only() {
        let p = GemmParams::new(2, 2, 0).with_scaling(7.0, 2.0);
        let c = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut d = vec![0.0f32; 4];
        Naive
            .gemm::<f32, f32, f32>(&p, &[], &[], &c, &mut d)
            .unwrap();
        assert_eq!(d, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn f16_compute_type_loses_precision_like_the_hardware() {
        use mc_types::F16;
        // 1 + 2^-12 rounds away in an f16 accumulator.
        let p = GemmParams::new(1, 1, 2);
        let a = [F16::ONE, F16::from_f32(2.0f32.powi(-12))];
        let b = [F16::ONE, F16::ONE];
        let c = [F16::ZERO];
        let mut d = [F16::ZERO];
        Naive.gemm::<F16, F16, F16>(&p, &a, &b, &c, &mut d).unwrap();
        assert_eq!(d[0].to_f64(), 1.0);
        // The same product survives an f32 accumulator.
        let c32 = [0.0f32];
        let mut d32 = [0.0f32];
        Naive
            .gemm::<F16, f32, f32>(&p, &a, &b, &c32, &mut d32)
            .unwrap();
        assert!(d32[0] > 1.0);
    }
}
