//! The cache-blocked, packed-panel GEMM backend.
//!
//! BLIS-style three-level tiling: the output is walked in `NC`-wide
//! column blocks and `KC`-deep k blocks; for each `(jc, pc)` pair the B
//! panel is packed once into a column-major f64 buffer, then the `MC`
//! row panels fan out across the rayon pool, each packing its A panel
//! and running the microkernel over L1-resident strips. Packing
//! converts every element to `f64` exactly once (the conversion is
//! exact for all supported dtypes), so the products inside the
//! microkernel are bit-identical to the naive kernel's
//! `a.to_f64() * b.to_f64()`.
//!
//! **Rounding semantics are preserved, not approximated**: every output
//! element accumulates through the same compute-type rounding chain in
//! the same ascending-k order as [`crate::Naive`] — k blocks ascend,
//! and the per-element accumulator carries across blocks — so blocked
//! results equal naive results *bitwise* for every dtype triple. The
//! speedup comes from locality (the naive kernel strides `n` elements
//! through B per MAC), hoisted conversions, and an 8-column microkernel
//! that runs eight independent rounding chains to cover the chain
//! latency. Threads partition the output by row panel, each element is
//! computed by exactly one thread, and the k order is fixed, so results
//! are invariant under the thread count.

use mc_types::Real;
use rayon::prelude::*;

use crate::params::{ComputeError, Epilogue, GemmParams, Trans};
use crate::prof::{self, HostPhase, Lane};
use crate::{pool, MatMul};

/// Row-panel height: the unit of parallel work.
pub const MC: usize = 64;
/// Column-block width: the B panel strip kept hot per microkernel pass.
pub const NC: usize = 128;
/// k-block depth: packed-panel columns sized to stay in L1.
pub const KC: usize = 256;

/// Columns the microkernel advances per pass (independent rounding
/// chains, giving instruction-level parallelism the sequential
/// per-element chain otherwise forbids).
const JR: usize = 8;

/// The cache-blocked, rayon-parallel backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct Blocked;

/// One step of the compute-type rounding chain:
/// `acc ← ct(acc + ct(av·bv))`.
#[inline(always)]
fn mac_step<CT: Real>(acc: CT, av: f64, bv: f64) -> CT {
    let prod = CT::from_f64(av * bv);
    CT::from_f64(acc.to_f64() + prod.to_f64())
}

/// Packs `op(A)[ic..ic+mc_len][pc..pc+kc_len]` row-major into `out`.
fn pack_a<AB: Real>(
    params: &GemmParams,
    a: &[AB],
    ic: usize,
    mc_len: usize,
    pc: usize,
    kc_len: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    match params.trans_a {
        Trans::None => {
            for il in 0..mc_len {
                let row = (ic + il) * params.k + pc;
                out.extend(a[row..row + kc_len].iter().map(|x| x.to_f64()));
            }
        }
        Trans::Trans => {
            for il in 0..mc_len {
                for pl in 0..kc_len {
                    out.push(a[(pc + pl) * params.m + ic + il].to_f64());
                }
            }
        }
    }
}

/// Packs `op(B)[pc..pc+kc_len][jc..jc+nc_len]` column-major into `out`
/// (`out[jl·kc_len + pl]`), so each output column is a contiguous strip.
fn pack_b<AB: Real>(
    params: &GemmParams,
    b: &[AB],
    pc: usize,
    kc_len: usize,
    jc: usize,
    nc_len: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    match params.trans_b {
        Trans::None => {
            for jl in 0..nc_len {
                for pl in 0..kc_len {
                    out.push(b[(pc + pl) * params.n + jc + jl].to_f64());
                }
            }
        }
        Trans::Trans => {
            for jl in 0..nc_len {
                let row = (jc + jl) * params.k + pc;
                out.extend(b[row..row + kc_len].iter().map(|x| x.to_f64()));
            }
        }
    }
}

/// Accumulates one packed A panel against one packed B panel into the
/// panel's accumulator rows (`acc_rows` spans `mc_len` full-width rows).
fn micro_panel<CT: Real>(
    acc_rows: &mut [CT],
    n: usize,
    jc: usize,
    nc_len: usize,
    kc_len: usize,
    a_panel: &[f64],
    b_panel: &[f64],
) {
    let mc_len = acc_rows.len() / n;
    for il in 0..mc_len {
        let a_row = &a_panel[il * kc_len..(il + 1) * kc_len];
        let acc_row = &mut acc_rows[il * n + jc..il * n + jc + nc_len];
        let mut jl = 0;
        while jl + JR <= nc_len {
            let bcols: [&[f64]; JR] =
                core::array::from_fn(|q| &b_panel[(jl + q) * kc_len..(jl + q + 1) * kc_len]);
            let mut t: [CT; JR] = core::array::from_fn(|q| acc_row[jl + q]);
            for (pl, &av) in a_row.iter().enumerate() {
                for q in 0..JR {
                    t[q] = mac_step(t[q], av, bcols[q][pl]);
                }
            }
            acc_row[jl..jl + JR].copy_from_slice(&t);
            jl += JR;
        }
        while jl < nc_len {
            let bcol = &b_panel[jl * kc_len..(jl + 1) * kc_len];
            let mut t = acc_row[jl];
            for (&av, &bv) in a_row.iter().zip(bcol) {
                t = mac_step(t, av, bv);
            }
            acc_row[jl] = t;
            jl += 1;
        }
    }
}

/// The shared α/β epilogue: `d ← epi(α·acc, β·c)` over full rows in
/// parallel, with both products rounded in the compute type. Used by
/// the blocked and SIMD tiers (the accumulator layout is identical).
pub(crate) fn apply_epilogue<CT: Real, CD: Real>(
    params: &GemmParams,
    acc: &[CT],
    c: &[CD],
    d: &mut [CD],
) {
    let (m, n) = (params.m, params.n);
    let (alpha, beta) = (params.alpha, params.beta);
    let epilogue = params.epilogue;
    let region = prof::current_region();
    let t0 = (prof::enabled() && region != 0).then(prof::now_s);
    d[..m * n]
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, drow)| {
            for (j, out) in drow.iter_mut().enumerate() {
                let ab = CT::from_f64(alpha * acc[i * n + j].to_f64());
                let bc = CT::from_f64(beta * c[i * n + j].to_f64());
                *out = match epilogue {
                    Epilogue::Direct => CD::from_f64(ab.to_f64() + bc.to_f64()),
                    Epilogue::ComputeRounded => {
                        CD::from_f64(CT::from_f64(ab.to_f64() + bc.to_f64()).to_f64())
                    }
                };
            }
        });
    if let Some(t0) = t0 {
        prof::phase(
            region,
            HostPhase::Epilogue,
            Lane::Call(prof::call_lane()),
            t0,
        );
    }
}

impl MatMul for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm<AB, CD, CT>(
        &self,
        params: &GemmParams,
        a: &[AB],
        b: &[AB],
        c: &[CD],
        d: &mut [CD],
    ) -> Result<(), ComputeError>
    where
        AB: Real,
        CD: Real,
        CT: Real,
    {
        params.check_buffers(a.len(), b.len(), c.len(), d.len())?;
        let (m, n, k) = (params.m, params.n, params.k);
        if m == 0 || n == 0 {
            return Ok(());
        }

        // Host profiling: caller-lane phases (pack-B, fan-out) and
        // worker-lane phases (pack-A, microkernel) inside the region
        // the dispatcher opened; `region == 0` (no session, or a call
        // outside any region) records nothing.
        let region = prof::current_region();
        let on = prof::enabled() && region != 0;

        // Compute-type accumulators for the whole output, carried across
        // k blocks so each element sees one ascending-k rounding chain.
        let mut acc = vec![CT::zero(); m * n];
        let mut b_panel = pool::acquire::<f64>(KC.min(k.max(1)) * NC.min(n));
        for jc in (0..n).step_by(NC) {
            let nc_len = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc_len = KC.min(k - pc);
                let t_pack = on.then(prof::now_s);
                pack_b(params, b, pc, kc_len, jc, nc_len, &mut b_panel);
                if let Some(t0) = t_pack {
                    prof::phase(region, HostPhase::PackB, Lane::Call(prof::call_lane()), t0);
                }
                let bp = &*b_panel;
                let t_fan = on.then(prof::now_s);
                acc.par_chunks_mut(MC * n)
                    .enumerate()
                    .for_each(|(panel, acc_rows)| {
                        let mc_len = acc_rows.len() / n;
                        let t0 = on.then(prof::now_s);
                        let mut a_panel = pool::acquire::<f64>(mc_len * kc_len);
                        pack_a(params, a, panel * MC, mc_len, pc, kc_len, &mut a_panel);
                        if let Some(t0) = t0 {
                            prof::phase(
                                region,
                                HostPhase::PackA,
                                Lane::Worker(prof::worker_lane()),
                                t0,
                            );
                        }
                        let t0 = on.then(prof::now_s);
                        micro_panel(acc_rows, n, jc, nc_len, kc_len, &a_panel, bp);
                        if let Some(t0) = t0 {
                            prof::phase(
                                region,
                                HostPhase::Microkernel,
                                Lane::Worker(prof::worker_lane()),
                                t0,
                            );
                        }
                    });
                if let Some(t0) = t_fan {
                    prof::phase(region, HostPhase::Fanout, Lane::Call(prof::call_lane()), t0);
                }
            }
        }

        apply_epilogue::<CT, CD>(params, &acc, c, d);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Naive;
    use mc_types::{Bf16, F16};

    fn fill_ab<T: Real>(len: usize, seed: usize) -> Vec<T> {
        (0..len)
            .map(|i| T::from_f64(((i * seed + 3) % 17) as f64 / 8.0 - 1.0))
            .collect()
    }

    fn parity<AB: Real, CD: Real, CT: Real>(params: &GemmParams) {
        let (am, ak) = match params.trans_a {
            Trans::None => (params.m, params.k),
            Trans::Trans => (params.k, params.m),
        };
        let (bk, bn) = match params.trans_b {
            Trans::None => (params.k, params.n),
            Trans::Trans => (params.n, params.k),
        };
        let a: Vec<AB> = fill_ab(am * ak, 7);
        let b: Vec<AB> = fill_ab(bk * bn, 13);
        let c: Vec<CD> = fill_ab(params.m * params.n, 5);
        let mut d_naive = vec![CD::zero(); params.m * params.n];
        let mut d_blocked = vec![CD::zero(); params.m * params.n];
        Naive
            .gemm::<AB, CD, CT>(params, &a, &b, &c, &mut d_naive)
            .unwrap();
        Blocked
            .gemm::<AB, CD, CT>(params, &a, &b, &c, &mut d_blocked)
            .unwrap();
        for (i, (x, y)) in d_naive.iter().zip(&d_blocked).enumerate() {
            assert!(x == y, "element {i}: {x:?} vs {y:?} ({params:?})");
        }
    }

    #[test]
    fn bitwise_parity_with_naive_across_dtypes() {
        // Shapes straddling every block boundary, both epilogues.
        for (m, n, k) in [(1, 1, 1), (17, 5, 3), (65, 129, 257), (64, 128, 256)] {
            for epilogue in [Epilogue::Direct, Epilogue::ComputeRounded] {
                let p = GemmParams::new(m, n, k)
                    .with_scaling(0.1, 0.1)
                    .with_epilogue(epilogue);
                parity::<f64, f64, f64>(&p);
                parity::<f32, f32, f32>(&p);
                parity::<F16, F16, F16>(&p);
                parity::<F16, f32, f32>(&p);
                parity::<Bf16, Bf16, f32>(&p);
            }
        }
    }

    #[test]
    fn bitwise_parity_under_transposes() {
        for (ta, tb) in [
            (Trans::None, Trans::Trans),
            (Trans::Trans, Trans::None),
            (Trans::Trans, Trans::Trans),
        ] {
            let p = GemmParams::new(33, 21, 130)
                .with_scaling(-1.0, 1.0)
                .with_transposes(ta, tb);
            parity::<f32, f32, f32>(&p);
            parity::<F16, f32, f32>(&p);
        }
    }

    #[test]
    fn k_zero_scales_c_only() {
        let p = GemmParams::new(3, 2, 0).with_scaling(9.0, 0.5);
        parity::<f32, f32, f32>(&p);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let p = GemmParams::new(130, 70, 90).with_scaling(0.1, 0.1);
        let a: Vec<f32> = fill_ab(130 * 90, 11);
        let b: Vec<f32> = fill_ab(90 * 70, 29);
        let c: Vec<f32> = fill_ab(130 * 70, 3);
        let mut runs: Vec<Vec<f32>> = Vec::new();
        for threads in [1, 2, 7] {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global()
                .unwrap();
            let mut d = vec![0.0f32; 130 * 70];
            Blocked
                .gemm::<f32, f32, f32>(&p, &a, &b, &c, &mut d)
                .unwrap();
            runs.push(d);
        }
        rayon::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn oversized_output_buffer_is_left_untouched_past_mn() {
        let p = GemmParams::new(2, 2, 2).with_scaling(1.0, 0.0);
        let a = vec![1.0f64; 4];
        let b = vec![1.0f64; 4];
        let c = vec![0.0f64; 4];
        let mut d = vec![-7.0f64; 9];
        Blocked
            .gemm::<f64, f64, f64>(&p, &a, &b, &c, &mut d)
            .unwrap();
        assert_eq!(&d[..4], &[2.0, 2.0, 2.0, 2.0]);
        assert!(d[4..].iter().all(|&x| x == -7.0));
    }
}
