//! Quantized int8 → int32 GEMM kernels.
//!
//! Integer accumulation is exact, so any summation order gives the same
//! result and the blocked kernel needs no rounding-chain argument: it
//! packs B column-major into `i32` strips and walks contiguous dot
//! products, parallel over output rows. The paper's int8 MFMA
//! instructions accumulate in int32 the same way, which is why
//! `mc_blas::igemm` keeps its dequantization epilogue outside this
//! kernel.

use rayon::prelude::*;

use crate::params::ComputeError;

/// Validates buffer lengths for an `m×n×k` int8 GEMM.
fn check(m: usize, n: usize, k: usize, a: usize, b: usize, d: usize) -> Result<(), ComputeError> {
    let need = [("A", m * k, a), ("B", k * n, b), ("D", m * n, d)];
    for (operand, required, provided) in need {
        if provided < required {
            return Err(ComputeError::BufferTooSmall {
                operand,
                required,
                provided,
            });
        }
    }
    Ok(())
}

/// Reference triple loop: `D[i][j] = Σ_p A[i][p]·B[p][j]` in `i32`.
pub fn gemm_i8_reference(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    d: &mut [i32],
) -> Result<(), ComputeError> {
    check(m, n, k, a.len(), b.len(), d.len())?;
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += i32::from(a[i * k + p]) * i32::from(b[p * n + j]);
            }
            d[i * n + j] = acc;
        }
    }
    Ok(())
}

/// Blocked, parallel int8 GEMM. Bit-identical to
/// [`gemm_i8_reference`] (integer sums are order-free).
pub fn gemm_i8(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    d: &mut [i32],
) -> Result<(), ComputeError> {
    check(m, n, k, a.len(), b.len(), d.len())?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    // Pack B column-major once: column j is the contiguous strip
    // b_cols[j*k..(j+1)*k], widened to i32 up front.
    let mut b_cols = vec![0i32; k * n];
    for (p, brow) in b[..k * n].chunks_exact(n).enumerate() {
        for (j, &v) in brow.iter().enumerate() {
            b_cols[j * k + p] = i32::from(v);
        }
    }
    let b_cols = &b_cols;
    d[..m * n]
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, drow)| {
            let a_row: Vec<i32> = a[i * k..(i + 1) * k]
                .iter()
                .map(|&v| i32::from(v))
                .collect();
            for (j, out) in drow.iter_mut().enumerate() {
                let col = &b_cols[j * k..(j + 1) * k];
                *out = a_row.iter().zip(col).map(|(&x, &y)| x * y).sum();
            }
        });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: i32) -> Vec<i8> {
        (0..len as i32)
            .map(|i| ((i * seed + 5) % 37 - 18) as i8)
            .collect()
    }

    #[test]
    fn blocked_matches_reference() {
        for (m, n, k) in [(1, 1, 1), (7, 9, 33), (65, 129, 70)] {
            let a = fill(m * k, 3);
            let b = fill(k * n, 11);
            let mut want = vec![0i32; m * n];
            let mut got = vec![0i32; m * n];
            gemm_i8_reference(m, n, k, &a, &b, &mut want).unwrap();
            gemm_i8(m, n, k, &a, &b, &mut got).unwrap();
            assert_eq!(want, got, "shape {m}x{n}x{k}");
        }
    }

    #[test]
    fn saturating_inputs_accumulate_exactly() {
        let a = vec![-128i8; 4];
        let b = vec![-128i8; 4];
        let mut d = vec![0i32; 4];
        gemm_i8(2, 2, 2, &a, &b, &mut d).unwrap();
        assert_eq!(d, vec![2 * 128 * 128; 4]);
    }

    #[test]
    fn short_buffer_is_rejected() {
        let mut d = vec![0i32; 3];
        assert!(matches!(
            gemm_i8(2, 2, 2, &[0; 4], &[0; 4], &mut d),
            Err(ComputeError::BufferTooSmall { operand: "D", .. })
        ));
    }
}
