//! Shape-aware backend dispatch over the three-tier kernel ladder:
//! naive → blocked → blocked+SIMD.
//!
//! The packed-panel tiers pay a fixed toll per call — panel packing,
//! the rayon fork/join, and per-tile bookkeeping — that their cache
//! and vector wins only repay once the problem is large enough. Below
//! that crossover the plain triple loop is *faster* (the `perf`
//! experiment's `BENCH_hotpaths.json` showed `sgemm_blocked` losing to
//! `sgemm_naive` at N = 256 on one thread before this dispatch
//! existed). [`Auto`] closes that gap: it compares the problem's
//! geometric-mean dimension `∛(m·n·k)` against a crossover edge and
//! routes small problems to [`Naive`], large ones to the top tier.
//!
//! The top tier is [`Simd`] when the [`crate::SIMD_ENV`] escape hatch
//! leaves it enabled *and* the dtype pairing has a native SIMD kernel
//! ([`Simd::supports`]); otherwise [`Blocked`]. Half-precision
//! *accumulation* (`CT ∈ {F16, Bf16}`) therefore always lands on
//! [`Blocked`] above the edge: those combos only appear in parity
//! tests, so the edge is calibrated for the f32/f64 tiers the library
//! and solver actually run hot.
//!
//! Routing is bitwise-invisible: every tier matches [`Naive`] bit for
//! bit on every dtype triple (the `compute_parity` suite proves it),
//! so the dispatch can only change *time*, never results.
//!
//! The default edge is tier- and thread-aware — the SIMD microkernel
//! amortizes its packing toll at a much smaller N than the scalar
//! blocked kernel, and both amortize sooner when a real rayon pool
//! parallelizes them — and the [`CROSSOVER_ENV`] variable overrides
//! the default for calibration sweeps. The `mc-blas` plan selector
//! re-exports this dispatch as its host-side analogue
//! (`mc_blas::select::host_gemm_backend`), keeping the library's host
//! loops and the bench harness on one policy.

use mc_types::Real;

use crate::params::{ComputeError, GemmParams};
use crate::{prof, Blocked, MatMul, Naive, Simd};

/// Environment variable overriding the crossover edge (a plain integer,
/// interpreted as the N of an N³ problem at the naive/top-tier
/// boundary).
pub const CROSSOVER_ENV: &str = "MC_GEMM_CROSSOVER";

/// Default crossover edge for a rayon pool of `threads` workers, for
/// the tier ladder currently in force.
///
/// With the SIMD tier enabled and the vector unit present, the
/// microkernel's packing toll is repaid almost immediately: the
/// calibration sweep (`examples/calibrate.rs`) has naive ahead at
/// N = 32 and the microkernel ahead 2× by N = 48 on one thread, so
/// the single-thread edge sits at 40; a real pool amortizes the
/// single fork/join sooner still. Without the SIMD tier (no AVX2, or
/// `MC_GEMM_SIMD=off`) the scalar blocked kernel's historical edges
/// apply: naive stays ahead through N = 256 single-threaded and the
/// pooled edge sits at 128.
pub fn default_crossover(threads: usize) -> usize {
    if Simd::enabled_from_env() && Simd::vector_available() {
        if threads > 1 {
            32
        } else {
            40
        }
    } else if threads > 1 {
        128
    } else {
        320
    }
}

/// The parallelism the packed tiers can actually exploit: the rayon
/// pool size capped by the machine's core count. Configuring a
/// 4-worker pool on a single core oversubscribes it — the fork/join
/// toll is paid but nothing runs concurrently — so the crossover must
/// not drop to the pooled edge just because the pool is nominally
/// larger.
pub fn effective_parallelism() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    rayon::current_num_threads().min(cores)
}

/// The crossover edge currently in force: [`CROSSOVER_ENV`] when set
/// and parseable, else [`default_crossover`] at the live
/// [`effective_parallelism`].
pub fn crossover_from_env() -> usize {
    std::env::var(CROSSOVER_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| default_crossover(effective_parallelism()))
}

/// The shape-aware dispatching backend.
#[derive(Clone, Copy, Debug)]
pub struct Auto {
    crossover_n: usize,
    simd: Option<Simd>,
}

impl Auto {
    /// Dispatcher with an explicit crossover edge (the selector's
    /// calibrated value, or a sweep point); the SIMD tier follows
    /// [`crate::SIMD_ENV`].
    pub fn with_crossover(crossover_n: usize) -> Self {
        Auto {
            crossover_n,
            simd: Simd::enabled_from_env().then(Simd::from_env),
        }
    }

    /// Dispatcher with the environment/thread-derived edge
    /// ([`crossover_from_env`]).
    pub fn from_env() -> Self {
        Auto::with_crossover(crossover_from_env())
    }

    /// Removes the SIMD tier from this dispatcher regardless of the
    /// environment (sweeps that want the scalar ladder).
    pub fn without_simd(mut self) -> Self {
        self.simd = None;
        self
    }

    /// The crossover edge this dispatcher uses.
    pub fn crossover_n(&self) -> usize {
        self.crossover_n
    }

    /// Whether the SIMD tier sits at the top of this dispatcher's
    /// ladder (it still requires [`Simd::supports`] per dtype pairing).
    pub fn simd_enabled(&self) -> bool {
        self.simd.is_some()
    }

    /// Whether a problem routes to the naive loop: true when the work
    /// volume `m·n·k` is at most `crossover_n³` (the geometric-mean
    /// test, so a 1024×1024×8 sliver counts as small, not large).
    pub fn routes_to_naive(&self, params: &GemmParams) -> bool {
        let work = params.m as u128 * params.n as u128 * params.k as u128;
        let edge = self.crossover_n as u128;
        work <= edge.saturating_mul(edge).saturating_mul(edge)
    }

    /// The name of the backend a problem with this dtype pairing
    /// dispatches to: `naive`, `blocked`, or `simd`.
    pub fn routed_name<AB: Real, CT: Real>(&self, params: &GemmParams) -> &'static str {
        if self.routes_to_naive(params) {
            "naive"
        } else if self.simd.is_some() && Simd::supports::<AB, CT>() {
            "simd"
        } else {
            "blocked"
        }
    }
}

impl Default for Auto {
    fn default() -> Self {
        Auto::from_env()
    }
}

impl MatMul for Auto {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn gemm<AB, CD, CT>(
        &self,
        params: &GemmParams,
        a: &[AB],
        b: &[AB],
        c: &[CD],
        d: &mut [CD],
    ) -> Result<(), ComputeError>
    where
        AB: Real,
        CD: Real,
        CT: Real,
    {
        // Host profiling: when the calling thread is attached to a
        // live session, the dispatch opens a region around the routed
        // call (an untraced run pays only the `active()` check).
        let token = prof::active().then(|| {
            prof::region_start(
                self.routed_name::<AB, CT>(params),
                params.m,
                params.n,
                params.k,
                self.crossover_n,
                self.simd.is_some(),
            )
        });
        let result = if self.routes_to_naive(params) {
            let t0 = token.as_ref().map(|_| prof::now_s());
            let r = Naive.gemm::<AB, CD, CT>(params, a, b, c, d);
            if let Some(t0) = t0 {
                prof::phase(
                    prof::current_region(),
                    prof::HostPhase::Compute,
                    prof::Lane::Call(prof::call_lane()),
                    t0,
                );
            }
            r
        } else {
            match self.simd {
                Some(simd) if Simd::supports::<AB, CT>() => {
                    simd.gemm::<AB, CD, CT>(params, a, b, c, d)
                }
                _ => Blocked.gemm::<AB, CD, CT>(params, a, b, c, d),
            }
        };
        if let Some(token) = token {
            prof::region_end(token);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_uses_the_geometric_mean() {
        let auto = Auto::with_crossover(320);
        assert!(auto.routes_to_naive(&GemmParams::new(256, 256, 256)));
        assert!(!auto.routes_to_naive(&GemmParams::new(512, 512, 512)));
        // A thin sliver with one huge dimension still counts as small.
        assert!(auto.routes_to_naive(&GemmParams::new(4096, 16, 16)));
        // Exactly at the edge: naive (the toll is only repaid beyond it).
        assert!(auto.routes_to_naive(&GemmParams::new(320, 320, 320)));
    }

    #[test]
    fn default_edges_tighten_with_parallelism_and_simd() {
        // Regardless of the ladder in force, more workers mean an
        // earlier hand-off, and the edge always covers tiny problems.
        assert!(default_crossover(4) < default_crossover(1));
        assert!(default_crossover(1) >= 32, "edge covers tiny problems");
        if Simd::enabled_from_env() && Simd::vector_available() {
            assert!(
                default_crossover(1) <= 96,
                "SIMD tier repays its toll well before the scalar edge"
            );
        } else {
            assert!(
                default_crossover(1) > 256,
                "1-thread scalar edge covers N=256"
            );
            assert!(
                default_crossover(4) < 256,
                "pooled scalar edge releases N=256"
            );
        }
    }

    #[test]
    fn effective_parallelism_never_exceeds_the_machine() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(effective_parallelism() <= cores);
        assert!(effective_parallelism() >= 1);
    }

    #[test]
    fn routed_name_follows_the_ladder() {
        let auto = Auto::with_crossover(64);
        assert_eq!(
            auto.routed_name::<f32, f32>(&GemmParams::new(16, 16, 16)),
            "naive"
        );
        let big = GemmParams::new(256, 256, 256);
        if auto.simd_enabled() {
            assert_eq!(auto.routed_name::<f32, f32>(&big), "simd");
            // f64 inputs cannot take the f32 SIMD path.
            assert_eq!(auto.routed_name::<f64, f32>(&big), "blocked");
        }
        assert_eq!(auto.without_simd().routed_name::<f32, f32>(&big), "blocked");
    }

    #[test]
    fn all_routes_match_bitwise() {
        for n in [24usize, 96] {
            let params = GemmParams::new(n, n, n).with_scaling(0.5, 0.25);
            let a: Vec<f32> = (0..n * n).map(|i| ((i % 13) as f32) - 6.0).collect();
            let b: Vec<f32> = (0..n * n).map(|i| ((i % 7) as f32) - 3.0).collect();
            let c: Vec<f32> = (0..n * n).map(|i| (i % 5) as f32).collect();
            let mut via_naive = vec![0.0f32; n * n];
            let mut via_top = vec![0.0f32; n * n];
            let mut via_blocked = vec![0.0f32; n * n];
            Auto::with_crossover(usize::MAX)
                .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut via_naive)
                .unwrap();
            Auto::with_crossover(0)
                .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut via_top)
                .unwrap();
            Auto::with_crossover(0)
                .without_simd()
                .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut via_blocked)
                .unwrap();
            assert_eq!(via_naive, via_top, "N={n}");
            assert_eq!(via_naive, via_blocked, "N={n}");
        }
    }
}
