//! Shape-aware backend dispatch: naive loop below the crossover,
//! blocked kernel above it.
//!
//! The blocked kernel pays a fixed toll per call — panel packing, the
//! rayon fork/join, and per-tile bookkeeping — that the cache savings
//! only repay once the problem is large enough. Below that crossover
//! the plain triple loop is *faster* (the `perf` experiment's
//! `BENCH_hotpaths.json` showed `sgemm_blocked` losing to
//! `sgemm_naive` at N = 256 on one thread before this dispatch
//! existed). [`Auto`] closes that gap: it compares the problem's
//! geometric-mean dimension `∛(m·n·k)` against a crossover edge and
//! routes small problems to [`Naive`], large ones to [`Blocked`].
//!
//! Routing is bitwise-invisible: [`Blocked`] matches [`Naive`] bit for
//! bit on every dtype triple (the `compute_parity` suite proves it), so
//! the dispatch can only change *time*, never results.
//!
//! The default edge is thread-aware — the blocked kernel amortizes its
//! toll sooner when the rayon pool parallelizes it — and the
//! [`CROSSOVER_ENV`] variable overrides both defaults for calibration
//! sweeps. The `mc-blas` plan selector re-exports this dispatch as its
//! host-side analogue (`mc_blas::select::host_gemm_backend`), keeping
//! the library's host loops and the bench harness on one policy.

use mc_types::Real;

use crate::params::{ComputeError, GemmParams};
use crate::{Blocked, MatMul, Naive};

/// Environment variable overriding the crossover edge (a plain integer,
/// interpreted as the N of an N³ problem at the naive/blocked boundary).
pub const CROSSOVER_ENV: &str = "MC_GEMM_CROSSOVER";

/// Default crossover edge for a rayon pool of `threads` workers.
///
/// Single-threaded, the blocked kernel's packing toll keeps the naive
/// loop ahead through N = 256 and behind by N = 512; the edge sits
/// between them. With a real pool the fork/join amortizes much sooner.
pub fn default_crossover(threads: usize) -> usize {
    if threads > 1 {
        128
    } else {
        320
    }
}

/// The parallelism the blocked kernel can actually exploit: the rayon
/// pool size capped by the machine's core count. Configuring a 4-worker
/// pool on a single core oversubscribes it — the fork/join toll is paid
/// but nothing runs concurrently — so the crossover must not drop to
/// the pooled edge just because the pool is nominally larger.
pub fn effective_parallelism() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    rayon::current_num_threads().min(cores)
}

/// The crossover edge currently in force: [`CROSSOVER_ENV`] when set
/// and parseable, else [`default_crossover`] at the live
/// [`effective_parallelism`].
pub fn crossover_from_env() -> usize {
    std::env::var(CROSSOVER_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| default_crossover(effective_parallelism()))
}

/// The shape-aware dispatching backend.
#[derive(Clone, Copy, Debug)]
pub struct Auto {
    crossover_n: usize,
}

impl Auto {
    /// Dispatcher with an explicit crossover edge (the selector's
    /// calibrated value, or a sweep point).
    pub fn with_crossover(crossover_n: usize) -> Self {
        Auto { crossover_n }
    }

    /// Dispatcher with the environment/thread-derived edge
    /// ([`crossover_from_env`]).
    pub fn from_env() -> Self {
        Auto::with_crossover(crossover_from_env())
    }

    /// The crossover edge this dispatcher uses.
    pub fn crossover_n(&self) -> usize {
        self.crossover_n
    }

    /// Whether a problem routes to the naive loop: true when the work
    /// volume `m·n·k` is at most `crossover_n³` (the geometric-mean
    /// test, so a 1024×1024×8 sliver counts as small, not large).
    pub fn routes_to_naive(&self, params: &GemmParams) -> bool {
        let work = params.m as u128 * params.n as u128 * params.k as u128;
        let edge = self.crossover_n as u128;
        work <= edge.saturating_mul(edge).saturating_mul(edge)
    }
}

impl Default for Auto {
    fn default() -> Self {
        Auto::from_env()
    }
}

impl MatMul for Auto {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn gemm<AB, CD, CT>(
        &self,
        params: &GemmParams,
        a: &[AB],
        b: &[AB],
        c: &[CD],
        d: &mut [CD],
    ) -> Result<(), ComputeError>
    where
        AB: Real,
        CD: Real,
        CT: Real,
    {
        if self.routes_to_naive(params) {
            Naive.gemm::<AB, CD, CT>(params, a, b, c, d)
        } else {
            Blocked.gemm::<AB, CD, CT>(params, a, b, c, d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_uses_the_geometric_mean() {
        let auto = Auto::with_crossover(320);
        assert!(auto.routes_to_naive(&GemmParams::new(256, 256, 256)));
        assert!(!auto.routes_to_naive(&GemmParams::new(512, 512, 512)));
        // A thin sliver with one huge dimension still counts as small.
        assert!(auto.routes_to_naive(&GemmParams::new(4096, 16, 16)));
        // Exactly at the edge: naive (the toll is only repaid beyond it).
        assert!(auto.routes_to_naive(&GemmParams::new(320, 320, 320)));
    }

    #[test]
    fn multithreaded_default_routes_256_to_blocked() {
        assert!(default_crossover(1) > 256, "1-thread edge covers N=256");
        assert!(default_crossover(4) < 256, "pooled edge releases N=256");
    }

    #[test]
    fn effective_parallelism_never_exceeds_the_machine() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(effective_parallelism() <= cores);
        assert!(effective_parallelism() >= 1);
    }

    #[test]
    fn both_routes_match_bitwise() {
        for n in [24usize, 96] {
            let params = GemmParams::new(n, n, n).with_scaling(0.5, 0.25);
            let a: Vec<f32> = (0..n * n).map(|i| ((i % 13) as f32) - 6.0).collect();
            let b: Vec<f32> = (0..n * n).map(|i| ((i % 7) as f32) - 3.0).collect();
            let c: Vec<f32> = (0..n * n).map(|i| (i % 5) as f32).collect();
            let mut via_naive = vec![0.0f32; n * n];
            let mut via_blocked = vec![0.0f32; n * n];
            Auto::with_crossover(usize::MAX)
                .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut via_naive)
                .unwrap();
            Auto::with_crossover(0)
                .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut via_blocked)
                .unwrap();
            assert_eq!(via_naive, via_blocked, "N={n}");
        }
    }
}
