//! Chrome trace-event JSON export.
//!
//! Produces the "JSON object format" of the Trace Event specification:
//! `{"traceEvents": [...], "displayTimeUnit": "ms"}` with `ph: "X"`
//! complete events for spans, `ph: "i"` instants, `ph: "C"` counters,
//! and `ph: "M"` metadata naming every process (die) and thread
//! (pipeline lane). The output loads directly in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.

use serde::Value;

use crate::event::{device_label, ArgValue, TraceEvent, Track};

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn args_value(args: &[(String, ArgValue)]) -> Value {
    Value::Object(
        args.iter()
            .map(|(k, v)| {
                let value = match v {
                    ArgValue::U64(u) => Value::U64(*u),
                    ArgValue::F64(f) => Value::F64(*f),
                    ArgValue::Str(s) => Value::Str(s.clone()),
                };
                (k.clone(), value)
            })
            .collect(),
    )
}

fn metadata(name: &str, pid: u32, tid: Option<u32>, value: &str) -> Value {
    let mut pairs = vec![
        ("name", Value::Str(name.to_owned())),
        ("ph", Value::Str("M".to_owned())),
        ("pid", Value::U64(u64::from(pid))),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid", Value::U64(u64::from(tid))));
    }
    pairs.push(("args", obj(vec![("name", Value::Str(value.to_owned()))])));
    obj(pairs)
}

/// Renders events as a Chrome trace-event JSON document.
///
/// Counters render on their own per-process counter tracks; spans get
/// one thread per [`Track`] lane, named via metadata events so Perfetto
/// shows `cu0 matrix pipe` instead of a bare thread id.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out: Vec<Value> = Vec::new();

    // Name every process and lane up front.
    let mut pids: Vec<u32> = events.iter().map(TraceEvent::device).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in &pids {
        out.push(metadata("process_name", *pid, None, &device_label(*pid)));
    }
    let mut lanes: Vec<(u32, Track)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span(s) => Some((s.device, s.track)),
            TraceEvent::Instant { device, track, .. } => Some((*device, *track)),
            TraceEvent::Counter { .. } => None,
        })
        .collect();
    lanes.sort_by_key(|(pid, track)| (*pid, track.tid()));
    lanes.dedup();
    for (pid, track) in &lanes {
        out.push(metadata(
            "thread_name",
            *pid,
            Some(track.tid()),
            &track.label(),
        ));
    }

    for event in events {
        match event {
            TraceEvent::Span(s) => out.push(obj(vec![
                ("name", Value::Str(s.name.clone())),
                ("cat", Value::Str(s.category.as_str().to_owned())),
                ("ph", Value::Str("X".to_owned())),
                ("ts", Value::F64(s.t0_us)),
                ("dur", Value::F64(s.dur_us)),
                ("pid", Value::U64(u64::from(s.device))),
                ("tid", Value::U64(u64::from(s.track.tid()))),
                ("args", args_value(&s.args)),
            ])),
            TraceEvent::Instant {
                name,
                category,
                device,
                track,
                t_us,
                args,
            } => out.push(obj(vec![
                ("name", Value::Str(name.clone())),
                ("cat", Value::Str(category.as_str().to_owned())),
                ("ph", Value::Str("i".to_owned())),
                ("s", Value::Str("p".to_owned())),
                ("ts", Value::F64(*t_us)),
                ("pid", Value::U64(u64::from(*device))),
                ("tid", Value::U64(u64::from(track.tid()))),
                ("args", args_value(args)),
            ])),
            TraceEvent::Counter {
                name,
                device,
                t_us,
                value,
            } => out.push(obj(vec![
                ("name", Value::Str(name.clone())),
                ("ph", Value::Str("C".to_owned())),
                ("ts", Value::F64(*t_us)),
                ("pid", Value::U64(u64::from(*device))),
                ("args", obj(vec![("value", Value::F64(*value))])),
            ])),
        }
    }

    let root = obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", Value::Str("ms".to_owned())),
    ]);
    serde_json::to_string(&root).expect("trace documents are always serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, SpanEvent};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Span(SpanEvent {
                name: "gemm".into(),
                category: Category::Kernel,
                device: 0,
                track: Track::Launch,
                t0_us: 0.0,
                dur_us: 100.0,
                args: vec![("flops".into(), ArgValue::U64(1 << 20))],
            }),
            TraceEvent::Span(SpanEvent {
                name: "matrix busy".into(),
                category: Category::Pipeline,
                device: 0,
                track: Track::MatrixPipe(0),
                t0_us: 0.0,
                dur_us: 80.0,
                args: Vec::new(),
            }),
            TraceEvent::Counter {
                name: "package_w".into(),
                device: crate::event::PACKAGE_DEVICE,
                t_us: 0.0,
                value: 412.5,
            },
            TraceEvent::Instant {
                name: "governor clamp".into(),
                category: Category::Power,
                device: crate::event::PACKAGE_DEVICE,
                track: Track::Power,
                t_us: 1.0,
                args: vec![("clock_scale".into(), ArgValue::F64(0.84))],
            },
        ]
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let json = chrome_trace_json(&sample_events());
        let doc: Value = serde_json::from_str(&json).expect("exporter emits valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process names + 3 thread names + 4 events.
        assert_eq!(events.len(), 9);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 5);
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"C"));
        assert!(phases.contains(&"i"));
    }

    #[test]
    fn processes_and_lanes_are_named() {
        let json = chrome_trace_json(&sample_events());
        assert!(json.contains("\"die0\""));
        assert!(json.contains("\"package\""));
        assert!(json.contains("cu0 matrix pipe"));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn string_escaping_round_trips_hostile_names_and_args() {
        // Kernel names flow from user-controlled `KernelDesc::name`
        // straight into JSON string literals — quotes, backslashes,
        // newlines, and control characters must all survive a parse.
        let hostile = "gemm \"quoted\" \\back\\slash\\ \nnewline \ttab \u{1} ctrl \u{7f}";
        let arg = "path\\to\\\"kernel\"\r\n\u{0}";
        let events = vec![TraceEvent::Span(SpanEvent {
            name: hostile.to_owned(),
            category: Category::Kernel,
            device: 0,
            track: Track::Launch,
            t0_us: 0.0,
            dur_us: 1.0,
            args: vec![("label".into(), ArgValue::Str(arg.to_owned()))],
        })];
        let json = chrome_trace_json(&events);
        let doc: Value = serde_json::from_str(&json).expect("escaped output stays valid JSON");
        let parsed = doc.pointer("/traceEvents").unwrap().as_array().unwrap();
        let span = parsed
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("name").and_then(Value::as_str), Some(hostile));
        assert_eq!(
            span.pointer("/args/label").and_then(Value::as_str),
            Some(arg)
        );
        // Raw (unescaped) control bytes must never reach the document.
        assert!(!json.contains('\n'), "raw newline leaked into JSON text");
        assert!(!json.contains('\u{1}'), "raw control byte leaked");
    }

    #[test]
    fn span_fields_land_in_chrome_keys() {
        let json = chrome_trace_json(&sample_events());
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("gemm"))
            .unwrap();
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(100.0));
        assert_eq!(span.get("cat").unwrap().as_str(), Some("kernel"));
        assert_eq!(
            span.pointer("/args/flops").and_then(Value::as_u64),
            Some(1 << 20)
        );
    }
}
