//! OpenMetrics / Prometheus text exposition of a [`MetricsRegistry`].
//!
//! Every metric renders as one gauge family with unit-correct naming
//! derived from its [`Unit`]: dotted registry names are sanitized to
//! the OpenMetrics grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and suffixed
//! with the unit token ([`Unit::openmetrics_token`]) unless the name
//! already carries it, then emitted as
//!
//! ```text
//! # TYPE power_avg_w_watts gauge
//! # UNIT power_avg_w_watts watts
//! power_avg_w_watts 412.5
//! ...
//! # EOF
//! ```
//!
//! The output is a complete exposition (terminated by `# EOF`) suitable
//! for a Prometheus file-based scrape or `promtool check metrics`.
//! Naming conventions are documented in `docs/OBSERVABILITY.md`.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;

/// Sanitizes one registry metric name into the OpenMetrics name
/// grammar: every character outside `[a-zA-Z0-9_:]` becomes `_`, and a
/// leading digit gets a `_` prefix.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Derives the exposition family name for a registry name/unit pair:
/// sanitized, unit-token suffixed unless already present, collision
/// disambiguated against `used` with `_2`, `_3`, … suffixes.
fn family_name(raw: &str, token: Option<&'static str>, used: &mut BTreeSet<String>) -> String {
    let mut name = sanitize(raw);
    if let Some(token) = token {
        let suffix = format!("_{token}");
        if !name.ends_with(&suffix) {
            name.push_str(&suffix);
        }
    }
    if used.contains(&name) {
        let mut n = 2usize;
        while used.contains(&format!("{name}_{n}")) {
            n += 1;
        }
        name = format!("{name}_{n}");
    }
    used.insert(name.clone());
    name
}

/// Renders one `le` label value: finite bounds print as their shortest
/// `f64` form, the catch-all bucket as `+Inf` (the literal the
/// OpenMetrics grammar requires).
fn le_label(bound: Option<f64>) -> String {
    match bound {
        Some(b) => format!("{b}"),
        None => "+Inf".to_owned(),
    }
}

/// Renders a registry snapshot in OpenMetrics text exposition format.
///
/// Gauge metrics are emitted in registry (name) order, each as a
/// `gauge` family with `# TYPE` metadata, `# UNIT` metadata when the
/// unit has an OpenMetrics token, and a single unlabelled sample.
/// Registered [`crate::Histogram`]s follow as proper `histogram`
/// families: cumulative `_bucket{le="..."}` samples ending with the
/// mandatory `+Inf` bucket (whose value equals `_count`), then `_sum`
/// and `_count`. Distinct registry names that sanitize to the same
/// exposition name are disambiguated with a numeric suffix so the
/// output never repeats a family name (which the format forbids).
pub fn openmetrics(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    for m in registry.iter() {
        let token = m.unit.openmetrics_token();
        let name = family_name(&m.name, token, &mut used);
        let _ = writeln!(out, "# TYPE {name} gauge");
        if let Some(token) = token {
            let _ = writeln!(out, "# UNIT {name} {token}");
        }
        let _ = writeln!(out, "{name} {}", m.value);
    }
    for (raw, hist) in registry.histograms() {
        let token = hist.unit().openmetrics_token();
        let name = family_name(raw, token, &mut used);
        let _ = writeln!(out, "# TYPE {name} histogram");
        if let Some(token) = token {
            let _ = writeln!(out, "# UNIT {name} {token}");
        }
        let cumulative = hist.cumulative_counts();
        for (i, count) in cumulative.iter().enumerate() {
            let bound = hist.bounds().get(i).copied();
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {count}", le_label(bound));
        }
        let _ = writeln!(out, "{name}_sum {}", hist.sum());
        let _ = writeln!(out, "{name}_count {}", hist.count());
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Unit;

    #[test]
    fn exposition_has_type_unit_sample_and_eof() {
        let mut reg = MetricsRegistry::new();
        reg.set("power.avg_w", Unit::Watts, 412.5);
        reg.set("counters.SQ_WAVES", Unit::Count, 440.0);
        reg.set("sim.matrix_occupancy", Unit::Ratio, 0.91);
        let text = openmetrics(&reg);

        assert!(text.contains("# TYPE power_avg_w_watts gauge"), "{text}");
        assert!(text.contains("# UNIT power_avg_w_watts watts"), "{text}");
        assert!(text.contains("\npower_avg_w_watts 412.5\n"), "{text}");
        // Counts carry no unit token and no UNIT line.
        assert!(text.contains("# TYPE counters_SQ_WAVES gauge"), "{text}");
        assert!(!text.contains("# UNIT counters_SQ_WAVES"), "{text}");
        assert!(text.contains("counters_SQ_WAVES 440"), "{text}");
        assert!(text.contains("sim_matrix_occupancy_ratio 0.91"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
    }

    #[test]
    fn unit_suffix_not_duplicated_when_name_already_ends_with_token() {
        let mut reg = MetricsRegistry::new();
        reg.set("profiler.wall.seconds", Unit::Seconds, 1.25);
        let text = openmetrics(&reg);
        assert!(text.contains("profiler_wall_seconds 1.25"), "{text}");
        assert!(!text.contains("seconds_seconds"), "{text}");
    }

    #[test]
    fn sanitization_collisions_are_disambiguated() {
        let mut reg = MetricsRegistry::new();
        reg.set("a.b", Unit::Count, 1.0);
        reg.set("a_b", Unit::Count, 2.0);
        let text = openmetrics(&reg);
        // Name order: `a.b` claims `a_b` first, `a_b` gets `_2`.
        assert!(text.contains("\na_b 1\n"), "{text}");
        assert!(text.contains("\na_b_2 2\n"), "{text}");
    }

    #[test]
    fn empty_registry_is_a_valid_exposition() {
        assert_eq!(openmetrics(&MetricsRegistry::new()), "# EOF\n");
    }

    #[test]
    fn histogram_families_render_golden_text() {
        let mut reg = MetricsRegistry::new();
        reg.set("power.avg_w", Unit::Watts, 412.5);
        let mut h = crate::Histogram::with_bounds(Unit::Seconds, vec![0.001, 0.01, 0.1]);
        h.record(0.0004); // le 0.001
        h.record(0.002); // le 0.01
        h.record(0.003); // le 0.01
        h.record(5.0); // +Inf
        reg.register_histogram("round.latency_s", h);
        let text = openmetrics(&reg);

        // Gauges first, then histogram families, then EOF — exactly.
        let golden = "\
# TYPE power_avg_w_watts gauge
# UNIT power_avg_w_watts watts
power_avg_w_watts 412.5
# TYPE round_latency_s_seconds histogram
# UNIT round_latency_s_seconds seconds
round_latency_s_seconds_bucket{le=\"0.001\"} 1
round_latency_s_seconds_bucket{le=\"0.01\"} 3
round_latency_s_seconds_bucket{le=\"0.1\"} 3
round_latency_s_seconds_bucket{le=\"+Inf\"} 4
round_latency_s_seconds_sum 5.0054
round_latency_s_seconds_count 4
# EOF
";
        assert_eq!(text, golden);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_consistent() {
        let mut reg = MetricsRegistry::new();
        let mut h = crate::Histogram::latency_seconds();
        for i in 1..=50u64 {
            h.record(i as f64 * 1e-6);
        }
        reg.register_histogram("lat", h);
        let text = openmetrics(&reg);
        // +Inf bucket value must equal _count, and bucket values must
        // never decrease in le order.
        assert!(text.contains("_bucket{le=\"+Inf\"} 50"), "{text}");
        assert!(text.contains("lat_seconds_count 50"), "{text}");
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-cumulative bucket line: {line}");
            last = v;
        }
    }

    #[test]
    fn every_unit_token_matches_the_grammar() {
        for unit in [
            Unit::Count,
            Unit::Cycles,
            Unit::Seconds,
            Unit::Watts,
            Unit::Joules,
            Unit::Bytes,
            Unit::Flops,
            Unit::FlopsPerSecond,
            Unit::Hertz,
            Unit::Ratio,
            Unit::FlopsPerJoule,
        ] {
            if let Some(token) = unit.openmetrics_token() {
                assert!(token.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            }
        }
    }
}
