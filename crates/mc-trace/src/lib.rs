//! Execution tracing for the Matrix Core simulator stack.
//!
//! The paper's methodology is observability: rocprof counter deltas
//! (Eq. 1) and 100 ms SMI power polling drive every figure. This crate
//! is the simulator-side equivalent — a low-overhead event stream that
//! turns end-of-launch aggregates into inspectable timelines:
//!
//! - [`TraceSink`] / [`RingSink`]: a bounded, thread-safe ring-buffer
//!   sink with a no-op default, so untraced runs pay nothing.
//! - [`TraceEvent`] / [`SpanEvent`]: timestamped spans (plan, kernel,
//!   dispatch round, per-CU pipeline busy, memory window), instants
//!   (DVFS clamps), and counter samples (watts, occupancy), tagged
//!   with device/die/CU ids.
//! - [`chrome_trace_json`]: Chrome trace-event JSON, loadable in
//!   Perfetto or `chrome://tracing`, one track per CU pipeline.
//! - [`folded_stacks`]: folded-stack flamegraph lines for
//!   `flamegraph.pl` / inferno / speedscope.
//! - [`check_invariants`]: structural self-consistency checks (spans
//!   nest, pipeline busy ≤ wall clock, rounds tile the kernel).
//! - [`MetricsRegistry`]: one named-metric snapshot API with typed
//!   [`Unit`]s, unifying `HwCounters`, SMI power stats, and profiler
//!   timings.
//! - [`Histogram`]: log-bucketed HDR-style streaming histograms with
//!   interpolated quantiles, registered alongside gauges for
//!   distribution metrics (round latency, power samples, model drift).
//! - [`openmetrics`]: OpenMetrics / Prometheus text exposition of a
//!   registry snapshot — gauge families plus proper `histogram`
//!   families (cumulative `le` buckets, `+Inf`, `_sum`/`_count`) —
//!   with unit-correct name suffixes derived from [`Unit`].
//!
//! See `docs/OBSERVABILITY.md` for the event schema and naming
//! conventions.

#![deny(missing_docs)]

mod chrome;
mod event;
mod exposition;
mod flame;
mod histogram;
mod metrics;
mod sink;
mod validate;

pub use chrome::chrome_trace_json;
pub use event::{
    device_label, ArgValue, Category, SpanEvent, TraceEvent, Track, HOST_DEVICE, PACKAGE_DEVICE,
};
pub use exposition::openmetrics;
pub use flame::folded_stacks;
pub use histogram::{Histogram, MAX_HISTOGRAM_BUCKETS};
pub use metrics::{Metric, MetricsRegistry, Unit};
pub use sink::{NullSink, RingSink, TraceSink, DEFAULT_RING_CAPACITY};
pub use validate::{check_invariants, Violation};
