//! The event model: timestamped spans, instants, and counter samples.
//!
//! Timestamps and durations are in **microseconds** of simulated time —
//! the native unit of the Chrome trace-event format, so the exporter
//! never rescales. Every event carries a `device` (die index; becomes
//! the trace "process") and spans/instants carry a [`Track`] (becomes
//! the trace "thread"), so one launch decomposes into one lane per CU
//! pipeline exactly like `rocprof --hip-trace` output does on hardware.

use serde::{Deserialize, Serialize};

/// Pseudo-device id used for package-level telemetry (power, governor)
/// that is not attributable to a single die. The Chrome exporter names
/// this process `package`.
pub const PACKAGE_DEVICE: u32 = 999;

/// Pseudo-device id for the **host** execution plane: the CPU-side GEMM
/// tiers (naive/blocked/SIMD), their rayon workers, and the packing
/// pool. Host spans render as their own trace process (`host`) so a
/// unified export shows the host timeline beside the simulated dies.
pub const HOST_DEVICE: u32 = 998;

/// What layer of the execution hierarchy an event describes. Categories
/// form a strict nesting order (see [`Category::depth`]): plan spans
/// contain kernel spans, kernel spans contain dispatch rounds, rounds
/// contain pipeline busy intervals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Category {
    /// A library-level plan (mc-blas planner output) around a launch.
    Plan,
    /// One kernel launch on one die.
    Kernel,
    /// One dispatch round (the paper's §V-B "phase").
    Round,
    /// Busy interval of one CU pipeline (Matrix Core, SIMD issue, LDS).
    Pipeline,
    /// A memory-system transaction window (HBM transfer time).
    Memory,
    /// A power/DVFS event (governor clamp, power-state change).
    Power,
    /// One host-side GEMM call (the region a tier dispatch covers),
    /// on the [`HOST_DEVICE`] plane.
    HostRegion,
    /// One named phase inside a host region (pack-A, pack-B,
    /// microkernel, epilogue, fan-out, naive compute).
    HostPhase,
}

impl Category {
    /// Stable lowercase name (the Chrome `cat` field).
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Plan => "plan",
            Category::Kernel => "kernel",
            Category::Round => "round",
            Category::Pipeline => "pipeline",
            Category::Memory => "memory",
            Category::Power => "power",
            Category::HostRegion => "host-region",
            Category::HostPhase => "host-phase",
        }
    }

    /// Nesting depth: a span may only be contained by spans of smaller
    /// depth. `Memory` windows hang directly off kernels. Host regions
    /// sit at kernel depth on their own device, host phases inside
    /// them — so the flamegraph folder parents host phases under their
    /// region exactly like rounds under a kernel.
    pub fn depth(self) -> u8 {
        match self {
            Category::Plan => 0,
            Category::Kernel | Category::HostRegion => 1,
            Category::Round | Category::HostPhase => 2,
            Category::Pipeline | Category::Memory | Category::Power => 3,
        }
    }
}

/// The lane a span renders on: one per CU pipeline, plus device-level
/// lanes for launches, plans, memory, and power.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Track {
    /// Kernel launches and their dispatch rounds.
    Launch,
    /// Library plan windows (mc-blas).
    Plan,
    /// Matrix-Core pipeline of one CU (the engine reports the
    /// most-loaded CU of the die as CU 0).
    MatrixPipe(u32),
    /// SIMD issue-port pipeline of one CU.
    SimdPipe(u32),
    /// LDS pipeline of one CU.
    LdsPipe(u32),
    /// HBM transaction windows.
    Memory,
    /// Power/DVFS events.
    Power,
    /// A host caller thread: the thread that issued a GEMM call and
    /// runs the orchestration phases (pack-B, fan-out, epilogue).
    /// The index distinguishes concurrent caller threads.
    HostCall(u32),
    /// One host rayon worker executing packed-panel chunk work.
    HostWorker(u32),
}

impl Track {
    /// Stable thread id for the Chrome exporter. Ids group by pipeline
    /// class so Perfetto sorts the lanes in a fixed, readable order.
    pub fn tid(self) -> u32 {
        match self {
            Track::Launch => 0,
            Track::Plan => 1,
            Track::MatrixPipe(cu) => 1000 + cu,
            Track::SimdPipe(cu) => 2000 + cu,
            Track::LdsPipe(cu) => 3000 + cu,
            Track::Memory => 4000,
            Track::Power => 4500,
            // Host lanes: callers in [4800, 5000), workers above 5000.
            Track::HostCall(lane) => 4800 + lane,
            Track::HostWorker(worker) => 5000 + worker,
        }
    }

    /// Human-readable lane label (the Chrome `thread_name`).
    pub fn label(self) -> String {
        match self {
            Track::Launch => "launch".to_owned(),
            Track::Plan => "blas plan".to_owned(),
            Track::MatrixPipe(cu) => format!("cu{cu} matrix pipe"),
            Track::SimdPipe(cu) => format!("cu{cu} simd issue"),
            Track::LdsPipe(cu) => format!("cu{cu} lds"),
            Track::Memory => "hbm".to_owned(),
            Track::Power => "power".to_owned(),
            Track::HostCall(lane) => format!("host caller{lane}"),
            Track::HostWorker(worker) => format!("host worker{worker}"),
        }
    }
}

/// A structured argument value attached to a span or instant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArgValue {
    /// Unsigned integer (counts, counters, byte totals).
    U64(u64),
    /// Floating point (rates, fractions, clocks).
    F64(f64),
    /// Free-form label (bounds, strategies, mnemonics).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// A complete span: something with a beginning and a duration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Display name (kernel name, `round 2`, `matrix busy`, …).
    pub name: String,
    /// Hierarchy layer.
    pub category: Category,
    /// Die index (or [`PACKAGE_DEVICE`]).
    pub device: u32,
    /// Lane the span renders on.
    pub track: Track,
    /// Start timestamp in microseconds of simulated time.
    pub t0_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Structured arguments (`(key, value)` pairs, insertion-ordered).
    pub args: Vec<(String, ArgValue)>,
}

impl SpanEvent {
    /// End timestamp in microseconds.
    pub fn end_us(&self) -> f64 {
        self.t0_us + self.dur_us
    }
}

/// One trace event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A complete span (Chrome `ph: "X"`).
    Span(SpanEvent),
    /// A point-in-time marker (Chrome `ph: "i"`).
    Instant {
        /// Display name.
        name: String,
        /// Hierarchy layer.
        category: Category,
        /// Die index (or [`PACKAGE_DEVICE`]).
        device: u32,
        /// Lane the marker renders on.
        track: Track,
        /// Timestamp in microseconds.
        t_us: f64,
        /// Structured arguments.
        args: Vec<(String, ArgValue)>,
    },
    /// A counter sample (Chrome `ph: "C"`): watts, occupancy, clocks.
    Counter {
        /// Counter-track name (`package_w`, `matrix_occupancy`, …).
        name: String,
        /// Die index (or [`PACKAGE_DEVICE`]).
        device: u32,
        /// Timestamp in microseconds.
        t_us: f64,
        /// Sampled value.
        value: f64,
    },
}

impl TraceEvent {
    /// The device the event belongs to.
    pub fn device(&self) -> u32 {
        match self {
            TraceEvent::Span(s) => s.device,
            TraceEvent::Instant { device, .. } | TraceEvent::Counter { device, .. } => *device,
        }
    }

    /// The span payload, when this event is a span.
    pub fn as_span(&self) -> Option<&SpanEvent> {
        match self {
            TraceEvent::Span(s) => Some(s),
            _ => None,
        }
    }
}

/// Human-readable name of a trace process: dies are `die<N>`, the
/// pseudo-device [`PACKAGE_DEVICE`] is `package`, and the host plane
/// [`HOST_DEVICE`] is `host`.
pub fn device_label(device: u32) -> String {
    if device == PACKAGE_DEVICE {
        "package".to_owned()
    } else if device == HOST_DEVICE {
        "host".to_owned()
    } else {
        format!("die{device}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_nest_by_depth() {
        assert!(Category::Plan.depth() < Category::Kernel.depth());
        assert!(Category::Kernel.depth() < Category::Round.depth());
        assert!(Category::Round.depth() < Category::Pipeline.depth());
        assert_eq!(Category::Kernel.as_str(), "kernel");
        assert_eq!(Category::HostRegion.depth(), Category::Kernel.depth());
        assert!(Category::HostRegion.depth() < Category::HostPhase.depth());
        assert_eq!(Category::HostRegion.as_str(), "host-region");
        assert_eq!(Category::HostPhase.as_str(), "host-phase");
    }

    #[test]
    fn track_ids_are_distinct_per_lane() {
        let tracks = [
            Track::Launch,
            Track::Plan,
            Track::MatrixPipe(0),
            Track::SimdPipe(0),
            Track::LdsPipe(0),
            Track::Memory,
            Track::Power,
            Track::HostCall(0),
            Track::HostWorker(0),
        ];
        let mut ids: Vec<u32> = tracks.iter().map(|t| t.tid()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tracks.len());
        assert_eq!(Track::MatrixPipe(3).label(), "cu3 matrix pipe");
        assert_eq!(Track::HostWorker(2).label(), "host worker2");
        assert_eq!(Track::HostCall(0).label(), "host caller0");
    }

    #[test]
    fn events_round_trip_through_json() {
        let e = TraceEvent::Span(SpanEvent {
            name: "k".into(),
            category: Category::Kernel,
            device: 1,
            track: Track::Launch,
            t0_us: 0.5,
            dur_us: 12.25,
            args: vec![("flops".into(), ArgValue::U64(8192))],
        });
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.device(), 1);
        assert_eq!(back.as_span().unwrap().end_us(), 12.75);
    }

    #[test]
    fn device_labels() {
        assert_eq!(device_label(0), "die0");
        assert_eq!(device_label(PACKAGE_DEVICE), "package");
        assert_eq!(device_label(HOST_DEVICE), "host");
    }
}
