//! The unified metrics registry.
//!
//! `HwCounters`, SMI power statistics, and profiler wall-clock timings
//! each expose their own ad-hoc accessors. [`MetricsRegistry`] gives
//! them one snapshot surface: flat `area.metric` names (`counters.`,
//! `sim.`, `power.`, `profiler.` prefixes by convention — see
//! `docs/OBSERVABILITY.md`) mapped to a value with a typed [`Unit`].

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::histogram::Histogram;

/// Physical unit of a metric value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unit {
    /// Dimensionless count (instructions, waves, rounds).
    Count,
    /// Clock cycles.
    Cycles,
    /// Seconds.
    Seconds,
    /// Watts.
    Watts,
    /// Joules.
    Joules,
    /// Bytes.
    Bytes,
    /// Floating-point operations.
    Flops,
    /// Floating-point operations per second.
    FlopsPerSecond,
    /// Hertz.
    Hertz,
    /// Dimensionless ratio in `[0, 1]` (occupancy, utilization).
    Ratio,
    /// Floating-point operations per joule (energy efficiency; the
    /// paper's GFLOPS/W figure of merit is this value divided by 1e9).
    FlopsPerJoule,
}

impl Unit {
    /// Short display suffix (`" W"`, `" B"`, `""` for counts).
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Count => "",
            Unit::Cycles => " cyc",
            Unit::Seconds => " s",
            Unit::Watts => " W",
            Unit::Joules => " J",
            Unit::Bytes => " B",
            Unit::Flops => " flop",
            Unit::FlopsPerSecond => " flop/s",
            Unit::Hertz => " Hz",
            Unit::Ratio => "",
            Unit::FlopsPerJoule => " flop/J",
        }
    }

    /// OpenMetrics unit token (`seconds`, `watts`, …); `None` for
    /// dimensionless counts. Used by [`crate::openmetrics`] to derive
    /// unit-correct metric-name suffixes and `# UNIT` metadata.
    pub fn openmetrics_token(self) -> Option<&'static str> {
        match self {
            Unit::Count => None,
            Unit::Cycles => Some("cycles"),
            Unit::Seconds => Some("seconds"),
            Unit::Watts => Some("watts"),
            Unit::Joules => Some("joules"),
            Unit::Bytes => Some("bytes"),
            Unit::Flops => Some("flops"),
            Unit::FlopsPerSecond => Some("flops_per_second"),
            Unit::Hertz => Some("hertz"),
            Unit::Ratio => Some("ratio"),
            Unit::FlopsPerJoule => Some("flops_per_joule"),
        }
    }
}

/// One named, typed metric sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Dotted name, e.g. `counters.SQ_INSTS_MFMA` or `power.avg_w`.
    pub name: String,
    /// Physical unit of `value`.
    pub unit: Unit,
    /// The sampled value.
    pub value: f64,
}

/// A flat snapshot of named metrics with typed units.
///
/// Names are unique; [`MetricsRegistry::set`] replaces, and
/// [`MetricsRegistry::add`] accumulates into, an existing entry. Both
/// panic if a name is re-used with a *different* unit — unit mismatches
/// are always programming errors, never data.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, (Unit, f64)>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any previous sample.
    ///
    /// # Panics
    /// If `name` already exists with a different unit.
    pub fn set(&mut self, name: &str, unit: Unit, value: f64) {
        match self.metrics.get_mut(name) {
            Some((have, slot)) => {
                assert_eq!(
                    *have, unit,
                    "metric {name} re-registered as {unit:?} but recorded as {have:?}"
                );
                *slot = value;
            }
            None => {
                self.metrics.insert(name.to_owned(), (unit, value));
            }
        }
    }

    /// Adds `value` to `name`, creating it at `value` if absent.
    ///
    /// # Panics
    /// If `name` already exists with a different unit.
    pub fn add(&mut self, name: &str, unit: Unit, value: f64) {
        match self.metrics.get_mut(name) {
            Some((have, slot)) => {
                assert_eq!(
                    *have, unit,
                    "metric {name} re-registered as {unit:?} but recorded as {have:?}"
                );
                *slot += value;
            }
            None => {
                self.metrics.insert(name.to_owned(), (unit, value));
            }
        }
    }

    /// The full sample for `name`, if present.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics.get(name).map(|(unit, value)| Metric {
            name: name.to_owned(),
            unit: *unit,
            value: *value,
        })
    }

    /// The bare value for `name`, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).map(|(_, v)| *v)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = Metric> + '_ {
        self.metrics.iter().map(|(name, (unit, value))| Metric {
            name: name.clone(),
            unit: *unit,
            value: *value,
        })
    }

    /// Snapshot of every metric, in name order.
    pub fn snapshot(&self) -> Vec<Metric> {
        self.iter().collect()
    }

    /// Absorbs every metric from `other` via [`MetricsRegistry::set`],
    /// and every histogram via [`MetricsRegistry::register_histogram`].
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for m in other.iter() {
            self.set(&m.name, m.unit, m.value);
        }
        for (name, hist) in other.histograms() {
            self.register_histogram(name, hist.clone());
        }
    }

    /// Registers `hist` under `name`. If the name already holds a
    /// histogram of the same shape, the two merge (bucket counts add);
    /// this is the aggregation path experiment sweeps use.
    ///
    /// # Panics
    /// If `name` already holds a histogram of a different shape (unit
    /// or bucket bounds) — like a gauge unit mismatch, always a wiring
    /// bug.
    pub fn register_histogram(&mut self, name: &str, hist: Histogram) {
        match self.histograms.get_mut(name) {
            Some(existing) => existing.merge(&hist),
            None => {
                self.histograms.insert(name.to_owned(), hist);
            }
        }
    }

    /// Records one sample into the histogram registered under `name`.
    ///
    /// # Panics
    /// If no histogram was registered under `name` (register the shape
    /// first — sample streams never pick their own buckets implicitly).
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("no histogram registered under `{name}`"))
            .record(value);
    }

    /// The histogram registered under `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates `(name, histogram)` pairs in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Number of registered histograms ([`MetricsRegistry::len`] counts
    /// gauges only).
    pub fn histogram_len(&self) -> usize {
        self.histograms.len()
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in self.iter() {
            // Ratios are stored in [0, 1] but read as percentages.
            if m.unit == Unit::Ratio {
                writeln!(f, "{:<40} {:.2}%", m.name, m.value * 100.0)?;
            } else {
                writeln!(f, "{:<40} {}{}", m.name, m.value, m.unit.suffix())?;
            }
        }
        for (name, h) in self.histograms() {
            let suffix = h.unit().suffix();
            match (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)) {
                (Some(p50), Some(p95), Some(p99)) => writeln!(
                    f,
                    "{:<40} n={} p50={p50:.3e}{suffix} p95={p95:.3e}{suffix} p99={p99:.3e}{suffix}",
                    name,
                    h.count()
                )?,
                _ => writeln!(f, "{name:<40} n=0 (empty histogram)")?,
            }
        }
        Ok(())
    }
}

/// One named histogram, the wire shape registry histograms serialize
/// through (the vendored serde stub has no map impls).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct NamedHistogram {
    /// Dotted registry name.
    name: String,
    /// The histogram snapshot.
    histogram: Histogram,
}

// The vendored serde stub provides no map impls, so the registry
// serializes through ordered `Vec` snapshots. Gauge-only registries
// keep the original bare-array shape (the wire format of every
// envelope written before histograms existed); a registry carrying
// histograms serializes as `{"metrics": [...], "histograms": [...]}`.
// Deserialization accepts both shapes.
impl Serialize for MetricsRegistry {
    fn to_value(&self) -> serde::Value {
        if self.histograms.is_empty() {
            return self.snapshot().to_value();
        }
        let histograms: Vec<NamedHistogram> = self
            .histograms()
            .map(|(name, h)| NamedHistogram {
                name: name.to_owned(),
                histogram: h.clone(),
            })
            .collect();
        serde::Value::Object(vec![
            ("metrics".to_owned(), self.snapshot().to_value()),
            ("histograms".to_owned(), histograms.to_value()),
        ])
    }
}

impl Deserialize for MetricsRegistry {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let (gauges, histograms) = match value {
            serde::Value::Object(_) => {
                let gauges = value
                    .get("metrics")
                    .ok_or_else(|| serde::DeError::expected("`metrics` key", "MetricsRegistry"))?;
                (gauges.clone(), value.get("histograms").cloned())
            }
            _ => (value.clone(), None),
        };
        let metrics = Vec::<Metric>::from_value(&gauges)?;
        let mut reg = MetricsRegistry::new();
        for m in &metrics {
            reg.set(&m.name, m.unit, m.value);
        }
        if let Some(h) = histograms {
            for named in Vec::<NamedHistogram>::from_value(&h)? {
                reg.register_histogram(&named.name, named.histogram);
            }
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_iter_roundtrip_in_name_order() {
        let mut reg = MetricsRegistry::new();
        reg.set("power.avg_w", Unit::Watts, 412.0);
        reg.set("counters.SQ_INSTS_MFMA", Unit::Count, 1024.0);
        reg.set("power.avg_w", Unit::Watts, 430.0); // replace
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.value("power.avg_w"), Some(430.0));
        let names: Vec<String> = reg.iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["counters.SQ_INSTS_MFMA", "power.avg_w"]);
        assert_eq!(reg.get("counters.SQ_INSTS_MFMA").unwrap().unit, Unit::Count);
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn add_accumulates() {
        let mut reg = MetricsRegistry::new();
        reg.add("sim.hbm_bytes", Unit::Bytes, 100.0);
        reg.add("sim.hbm_bytes", Unit::Bytes, 28.0);
        assert_eq!(reg.value("sim.hbm_bytes"), Some(128.0));
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn unit_mismatch_panics() {
        let mut reg = MetricsRegistry::new();
        reg.set("sim.time", Unit::Seconds, 1.0);
        reg.set("sim.time", Unit::Cycles, 2.0);
    }

    #[test]
    fn display_includes_unit_suffix() {
        let mut reg = MetricsRegistry::new();
        reg.set("power.avg_w", Unit::Watts, 412.5);
        let text = format!("{reg}");
        assert!(text.contains("power.avg_w"));
        assert!(text.contains("412.5 W"));
    }

    #[test]
    fn ratio_metrics_display_as_percentages() {
        let mut reg = MetricsRegistry::new();
        reg.set("sim.matrix_occupancy", Unit::Ratio, 0.875);
        reg.set("power.efficiency", Unit::FlopsPerJoule, 5.0e11);
        let text = format!("{reg}");
        assert!(text.contains("87.50%"), "{text}");
        assert!(!text.contains("0.875"), "{text}");
        assert!(text.contains("500000000000 flop/J"), "{text}");
    }

    #[test]
    fn registry_serializes_and_deserializes_round_trip() {
        let mut reg = MetricsRegistry::new();
        reg.set("counters.SQ_WAVES", Unit::Count, 440.0);
        reg.set("power.avg_w", Unit::Watts, 412.5);
        reg.set("sim.matrix_occupancy", Unit::Ratio, 0.91);
        reg.set("power.efficiency.f16", Unit::FlopsPerJoule, 4.6e11);

        let value = serde::Serialize::to_value(&reg);
        let back = <MetricsRegistry as serde::Deserialize>::from_value(&value).unwrap();
        assert_eq!(back, reg);

        // The JSON text round-trips too (the shape a persisted envelope
        // payload would take on disk).
        let text = serde_json::to_string(&value).unwrap();
        let reparsed: serde::Value = serde_json::from_str(&text).unwrap();
        let back2 = <MetricsRegistry as serde::Deserialize>::from_value(&reparsed).unwrap();
        assert_eq!(back2, reg);
    }

    #[test]
    fn registry_deserialize_rejects_malformed_values() {
        let v: serde::Value = serde_json::from_str("{\"not\":\"an array\"}").unwrap();
        assert!(<MetricsRegistry as serde::Deserialize>::from_value(&v).is_err());
    }

    #[test]
    fn histograms_register_observe_and_merge() {
        let mut reg = MetricsRegistry::new();
        reg.register_histogram("round.latency_s", Histogram::latency_seconds());
        reg.observe("round.latency_s", 2.0e-4);
        reg.observe("round.latency_s", 8.0e-4);
        assert_eq!(reg.histogram("round.latency_s").unwrap().count(), 2);
        assert_eq!(reg.len(), 0, "histograms are not gauges");
        assert_eq!(reg.histogram_len(), 1);

        // Re-registering the same shape merges.
        let mut more = Histogram::latency_seconds();
        more.record(5.0e-2);
        reg.register_histogram("round.latency_s", more);
        assert_eq!(reg.histogram("round.latency_s").unwrap().count(), 3);

        // merge() carries histograms across registries.
        let mut other = MetricsRegistry::new();
        other.merge(&reg);
        assert_eq!(other.histogram("round.latency_s").unwrap().count(), 3);
    }

    #[test]
    #[should_panic(expected = "no histogram registered")]
    fn observing_an_unregistered_histogram_panics() {
        MetricsRegistry::new().observe("missing", 1.0);
    }

    #[test]
    fn registry_with_histograms_round_trips_and_accepts_legacy_shape() {
        let mut reg = MetricsRegistry::new();
        reg.set("sim.time_s", Unit::Seconds, 0.5);
        reg.register_histogram("round.latency_s", Histogram::latency_seconds());
        reg.observe("round.latency_s", 1.0e-3);
        let value = serde::Serialize::to_value(&reg);
        let back = <MetricsRegistry as serde::Deserialize>::from_value(&value).unwrap();
        assert_eq!(back, reg);

        // The pre-histogram bare-array shape still deserializes.
        let legacy: serde::Value =
            serde_json::from_str(r#"[{"name":"a","unit":"Count","value":1}]"#).unwrap();
        let old = <MetricsRegistry as serde::Deserialize>::from_value(&legacy).unwrap();
        assert_eq!(old.value("a"), Some(1.0));
        assert_eq!(old.histogram_len(), 0);
    }

    #[test]
    fn display_summarizes_histograms_with_quantiles() {
        let mut reg = MetricsRegistry::new();
        reg.register_histogram("round.latency_s", Histogram::latency_seconds());
        for i in 1..=100 {
            reg.observe("round.latency_s", f64::from(i) * 1e-5);
        }
        let text = format!("{reg}");
        assert!(text.contains("round.latency_s"), "{text}");
        assert!(text.contains("n=100"), "{text}");
        assert!(text.contains("p99="), "{text}");
    }

    #[test]
    fn merge_absorbs_other_registry() {
        let mut a = MetricsRegistry::new();
        a.set("x", Unit::Count, 1.0);
        let mut b = MetricsRegistry::new();
        b.set("y", Unit::Ratio, 0.5);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.value("y"), Some(0.5));
    }
}
