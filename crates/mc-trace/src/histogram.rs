//! Log-bucketed HDR-style histograms with streaming quantiles.
//!
//! The registry's gauges answer "what is the value now"; distribution
//! questions — p50/p99 round latency, the spread of analytic-model
//! drift across a plan corpus, SMI power-sample percentiles — need a
//! [`Histogram`]. The design follows HdrHistogram's trade:
//! logarithmically spaced bucket bounds give a bounded relative
//! quantile error at O(buckets) memory, values stream in one at a time
//! (no sample retention), and two histograms with the same shape merge
//! by adding bucket counts — exactly the aggregation OpenMetrics
//! histogram families (`_bucket{le=...}`/`_sum`/`_count`) expose.
//!
//! Quantile estimates interpolate linearly inside the bucket that
//! contains the requested rank and are clamped to the observed
//! `[min, max]`, so an estimate is always bracketed by its bucket's
//! bounds (a property test in this module's consumers relies on that).

use serde::{Deserialize, Serialize};

use crate::metrics::Unit;

/// Hard cap on bucket-bound count, so a mis-parameterized constructor
/// cannot allocate an absurd histogram.
pub const MAX_HISTOGRAM_BUCKETS: usize = 4096;

/// A fixed-shape, log-bucketed streaming histogram.
///
/// The shape is the ascending list of finite bucket upper bounds
/// (`le` semantics: bucket `i` counts samples `v <= bounds[i]` that no
/// earlier bucket claimed); one implicit `+Inf` bucket catches
/// everything above the last bound. Values at or below the first bound
/// (including zero and negative values) land in bucket 0.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Physical unit of recorded samples.
    unit: Unit,
    /// Ascending finite bucket upper bounds (`le` values).
    bounds: Vec<f64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`,
    /// the last slot is the `+Inf` bucket.
    counts: Vec<u64>,
    /// Sum of all recorded samples.
    sum: f64,
    /// Total recorded samples.
    count: u64,
    /// Smallest recorded sample (0 until the first record).
    min: f64,
    /// Largest recorded sample (0 until the first record).
    max: f64,
}

impl Histogram {
    /// A histogram with explicit finite bucket bounds.
    ///
    /// # Panics
    /// If `bounds` is empty, not strictly ascending, not finite, or
    /// longer than [`MAX_HISTOGRAM_BUCKETS`].
    pub fn with_bounds(unit: Unit, bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.len() <= MAX_HISTOGRAM_BUCKETS,
            "{} bounds exceed MAX_HISTOGRAM_BUCKETS",
            bounds.len()
        );
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must ascend strictly: {} !< {}",
                pair[0],
                pair[1]
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (the +Inf bucket is implicit)"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            unit,
            bounds,
            counts,
            sum: 0.0,
            count: 0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// A log-bucketed histogram spanning `[lo, hi]` with
    /// `buckets_per_decade` geometrically spaced bounds per factor of
    /// ten — the HDR-style shape: relative quantile error is bounded by
    /// the bucket growth factor `10^(1/buckets_per_decade)`.
    ///
    /// # Panics
    /// If `lo <= 0`, `hi <= lo`, `buckets_per_decade == 0`, or the
    /// resulting bound count exceeds [`MAX_HISTOGRAM_BUCKETS`].
    pub fn log_bucketed(unit: Unit, lo: f64, hi: f64, buckets_per_decade: u32) -> Self {
        assert!(lo > 0.0 && lo.is_finite(), "lo must be positive finite");
        assert!(hi > lo && hi.is_finite(), "hi must exceed lo");
        assert!(
            buckets_per_decade > 0,
            "need at least one bucket per decade"
        );
        let growth = 10f64.powf(1.0 / f64::from(buckets_per_decade));
        let mut bounds = Vec::new();
        let mut bound = lo;
        while bound < hi * (1.0 - 1e-12) {
            bounds.push(bound);
            assert!(
                bounds.len() <= MAX_HISTOGRAM_BUCKETS,
                "log_bucketed({lo}, {hi}, {buckets_per_decade}) needs too many buckets"
            );
            bound *= growth;
        }
        bounds.push(hi);
        Self::with_bounds(unit, bounds)
    }

    /// The conventional shape for simulated latencies: 1 ns to 100 s at
    /// 5 buckets per decade (56 bounds, ≤ ~58% relative bucket width).
    pub fn latency_seconds() -> Self {
        Self::log_bucketed(Unit::Seconds, 1e-9, 100.0, 5)
    }

    /// The conventional shape for dimensionless relative-error
    /// magnitudes (model drift): 10⁻⁶ to 10 at 5 buckets per decade.
    pub fn relative_error() -> Self {
        Self::log_bucketed(Unit::Ratio, 1e-6, 10.0, 5)
    }

    /// Physical unit of the recorded samples.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Records one sample.
    ///
    /// Non-finite samples are counted into the extreme buckets
    /// (`-inf`/NaN → bucket 0 behaviour is avoided: NaN panics, it is
    /// always a computation bug upstream).
    ///
    /// # Panics
    /// If `value` is NaN.
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    ///
    /// # Panics
    /// If `value` is NaN.
    pub fn record_n(&mut self, value: f64, n: u64) {
        assert!(!value.is_nan(), "recorded a NaN sample");
        if n == 0 {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += n;
        self.sum += value * n as f64;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all recorded samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The finite bucket upper bounds (`le` values), ascending.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Raw (non-cumulative) per-bucket counts; the final entry is the
    /// implicit `+Inf` bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative per-bucket counts in `le` order, ending with the
    /// `+Inf` bucket (always equal to [`Histogram::count`]).
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.counts
            .iter()
            .map(|c| {
                total += c;
                total
            })
            .collect()
    }

    /// Streaming quantile estimate for `q ∈ [0, 1]`.
    ///
    /// Finds the bucket containing the `⌈q·count⌉`-th smallest sample,
    /// interpolates linearly inside it, and clamps to the observed
    /// `[min, max]` — so the estimate is always inside the bucket's
    /// bounds and inside the observed range. Returns `None` while the
    /// histogram is empty.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        // Rank of the requested sample, 1-based; q = 0 asks for the
        // smallest sample.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                cumulative += c;
                continue;
            }
            let next = cumulative + c;
            if rank <= next {
                let lower = if idx == 0 {
                    self.min
                } else {
                    self.bounds[idx - 1]
                };
                let upper = if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    self.max
                };
                let fraction = (rank - cumulative) as f64 / *c as f64;
                let estimate = lower + fraction * (upper - lower).max(0.0);
                return Some(estimate.clamp(self.min, self.max));
            }
            cumulative = next;
        }
        Some(self.max)
    }

    /// Whether `other` has the same shape (unit and bucket bounds), so
    /// the two histograms can merge.
    pub fn same_shape(&self, other: &Histogram) -> bool {
        self.unit == other.unit && self.bounds == other.bounds
    }

    /// Merges `other` into `self` by adding bucket counts. The result
    /// is identical to having recorded both sample streams into one
    /// histogram (a property test in `tests/` relies on this).
    ///
    /// # Panics
    /// If the histograms differ in unit or bucket bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.same_shape(other),
            "merging histograms of different shapes ({:?}/{} vs {:?}/{} bounds)",
            self.unit,
            self.bounds.len(),
            other.unit,
            other.bounds.len()
        );
        for (slot, c) in self.counts.iter_mut().zip(&other.counts) {
            *slot += c;
        }
        self.sum += other.sum;
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_le_buckets() {
        let mut h = Histogram::with_bounds(Unit::Seconds, vec![1.0, 10.0, 100.0]);
        h.record(0.5); // <= 1.0
        h.record(1.0); // <= 1.0 (le is inclusive)
        h.record(5.0); // <= 10.0
        h.record(1000.0); // +Inf bucket
        assert_eq!(h.bucket_counts(), &[2, 1, 0, 1]);
        assert_eq!(h.cumulative_counts(), vec![2, 3, 3, 4]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 1006.5).abs() < 1e-12);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(1000.0));
    }

    #[test]
    fn values_below_first_bound_use_bucket_zero() {
        let mut h = Histogram::with_bounds(Unit::Ratio, vec![0.5, 1.0]);
        h.record(-3.0);
        h.record(0.0);
        assert_eq!(h.bucket_counts(), &[2, 0, 0]);
    }

    #[test]
    fn log_bucketed_bounds_are_geometric_and_cover_hi() {
        let h = Histogram::log_bucketed(Unit::Seconds, 1e-3, 1.0, 3);
        let bounds = h.bounds();
        assert!((bounds[0] - 1e-3).abs() < 1e-15);
        assert_eq!(*bounds.last().unwrap(), 1.0);
        // Three decades at three per decade: nine geometric steps.
        assert_eq!(bounds.len(), 10);
        let growth = 10f64.powf(1.0 / 3.0);
        for pair in bounds.windows(2).take(bounds.len() - 2) {
            assert!((pair[1] / pair[0] - growth).abs() < 1e-9);
        }
    }

    #[test]
    fn quantiles_interpolate_and_stay_in_range() {
        let mut h = Histogram::latency_seconds();
        for i in 1..=1000u64 {
            h.record(i as f64 * 1e-6); // 1 µs .. 1 ms uniform
        }
        let p0 = h.quantile(0.0).unwrap();
        assert!((p0 / 1e-6 - 1.0).abs() < 1e-9, "p0 {p0}");
        let p50 = h.quantile(0.5).unwrap();
        assert!((4e-4..=6.5e-4).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((9e-4..=1e-3).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), Some(1e-3));
        assert_eq!(Histogram::latency_seconds().quantile(0.5), None);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::latency_seconds();
        h.record(3.7e-5);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(3.7e-5), "q={q}");
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = Histogram::latency_seconds();
        let mut b = Histogram::latency_seconds();
        let mut all = Histogram::latency_seconds();
        for (i, v) in [3e-9, 5e-6, 0.12, 250.0, 1e-4].iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.record(*v);
            all.record(*v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::latency_seconds();
        a.merge(&Histogram::relative_error());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_samples_panic() {
        Histogram::latency_seconds().record(f64::NAN);
    }

    #[test]
    fn serde_round_trip() {
        let mut h = Histogram::relative_error();
        h.record(0.02);
        h.record(0.4);
        let value = serde::Serialize::to_value(&h);
        let back = <Histogram as serde::Deserialize>::from_value(&value).unwrap();
        assert_eq!(back, h);
        let text = serde_json::to_string(&value).unwrap();
        let reparsed: serde::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            <Histogram as serde::Deserialize>::from_value(&reparsed).unwrap(),
            h
        );
    }
}
