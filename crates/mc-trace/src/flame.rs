//! Folded-stack flamegraph export.
//!
//! Produces the `parent;child;leaf weight` line format consumed by
//! `flamegraph.pl`, inferno, and speedscope. Each span contributes its
//! duration (integer microseconds) at a stack built from the span
//! containment hierarchy: a span's parent is the innermost span of a
//! strictly smaller [`Category depth`](crate::Category::depth) on the
//! same device whose time window contains it.

use std::collections::BTreeMap;

use crate::event::{device_label, SpanEvent, TraceEvent};

/// Whether `outer` contains `inner` in time, with a small relative
/// tolerance for floating-point round-off at the window edges.
pub(crate) fn contains(outer: &SpanEvent, inner: &SpanEvent) -> bool {
    let eps = 1e-6 * outer.dur_us.max(1.0);
    inner.t0_us >= outer.t0_us - eps && inner.end_us() <= outer.end_us() + eps
}

fn parent_of<'a>(spans: &'a [&'a SpanEvent], child: &SpanEvent) -> Option<&'a SpanEvent> {
    spans
        .iter()
        .filter(|s| {
            s.device == child.device
                && s.category.depth() < child.category.depth()
                && contains(s, child)
        })
        // Innermost container: greatest depth, then latest start.
        .max_by(|a, b| {
            (a.category.depth(), a.t0_us)
                .partial_cmp(&(b.category.depth(), b.t0_us))
                .expect("span times are finite")
        })
        .copied()
}

fn frame(span: &SpanEvent) -> String {
    // Semicolons delimit stack frames in the folded format.
    span.name.replace(';', ",")
}

/// Renders spans as folded stacks, one aggregated line per unique
/// stack, weights in integer microseconds.
///
/// Parents are charged their *self* time (duration minus the time of
/// their direct children, clamped at zero — pipeline children overlap
/// each other, so a naive subtraction can exceed the parent).
pub fn folded_stacks(events: &[TraceEvent]) -> String {
    let spans: Vec<&SpanEvent> = events.iter().filter_map(TraceEvent::as_span).collect();

    // Stack path for every span, computed by walking parents.
    let mut weights: BTreeMap<String, f64> = BTreeMap::new();
    for span in &spans {
        let mut path = vec![frame(span)];
        let mut cursor: &SpanEvent = span;
        while let Some(parent) = parent_of(&spans, cursor) {
            path.push(frame(parent));
            cursor = parent;
        }
        path.push(device_label(span.device));
        path.reverse();

        let child_time: f64 = spans
            .iter()
            .filter(|c| {
                !std::ptr::eq(**c, *span)
                    && parent_of(&spans, c).is_some_and(|p| std::ptr::eq(p, *span))
            })
            .map(|c| c.dur_us)
            .sum();
        let self_time = (span.dur_us - child_time).max(0.0);
        *weights.entry(path.join(";")).or_insert(0.0) += self_time;
    }

    let mut out = String::new();
    for (stack, weight) in weights {
        let micros = weight.round() as u64;
        if micros == 0 {
            continue;
        }
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&micros.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, Track};

    fn span(name: &str, category: Category, t0: f64, dur: f64) -> TraceEvent {
        TraceEvent::Span(SpanEvent {
            name: name.into(),
            category,
            device: 0,
            track: Track::Launch,
            t0_us: t0,
            dur_us: dur,
            args: Vec::new(),
        })
    }

    #[test]
    fn nested_spans_fold_into_stacks() {
        let events = vec![
            span("gemm", Category::Kernel, 0.0, 100.0),
            span("round 0", Category::Round, 0.0, 60.0),
            span("round 1", Category::Round, 60.0, 40.0),
            span("matrix busy", Category::Pipeline, 0.0, 50.0),
        ];
        let folded = folded_stacks(&events);
        let lines: Vec<&str> = folded.lines().collect();
        // Kernel self time is 0 (rounds cover it fully) so it drops out.
        assert!(lines.contains(&"die0;gemm;round 0;matrix busy 50"));
        assert!(lines.contains(&"die0;gemm;round 0 10"));
        assert!(lines.contains(&"die0;gemm;round 1 40"));
        assert!(!folded.contains("die0;gemm 0"));
    }

    #[test]
    fn overlapping_children_clamp_parent_self_time() {
        // Two pipeline children each as long as the round: naive self
        // time would be negative.
        let events = vec![
            span("round 0", Category::Round, 0.0, 10.0),
            span("matrix busy", Category::Pipeline, 0.0, 10.0),
            span("simd busy", Category::Pipeline, 0.0, 10.0),
        ];
        let folded = folded_stacks(&events);
        assert!(folded.contains("die0;round 0;matrix busy 10"));
        assert!(folded.contains("die0;round 0;simd busy 10"));
        assert!(!folded.contains("die0;round 0 "));
    }

    #[test]
    fn semicolons_in_names_are_sanitized() {
        let events = vec![span("a;b", Category::Kernel, 0.0, 5.0)];
        let folded = folded_stacks(&events);
        assert_eq!(folded, "die0;a,b 5\n");
    }
}
