//! Timeline invariant checks.
//!
//! A trace is only evidence if it is self-consistent. These checks
//! assert the structural invariants the engine's emission must uphold:
//! finite non-negative times, every round/pipeline/memory span nested
//! in its kernel, pipeline busy time never exceeding the kernel wall
//! window on its lane, and round windows tiling the kernel. The host
//! plane gets the analogous pair: every host-phase span nested in a
//! host-region span of its device, and the spans of any one host lane
//! (a caller or worker thread) strictly sequential — a thread cannot
//! be in two phases at once.

use crate::event::{Category, SpanEvent, TraceEvent, Track};
use crate::flame::contains;

/// One violated timeline invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which invariant failed (stable machine-readable tag).
    pub rule: &'static str,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

fn violation(rule: &'static str, detail: String) -> Violation {
    Violation { rule, detail }
}

/// Relative containment slack, mirroring the flamegraph parenting.
fn eps_for(outer: &SpanEvent) -> f64 {
    1e-6 * outer.dur_us.max(1.0)
}

fn kernels_of<'a>(spans: &'a [&'a SpanEvent], device: u32) -> Vec<&'a SpanEvent> {
    spans
        .iter()
        .filter(|s| s.device == device && s.category == Category::Kernel)
        .copied()
        .collect()
}

/// Checks every timeline invariant over `events`, returning all
/// violations found (empty means the trace is self-consistent).
pub fn check_invariants(events: &[TraceEvent]) -> Vec<Violation> {
    let mut out = Vec::new();
    let spans: Vec<&SpanEvent> = events.iter().filter_map(TraceEvent::as_span).collect();

    // 1. Finite, non-negative times everywhere.
    for event in events {
        match event {
            TraceEvent::Span(s) => {
                if !s.t0_us.is_finite() || !s.dur_us.is_finite() || s.t0_us < 0.0 || s.dur_us < 0.0
                {
                    out.push(violation(
                        "finite-times",
                        format!("span '{}' has t0={} dur={}", s.name, s.t0_us, s.dur_us),
                    ));
                }
            }
            TraceEvent::Instant { name, t_us, .. } => {
                if !t_us.is_finite() || *t_us < 0.0 {
                    out.push(violation(
                        "finite-times",
                        format!("instant '{name}' has t={t_us}"),
                    ));
                }
            }
            TraceEvent::Counter {
                name, t_us, value, ..
            } => {
                if !t_us.is_finite() || *t_us < 0.0 || !value.is_finite() {
                    out.push(violation(
                        "finite-times",
                        format!("counter '{name}' has t={t_us} value={value}"),
                    ));
                }
            }
        }
    }

    // 2. Every round/pipeline/memory span nests inside a kernel span
    //    of its device.
    for span in &spans {
        if matches!(
            span.category,
            Category::Round | Category::Pipeline | Category::Memory
        ) {
            let nested = kernels_of(&spans, span.device)
                .iter()
                .any(|k| contains(k, span));
            if !nested {
                out.push(violation(
                    "span-nesting",
                    format!(
                        "{} span '{}' on die{} [{:.3}, {:.3}]us is outside every kernel span",
                        span.category.as_str(),
                        span.name,
                        span.device,
                        span.t0_us,
                        span.end_us()
                    ),
                ));
            }
        }
    }

    // 3. Per kernel and pipeline lane: total busy ≤ kernel wall time.
    for kernel in spans
        .iter()
        .filter(|s| s.category == Category::Kernel)
        .copied()
    {
        let mut lanes: Vec<Track> = spans
            .iter()
            .filter(|s| {
                s.category == Category::Pipeline && s.device == kernel.device && contains(kernel, s)
            })
            .map(|s| s.track)
            .collect();
        lanes.sort_by_key(|t| t.tid());
        lanes.dedup();
        for lane in lanes {
            let busy: f64 = spans
                .iter()
                .filter(|s| {
                    s.category == Category::Pipeline
                        && s.device == kernel.device
                        && s.track == lane
                        && contains(kernel, s)
                })
                .map(|s| s.dur_us)
                .sum();
            if busy > kernel.dur_us + eps_for(kernel) {
                out.push(violation(
                    "pipeline-busy",
                    format!(
                        "lane '{}' busy {:.3}us exceeds kernel '{}' wall {:.3}us",
                        lane.label(),
                        busy,
                        kernel.name,
                        kernel.dur_us
                    ),
                ));
            }
        }

        // 4. Rounds inside a kernel: monotone, non-overlapping, and
        //    their total does not exceed the kernel window.
        let mut rounds: Vec<&SpanEvent> = spans
            .iter()
            .filter(|s| {
                s.category == Category::Round && s.device == kernel.device && contains(kernel, s)
            })
            .copied()
            .collect();
        rounds.sort_by(|a, b| a.t0_us.partial_cmp(&b.t0_us).expect("finite"));
        for pair in rounds.windows(2) {
            if pair[1].t0_us < pair[0].end_us() - eps_for(kernel) {
                out.push(violation(
                    "round-overlap",
                    format!(
                        "rounds '{}' and '{}' overlap in kernel '{}'",
                        pair[0].name, pair[1].name, kernel.name
                    ),
                ));
            }
        }
        let round_total: f64 = rounds.iter().map(|r| r.dur_us).sum();
        if round_total > kernel.dur_us + eps_for(kernel) {
            out.push(violation(
                "round-total",
                format!(
                    "rounds total {:.3}us exceeds kernel '{}' wall {:.3}us",
                    round_total, kernel.name, kernel.dur_us
                ),
            ));
        }
    }

    // 5. Every host-phase span nests inside a host-region span of its
    //    device (worker phases live inside the region that fanned them
    //    out, so time containment is the nesting witness).
    let regions: Vec<&SpanEvent> = spans
        .iter()
        .filter(|s| s.category == Category::HostRegion)
        .copied()
        .collect();
    for span in &spans {
        if span.category == Category::HostPhase {
            let nested = regions
                .iter()
                .any(|r| r.device == span.device && contains(r, span));
            if !nested {
                out.push(violation(
                    "host-span-nesting",
                    format!(
                        "host-phase span '{}' on device {} [{:.3}, {:.3}]us is outside every host-region span",
                        span.name,
                        span.device,
                        span.t0_us,
                        span.end_us()
                    ),
                ));
            }
        }
    }

    // 6. Host lanes are threads: spans of one (device, track, category)
    //    must not overlap — a caller or worker cannot run two phases
    //    (or two regions) at once.
    let mut host_lanes: Vec<(u32, Track, Category)> = spans
        .iter()
        .filter(|s| matches!(s.category, Category::HostRegion | Category::HostPhase))
        .map(|s| (s.device, s.track, s.category))
        .collect();
    host_lanes.sort_by_key(|(d, t, c)| (*d, t.tid(), c.depth()));
    host_lanes.dedup();
    for (device, track, category) in host_lanes {
        let mut lane_spans: Vec<&SpanEvent> = spans
            .iter()
            .filter(|s| s.device == device && s.track == track && s.category == category)
            .copied()
            .collect();
        lane_spans.sort_by(|a, b| a.t0_us.partial_cmp(&b.t0_us).expect("finite"));
        for pair in lane_spans.windows(2) {
            if pair[1].t0_us < pair[0].end_us() - eps_for(pair[0]) {
                out.push(violation(
                    "host-lane-overlap",
                    format!(
                        "host spans '{}' and '{}' overlap on lane '{}'",
                        pair[0].name,
                        pair[1].name,
                        track.label()
                    ),
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArgValue;

    fn span(name: &str, category: Category, track: Track, t0: f64, dur: f64) -> TraceEvent {
        TraceEvent::Span(SpanEvent {
            name: name.into(),
            category,
            device: 0,
            track,
            t0_us: t0,
            dur_us: dur,
            args: Vec::<(String, ArgValue)>::new(),
        })
    }

    fn clean_trace() -> Vec<TraceEvent> {
        vec![
            span("gemm", Category::Kernel, Track::Launch, 0.0, 100.0),
            span("round 0", Category::Round, Track::Launch, 0.0, 60.0),
            span("round 1", Category::Round, Track::Launch, 60.0, 40.0),
            span(
                "matrix busy",
                Category::Pipeline,
                Track::MatrixPipe(0),
                0.0,
                55.0,
            ),
            span("hbm", Category::Memory, Track::Memory, 0.0, 30.0),
        ]
    }

    #[test]
    fn clean_trace_has_no_violations() {
        assert_eq!(check_invariants(&clean_trace()), Vec::new());
    }

    #[test]
    fn orphan_round_is_flagged() {
        let mut events = clean_trace();
        events.push(span("round 9", Category::Round, Track::Launch, 500.0, 10.0));
        let v = check_invariants(&events);
        assert!(v.iter().any(|v| v.rule == "span-nesting"), "{v:?}");
    }

    #[test]
    fn pipeline_busy_beyond_wall_is_flagged() {
        let mut events = clean_trace();
        events.push(span(
            "matrix busy",
            Category::Pipeline,
            Track::MatrixPipe(0),
            0.0,
            80.0,
        ));
        let v = check_invariants(&events);
        assert!(v.iter().any(|v| v.rule == "pipeline-busy"), "{v:?}");
    }

    #[test]
    fn overlapping_rounds_are_flagged() {
        let mut events = clean_trace();
        events.push(span("round 2", Category::Round, Track::Launch, 50.0, 20.0));
        let v = check_invariants(&events);
        assert!(v.iter().any(|v| v.rule == "round-overlap"), "{v:?}");
        assert!(v.iter().any(|v| v.rule == "round-total"), "{v:?}");
    }

    fn clean_host_trace() -> Vec<TraceEvent> {
        vec![
            span(
                "gemm simd 512",
                Category::HostRegion,
                Track::HostCall(0),
                0.0,
                100.0,
            ),
            span("fanout", Category::HostPhase, Track::HostCall(0), 0.0, 90.0),
            span(
                "epilogue",
                Category::HostPhase,
                Track::HostCall(0),
                90.0,
                10.0,
            ),
            span(
                "microkernel",
                Category::HostPhase,
                Track::HostWorker(0),
                5.0,
                80.0,
            ),
        ]
    }

    #[test]
    fn clean_host_trace_has_no_violations() {
        assert_eq!(check_invariants(&clean_host_trace()), Vec::new());
    }

    #[test]
    fn orphan_host_phase_is_flagged() {
        let mut events = clean_host_trace();
        events.push(span(
            "pack a",
            Category::HostPhase,
            Track::HostWorker(1),
            500.0,
            10.0,
        ));
        let v = check_invariants(&events);
        assert!(v.iter().any(|v| v.rule == "host-span-nesting"), "{v:?}");
    }

    #[test]
    fn overlapping_host_lane_spans_are_flagged() {
        let mut events = clean_host_trace();
        // A second phase on worker 0 starting before the first ends.
        events.push(span(
            "pack a",
            Category::HostPhase,
            Track::HostWorker(0),
            50.0,
            20.0,
        ));
        let v = check_invariants(&events);
        assert!(v.iter().any(|v| v.rule == "host-lane-overlap"), "{v:?}");
        // Distinct lanes may overlap freely: worker 1 busy at the same
        // time is clean.
        let mut events = clean_host_trace();
        events.push(span(
            "microkernel",
            Category::HostPhase,
            Track::HostWorker(1),
            5.0,
            80.0,
        ));
        assert_eq!(check_invariants(&events), Vec::new());
    }

    #[test]
    fn negative_and_nonfinite_times_are_flagged() {
        let events = vec![
            span("bad", Category::Kernel, Track::Launch, -1.0, 10.0),
            TraceEvent::Counter {
                name: "w".into(),
                device: 0,
                t_us: 0.0,
                value: f64::NAN,
            },
        ];
        let v = check_invariants(&events);
        assert_eq!(v.iter().filter(|v| v.rule == "finite-times").count(), 2);
    }
}
