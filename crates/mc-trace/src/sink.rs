//! Event sinks: where instrumented code sends its events.
//!
//! The contract is built for a hot path: producers call
//! [`TraceSink::enabled`] before assembling any event, and the default
//! implementation answers `false`, so an untraced run pays one virtual
//! call (typically a branch on a `None` option before even that) and
//! allocates nothing.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::event::TraceEvent;

/// Receives trace events from instrumented code.
///
/// The default methods implement a no-op sink: `enabled` is `false` and
/// `record` drops the event. Implementors that store events override
/// both.
pub trait TraceSink: std::fmt::Debug + Send + Sync {
    /// Whether producers should assemble and send events at all.
    /// Producers must check this before building an event.
    fn enabled(&self) -> bool {
        false
    }

    /// Accepts one event. May drop it (bounded sinks under pressure).
    fn record(&self, event: TraceEvent) {
        let _ = event;
    }
}

/// The no-op sink: every event is dropped before it is built.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// Default capacity of a [`RingSink`] (events).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded, thread-safe ring-buffer sink.
///
/// When the buffer is full the **oldest** event is evicted and counted
/// in [`RingSink::dropped`] — a long run keeps its most recent window,
/// and consumers can tell whether the window is complete (cross-checks
/// over totals are only valid when `dropped() == 0`).
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl RingSink {
    /// A ring holding [`DEFAULT_RING_CAPACITY`] events.
    pub fn new() -> Self {
        RingSink::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A ring holding at most `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("ring poisoned").events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("ring poisoned").dropped
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("ring poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Discards all retained events and resets the dropped counter.
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("ring poisoned");
        ring.events.clear();
        ring.dropped = 0;
    }
}

impl Default for RingSink {
    fn default() -> Self {
        RingSink::new()
    }
}

impl TraceSink for RingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().expect("ring poisoned");
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(t: f64) -> TraceEvent {
        TraceEvent::Counter {
            name: "w".into(),
            device: 0,
            t_us: t,
            value: t,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.record(counter(1.0)); // must not panic
    }

    #[test]
    fn ring_retains_in_order_up_to_capacity() {
        let sink = RingSink::with_capacity(3);
        assert!(sink.enabled());
        assert!(sink.is_empty());
        for i in 0..5 {
            sink.record(counter(i as f64));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        // Oldest were evicted; the window is the most recent 3.
        let ts: Vec<f64> = sink
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Counter { t_us, .. } => *t_us,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_is_shareable_across_threads() {
        let sink = std::sync::Arc::new(RingSink::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let s = sink.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        s.record(counter((i * 100 + j) as f64));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 400);
        assert_eq!(sink.dropped(), 0);
    }
}
