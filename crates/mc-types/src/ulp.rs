//! ULP-distance utilities used by the numerical-correctness tests.
//!
//! Mixed-precision GEMM results are validated against a double-precision
//! reference with ULP bounds rather than absolute epsilons, following the
//! precision-analysis methodology of Markidis et al. (ref. \[2] in the
//! paper).

/// Number of representable `f32` values strictly between `a` and `b`
/// (plus one if they differ), i.e. the unit-in-last-place distance.
///
/// Returns `u32::MAX` if either argument is NaN. Opposite-sign values
/// measure through zero (`-0.0` and `+0.0` are distance 0).
pub fn ulp_distance_f32(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    let to_ordered = |x: f32| -> i64 {
        let bits = i64::from(x.to_bits());
        if bits < 0x8000_0000 {
            bits
        } else {
            // Negative values: map sign-magnitude onto a monotone line
            // through zero (-0.0 maps to 0).
            0x8000_0000 - bits
        }
    };
    let (oa, ob) = (to_ordered(a), to_ordered(b));
    let d = (oa - ob).unsigned_abs();
    u32::try_from(d).unwrap_or(u32::MAX)
}

/// ULP distance between two `f64` values; see [`ulp_distance_f32`].
pub fn ulp_distance_f64(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    let to_ordered = |x: f64| -> i128 {
        let bits = i128::from(x.to_bits());
        const SIGN: i128 = 0x8000_0000_0000_0000;
        if bits < SIGN {
            bits
        } else {
            SIGN - bits
        }
    };
    let d = (to_ordered(a) - to_ordered(b)).unsigned_abs();
    u64::try_from(d).unwrap_or(u64::MAX)
}

/// Approximate-equality checks with explicit tolerances.
pub trait ApproxEq {
    /// `true` if `self` and `other` are within `ulps` units in the last place.
    fn approx_eq_ulps(&self, other: &Self, ulps: u64) -> bool;

    /// `true` if `|self - other| <= abs_tol + rel_tol * |other|`.
    fn approx_eq_tol(&self, other: &Self, abs_tol: f64, rel_tol: f64) -> bool;
}

impl ApproxEq for f32 {
    fn approx_eq_ulps(&self, other: &Self, ulps: u64) -> bool {
        u64::from(ulp_distance_f32(*self, *other)) <= ulps
    }

    fn approx_eq_tol(&self, other: &Self, abs_tol: f64, rel_tol: f64) -> bool {
        let d = f64::from((self - other).abs());
        d <= abs_tol + rel_tol * f64::from(other.abs())
    }
}

impl ApproxEq for f64 {
    fn approx_eq_ulps(&self, other: &Self, ulps: u64) -> bool {
        ulp_distance_f64(*self, *other) <= ulps
    }

    fn approx_eq_tol(&self, other: &Self, abs_tol: f64, rel_tol: f64) -> bool {
        let d = (self - other).abs();
        d <= abs_tol + rel_tol * other.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_are_zero_ulps() {
        assert_eq!(ulp_distance_f32(1.0, 1.0), 0);
        assert_eq!(ulp_distance_f64(-2.5, -2.5), 0);
        assert_eq!(ulp_distance_f32(0.0, -0.0), 0);
    }

    #[test]
    fn adjacent_values_are_one_ulp() {
        let x = 1.0f32;
        let next = f32::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_distance_f32(x, next), 1);
        let y = 1.0f64;
        let next = f64::from_bits(y.to_bits() + 1);
        assert_eq!(ulp_distance_f64(y, next), 1);
    }

    #[test]
    fn distance_across_zero() {
        let tiny_pos = f32::from_bits(1);
        let tiny_neg = f32::from_bits(0x8000_0001);
        assert_eq!(ulp_distance_f32(tiny_pos, tiny_neg), 2);
    }

    #[test]
    fn nan_is_max_distance() {
        assert_eq!(ulp_distance_f32(f32::NAN, 1.0), u32::MAX);
        assert_eq!(ulp_distance_f64(1.0, f64::NAN), u64::MAX);
    }

    #[test]
    fn approx_eq_trait() {
        let a = 1.0f64;
        let b = f64::from_bits(a.to_bits() + 3);
        assert!(a.approx_eq_ulps(&b, 3));
        assert!(!a.approx_eq_ulps(&b, 2));
        assert!(100.0f32.approx_eq_tol(&100.001, 0.0, 1e-4));
        assert!(!100.0f32.approx_eq_tol(&101.0, 0.0, 1e-4));
    }

    #[test]
    fn symmetry() {
        let pairs = [(1.0f32, 1.5f32), (-3.0, 2.0), (0.0, 1e-20)];
        for (a, b) in pairs {
            assert_eq!(ulp_distance_f32(a, b), ulp_distance_f32(b, a));
        }
    }
}
