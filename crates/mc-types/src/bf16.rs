//! bfloat16 ("brain float") implemented in software.
//!
//! Layout: 1 sign bit, 8 exponent bits (bias 127, same as `f32`), 7
//! mantissa bits — i.e. a truncated `f32`. Matrix Cores support bf16 inputs
//! for machine-learning workloads (`V_MFMA_F32_*_BF16` instructions); the
//! paper focuses on the IEEE types but the ISA model still needs the type.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A bfloat16 floating-point number (truncated-f32 format).
///
/// ```
/// use mc_types::Bf16;
/// let x = Bf16::from_f32(3.0);
/// assert_eq!(x.to_f32(), 3.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Bf16(u16);

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7F80;
const MAN_MASK: u16 = 0x007F;

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Largest finite value, approximately 3.39e38.
    pub const MAX: Bf16 = Bf16(0x7F7F);
    /// Machine epsilon, 2^-7.
    pub const EPSILON: Bf16 = Bf16(0x3C00);

    /// Creates a bfloat16 from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Quiet the NaN, keep sign and top payload bits.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 0x0000_8000u32;
        let lower = bits & 0x0000_FFFF;
        let mut upper = (bits >> 16) as u16;
        if lower > round_bit || (lower == round_bit && (upper & 1) == 1) {
            upper = upper.wrapping_add(1); // may round a large finite to +inf, correctly
        }
        Bf16(upper)
    }

    /// Converts an `f64` (via `f32`).
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Converts to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` for infinities.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// Returns `true` if neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Returns `true` if the sign bit is set.
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Bf16(self.0 & !SIGN_MASK)
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> f32 {
        x.to_f32()
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for Bf16 {
            type Output = Bf16;
            fn $method(self, rhs: Bf16) -> Bf16 {
                Bf16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for Bf16 {
            fn $assign_method(&mut self, rhs: Bf16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign, +);
impl_binop!(Sub, sub, SubAssign, sub_assign, -);
impl_binop!(Mul, mul, MulAssign, mul_assign, *);
impl_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ SIGN_MASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -3.0, 128.0] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v);
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-8 is halfway between 1 and 1 + 2^-7: ties-to-even -> 1.
        assert_eq!(Bf16::from_f32(1.0 + 2.0f32.powi(-8)).to_f32(), 1.0);
        // 1 + 3*2^-8 is halfway, ties up to even mantissa.
        assert_eq!(
            Bf16::from_f32(1.0 + 3.0 * 2.0f32.powi(-8)).to_f32(),
            1.0 + 2.0f32.powi(-6)
        );
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert!(Bf16::from_f32(f32::MAX).is_infinite());
        assert!(Bf16::from_f32(f32::MAX).to_f32().is_infinite());
    }

    #[test]
    fn nan_is_preserved() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::NAN.to_f32().is_nan());
        assert!((-Bf16::NAN).is_nan());
    }

    #[test]
    fn exhaustive_roundtrip_through_f32() {
        for bits in 0..=u16::MAX {
            let h = Bf16::from_bits(bits);
            let back = Bf16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back.to_bits(), bits);
            }
        }
    }

    #[test]
    fn arithmetic_truncates_precision() {
        let a = Bf16::from_f32(256.0);
        // ulp at 256 is 2: 256 + 1 ties to even -> 256.
        assert_eq!((a + Bf16::ONE).to_f32(), 256.0);
    }
}
