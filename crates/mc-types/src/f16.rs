//! IEEE 754 binary16 ("half precision") implemented in software.
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! All arithmetic is performed by converting to `f32`, computing, and
//! rounding back with round-to-nearest-even — this matches the behaviour
//! of scalar half-precision conversion hardware and is exact for the
//! conversions themselves (every `f16` is exactly representable in `f32`).

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An IEEE 754 binary16 floating-point number.
///
/// ```
/// use mc_types::F16;
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// assert_eq!((x + x).to_f32(), 3.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
pub struct F16(u16);

const MAN_BITS: u32 = 10;
const EXP_BIAS: i32 = 15;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;
const SIGN_MASK: u16 = 0x8000;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, -65504.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon, 2^-10.
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates a half from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Values whose magnitude exceeds 65504 after rounding become
    /// infinities; tiny values round into the subnormal range or to zero.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN. Preserve NaN-ness (quiet, with payload msb kept).
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                // Keep the top 10 mantissa bits; force quiet bit so the
                // result is never an infinity-by-truncation.
                let payload = ((man >> 13) as u16) & MAN_MASK;
                F16(sign | EXP_MASK | payload | 0x0200)
            };
        }

        // Unbiased exponent of the f32 value.
        let unbiased = exp - 127;
        let half_exp = unbiased + EXP_BIAS;

        if half_exp >= 0x1F {
            // Overflow to infinity.
            return F16(sign | EXP_MASK);
        }

        if half_exp <= 0 {
            // Subnormal (or zero) in f16.
            if half_exp < -10 {
                // Too small even for the largest subnormal: rounds to zero,
                // except exactly-halfway cases can't occur below 2^-25.
                return F16(sign);
            }
            // Add the implicit leading 1 (if the source was normal).
            let man_with_hidden = if exp == 0 { man } else { man | 0x0080_0000 };
            // We must shift right by (14 + (-half_exp) + 13 - ... ). The
            // mantissa currently has 23 fraction bits; a subnormal half has
            // 10 fraction bits and effective exponent -14. Total shift:
            let shift = (13 + 1 - half_exp) as u32; // in [14, 24]
            let halfway = 1u32 << (shift - 1);
            let mask = (1u32 << shift) - 1;
            let mut result = (man_with_hidden >> shift) as u16;
            let rem = man_with_hidden & mask;
            if rem > halfway || (rem == halfway && (result & 1) == 1) {
                result += 1; // may carry into the normal range, which is correct
            }
            return F16(sign | result);
        }

        // Normal case: round 23-bit mantissa to 10 bits.
        let shift = 13u32;
        let halfway = 1u32 << (shift - 1);
        let mask = (1u32 << shift) - 1;
        let mut out = ((half_exp as u16) << MAN_BITS) | ((man >> shift) as u16);
        let rem = man & mask;
        if rem > halfway || (rem == halfway && (out & 1) == 1) {
            out += 1; // mantissa carry propagates into the exponent correctly
        }
        if (out & EXP_MASK) == EXP_MASK && (out & MAN_MASK) != 0 {
            // Rounding pushed us past the largest finite value into what
            // would be a NaN pattern; clamp to infinity.
            out = EXP_MASK;
        }
        F16(sign | out)
    }

    /// Converts an `f64` to binary16 (through `f32`; double rounding cannot
    /// produce an incorrectly rounded f16 here because f32 has more than
    /// 2×(10+2) mantissa bits of headroom for all representable halves).
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & SIGN_MASK) << 16;
        let exp = (self.0 & EXP_MASK) >> MAN_BITS;
        let man = u32::from(self.0 & MAN_MASK);

        let bits = match exp {
            0 => {
                if man == 0 {
                    sign // signed zero
                } else {
                    // Subnormal: value = man * 2^-24. Normalize by placing
                    // the leading set bit of `man` at bit 10 (just above the
                    // 10-bit fraction field), then rebias the exponent.
                    let lz = man.leading_zeros() - 21; // zeros within the 11-bit window
                    let frac = (man << lz) & u32::from(MAN_MASK);
                    let exp = (127 - EXP_BIAS + 1) as u32 - lz;
                    sign | (exp << 23) | (frac << 13)
                }
            }
            0x1F => {
                if man == 0 {
                    sign | 0x7F80_0000
                } else {
                    sign | 0x7F80_0000 | (man << 13) | 0x0040_0000
                }
            }
            _ => {
                let exp = u32::from(exp) as i32 - EXP_BIAS + 127;
                sign | ((exp as u32) << 23) | (man << 13)
            }
        };
        f32::from_bits(bits)
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// Returns `true` if this value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Returns `true` for subnormal values.
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` if the sign bit is set (including -0.0 and NaNs).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }

    /// Fused multiply-add computed in `f32` then rounded once to binary16.
    ///
    /// This mirrors the Matrix Core FP16 datapath, which multiplies halves
    /// exactly and accumulates in single precision before an optional final
    /// down-conversion.
    pub fn mul_add(self, b: F16, c: F16) -> F16 {
        F16::from_f32(self.to_f32().mul_add(b.to_f32(), c.to_f32()))
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> f32 {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> f64 {
        x.to_f64()
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for F16 {
            fn $assign_method(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign, +);
impl_binop!(Sub, sub, SubAssign, sub_assign, -);
impl_binop!(Mul, mul, MulAssign, mul_assign, *);
impl_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1.5, 100.0, -0.25, 65504.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn constants_are_correct() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert!(F16::from_f32(65520.0).is_infinite());
        assert!(F16::from_f32(1e10).is_infinite());
        assert!(F16::from_f32(-1e10).is_infinite());
        assert!(F16::from_f32(-1e10).is_sign_negative());
        // 65504 + just-under-half-ulp stays finite.
        assert_eq!(F16::from_f32(65519.0).to_f32(), 65504.0);
    }

    #[test]
    fn underflow_and_subnormals() {
        // Largest subnormal: (1023/1024) * 2^-14.
        let largest_sub = (1023.0 / 1024.0) * 2.0f32.powi(-14);
        let x = F16::from_f32(largest_sub);
        assert!(x.is_subnormal());
        assert_eq!(x.to_f32(), largest_sub);
        // Below half the smallest subnormal rounds to zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)).to_bits(), 0);
        // Exactly half the smallest subnormal: ties-to-even -> zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-25)).to_bits(), 0);
        // Just above half rounds up to the smallest subnormal.
        let just_above = f32::from_bits(2.0f32.powi(-25).to_bits() + 1);
        assert_eq!(F16::from_f32(just_above), F16::MIN_POSITIVE_SUBNORMAL);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; ties to even -> 1.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; ties to even -> 1+2^-9.
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway_up).to_f32(), 1.0 + 2.0f32.powi(-9));
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn nan_propagates_through_conversion() {
        let q = F16::from_f32(f32::NAN);
        assert!(q.is_nan());
        assert!(q.to_f32().is_nan());
        // A signalling-ish payload must not collapse to infinity.
        let payload_nan = f32::from_bits(0x7F80_0001);
        assert!(F16::from_f32(payload_nan).is_nan());
    }

    #[test]
    fn arithmetic_rounds_correctly() {
        let a = F16::from_f32(1.0);
        let eps = F16::EPSILON;
        assert_eq!((a + eps).to_f32(), 1.0 + 2.0f32.powi(-10));
        // 2048 + 1 is not representable (ulp at 2048 is 2): ties-to-even keeps 2048.
        let big = F16::from_f32(2048.0);
        assert_eq!((big + F16::ONE).to_f32(), 2048.0);
        // 2048 + 3 rounds to 2052? ulp=2, 2051 -> nearest even multiple: 2052.
        assert_eq!((big + F16::from_f32(3.0)).to_f32(), 2052.0);
    }

    #[test]
    fn neg_flips_sign_only() {
        assert_eq!((-F16::ZERO).to_bits(), 0x8000);
        assert_eq!((-F16::ONE).to_f32(), -1.0);
        assert!((-F16::NAN).is_nan());
    }

    #[test]
    fn mul_add_single_rounding() {
        // With separate rounding, 255.875*257 would round differently than fused.
        let a = F16::from_f32(255.875);
        let b = F16::from_f32(257.0);
        let c = F16::from_f32(-65504.0);
        let fused = a.mul_add(b, c).to_f32();
        let expect = F16::from_f32(255.875f32.mul_add(257.0, -65504.0)).to_f32();
        assert_eq!(fused, expect);
    }

    #[test]
    fn ordering_matches_f32() {
        let vals = [-2.0f32, -0.5, 0.0, 0.25, 1.0, 3.5];
        for &x in &vals {
            for &y in &vals {
                assert_eq!(
                    F16::from_f32(x).partial_cmp(&F16::from_f32(y)),
                    x.partial_cmp(&y)
                );
            }
        }
        assert_eq!(F16::NAN.partial_cmp(&F16::ONE), None);
    }

    #[test]
    fn exhaustive_roundtrip_through_f32() {
        // Every one of the 65536 bit patterns must survive f16 -> f32 -> f16,
        // with NaNs allowed to canonicalize but required to stay NaN.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x} lost NaN-ness");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x} changed");
            }
        }
    }
}
