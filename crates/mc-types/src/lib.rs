//! Software floating-point datatypes and datatype metadata.
//!
//! AMD Matrix Cores operate on six datatypes; this crate implements the
//! floating-point ones that the paper evaluates — IEEE 754 binary16
//! ([`F16`]), bfloat16 ([`Bf16`]) — entirely in software (no hardware
//! half-precision support is assumed), plus a [`DType`] descriptor used
//! throughout the simulator, the WMMA layer, and the BLAS library to talk
//! about element types, sizes, and FLOP accounting.
//!
//! The conversions implement round-to-nearest-even, the IEEE 754 default
//! rounding mode, and handle subnormals, infinities, and NaNs exactly so
//! that the functional GEMM executor in `mc-blas` produces bit-faithful
//! mixed-precision results.

#![deny(missing_docs)]

mod bf16;
mod dtype;
mod f16;
mod real;
mod ulp;

pub use bf16::Bf16;
pub use dtype::{DType, DTypeClass};
pub use f16::F16;
pub use real::Real;
pub use ulp::{ulp_distance_f32, ulp_distance_f64, ApproxEq};
