//! Datatype descriptors shared across the ISA model, simulator, and BLAS.

use core::fmt;
use serde::{Deserialize, Serialize};

/// The element datatypes supported by CDNA2 Matrix Cores (plus FP32/FP64
/// SIMD types), as listed in §II of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DType {
    /// IEEE 754 binary16 half precision.
    F16,
    /// bfloat16 (truncated f32), machine-learning oriented.
    Bf16,
    /// IEEE 754 binary32 single precision.
    F32,
    /// IEEE 754 binary64 double precision.
    F64,
    /// 8-bit signed integer (machine-learning oriented).
    I8,
    /// 32-bit signed integer accumulator.
    I32,
}

/// Broad classification of a [`DType`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DTypeClass {
    /// IEEE 754 floating point (F16, F32, F64).
    IeeeFloat,
    /// Non-IEEE float formats (bfloat16).
    BrainFloat,
    /// Integer formats.
    Integer,
}

impl DType {
    /// All datatypes a CDNA2 Matrix Core can consume or produce.
    pub const ALL: [DType; 6] = [
        DType::F16,
        DType::Bf16,
        DType::F32,
        DType::F64,
        DType::I8,
        DType::I32,
    ];

    /// The three IEEE 754 floating-point types the paper evaluates.
    pub const IEEE_FLOATS: [DType; 3] = [DType::F16, DType::F32, DType::F64];

    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F16 | DType::Bf16 => 2,
            DType::F32 | DType::I32 => 4,
            DType::F64 => 8,
            DType::I8 => 1,
        }
    }

    /// Size of one element in bits.
    pub const fn size_bits(self) -> usize {
        self.size_bytes() * 8
    }

    /// Classification of this datatype.
    pub const fn class(self) -> DTypeClass {
        match self {
            DType::F16 | DType::F32 | DType::F64 => DTypeClass::IeeeFloat,
            DType::Bf16 => DTypeClass::BrainFloat,
            DType::I8 | DType::I32 => DTypeClass::Integer,
        }
    }

    /// `true` for any floating-point format.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F16 | DType::Bf16 | DType::F32 | DType::F64)
    }

    /// The lowercase token used in `V_MFMA_*` instruction mnemonics and
    /// LLVM builtin names (e.g. `f32`, `bf16`).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            DType::F16 => "f16",
            DType::Bf16 => "bf16",
            DType::F32 => "f32",
            DType::F64 => "f64",
            DType::I8 => "i8",
            DType::I32 => "i32",
        }
    }

    /// Number of elements of this type that fit in one 32-bit VGPR lane.
    pub const fn elements_per_vgpr(self) -> usize {
        4 / if self.size_bytes() > 4 {
            4
        } else {
            self.size_bytes()
        }
    }

    /// Number of 32-bit VGPRs one element occupies (1 for <=32-bit types,
    /// 2 for F64).
    pub const fn vgprs_per_element(self) -> usize {
        if self.size_bytes() <= 4 {
            1
        } else {
            self.size_bytes() / 4
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DType::F16 => "FP16",
            DType::Bf16 => "BF16",
            DType::F32 => "FP32",
            DType::F64 => "FP64",
            DType::I8 => "INT8",
            DType::I32 => "INT32",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_correct() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::Bf16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F64.size_bytes(), 8);
        assert_eq!(DType::I8.size_bytes(), 1);
        assert_eq!(DType::I32.size_bytes(), 4);
    }

    #[test]
    fn vgpr_packing() {
        assert_eq!(DType::F16.elements_per_vgpr(), 2);
        assert_eq!(DType::F32.elements_per_vgpr(), 1);
        assert_eq!(DType::F64.vgprs_per_element(), 2);
        assert_eq!(DType::I8.elements_per_vgpr(), 4);
    }

    #[test]
    fn classes() {
        assert_eq!(DType::F64.class(), DTypeClass::IeeeFloat);
        assert_eq!(DType::Bf16.class(), DTypeClass::BrainFloat);
        assert_eq!(DType::I8.class(), DTypeClass::Integer);
        assert!(DType::Bf16.is_float());
        assert!(!DType::I32.is_float());
    }

    #[test]
    fn mnemonics_match_isa_convention() {
        assert_eq!(DType::F64.mnemonic(), "f64");
        assert_eq!(DType::Bf16.mnemonic(), "bf16");
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(DType::F16.to_string(), "FP16");
        assert_eq!(DType::F64.to_string(), "FP64");
    }
}
