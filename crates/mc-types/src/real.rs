//! A numeric trait unifying the element types used by the functional
//! GEMM executor and the WMMA fragment API.

use crate::{Bf16, DType, F16};

/// A scalar element type usable in simulated matrix operations.
///
/// All arithmetic in the functional executors is routed through `f64`
/// "compute precision" and rounded back per-type, except where a kernel
/// explicitly models a lower-precision accumulator. This matches how the
/// Matrix Core datapath is specified (exact products, wide accumulate,
/// single rounding on writeback).
pub trait Real: Copy + Default + PartialEq + core::fmt::Debug + Send + Sync + 'static {
    /// The [`DType`] tag for this element type.
    const DTYPE: DType;

    /// Converts from an `f64` compute value (with this type's rounding).
    fn from_f64(value: f64) -> Self;

    /// Converts to an `f64` compute value (exact for all our types).
    fn to_f64(self) -> f64;

    /// The additive identity.
    fn zero() -> Self {
        Self::from_f64(0.0)
    }

    /// The multiplicative identity.
    fn one() -> Self {
        Self::from_f64(1.0)
    }
}

impl Real for F16 {
    const DTYPE: DType = DType::F16;

    fn from_f64(value: f64) -> Self {
        F16::from_f64(value)
    }

    fn to_f64(self) -> f64 {
        F16::to_f64(self)
    }
}

impl Real for Bf16 {
    const DTYPE: DType = DType::Bf16;

    fn from_f64(value: f64) -> Self {
        Bf16::from_f64(value)
    }

    fn to_f64(self) -> f64 {
        Bf16::to_f64(self)
    }
}

impl Real for f32 {
    const DTYPE: DType = DType::F32;

    fn from_f64(value: f64) -> Self {
        value as f32
    }

    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl Real for f64 {
    const DTYPE: DType = DType::F64;

    fn from_f64(value: f64) -> Self {
        value
    }

    fn to_f64(self) -> f64 {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Real>(v: f64) -> f64 {
        T::from_f64(v).to_f64()
    }

    #[test]
    fn identities() {
        assert_eq!(F16::zero().to_f64(), 0.0);
        assert_eq!(F16::one().to_f64(), 1.0);
        assert_eq!(f64::one(), 1.0);
        assert_eq!(Bf16::one().to_f64(), 1.0);
    }

    #[test]
    fn dtype_tags() {
        assert_eq!(<F16 as Real>::DTYPE, DType::F16);
        assert_eq!(<f32 as Real>::DTYPE, DType::F32);
        assert_eq!(<f64 as Real>::DTYPE, DType::F64);
        assert_eq!(<Bf16 as Real>::DTYPE, DType::Bf16);
    }

    #[test]
    fn conversion_precision_ladder() {
        // A value representable in f32 but not f16 loses precision only
        // where expected.
        let v = 1.0 + 2f64.powi(-12);
        assert_eq!(roundtrip::<f64>(v), v);
        assert_eq!(roundtrip::<f32>(v), v);
        assert_eq!(roundtrip::<F16>(v), 1.0); // below half ulp of f16
    }
}
