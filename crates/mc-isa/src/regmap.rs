//! Matrix-element ↔ register mapping for CDNA2 MFMA instructions.
//!
//! AMD publishes a Python tool (`amd_matrix_instruction_calculator`,
//! paper ref. \[9]) that tells developers which lane and register holds
//! each matrix element, enabling C-level programming of Matrix Cores via
//! compiler intrinsics (paper §III). This module is a Rust port of that
//! mapping logic for every CDNA2 MFMA instruction, with both directions
//! (element → register, register → elements) and a formatted report.
//!
//! The layout rules, validated against the tool's output:
//!
//! * **A operand** (`m×k`, `blocks`): each lane holds `e = m·k·blocks/64`
//!   elements, contiguous in `k`. With `g = k/e` column groups,
//!   element `(block, i, k)` lives in lane `i + m·(block·g + ⌊k/e⌋)`,
//!   packed slot `k mod e`.
//! * **B operand** (`k×n`): symmetric, with `j` in place of `i`.
//! * **C/D operands** (`m×n`): rows are processed four at a time.
//!   For `m·n·blocks > 64`: lane `j + n·(⌊i/4⌋ mod (64/n))`, register
//!   `(i mod 4) + 4·⌊⌊i/4⌋/(64/n)⌋ + block·(m·n/64)` — except the 4×4
//!   multi-block shapes, where blocks spread across lanes
//!   (lane `j + n·block`, register `i`). For `m·n·blocks = 64`
//!   (the FP64 4×4×4 shape) each lane holds exactly one element:
//!   lane `j + n·(block + blocks·i)`.
//!
//! Packed slots map to physical VGPRs by element size: two FP16/BF16
//! slots per 32-bit VGPR; one FP32/INT32; FP64 occupies a VGPR pair.

use core::fmt;

use mc_types::DType;

use crate::instr::{MatrixArch, MatrixInstruction};

/// The four operand matrices of `D ← A·B + C`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The `m×k` multiplicand (architectural VGPRs).
    A,
    /// The `k×n` multiplicand (architectural VGPRs).
    B,
    /// The `m×n` addend (accumulation VGPRs).
    C,
    /// The `m×n` result (accumulation VGPRs).
    D,
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Operand::A => "A",
            Operand::B => "B",
            Operand::C => "C",
            Operand::D => "D",
        })
    }
}

/// Where one matrix element lives inside the wavefront's register state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RegisterLocation {
    /// Wavefront lane (0–63).
    pub lane: u32,
    /// First 32-bit register index holding the element (VGPR for A/B,
    /// AccVGPR for C/D), relative to the operand's register block.
    pub vgpr: u32,
    /// Position within the 32-bit register for sub-word types
    /// (0 = low half, 1 = high half); always 0 for 32-/64-bit elements.
    pub half: u32,
    /// Number of consecutive 32-bit registers the element spans
    /// (2 for FP64, otherwise 1).
    pub width: u32,
}

/// A matrix element coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ElementCoord {
    /// Block index for multi-block instructions (0 for single-block).
    pub block: u32,
    /// Row within the block's matrix.
    pub row: u32,
    /// Column within the block's matrix.
    pub col: u32,
}

/// Errors from the mapping calculator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegmapError {
    /// The coordinate is outside the operand's shape.
    OutOfRange {
        /// The offending coordinate.
        coord: ElementCoord,
        /// The operand queried.
        operand: Operand,
    },
    /// Register mapping is only modelled for CDNA2 (NVIDIA does not
    /// document SASS-level mappings; paper §III).
    UnsupportedArch(MatrixArch),
}

impl fmt::Display for RegmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegmapError::OutOfRange { coord, operand } => write!(
                f,
                "element ({}, {}, {}) out of range for operand {operand}",
                coord.block, coord.row, coord.col
            ),
            RegmapError::UnsupportedArch(a) => {
                write!(f, "register mapping is not documented for {a}")
            }
        }
    }
}

impl std::error::Error for RegmapError {}

/// Computes the register location of one element of `operand`.
pub fn element_location(
    instr: &MatrixInstruction,
    operand: Operand,
    coord: ElementCoord,
) -> Result<RegisterLocation, RegmapError> {
    if instr.arch != MatrixArch::Cdna2 {
        return Err(RegmapError::UnsupportedArch(instr.arch));
    }
    let s = instr.shape;
    let (rows, cols) = match operand {
        Operand::A => (s.m, s.k),
        Operand::B => (s.k, s.n),
        Operand::C | Operand::D => (s.m, s.n),
    };
    if coord.block >= s.blocks || coord.row >= rows || coord.col >= cols {
        return Err(RegmapError::OutOfRange { coord, operand });
    }

    let loc = match operand {
        Operand::A => input_location(
            s.m,
            s.k,
            s.blocks,
            coord.block,
            coord.row,
            coord.col,
            instr.ab,
        ),
        // B is the transpose-symmetric layout: lanes indexed by column.
        Operand::B => input_location(
            s.n,
            s.k,
            s.blocks,
            coord.block,
            coord.col,
            coord.row,
            instr.ab,
        ),
        Operand::C | Operand::D => accum_location(s.m, s.n, s.blocks, coord, instr.cd),
    };
    Ok(loc)
}

fn input_location(
    m: u32,
    k: u32,
    blocks: u32,
    block: u32,
    row: u32,
    kk: u32,
    ty: DType,
) -> RegisterLocation {
    // Elements per lane, contiguous along k.
    let e = (m * k * blocks) / 64;
    debug_assert!(e >= 1 && k.is_multiple_of(e), "unsupported input layout");
    let groups = k / e;
    let lane = row + m * (block * groups + kk / e);
    let slot = kk % e;
    slot_to_register(slot, ty).with_lane(lane)
}

fn accum_location(m: u32, n: u32, blocks: u32, coord: ElementCoord, ty: DType) -> RegisterLocation {
    let ElementCoord {
        block,
        row: i,
        col: j,
    } = coord;
    let (lane, slot) = if m * n * blocks == 64 {
        // FP64 4x4x4 (4 blocks): one element per lane, no register freedom.
        (j + n * (block + blocks * i), 0)
    } else if m * n < 64 {
        // 4x4 shapes with 16 blocks: blocks fill the lane dimension.
        (j + n * block, i)
    } else {
        // Standard layout: four consecutive rows per register group,
        // row groups round-robin over the lane dimension then registers.
        let lanes_per_row_span = 64 / n;
        let rg = i / 4;
        let lane = j + n * (rg % lanes_per_row_span);
        let slot = (i % 4) + 4 * (rg / lanes_per_row_span) + block * (m * n / 64);
        (lane, slot)
    };
    slot_to_register(slot, ty).with_lane(lane)
}

fn slot_to_register(slot: u32, ty: DType) -> RegisterLocation {
    match ty.size_bytes() {
        2 => RegisterLocation {
            lane: 0,
            vgpr: slot / 2,
            half: slot % 2,
            width: 1,
        },
        4 => RegisterLocation {
            lane: 0,
            vgpr: slot,
            half: 0,
            width: 1,
        },
        8 => RegisterLocation {
            lane: 0,
            vgpr: slot * 2,
            half: 0,
            width: 2,
        },
        _ => RegisterLocation {
            // INT8: four elements per VGPR; treat `half` as byte position.
            lane: 0,
            vgpr: slot / 4,
            half: slot % 4,
            width: 1,
        },
    }
}

impl RegisterLocation {
    fn with_lane(mut self, lane: u32) -> Self {
        self.lane = lane;
        self
    }
}

/// Enumerates every element coordinate of an operand.
pub fn operand_coords(
    instr: &MatrixInstruction,
    operand: Operand,
) -> impl Iterator<Item = ElementCoord> {
    let s = instr.shape;
    let (rows, cols) = match operand {
        Operand::A => (s.m, s.k),
        Operand::B => (s.k, s.n),
        Operand::C | Operand::D => (s.m, s.n),
    };
    let blocks = s.blocks;
    (0..blocks).flat_map(move |block| {
        (0..rows).flat_map(move |row| (0..cols).map(move |col| ElementCoord { block, row, col }))
    })
}

/// All elements held by one lane for an operand, with their locations —
/// the inverse query the AMD tool answers with `--register-layout`.
pub fn lane_contents(
    instr: &MatrixInstruction,
    operand: Operand,
    lane: u32,
) -> Result<Vec<(ElementCoord, RegisterLocation)>, RegmapError> {
    let mut out = Vec::new();
    for coord in operand_coords(instr, operand) {
        let loc = element_location(instr, operand, coord)?;
        if loc.lane == lane {
            out.push((coord, loc));
        }
    }
    out.sort_by_key(|(_, loc)| (loc.vgpr, loc.half));
    Ok(out)
}

/// Renders a human-readable layout report for one operand, in the spirit
/// of the AMD matrix-instruction-calculator output.
pub fn layout_report(instr: &MatrixInstruction, operand: Operand) -> Result<String, RegmapError> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{} — operand {operand}", instr.mnemonic());
    let _ = writeln!(
        s,
        "shape {}x{}x{} blocks {}  element type {}",
        instr.shape.m,
        instr.shape.n,
        instr.shape.k,
        instr.shape.blocks,
        match operand {
            Operand::A | Operand::B => instr.ab,
            _ => instr.cd,
        }
    );
    for lane in 0..64 {
        let contents = lane_contents(instr, operand, lane)?;
        if contents.is_empty() {
            continue;
        }
        let _ = write!(s, "lane {lane:2}: ");
        for (coord, loc) in contents {
            let _ = write!(
                s,
                "v{}[{}]={}({},{},{}) ",
                loc.vgpr, loc.half, operand, coord.block, coord.row, coord.col
            );
        }
        s.push('\n');
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::cdna2_catalog;
    use std::collections::HashSet;

    fn get(cd: DType, ab: DType, m: u32, n: u32, k: u32) -> MatrixInstruction {
        *cdna2_catalog().find(cd, ab, m, n, k).unwrap()
    }

    #[test]
    fn known_mapping_f32_16x16x4_a() {
        // A[i][k] lives in lane i + 16k, VGPR 0 (one f32 per lane).
        let i = get(DType::F32, DType::F32, 16, 16, 4);
        for row in 0..16 {
            for k in 0..4 {
                let loc = element_location(
                    &i,
                    Operand::A,
                    ElementCoord {
                        block: 0,
                        row,
                        col: k,
                    },
                )
                .unwrap();
                assert_eq!(loc.lane, row + 16 * k);
                assert_eq!(loc.vgpr, 0);
            }
        }
    }

    #[test]
    fn known_mapping_mixed_16x16x16_a_packing() {
        // A[i][k]: lane i + 16*(k/4), packed slot k%4 -> VGPR k%4/2, half k%2.
        let i = get(DType::F32, DType::F16, 16, 16, 16);
        let loc = element_location(
            &i,
            Operand::A,
            ElementCoord {
                block: 0,
                row: 3,
                col: 9,
            },
        )
        .unwrap();
        assert_eq!(loc.lane, 3 + 16 * 2);
        assert_eq!(loc.vgpr, 0); // slot 1 -> vgpr 0 high half
        assert_eq!(loc.half, 1);
        let loc2 = element_location(
            &i,
            Operand::A,
            ElementCoord {
                block: 0,
                row: 0,
                col: 14,
            },
        )
        .unwrap();
        assert_eq!(loc2.vgpr, 1); // slot 2 -> vgpr 1 low half
        assert_eq!(loc2.half, 0);
    }

    #[test]
    fn known_mapping_f32_16x16x4_d() {
        // D[i][j]: register i%4, lane j + 16*(i/4).
        let i = get(DType::F32, DType::F32, 16, 16, 4);
        for row in 0..16 {
            for col in 0..16 {
                let loc =
                    element_location(&i, Operand::D, ElementCoord { block: 0, row, col }).unwrap();
                assert_eq!(loc.vgpr, row % 4);
                assert_eq!(loc.lane, col + 16 * (row / 4));
            }
        }
    }

    #[test]
    fn known_mapping_f32_32x32x8_d_interleave() {
        // 32x32 interleave: lane = j + 32*((i/4)%2), gpr = i%4 + 4*(i/8).
        let i = get(DType::F32, DType::F16, 32, 32, 8);
        let loc = element_location(
            &i,
            Operand::D,
            ElementCoord {
                block: 0,
                row: 13,
                col: 7,
            },
        )
        .unwrap();
        assert_eq!(loc.lane, 7 + 32); // 7 + 32
        assert_eq!(loc.vgpr, (13 % 4) + 4); // 1 + 4
    }

    #[test]
    fn fp64_elements_span_register_pairs() {
        let i = get(DType::F64, DType::F64, 16, 16, 4);
        let loc = element_location(
            &i,
            Operand::D,
            ElementCoord {
                block: 0,
                row: 5,
                col: 0,
            },
        )
        .unwrap();
        assert_eq!(loc.width, 2);
        assert_eq!(loc.vgpr, 2);
    }

    #[test]
    fn all_cdna2_mappings_are_bijective() {
        // For every instruction and operand: every element maps to a
        // distinct (lane, vgpr, half), lanes are within the wavefront,
        // and registers are within the instruction's declared footprint.
        for instr in cdna2_catalog().instructions() {
            for operand in [Operand::A, Operand::B, Operand::C, Operand::D] {
                let mut seen = HashSet::new();
                let max_regs = match operand {
                    Operand::A => instr.a_vgprs_per_lane(),
                    Operand::B => instr.b_vgprs_per_lane(),
                    Operand::C | Operand::D => instr.cd_agprs_per_lane(),
                };
                for coord in operand_coords(instr, operand) {
                    let loc = element_location(instr, operand, coord)
                        .unwrap_or_else(|e| panic!("{} {operand}: {e}", instr.mnemonic()));
                    assert!(
                        loc.lane < 64,
                        "{} {operand} lane {}",
                        instr.mnemonic(),
                        loc.lane
                    );
                    assert!(
                        loc.vgpr + loc.width <= max_regs,
                        "{} {operand}: vgpr {}+{} exceeds {max_regs}",
                        instr.mnemonic(),
                        loc.vgpr,
                        loc.width
                    );
                    assert!(
                        seen.insert((loc.lane, loc.vgpr, loc.half)),
                        "{} {operand}: collision at {:?} for {:?}",
                        instr.mnemonic(),
                        loc,
                        coord
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let i = get(DType::F32, DType::F32, 16, 16, 4);
        let err = element_location(
            &i,
            Operand::A,
            ElementCoord {
                block: 0,
                row: 16,
                col: 0,
            },
        );
        assert!(matches!(err, Err(RegmapError::OutOfRange { .. })));
        let err = element_location(
            &i,
            Operand::A,
            ElementCoord {
                block: 1,
                row: 0,
                col: 0,
            },
        );
        assert!(matches!(err, Err(RegmapError::OutOfRange { .. })));
    }

    #[test]
    fn ampere_mapping_is_unsupported() {
        let i = *crate::catalog::ampere_catalog()
            .find(DType::F32, DType::F16, 16, 8, 16)
            .unwrap();
        let err = element_location(
            &i,
            Operand::A,
            ElementCoord {
                block: 0,
                row: 0,
                col: 0,
            },
        );
        assert_eq!(err, Err(RegmapError::UnsupportedArch(MatrixArch::Ampere)));
    }

    #[test]
    fn lane_contents_inverse_is_consistent() {
        let i = get(DType::F32, DType::F16, 16, 16, 16);
        // Each lane holds 4 halves of A (2 VGPRs) and 4 f32 of D.
        let a = lane_contents(&i, Operand::A, 17).unwrap();
        assert_eq!(a.len(), 4);
        for (coord, loc) in &a {
            assert_eq!(loc.lane, 17);
            let direct = element_location(&i, Operand::A, *coord).unwrap();
            assert_eq!(&direct, loc);
        }
        let d = lane_contents(&i, Operand::D, 0).unwrap();
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn report_renders() {
        let i = get(DType::F64, DType::F64, 16, 16, 4);
        let report = layout_report(&i, Operand::A).unwrap();
        assert!(report.contains("v_mfma_f64_16x16x4f64"));
        assert!(report.contains("lane  0:"));
    }
}
