//! Vector-ALU (SIMD) instruction model.
//!
//! Each CDNA2 compute unit has four 16-lane SIMD units executing a
//! 64-thread wavefront over four cycles (one quarter-wave per cycle).
//! The paper's Eq. 1 counts these per-SIMD `SQ_INSTS_VALU_*` instructions
//! to separate SIMD-delivered FLOPs from Matrix-Core-delivered FLOPs.

use core::fmt;

use mc_types::DType;
use serde::{Deserialize, Serialize};

/// The arithmetic class of a vector-ALU instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValuOpKind {
    /// `V_ADD_*` — one FLOP per lane.
    Add,
    /// `V_MUL_*` — one FLOP per lane.
    Mul,
    /// `V_FMA_*` / `V_FMAC_*` — two FLOPs per lane.
    Fma,
    /// `V_PK_FMA_F16`-style packed maths — two FLOPs per packed element
    /// per lane (four per lane total for 2-wide packing).
    PackedFma,
    /// Non-arithmetic VALU work (moves, conversions, address maths);
    /// contributes cycles but no FLOPs.
    Move,
}

/// One vector-ALU instruction executed by a full wavefront.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ValuOp {
    /// Arithmetic class.
    pub kind: ValuOpKind,
    /// Element datatype.
    pub dtype: DType,
}

impl ValuOp {
    /// Convenience constructor.
    pub const fn new(kind: ValuOpKind, dtype: DType) -> Self {
        ValuOp { kind, dtype }
    }

    /// FLOPs performed per *lane* by one execution.
    pub const fn flops_per_lane(&self) -> u64 {
        match self.kind {
            ValuOpKind::Add | ValuOpKind::Mul => 1,
            ValuOpKind::Fma => 2,
            ValuOpKind::PackedFma => 4,
            ValuOpKind::Move => 0,
        }
    }

    /// FLOPs performed by a 64-lane wavefront executing this once.
    /// Matches the paper's Eq. 1 factors: 64 for add/mul, 128 for FMA.
    pub const fn flops_per_wavefront(&self) -> u64 {
        self.flops_per_lane() * 64
    }

    /// Issue cycles on a 16-wide SIMD for a 64-thread wavefront: four
    /// quarter-passes for 32-bit maths; FP64 runs at half rate (eight
    /// cycles) on CDNA2's full-rate-FP64 vector pipes only for FMA —
    /// we model add/mul/fma uniformly at full rate (CDNA2 vector FP64
    /// is full rate, a headline feature of the architecture).
    pub const fn issue_cycles(&self) -> u32 {
        4
    }

    /// The assembly mnemonic (e.g. `v_fma_f64`, `v_pk_fma_f16`).
    pub fn mnemonic(&self) -> String {
        let prefix = match self.kind {
            ValuOpKind::Add => "v_add",
            ValuOpKind::Mul => "v_mul",
            ValuOpKind::Fma => "v_fma",
            ValuOpKind::PackedFma => "v_pk_fma",
            ValuOpKind::Move => "v_mov",
        };
        match self.kind {
            ValuOpKind::Move => format!("{prefix}_b32"),
            _ => format!("{prefix}_{}", self.dtype.mnemonic()),
        }
    }
}

impl fmt::Display for ValuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_flop_factors() {
        // Paper Eq. 1: 64·ADD + 64·MUL + 128·FMA.
        assert_eq!(
            ValuOp::new(ValuOpKind::Add, DType::F64).flops_per_wavefront(),
            64
        );
        assert_eq!(
            ValuOp::new(ValuOpKind::Mul, DType::F64).flops_per_wavefront(),
            64
        );
        assert_eq!(
            ValuOp::new(ValuOpKind::Fma, DType::F64).flops_per_wavefront(),
            128
        );
        assert_eq!(
            ValuOp::new(ValuOpKind::Move, DType::F32).flops_per_wavefront(),
            0
        );
    }

    #[test]
    fn packed_f16_doubles_fma() {
        let pk = ValuOp::new(ValuOpKind::PackedFma, DType::F16);
        assert_eq!(pk.flops_per_wavefront(), 256);
        assert_eq!(pk.mnemonic(), "v_pk_fma_f16");
    }

    #[test]
    fn mnemonics() {
        assert_eq!(
            ValuOp::new(ValuOpKind::Fma, DType::F64).mnemonic(),
            "v_fma_f64"
        );
        assert_eq!(
            ValuOp::new(ValuOpKind::Add, DType::F32).mnemonic(),
            "v_add_f32"
        );
        assert_eq!(
            ValuOp::new(ValuOpKind::Move, DType::F32).mnemonic(),
            "v_mov_b32"
        );
    }

    #[test]
    fn wavefront_issue_occupies_four_simd_cycles() {
        assert_eq!(ValuOp::new(ValuOpKind::Fma, DType::F32).issue_cycles(), 4);
    }
}
