//! The matrix instruction descriptor and its naming conventions.

use core::fmt;

use mc_types::DType;
use serde::{Deserialize, Serialize};

use crate::shape::MfmaShape;

/// The GPU architecture an instruction belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatrixArch {
    /// AMD CDNA1 (MI100) — first-generation Matrix Cores.
    Cdna1,
    /// AMD CDNA2 (MI200 series) — Matrix Cores, `V_MFMA_*` instructions.
    Cdna2,
    /// NVIDIA Ampere (A100) — Tensor Cores, `mma.sync` PTX / HMMA·DMMA SASS.
    Ampere,
}

impl fmt::Display for MatrixArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MatrixArch::Cdna1 => "CDNA1",
            MatrixArch::Cdna2 => "CDNA2",
            MatrixArch::Ampere => "Ampere",
        })
    }
}

/// A single matrix fused multiply-add instruction (one row of the paper's
/// Table I, at full granularity).
///
/// For CDNA2 this corresponds to one `V_MFMA_{typeCD}_{MxNxK}{typeAB}`
/// opcode; for Ampere, to one `mma.sync.aligned.MxNxK...` PTX shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatrixInstruction {
    /// Architecture providing this instruction.
    pub arch: MatrixArch,
    /// Datatype of the `C` and `D` matrices (the accumulator type).
    pub cd: DType,
    /// Datatype of the `A` and `B` matrices (the input type).
    pub ab: DType,
    /// Matrix shape, including the number of independent blocks.
    pub shape: MfmaShape,
    /// Issue-to-issue latency in cycles for back-to-back dependent issues —
    /// equivalently the pipeline occupancy of the matrix unit per
    /// instruction. CDNA2 values follow the paper's Table II measurements.
    pub latency_cycles: u32,
    /// `true` for the deprecated CDNA1-era bfloat16 encodings (`*_BF16`
    /// without the `_1K` suffix) that CDNA2 retains at half rate.
    pub legacy: bool,
}

/// Error returned when a mnemonic string cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseMnemonicError {
    mnemonic: String,
    reason: &'static str,
}

impl ParseMnemonicError {
    fn new(mnemonic: &str, reason: &'static str) -> Self {
        ParseMnemonicError {
            mnemonic: mnemonic.to_owned(),
            reason,
        }
    }
}

impl fmt::Display for ParseMnemonicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse mnemonic `{}`: {}",
            self.mnemonic, self.reason
        )
    }
}

impl std::error::Error for ParseMnemonicError {}

impl MatrixInstruction {
    /// Operations (FLOPs, or integer ops for I8) performed by one
    /// execution of this instruction: `2·m·n·k·blocks`.
    pub const fn flops(&self) -> u64 {
        self.shape.flops()
    }

    /// Matrix-unit operations per compute unit per cycle, assuming all
    /// four matrix units in a CU (or the four tensor cores in an SM) issue
    /// continuously. This is the `8·m·n·k/c` quantity (for one block) the
    /// paper derives in §V-A to validate latencies against AMD datasheets.
    pub fn flops_per_cu_per_cycle(&self) -> f64 {
        const MATRIX_UNITS_PER_CU: f64 = 4.0;
        MATRIX_UNITS_PER_CU * self.flops() as f64 / f64::from(self.latency_cycles)
    }

    /// The assembly mnemonic.
    ///
    /// CDNA2: `v_mfma_{cd}_{m}x{n}x{k}{ab}` with the `_1k` suffix for
    /// current-generation bf16 (e.g. `v_mfma_f32_16x16x16f16`,
    /// `v_mfma_f64_16x16x4f64`, `v_mfma_f32_16x16x16bf16_1k`).
    /// Ampere: the PTX shape form `mma.sync.aligned.m16n8k16.f32.f16`.
    pub fn mnemonic(&self) -> String {
        match self.arch {
            MatrixArch::Cdna1 | MatrixArch::Cdna2 => {
                let suffix = if self.ab == DType::Bf16 && !self.legacy {
                    "_1k"
                } else {
                    ""
                };
                format!(
                    "v_mfma_{}_{}x{}x{}{}{}",
                    self.cd.mnemonic(),
                    self.shape.m,
                    self.shape.n,
                    self.shape.k,
                    self.ab.mnemonic(),
                    suffix
                )
            }
            MatrixArch::Ampere => format!(
                "mma.sync.aligned.m{}n{}k{}.{}.{}",
                self.shape.m,
                self.shape.n,
                self.shape.k,
                self.cd.mnemonic(),
                self.ab.mnemonic()
            ),
        }
    }

    /// The LLVM compiler-intrinsic name for CDNA2 instructions
    /// (`__builtin_amdgcn_mfma_...`, paper §III), or `None` on Ampere,
    /// where no official C-level interface exists.
    pub fn builtin(&self) -> Option<String> {
        match self.arch {
            MatrixArch::Cdna1 | MatrixArch::Cdna2 => {
                let suffix = if self.ab == DType::Bf16 && !self.legacy {
                    "_1k"
                } else {
                    ""
                };
                Some(format!(
                    "__builtin_amdgcn_mfma_{}_{}x{}x{}{}{}",
                    self.cd.mnemonic(),
                    self.shape.m,
                    self.shape.n,
                    self.shape.k,
                    self.ab.mnemonic(),
                    suffix
                ))
            }
            MatrixArch::Ampere => None,
        }
    }

    /// Parses a CDNA2 `v_mfma_*` mnemonic back into its descriptor
    /// (latency is looked up from the catalog by the caller; this returns
    /// the *structural* fields with `latency_cycles = 0`, `blocks = 1`).
    pub fn parse_cdna2_mnemonic(s: &str) -> Result<MatrixInstruction, ParseMnemonicError> {
        let lower = s.to_ascii_lowercase();
        let rest = lower
            .strip_prefix("v_mfma_")
            .ok_or_else(|| ParseMnemonicError::new(s, "missing `v_mfma_` prefix"))?;
        let (rest, legacy_suffix) = match rest.strip_suffix("_1k") {
            Some(r) => (r, false),
            None => (rest, true),
        };
        let mut parts = rest.splitn(2, '_');
        let cd_tok = parts
            .next()
            .ok_or_else(|| ParseMnemonicError::new(s, "missing output type"))?;
        let tail = parts
            .next()
            .ok_or_else(|| ParseMnemonicError::new(s, "missing shape"))?;

        let cd =
            parse_dtype(cd_tok).ok_or_else(|| ParseMnemonicError::new(s, "bad output type"))?;

        // tail looks like `16x16x16f16`: split digits/x from the trailing type.
        let type_start = tail
            .find(|c: char| c.is_ascii_alphabetic() && c != 'x')
            .ok_or_else(|| ParseMnemonicError::new(s, "missing input type"))?;
        let (shape_tok, ab_tok) = tail.split_at(type_start);
        let ab = parse_dtype(ab_tok).ok_or_else(|| ParseMnemonicError::new(s, "bad input type"))?;

        let dims: Vec<u32> = shape_tok
            .split('x')
            .map(|d| d.parse::<u32>())
            .collect::<Result<_, _>>()
            .map_err(|_| ParseMnemonicError::new(s, "bad shape dimensions"))?;
        if dims.len() != 3 {
            return Err(ParseMnemonicError::new(s, "shape must be MxNxK"));
        }

        Ok(MatrixInstruction {
            arch: MatrixArch::Cdna2,
            cd,
            ab,
            shape: MfmaShape::new(dims[0], dims[1], dims[2]),
            latency_cycles: 0,
            legacy: ab == DType::Bf16 && legacy_suffix,
        })
    }

    /// 32-bit architectural VGPRs per lane needed to hold one block-set of
    /// the A operand (all blocks; CDNA2 wavefront = 64 lanes, Ampere
    /// warp = 32 lanes).
    pub fn a_vgprs_per_lane(&self) -> u32 {
        self.operand_vgprs(self.shape.a_elements_total(), self.ab)
    }

    /// VGPRs per lane for the B operand.
    pub fn b_vgprs_per_lane(&self) -> u32 {
        self.operand_vgprs(self.shape.b_elements_total(), self.ab)
    }

    /// Accumulation GPRs (AccVGPRs on CDNA2) per lane for the C/D operand.
    pub fn cd_agprs_per_lane(&self) -> u32 {
        self.operand_vgprs(self.shape.cd_elements_total(), self.cd)
    }

    fn operand_vgprs(&self, total_elements: u64, ty: DType) -> u32 {
        let lanes = match self.arch {
            MatrixArch::Cdna1 | MatrixArch::Cdna2 => 64u64,
            MatrixArch::Ampere => 32u64,
        };
        let per_lane = total_elements.div_ceil(lanes);
        let bytes = per_lane * ty.size_bytes() as u64;
        u32::try_from(bytes.div_ceil(4)).expect("register count fits in u32")
    }
}

fn parse_dtype(tok: &str) -> Option<DType> {
    Some(match tok {
        "f16" => DType::F16,
        "bf16" => DType::Bf16,
        "f32" => DType::F32,
        "f64" => DType::F64,
        "i8" => DType::I8,
        "i32" => DType::I32,
        _ => return None,
    })
}

impl fmt::Display for MatrixInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} <- {}, {}, {} cyc]",
            self.mnemonic(),
            self.cd,
            self.ab,
            self.shape,
            self.latency_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_16x16x16() -> MatrixInstruction {
        MatrixInstruction {
            arch: MatrixArch::Cdna2,
            cd: DType::F32,
            ab: DType::F16,
            shape: MfmaShape::new(16, 16, 16),
            latency_cycles: 32,
            legacy: false,
        }
    }

    #[test]
    fn mnemonic_formats() {
        assert_eq!(mixed_16x16x16().mnemonic(), "v_mfma_f32_16x16x16f16");
        let f64i = MatrixInstruction {
            cd: DType::F64,
            ab: DType::F64,
            shape: MfmaShape::new(16, 16, 4),
            ..mixed_16x16x16()
        };
        assert_eq!(f64i.mnemonic(), "v_mfma_f64_16x16x4f64");
        let bf = MatrixInstruction {
            ab: DType::Bf16,
            ..mixed_16x16x16()
        };
        assert_eq!(bf.mnemonic(), "v_mfma_f32_16x16x16bf16_1k");
    }

    #[test]
    fn builtin_names() {
        assert_eq!(
            mixed_16x16x16().builtin().unwrap(),
            "__builtin_amdgcn_mfma_f32_16x16x16f16"
        );
        let ampere = MatrixInstruction {
            arch: MatrixArch::Ampere,
            shape: MfmaShape::new(16, 8, 16),
            ..mixed_16x16x16()
        };
        assert_eq!(ampere.builtin(), None);
        assert_eq!(ampere.mnemonic(), "mma.sync.aligned.m16n8k16.f32.f16");
    }

    #[test]
    fn parse_roundtrip() {
        for m in [
            "v_mfma_f32_16x16x16f16",
            "v_mfma_f64_16x16x4f64",
            "v_mfma_f32_32x32x2f32",
            "v_mfma_f32_16x16x16bf16_1k",
            "v_mfma_i32_16x16x16i8",
        ] {
            let parsed = MatrixInstruction::parse_cdna2_mnemonic(m).unwrap();
            assert_eq!(parsed.mnemonic(), m, "roundtrip of {m}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MatrixInstruction::parse_cdna2_mnemonic("v_add_f32").is_err());
        assert!(MatrixInstruction::parse_cdna2_mnemonic("v_mfma_f32_16x16f16").is_err());
        assert!(MatrixInstruction::parse_cdna2_mnemonic("v_mfma_q7_16x16x4f16").is_err());
    }

    #[test]
    fn per_cu_rate_matches_paper_derivation() {
        // §V-A: a CU with four Matrix Cores provides 8mnk/c FLOPs/CU/cycle.
        // FP32<-FP16 16x16x16 at 32 cycles: 8*16*16*16/32 = 1024.
        assert_eq!(mixed_16x16x16().flops_per_cu_per_cycle(), 1024.0);
        let f64i = MatrixInstruction {
            cd: DType::F64,
            ab: DType::F64,
            shape: MfmaShape::new(16, 16, 4),
            ..mixed_16x16x16()
        };
        // 8*16*16*4/32 = 256 FLOPs/CU/cycle -> 110 CU * 1.7 GHz -> 47.9 TF/GCD.
        assert_eq!(f64i.flops_per_cu_per_cycle(), 256.0);
    }

    #[test]
    fn register_footprints() {
        let i = mixed_16x16x16();
        // A: 256 f16 elements over 64 lanes = 4 halves = 2 VGPRs.
        assert_eq!(i.a_vgprs_per_lane(), 2);
        assert_eq!(i.b_vgprs_per_lane(), 2);
        // D: 256 f32 elements over 64 lanes = 4 AccVGPRs.
        assert_eq!(i.cd_agprs_per_lane(), 4);

        let f64i = MatrixInstruction {
            cd: DType::F64,
            ab: DType::F64,
            shape: MfmaShape::new(16, 16, 4),
            ..mixed_16x16x16()
        };
        // A: 64 f64 elements over 64 lanes = 1 element = 2 VGPRs.
        assert_eq!(f64i.a_vgprs_per_lane(), 2);
        // D: 256 f64 over 64 lanes = 4 elements = 8 AccVGPRs.
        assert_eq!(f64i.cd_agprs_per_lane(), 8);
    }
}
