//! Matrix shapes for MFMA / MMA instructions.

use core::fmt;
use serde::{Deserialize, Serialize};

/// The shape of a matrix fused multiply-add instruction.
///
/// One instruction computes `D_i ← A_i·B_i + C_i` for `i ∈ [0, blocks)`,
/// where each `A_i` is `m×k`, `B_i` is `k×n`, and `C_i`/`D_i` are `m×n`
/// (paper §II). Most large shapes are single-block; CDNA2 additionally
/// offers small shapes where one Matrix Core executes up to 16 parallel
/// blocks on independent matrices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MfmaShape {
    /// Rows of A, C, and D.
    pub m: u32,
    /// Columns of B, C, and D.
    pub n: u32,
    /// Columns of A / rows of B (the reduction dimension).
    pub k: u32,
    /// Number of independent (A, B, C, D) groups the instruction operates on.
    pub blocks: u32,
}

impl MfmaShape {
    /// Creates a single-block `m×n×k` shape.
    pub const fn new(m: u32, n: u32, k: u32) -> Self {
        MfmaShape { m, n, k, blocks: 1 }
    }

    /// Creates a multi-block shape.
    pub const fn with_blocks(m: u32, n: u32, k: u32, blocks: u32) -> Self {
        MfmaShape { m, n, k, blocks }
    }

    /// Floating-point (or integer) operations performed by one instruction:
    /// `2·m·n·k` per block (one multiply + one add per MAC).
    pub const fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64 * self.blocks as u64
    }

    /// Elements in one block of A (`m×k`).
    pub const fn a_elements(&self) -> u64 {
        self.m as u64 * self.k as u64
    }

    /// Elements in one block of B (`k×n`).
    pub const fn b_elements(&self) -> u64 {
        self.k as u64 * self.n as u64
    }

    /// Elements in one block of C or D (`m×n`).
    pub const fn cd_elements(&self) -> u64 {
        self.m as u64 * self.n as u64
    }

    /// Total elements of A across all blocks.
    pub const fn a_elements_total(&self) -> u64 {
        self.a_elements() * self.blocks as u64
    }

    /// Total elements of B across all blocks.
    pub const fn b_elements_total(&self) -> u64 {
        self.b_elements() * self.blocks as u64
    }

    /// Total elements of C/D across all blocks.
    pub const fn cd_elements_total(&self) -> u64 {
        self.cd_elements() * self.blocks as u64
    }

    /// The `MxNxK` token used in instruction mnemonics (block count is not
    /// part of the mnemonic; it is implied by the shape).
    pub fn mnemonic_token(&self) -> String {
        format!("{}x{}x{}", self.m, self.n, self.k)
    }
}

impl fmt::Display for MfmaShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.blocks == 1 {
            write!(f, "{}x{}x{}", self.m, self.n, self.k)
        } else {
            write!(
                f,
                "{}x{}x{} ({} blocks)",
                self.m, self.n, self.k, self.blocks
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_formula() {
        // Paper §V-A: an m×n×k MFMA performs 2mnk floating-point operations.
        assert_eq!(MfmaShape::new(16, 16, 16).flops(), 8192);
        assert_eq!(MfmaShape::new(16, 16, 4).flops(), 2048);
        assert_eq!(MfmaShape::new(32, 32, 8).flops(), 16384);
        assert_eq!(MfmaShape::new(32, 32, 2).flops(), 4096);
        // Multi-block shapes multiply up.
        assert_eq!(MfmaShape::with_blocks(4, 4, 1, 16).flops(), 512);
    }

    #[test]
    fn element_counts() {
        let s = MfmaShape::new(16, 16, 4);
        assert_eq!(s.a_elements(), 64);
        assert_eq!(s.b_elements(), 64);
        assert_eq!(s.cd_elements(), 256);
        let multi = MfmaShape::with_blocks(4, 4, 4, 16);
        assert_eq!(multi.a_elements_total(), 256);
        assert_eq!(multi.cd_elements_total(), 256);
    }

    #[test]
    fn display_and_token() {
        assert_eq!(MfmaShape::new(16, 16, 16).to_string(), "16x16x16");
        assert_eq!(
            MfmaShape::with_blocks(4, 4, 1, 16).to_string(),
            "4x4x1 (16 blocks)"
        );
        assert_eq!(MfmaShape::new(32, 32, 8).mnemonic_token(), "32x32x8");
    }
}
