//! Steady-state unrolled traversal of a [`WaveProgram`].
//!
//! Both the `mc-lint` S_NOP hazard scan and the `mc-flow` dataflow
//! verifier need to see the loop body more than once: a hazard or race
//! opened at the *bottom* of the loop is only visible when the walk
//! wraps around the back edge to the top. This module is the single
//! owner of that back-edge logic — it linearizes a program into
//! prologue / `unroll` body passes / epilogue, carrying the concrete
//! iteration index each body pass represents so iteration-dependent
//! resources (the [`crate::kernel::StageTag`] rotation of a
//! double-buffered pipeline) resolve exactly.
//!
//! Two passes reach the steady state for iteration-independent analyses
//! (the hazard scan: any window crossing the back edge once is seen).
//! Iteration-dependent analyses need one more: with a period-2 stage
//! rotation the `0→1` and `1→2` adjacencies touch *different* stage
//! pairings, so `mc-flow` walks `min(iterations, 3)` passes.

use crate::kernel::{SlotOp, WaveProgram};

/// Which program section a [`Pass`] walks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// The straight-line prologue (once).
    Prologue,
    /// One iteration of the loop body.
    Body,
    /// The straight-line epilogue (once).
    Epilogue,
}

/// One linear pass over a program section in the unrolled walk.
#[derive(Clone, Copy, Debug)]
pub struct Pass<'a> {
    /// Section this pass walks.
    pub kind: PassKind,
    /// Concrete loop iteration this pass represents (0 for
    /// prologue/epilogue). Body passes count from 0, so rotating stage
    /// tags resolve exactly as they would on the first iterations of
    /// the real loop.
    pub iteration: u64,
    /// The section's static instruction slots.
    pub ops: &'a [SlotOp],
}

/// Linearizes `program` into prologue, `min(body_iterations, unroll)`
/// body passes (iterations `0..n`), and epilogue.
///
/// The prologue→body adjacency is exact (the walk starts at iteration
/// 0). The epilogue follows the *last unrolled* iteration rather than
/// iteration `body_iterations - 1`; analyses that depend on the
/// epilogue's stage parity must account for that approximation (the
/// shipped emitters end every body in a barrier, so no LDS state leaks
/// across it).
pub fn steady_passes(program: &WaveProgram, unroll: u64) -> Vec<Pass<'_>> {
    let mut passes = vec![Pass {
        kind: PassKind::Prologue,
        iteration: 0,
        ops: &program.prologue,
    }];
    for iteration in 0..program.body_iterations.min(unroll) {
        passes.push(Pass {
            kind: PassKind::Body,
            iteration,
            ops: &program.body,
        });
    }
    passes.push(Pass {
        kind: PassKind::Epilogue,
        iteration: 0,
        ops: &program.epilogue,
    });
    passes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(iters: u64) -> WaveProgram {
        WaveProgram {
            prologue: vec![SlotOp::Scalar],
            body: vec![SlotOp::Barrier],
            body_iterations: iters,
            epilogue: vec![SlotOp::global_store(16)],
        }
    }

    #[test]
    fn unroll_is_clamped_by_iteration_count() {
        let p = program(1);
        let passes = steady_passes(&p, 3);
        let kinds: Vec<PassKind> = passes.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            [PassKind::Prologue, PassKind::Body, PassKind::Epilogue]
        );
    }

    #[test]
    fn body_passes_carry_iteration_indices() {
        let p = program(100);
        let passes = steady_passes(&p, 3);
        let body: Vec<u64> = passes
            .iter()
            .filter(|p| p.kind == PassKind::Body)
            .map(|p| p.iteration)
            .collect();
        assert_eq!(body, [0, 1, 2]);
        assert_eq!(passes.first().unwrap().kind, PassKind::Prologue);
        assert_eq!(passes.last().unwrap().kind, PassKind::Epilogue);
    }

    #[test]
    fn zero_iterations_skip_the_body() {
        let p = program(0);
        let passes = steady_passes(&p, 2);
        assert!(passes.iter().all(|p| p.kind != PassKind::Body));
    }
}
