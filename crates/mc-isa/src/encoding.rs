//! Machine-code encoding of CDNA2 MFMA instructions (VOP3P-MAI format).
//!
//! The MI200 ISA reference (paper ref. \[8]) defines `V_MFMA_*` as 64-bit
//! VOP3P-encoded instructions. This module implements the encoder and a
//! decoder for that format, with the opcode numbering of the MI200 ISA
//! manual's VOP3P opcode table:
//!
//! ```text
//! DWORD0: [31:23] = 0b110100111 (VOP3P encoding)
//!         [22:16] = opcode
//!         [15]    = ACC_CD  (C/D in AccVGPRs)
//!         [14:11] = CBSZ/ABID hint bits (broadcast controls, low half)
//!         [10:8]  = reserved
//!         [7:0]   = VDST
//! DWORD1: [31:29] = BLGP (B-lane group pattern)
//!         [28]    = ACC(src2)
//!         [27]    = ACC(src1)
//!         [26:18] = SRC2
//!         [17:9]  = SRC1
//!         [8:0]   = SRC0
//! ```
//!
//! Registers use the scalar/vector operand address space: VGPR `v[n]`
//! encodes as `256 + n` in the 9-bit source fields (hence the +256 seen
//! in disassembly), and AccVGPRs are selected by the ACC bits.

use crate::instr::{MatrixArch, MatrixInstruction};

/// VOP3P encoding marker in bits \[31:23] of DWORD0.
pub const VOP3P_ENCODING: u32 = 0b1_1010_0111;

/// Bits the encoder never emits: DWORD0 \[14:8] (CBSZ/ABID hints plus
/// the reserved field) and DWORD1 \[31:29] (BLGP). A word with any of
/// these set carries state [`MfmaEncoding`] cannot represent, so
/// [`MfmaEncoding::from_u64`] rejects it rather than decode lossily.
pub const RESERVED_MASK: u64 = (0b111u64 << 61) | 0x7F00;

/// Operand descriptor: a (Acc)VGPR base register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reg {
    /// Architectural VGPR `v[n]`.
    V(u8),
    /// Accumulation VGPR `a[n]`.
    A(u8),
}

impl Reg {
    fn field(self) -> u32 {
        match self {
            // VGPRs occupy 256..511 of the 9-bit operand space.
            Reg::V(n) => 256 + u32::from(n),
            Reg::A(n) => 256 + u32::from(n),
        }
    }

    fn is_acc(self) -> bool {
        matches!(self, Reg::A(_))
    }
}

/// A fully-specified MFMA instruction instance ready to encode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MfmaEncoding {
    /// Opcode from the MI200 VOP3P-MAI table.
    pub opcode: u8,
    /// Destination (D) base register.
    pub vdst: Reg,
    /// A-matrix base register.
    pub src0: Reg,
    /// B-matrix base register.
    pub src1: Reg,
    /// C-matrix base register.
    pub src2: Reg,
}

/// Errors from encoding/decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// The instruction has no VOP3P-MAI opcode (not a CDNA2 MFMA).
    NoOpcode(String),
    /// The 64-bit word is not VOP3P-encoded.
    NotVop3p(u64),
    /// The opcode field does not name an MFMA instruction.
    UnknownOpcode(u8),
    /// Reserved or unsupported-modifier bits are set. The encoder never
    /// emits CBSZ/ABID/BLGP or the reserved DWORD0 bits, so a word with
    /// any of them set cannot round-trip through [`MfmaEncoding`].
    ReservedBits {
        /// The offending word.
        word: u64,
        /// The set bits that fall inside the reserved/modifier mask.
        bits: u64,
    },
    /// A 9-bit source operand field falls outside the VGPR window
    /// `256..512` (scalar/constant operands are not valid MFMA sources).
    OperandOutOfRange {
        /// Which source field (`src0`, `src1`, or `src2`).
        field: &'static str,
        /// The raw 9-bit field value.
        value: u32,
    },
}

impl core::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EncodeError::NoOpcode(m) => write!(f, "`{m}` has no VOP3P-MAI opcode"),
            EncodeError::NotVop3p(w) => write!(f, "word {w:#018x} is not VOP3P-encoded"),
            EncodeError::UnknownOpcode(op) => write!(f, "opcode {op:#04x} is not an MFMA"),
            EncodeError::ReservedBits { word, bits } => write!(
                f,
                "word {word:#018x} sets reserved/modifier bits {bits:#018x}"
            ),
            EncodeError::OperandOutOfRange { field, value } => write!(
                f,
                "{field} field {value:#05x} is outside the VGPR window 256..512"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

/// The MI200 VOP3P-MAI opcode table: `(opcode, mnemonic)`.
pub const OPCODE_TABLE: &[(u8, &str)] = &[
    (0x40, "v_mfma_f32_32x32x1f32"),
    (0x41, "v_mfma_f32_16x16x1f32"),
    (0x42, "v_mfma_f32_4x4x1f32"),
    (0x44, "v_mfma_f32_32x32x2f32"),
    (0x45, "v_mfma_f32_16x16x4f32"),
    (0x48, "v_mfma_f32_32x32x4f16"),
    (0x49, "v_mfma_f32_16x16x4f16"),
    (0x4A, "v_mfma_f32_4x4x4f16"),
    (0x4C, "v_mfma_f32_32x32x8f16"),
    (0x4D, "v_mfma_f32_16x16x16f16"),
    (0x50, "v_mfma_i32_32x32x4i8"),
    (0x51, "v_mfma_i32_16x16x4i8"),
    (0x52, "v_mfma_i32_4x4x4i8"),
    (0x54, "v_mfma_i32_32x32x8i8"),
    (0x55, "v_mfma_i32_16x16x16i8"),
    (0x58, "v_mfma_f32_32x32x2bf16"),
    (0x59, "v_mfma_f32_16x16x2bf16"),
    (0x5A, "v_mfma_f32_4x4x2bf16"),
    (0x5C, "v_mfma_f32_32x32x4bf16"),
    (0x5D, "v_mfma_f32_16x16x8bf16"),
    (0x63, "v_mfma_f32_32x32x4bf16_1k"),
    (0x64, "v_mfma_f32_16x16x4bf16_1k"),
    (0x65, "v_mfma_f32_4x4x4bf16_1k"),
    (0x66, "v_mfma_f32_32x32x8bf16_1k"),
    (0x67, "v_mfma_f32_16x16x16bf16_1k"),
    (0x6E, "v_mfma_f64_16x16x4f64"),
    (0x6F, "v_mfma_f64_4x4x4f64"),
];

/// Looks up the VOP3P-MAI opcode for an instruction.
pub fn opcode_of(instr: &MatrixInstruction) -> Result<u8, EncodeError> {
    if instr.arch != MatrixArch::Cdna2 {
        return Err(EncodeError::NoOpcode(instr.mnemonic()));
    }
    let m = instr.mnemonic();
    OPCODE_TABLE
        .iter()
        .find(|(_, name)| *name == m)
        .map(|(op, _)| *op)
        .ok_or(EncodeError::NoOpcode(m))
}

/// Builds an encoding for an instruction with concrete registers.
pub fn encode_instance(
    instr: &MatrixInstruction,
    vdst: Reg,
    src0: Reg,
    src1: Reg,
    src2: Reg,
) -> Result<MfmaEncoding, EncodeError> {
    Ok(MfmaEncoding {
        opcode: opcode_of(instr)?,
        vdst,
        src0,
        src1,
        src2,
    })
}

impl MfmaEncoding {
    /// Packs the instruction into its 64-bit machine word
    /// (DWORD1 in the high half).
    pub fn to_u64(&self) -> u64 {
        let vdst_n = match self.vdst {
            Reg::V(n) | Reg::A(n) => u32::from(n),
        };
        let dword0: u32 = (VOP3P_ENCODING << 23)
            | (u32::from(self.opcode) << 16)
            | (u32::from(self.vdst.is_acc()) << 15)
            | vdst_n;
        let dword1: u32 = (u32::from(self.src2.is_acc()) << 28)
            | (u32::from(self.src1.is_acc()) << 27)
            | ((self.src2.field() & 0x1FF) << 18)
            | ((self.src1.field() & 0x1FF) << 9)
            | (self.src0.field() & 0x1FF);
        (u64::from(dword1) << 32) | u64::from(dword0)
    }

    /// Unpacks a 64-bit machine word.
    pub fn from_u64(word: u64) -> Result<MfmaEncoding, EncodeError> {
        let dword0 = (word & 0xFFFF_FFFF) as u32;
        let dword1 = (word >> 32) as u32;
        if dword0 >> 23 != VOP3P_ENCODING {
            return Err(EncodeError::NotVop3p(word));
        }
        let opcode = ((dword0 >> 16) & 0x7F) as u8;
        if !OPCODE_TABLE.iter().any(|(op, _)| *op == opcode) {
            return Err(EncodeError::UnknownOpcode(opcode));
        }
        if word & RESERVED_MASK != 0 {
            return Err(EncodeError::ReservedBits {
                word,
                bits: word & RESERVED_MASK,
            });
        }
        let unfield = |f: u32, name: &'static str, acc: bool| -> Result<Reg, EncodeError> {
            // The 9-bit operand space below 256 names SGPRs and inline
            // constants, which are not valid MFMA matrix sources.
            let n = f.checked_sub(256).ok_or(EncodeError::OperandOutOfRange {
                field: name,
                value: f,
            })? as u8;
            Ok(if acc { Reg::A(n) } else { Reg::V(n) })
        };
        let acc_cd = (dword0 >> 15) & 1 == 1;
        Ok(MfmaEncoding {
            opcode,
            vdst: if acc_cd {
                Reg::A((dword0 & 0xFF) as u8)
            } else {
                Reg::V((dword0 & 0xFF) as u8)
            },
            src0: unfield(dword1 & 0x1FF, "src0", false)?,
            src1: unfield((dword1 >> 9) & 0x1FF, "src1", (dword1 >> 27) & 1 == 1)?,
            src2: unfield((dword1 >> 18) & 0x1FF, "src2", (dword1 >> 28) & 1 == 1)?,
        })
    }

    /// The mnemonic this encoding's opcode names.
    pub fn mnemonic(&self) -> &'static str {
        OPCODE_TABLE
            .iter()
            .find(|(op, _)| *op == self.opcode)
            .map(|(_, name)| *name)
            .expect("constructed from the table")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::cdna2_catalog;
    use mc_types::DType;

    #[test]
    fn every_catalog_instruction_has_an_opcode() {
        for i in cdna2_catalog().instructions() {
            let op = opcode_of(i).unwrap_or_else(|e| panic!("{e}"));
            assert!((0x40..=0x6F).contains(&op), "{}: {op:#x}", i.mnemonic());
        }
    }

    #[test]
    fn known_opcodes() {
        let c = cdna2_catalog();
        let mixed = c.find(DType::F32, DType::F16, 16, 16, 16).unwrap();
        assert_eq!(opcode_of(mixed).unwrap(), 0x4D);
        let f64i = c.find(DType::F64, DType::F64, 16, 16, 4).unwrap();
        assert_eq!(opcode_of(f64i).unwrap(), 0x6E);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let c = cdna2_catalog();
        for i in c.instructions() {
            let enc = encode_instance(i, Reg::A(0), Reg::V(4), Reg::V(6), Reg::A(0)).unwrap();
            let word = enc.to_u64();
            let back = MfmaEncoding::from_u64(word).unwrap();
            assert_eq!(back, enc, "{}", i.mnemonic());
            assert_eq!(back.mnemonic(), i.mnemonic());
        }
    }

    #[test]
    fn encoding_marker_and_fields() {
        let c = cdna2_catalog();
        let mixed = c.find(DType::F32, DType::F16, 16, 16, 16).unwrap();
        let enc = encode_instance(mixed, Reg::A(8), Reg::V(2), Reg::V(4), Reg::A(8)).unwrap();
        let word = enc.to_u64();
        // DWORD0 marker.
        assert_eq!((word as u32) >> 23, VOP3P_ENCODING);
        // ACC_CD set (destination is an AccVGPR).
        assert_eq!((word >> 15) & 1, 1);
        // SRC0 field carries the +256 VGPR offset.
        assert_eq!((word >> 32) & 0x1FF, 256 + 2);
    }

    #[test]
    fn rejects_non_mfma_words_and_foreign_arch() {
        assert!(matches!(
            MfmaEncoding::from_u64(0xDEAD_BEEF_0000_0000),
            Err(EncodeError::NotVop3p(_))
        ));
        // VOP3P marker but a non-MFMA opcode (0x00).
        let bogus = u64::from(VOP3P_ENCODING << 23);
        assert!(matches!(
            MfmaEncoding::from_u64(bogus),
            Err(EncodeError::UnknownOpcode(0))
        ));
        let ampere = crate::catalog::ampere_catalog()
            .find(DType::F64, DType::F64, 8, 8, 4)
            .unwrap();
        assert!(matches!(opcode_of(ampere), Err(EncodeError::NoOpcode(_))));
    }

    #[test]
    fn rejects_reserved_and_modifier_bits() {
        let c = cdna2_catalog();
        let mixed = c.find(DType::F32, DType::F16, 16, 16, 16).unwrap();
        let good = encode_instance(mixed, Reg::A(0), Reg::V(0), Reg::V(2), Reg::A(0))
            .unwrap()
            .to_u64();
        // Every single bit of the reserved/modifier mask must be caught.
        for bit in 0..64 {
            let mask = 1u64 << bit;
            if RESERVED_MASK & mask == 0 {
                continue;
            }
            match MfmaEncoding::from_u64(good | mask) {
                Err(EncodeError::ReservedBits { bits, .. }) => assert_eq!(bits, mask),
                other => panic!("bit {bit}: expected ReservedBits, got {other:?}"),
            }
        }
        // And the clean word still decodes.
        assert!(MfmaEncoding::from_u64(good).is_ok());
    }

    #[test]
    fn rejects_sub_vgpr_operand_fields() {
        let c = cdna2_catalog();
        let mixed = c.find(DType::F32, DType::F16, 16, 16, 16).unwrap();
        let good = encode_instance(mixed, Reg::A(0), Reg::V(4), Reg::V(6), Reg::A(8))
            .unwrap()
            .to_u64();
        // Clear each source field in turn: field values below 256 name
        // SGPRs/constants, which `from_u64` must reject by field name.
        for (shift, name) in [(32, "src0"), (41, "src1"), (50, "src2")] {
            let broken = good & !(0x1FFu64 << shift);
            match MfmaEncoding::from_u64(broken) {
                Err(EncodeError::OperandOutOfRange { field, value }) => {
                    assert_eq!(field, name);
                    assert!(value < 256, "{value}");
                }
                other => panic!("{name}: expected OperandOutOfRange, got {other:?}"),
            }
        }
    }

    #[test]
    fn opcode_table_is_unique_and_matches_catalog_mnemonics() {
        let mut seen = std::collections::HashSet::new();
        for (op, name) in OPCODE_TABLE {
            assert!(seen.insert(*op), "duplicate opcode {op:#x}");
            assert!(
                cdna2_catalog().by_mnemonic(name).is_some(),
                "{name} not in catalog"
            );
        }
        // And the reverse: every catalog entry appears in the table.
        assert_eq!(OPCODE_TABLE.len(), cdna2_catalog().instructions().len());
    }
}
