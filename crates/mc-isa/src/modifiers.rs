//! MFMA block-broadcast modifiers: CBSZ, ABID, and BLGP.
//!
//! Multi-block MFMA instructions accept three modifiers (MI200 ISA,
//! paper ref. \[8]; AMD's matrix calculator exposes them):
//!
//! * **CBSZ** (control broadcast size): blocks are grouped in sets of
//!   `2^CBSZ`; within each group, every block consumes the *same* A
//!   block instead of its own.
//! * **ABID** (A block ID): which block within each group supplies the
//!   broadcast A operand.
//! * **BLGP** (B lane group pattern): rearranges which B data the
//!   matrix units consume — at block granularity in this model:
//!   identity, broadcast of the first/second half of the blocks,
//!   rotations, or broadcast of a single block.
//!
//! Broadcasts let one operand feed several multiplications — e.g.
//! multiplying one A panel against several B panels in a single
//! instruction — a register-bandwidth optimization for small-shape
//! batched kernels.

use core::fmt;

use crate::instr::MatrixInstruction;

/// The BLGP patterns (3-bit field).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Blgp {
    /// 0: identity — each block uses its own B data.
    #[default]
    Normal,
    /// 1: the first half of the blocks is broadcast to all.
    BroadcastFirstHalf,
    /// 2: the second half of the blocks is broadcast to all.
    BroadcastSecondHalf,
    /// 3: halves are swapped.
    SwapHalves,
    /// 4: rotate blocks down by one.
    RotateDown1,
    /// 5: rotate blocks down by two.
    RotateDown2,
    /// 6: broadcast block 0 to all blocks.
    BroadcastBlock0,
    /// 7: broadcast the last block to all blocks.
    BroadcastLastBlock,
}

impl Blgp {
    /// The 3-bit field value.
    pub const fn field(self) -> u8 {
        match self {
            Blgp::Normal => 0,
            Blgp::BroadcastFirstHalf => 1,
            Blgp::BroadcastSecondHalf => 2,
            Blgp::SwapHalves => 3,
            Blgp::RotateDown1 => 4,
            Blgp::RotateDown2 => 5,
            Blgp::BroadcastBlock0 => 6,
            Blgp::BroadcastLastBlock => 7,
        }
    }

    /// Decodes a 3-bit field value.
    pub const fn from_field(v: u8) -> Option<Blgp> {
        Some(match v {
            0 => Blgp::Normal,
            1 => Blgp::BroadcastFirstHalf,
            2 => Blgp::BroadcastSecondHalf,
            3 => Blgp::SwapHalves,
            4 => Blgp::RotateDown1,
            5 => Blgp::RotateDown2,
            6 => Blgp::BroadcastBlock0,
            7 => Blgp::BroadcastLastBlock,
            _ => return None,
        })
    }
}

/// A validated modifier set for one instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MfmaModifiers {
    /// Control broadcast size (group = `2^cbsz` blocks).
    pub cbsz: u8,
    /// A-block ID within each broadcast group.
    pub abid: u8,
    /// B lane-group pattern.
    pub blgp: Blgp,
}

/// Modifier validation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModifierError {
    /// CBSZ group exceeds the instruction's block count.
    CbszTooLarge {
        /// Requested CBSZ.
        cbsz: u8,
        /// Instruction block count.
        blocks: u32,
    },
    /// ABID must address a block within the broadcast group.
    AbidOutOfGroup {
        /// Requested ABID.
        abid: u8,
        /// Group size (`2^cbsz`).
        group: u32,
    },
    /// Broadcast modifiers need a multi-block instruction.
    SingleBlockInstruction,
}

impl fmt::Display for ModifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModifierError::CbszTooLarge { cbsz, blocks } => {
                write!(f, "CBSZ {cbsz} groups exceed {blocks} blocks")
            }
            ModifierError::AbidOutOfGroup { abid, group } => {
                write!(f, "ABID {abid} outside the {group}-block group")
            }
            ModifierError::SingleBlockInstruction => {
                write!(f, "broadcast modifiers require a multi-block instruction")
            }
        }
    }
}

impl std::error::Error for ModifierError {}

impl MfmaModifiers {
    /// Validates this modifier set against an instruction.
    pub fn validate(&self, instr: &MatrixInstruction) -> Result<(), ModifierError> {
        let blocks = instr.shape.blocks;
        if (self.cbsz > 0 || self.abid > 0 || self.blgp != Blgp::Normal) && blocks == 1 {
            return Err(ModifierError::SingleBlockInstruction);
        }
        let group = 1u32 << self.cbsz;
        if group > blocks {
            return Err(ModifierError::CbszTooLarge {
                cbsz: self.cbsz,
                blocks,
            });
        }
        if u32::from(self.abid) >= group {
            return Err(ModifierError::AbidOutOfGroup {
                abid: self.abid,
                group,
            });
        }
        Ok(())
    }

    /// The A block actually consumed by block `block` under CBSZ/ABID:
    /// each `2^cbsz`-block group reads the group's `abid`-th block.
    pub fn a_source_block(&self, block: u32) -> u32 {
        let group = 1u32 << self.cbsz;
        (block / group) * group + u32::from(self.abid)
    }

    /// The B block consumed by block `block` under BLGP.
    pub fn b_source_block(&self, block: u32, blocks: u32) -> u32 {
        let half = blocks / 2;
        match self.blgp {
            Blgp::Normal => block,
            Blgp::BroadcastFirstHalf => block % half.max(1),
            Blgp::BroadcastSecondHalf => half + block % half.max(1),
            Blgp::SwapHalves => (block + half) % blocks.max(1),
            Blgp::RotateDown1 => (block + 1) % blocks.max(1),
            Blgp::RotateDown2 => (block + 2) % blocks.max(1),
            Blgp::BroadcastBlock0 => 0,
            Blgp::BroadcastLastBlock => blocks - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::cdna2_catalog;
    use mc_types::DType;

    fn multi_block() -> MatrixInstruction {
        // 4x4x4 f16, 16 blocks.
        *cdna2_catalog()
            .find(DType::F32, DType::F16, 4, 4, 4)
            .unwrap()
    }

    fn single_block() -> MatrixInstruction {
        *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap()
    }

    #[test]
    fn identity_modifiers_always_valid() {
        let m = MfmaModifiers::default();
        assert!(m.validate(&multi_block()).is_ok());
        assert!(m.validate(&single_block()).is_ok());
        for b in 0..16 {
            assert_eq!(m.a_source_block(b), b);
            assert_eq!(m.b_source_block(b, 16), b);
        }
    }

    #[test]
    fn cbsz_broadcast_groups() {
        // CBSZ=2: groups of 4; ABID=1 selects the second block of each.
        let m = MfmaModifiers {
            cbsz: 2,
            abid: 1,
            blgp: Blgp::Normal,
        };
        m.validate(&multi_block()).unwrap();
        assert_eq!(m.a_source_block(0), 1);
        assert_eq!(m.a_source_block(3), 1);
        assert_eq!(m.a_source_block(4), 5);
        assert_eq!(m.a_source_block(15), 13);
    }

    #[test]
    fn validation_errors() {
        let too_big = MfmaModifiers {
            cbsz: 5, // 32-block groups > 16 blocks
            ..Default::default()
        };
        assert!(matches!(
            too_big.validate(&multi_block()),
            Err(ModifierError::CbszTooLarge { .. })
        ));
        let bad_abid = MfmaModifiers {
            cbsz: 1,
            abid: 2,
            ..Default::default()
        };
        assert!(matches!(
            bad_abid.validate(&multi_block()),
            Err(ModifierError::AbidOutOfGroup { abid: 2, group: 2 })
        ));
        let on_single = MfmaModifiers {
            blgp: Blgp::BroadcastBlock0,
            ..Default::default()
        };
        assert!(matches!(
            on_single.validate(&single_block()),
            Err(ModifierError::SingleBlockInstruction)
        ));
    }

    #[test]
    fn blgp_patterns_are_permutations_or_broadcasts() {
        let blocks = 16u32;
        for field in 0..8u8 {
            let blgp = Blgp::from_field(field).unwrap();
            assert_eq!(blgp.field(), field);
            let m = MfmaModifiers {
                blgp,
                ..Default::default()
            };
            for b in 0..blocks {
                let src = m.b_source_block(b, blocks);
                assert!(src < blocks, "{blgp:?} block {b} -> {src}");
            }
        }
        // Swap is an involution.
        let swap = MfmaModifiers {
            blgp: Blgp::SwapHalves,
            ..Default::default()
        };
        for b in 0..blocks {
            let once = swap.b_source_block(b, blocks);
            assert_eq!(swap.b_source_block(once, blocks), b);
        }
        // Broadcasts collapse to a single source.
        let b0 = MfmaModifiers {
            blgp: Blgp::BroadcastBlock0,
            ..Default::default()
        };
        assert!((0..blocks).all(|b| b0.b_source_block(b, blocks) == 0));
    }

    #[test]
    fn from_field_rejects_out_of_range() {
        assert_eq!(Blgp::from_field(8), None);
    }
}
