//! Kernel / wavefront instruction-stream representation.
//!
//! The WMMA layer and the BLAS library "compile" their computations into a
//! [`KernelDesc`]: a per-wavefront program (prologue, a loop body with an
//! iteration count, epilogue) plus a launch geometry. The simulator
//! executes these programs. Keeping the representation at wavefront
//! granularity — one [`SlotOp`] is one instruction issued by a whole
//! wavefront — is what lets the 40-million-iteration microbenchmark loops
//! of the paper (§IV-A) and 65000³ GEMMs run in closed form.

use serde::{Deserialize, Serialize};

use crate::instr::MatrixInstruction;
use crate::valu::ValuOp;

/// The hardware counter an outstanding memory operation retires on.
///
/// CDNA2 tracks memory completion with two saturating counters: `vmcnt`
/// for vector-memory (global/HBM) operations and `lgkmcnt` for
/// LDS/GDS/scalar/message operations. A `S_WAITCNT` argument names the
/// counter it bounds, so the dataflow verifier (`mc-flow`) must know
/// which counter each load or store increments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterClass {
    /// Vector-memory counter (`vmcnt`): global loads and stores.
    #[default]
    Vm,
    /// LDS/scalar counter (`lgkmcnt`): flat/scalar traffic routed
    /// through the LDS-group counter.
    Lgkm,
}

/// Which pipeline stage of a multi-buffered LDS allocation an access
/// touches, possibly as a function of the loop iteration.
///
/// A double-buffered GEMM body writes stage `(i+1) % 2` while reading
/// stage `i % 2`; encoding that rotation symbolically lets the race
/// detector *prove* the ping-pong never collides instead of assuming it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageTag {
    /// The access always touches the same stage (prologue fills,
    /// single-buffered bodies).
    Fixed(u8),
    /// The access touches stage `(iteration + offset) % period`.
    Rotating {
        /// Stage offset at iteration 0.
        offset: u8,
        /// Rotation period — the number of stages (2 for double
        /// buffering).
        period: u8,
    },
}

impl StageTag {
    /// The concrete stage this tag touches on the given loop iteration.
    /// `Fixed` tags ignore the iteration; a degenerate rotation period
    /// of 0 is treated as 1.
    pub fn resolve(&self, iteration: u64) -> u8 {
        match *self {
            StageTag::Fixed(stage) => stage,
            StageTag::Rotating { offset, period } => {
                let period = u64::from(period.max(1));
                ((iteration + u64::from(offset)) % period) as u8
            }
        }
    }

    /// Every stage this tag can touch over a full steady-state rotation.
    pub fn stage_set(&self) -> impl Iterator<Item = u8> {
        let (first, count) = match *self {
            StageTag::Fixed(stage) => (stage, 1),
            StageTag::Rotating { period, .. } => (0, period.max(1)),
        };
        (0..count).map(move |i| match count {
            1 => first,
            _ => i,
        })
    }
}

/// Symbolic description of which LDS resource an access touches: a
/// buffer identity (distinct planner allocations) plus a [`StageTag`]
/// selecting the pipeline stage within that buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LdsAccess {
    /// Planner-assigned buffer id; accesses to different buffers never
    /// alias.
    pub buffer: u8,
    /// Pipeline stage within the buffer.
    pub stage: StageTag,
}

impl LdsAccess {
    /// An access that always touches stage 0 of `buffer`.
    pub fn fixed(buffer: u8) -> Self {
        LdsAccess {
            buffer,
            stage: StageTag::Fixed(0),
        }
    }

    /// An access that touches stage `(iteration + offset) % period` of
    /// `buffer` — the double-buffer ping-pong when `period == 2`.
    pub fn rotating(buffer: u8, offset: u8, period: u8) -> Self {
        LdsAccess {
            buffer,
            stage: StageTag::Rotating { offset, period },
        }
    }
}

/// The argument of an `S_WAITCNT`: upper bounds on the two outstanding
/// counters the instruction waits for. [`WaitSpec::IGNORE`] in a field
/// means that counter is not waited on (the hardware encodes this as
/// the counter's maximum value).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WaitSpec {
    /// Wait until at most this many vector-memory ops are outstanding.
    pub vmcnt: u8,
    /// Wait until at most this many LDS-group ops are outstanding.
    pub lgkmcnt: u8,
}

impl WaitSpec {
    /// Sentinel meaning "do not wait on this counter".
    pub const IGNORE: u8 = u8::MAX;

    /// `s_waitcnt vmcnt(n)` — bounds vector-memory ops only.
    pub fn vm(n: u8) -> Self {
        WaitSpec {
            vmcnt: n,
            lgkmcnt: Self::IGNORE,
        }
    }

    /// `s_waitcnt lgkmcnt(n)` — bounds LDS-group ops only.
    pub fn lgkm(n: u8) -> Self {
        WaitSpec {
            vmcnt: Self::IGNORE,
            lgkmcnt: n,
        }
    }

    /// `s_waitcnt 0` — drains both counters.
    pub fn zero() -> Self {
        WaitSpec {
            vmcnt: 0,
            lgkmcnt: 0,
        }
    }

    /// Whether this wait bounds the given counter class at all.
    pub fn bounds(&self, class: CounterClass) -> bool {
        self.bound(class) != Self::IGNORE
    }

    /// The bound this wait imposes on the given counter class
    /// ([`WaitSpec::IGNORE`] when unbounded).
    pub fn bound(&self, class: CounterClass) -> u8 {
        match class {
            CounterClass::Vm => self.vmcnt,
            CounterClass::Lgkm => self.lgkmcnt,
        }
    }
}

/// One instruction slot issued by a wavefront.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SlotOp {
    /// A matrix fused multiply-add on the CU's Matrix Core (or SM tensor
    /// core).
    Mfma(MatrixInstruction),
    /// A vector-ALU instruction on the CU's SIMD units.
    Valu(ValuOp),
    /// A global-memory (HBM via L2) load; `bytes_per_lane` bytes per lane.
    GlobalLoad {
        /// Bytes fetched per lane (wavefront traffic = 64×this on CDNA2).
        bytes_per_lane: u32,
        /// Outstanding counter the load retires on (`vmcnt` for global).
        counter: CounterClass,
    },
    /// A global-memory store.
    GlobalStore {
        /// Bytes written per lane.
        bytes_per_lane: u32,
        /// Outstanding counter the store retires on.
        counter: CounterClass,
    },
    /// A read from the CU's local data share (shared memory). Retires on
    /// `lgkmcnt`.
    LdsRead {
        /// Bytes read per lane.
        bytes_per_lane: u32,
        /// Which buffer/stage the read touches.
        access: LdsAccess,
    },
    /// A write to the local data share. Retires on `lgkmcnt`.
    LdsWrite {
        /// Bytes written per lane.
        bytes_per_lane: u32,
        /// Which buffer/stage the write touches.
        access: LdsAccess,
    },
    /// `S_NOP n` — the hardware-mandated independent cycles before MFMA
    /// results may be read (paper §III "several no-op instructions might
    /// be required").
    SNop(u8),
    /// Scalar-ALU work: loop counters, branches, address set-up. Free on
    /// the vector pipelines but occupies an issue slot.
    Scalar,
    /// `S_WAITCNT` — wait until outstanding memory operations drain to
    /// the bounds in the [`WaitSpec`].
    Waitcnt(WaitSpec),
    /// Workgroup barrier (`s_barrier`). Synchronizes execution only; it
    /// does *not* wait for memory — pair it with a preceding
    /// `s_waitcnt lgkmcnt(0)` to publish LDS data (the verifier checks
    /// this).
    Barrier,
}

impl SlotOp {
    /// A global load on the vector-memory counter.
    pub fn global_load(bytes_per_lane: u32) -> Self {
        SlotOp::GlobalLoad {
            bytes_per_lane,
            counter: CounterClass::Vm,
        }
    }

    /// A global store on the vector-memory counter.
    pub fn global_store(bytes_per_lane: u32) -> Self {
        SlotOp::GlobalStore {
            bytes_per_lane,
            counter: CounterClass::Vm,
        }
    }

    /// An LDS read from the given buffer/stage.
    pub fn lds_read(bytes_per_lane: u32, access: LdsAccess) -> Self {
        SlotOp::LdsRead {
            bytes_per_lane,
            access,
        }
    }

    /// An LDS write to the given buffer/stage.
    pub fn lds_write(bytes_per_lane: u32, access: LdsAccess) -> Self {
        SlotOp::LdsWrite {
            bytes_per_lane,
            access,
        }
    }
    /// FLOPs this slot contributes when executed once by a wavefront.
    pub fn flops(&self) -> u64 {
        match self {
            SlotOp::Mfma(i) => i.flops(),
            SlotOp::Valu(v) => v.flops_per_wavefront(),
            _ => 0,
        }
    }

    /// Global-memory bytes moved (load + store) by one execution.
    pub fn global_bytes(&self, lanes: u64) -> u64 {
        match self {
            SlotOp::GlobalLoad { bytes_per_lane, .. }
            | SlotOp::GlobalStore { bytes_per_lane, .. } => u64::from(*bytes_per_lane) * lanes,
            _ => 0,
        }
    }

    /// `true` if this is a Matrix-Core (tensor-core) instruction.
    pub fn is_mfma(&self) -> bool {
        matches!(self, SlotOp::Mfma(_))
    }
}

/// A per-wavefront program: straight-line prologue, a loop body executed
/// `body_iterations` times, and an epilogue.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WaveProgram {
    /// Instructions executed once before the loop.
    pub prologue: Vec<SlotOp>,
    /// The loop body.
    pub body: Vec<SlotOp>,
    /// Number of loop iterations.
    pub body_iterations: u64,
    /// Instructions executed once after the loop.
    pub epilogue: Vec<SlotOp>,
}

impl WaveProgram {
    /// A program that is only a loop body.
    pub fn looped(body: Vec<SlotOp>, iterations: u64) -> Self {
        WaveProgram {
            prologue: Vec::new(),
            body,
            body_iterations: iterations,
            epilogue: Vec::new(),
        }
    }

    /// Iterates every dynamic slot execution count as `(op, times)`.
    pub fn dynamic_slots(&self) -> impl Iterator<Item = (&SlotOp, u64)> {
        self.prologue
            .iter()
            .map(|op| (op, 1))
            .chain(self.body.iter().map(move |op| (op, self.body_iterations)))
            .chain(self.epilogue.iter().map(|op| (op, 1)))
    }

    /// Total FLOPs one wavefront performs executing this program.
    pub fn flops(&self) -> u64 {
        self.dynamic_slots().map(|(op, n)| op.flops() * n).sum()
    }

    /// FLOPs delivered by Matrix-Core instructions only.
    pub fn mfma_flops(&self) -> u64 {
        self.dynamic_slots()
            .filter(|(op, _)| op.is_mfma())
            .map(|(op, n)| op.flops() * n)
            .sum()
    }

    /// Dynamic count of MFMA instructions.
    pub fn mfma_instructions(&self) -> u64 {
        self.dynamic_slots()
            .filter(|(op, _)| op.is_mfma())
            .map(|(_, n)| n)
            .sum()
    }

    /// Total global-memory traffic in bytes for one wavefront.
    pub fn global_bytes(&self, lanes: u64) -> u64 {
        self.dynamic_slots()
            .map(|(op, n)| op.global_bytes(lanes) * n)
            .sum()
    }
}

/// Global-load staging discipline of a kernel's inner loop: whether the
/// planner emitted a pipelined (double-buffered) panel stage whose DRAM
/// latency hides behind compute, or a single-buffered stage that
/// serializes memory behind the compute phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Buffering {
    /// One panel stage in LDS: each iteration waits for its global
    /// loads before computing, so DRAM time adds to compute time. Costs
    /// half the LDS/fragment registers of [`Buffering::Double`].
    Single,
    /// Two panel stages in LDS: iteration `i+1`'s loads issue while
    /// iteration `i` computes, so DRAM time overlaps compute (the
    /// rocBLAS-style pipelined GEMM the paper's kernels use).
    #[default]
    Double,
}

/// Memory-system hints the planner attaches to a kernel so the simulator
/// can model DRAM behaviour without re-deriving the blocking structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MemHints {
    /// Estimated DRAM (HBM) traffic in bytes after L2 filtering — the
    /// planner owns the tiling knowledge needed to estimate reuse.
    pub hbm_bytes: u64,
    /// Total working set touched by the kernel, in bytes.
    pub working_set_bytes: u64,
    /// `true` when row strides are large powers of two, which causes
    /// channel/bank camping and degrades effective DRAM bandwidth (the
    /// mechanism behind the paper's Fig. 6/7 dips at N = 2^k).
    pub pow2_stride: bool,
    /// Whether the kernel's global loads are double-buffered (DRAM time
    /// overlaps compute) or single-buffered (it serializes).
    pub buffering: Buffering,
}

/// A complete kernel launch: program + geometry + resource usage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Human-readable kernel name (appears in profiler output).
    pub name: String,
    /// The per-wavefront program (all waves execute the same program; a
    /// tail-workgroup correction can be expressed via `workgroups`
    /// fractions at the caller's accounting level).
    pub program: WaveProgram,
    /// Wavefronts per workgroup.
    pub waves_per_workgroup: u32,
    /// Number of workgroups launched.
    pub workgroups: u64,
    /// Local-data-share bytes allocated per workgroup (occupancy limiter).
    pub lds_bytes_per_workgroup: u32,
    /// Architectural VGPRs per lane used by the kernel.
    pub arch_vgprs: u32,
    /// Accumulation VGPRs per lane used by the kernel.
    pub acc_vgprs: u32,
    /// Memory-system hints (see [`MemHints`]).
    pub mem_hints: MemHints,
}

impl KernelDesc {
    /// Creates a kernel with no LDS use and a default register footprint.
    pub fn new(name: impl Into<String>, program: WaveProgram) -> Self {
        KernelDesc {
            name: name.into(),
            program,
            waves_per_workgroup: 1,
            workgroups: 1,
            lds_bytes_per_workgroup: 0,
            arch_vgprs: 32,
            acc_vgprs: 0,
            mem_hints: MemHints::default(),
        }
    }

    /// Total wavefronts in the launch.
    pub fn total_waves(&self) -> u64 {
        u64::from(self.waves_per_workgroup) * self.workgroups
    }

    /// Total FLOPs across the launch.
    pub fn total_flops(&self) -> u64 {
        self.program.flops() * self.total_waves()
    }

    /// Total Matrix-Core FLOPs across the launch.
    pub fn total_mfma_flops(&self) -> u64 {
        self.program.mfma_flops() * self.total_waves()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::cdna2_catalog;
    use crate::valu::{ValuOp, ValuOpKind};
    use mc_types::DType;

    fn mixed_mfma() -> SlotOp {
        SlotOp::Mfma(
            *cdna2_catalog()
                .find(DType::F32, DType::F16, 16, 16, 16)
                .unwrap(),
        )
    }

    #[test]
    fn microbenchmark_loop_flops() {
        // Paper §V-A: 2mnk · N_iter FLOPs per wavefront, N_iter = 1e7.
        let program = WaveProgram::looped(vec![mixed_mfma()], 10_000_000);
        assert_eq!(program.flops(), 8192 * 10_000_000);
        assert_eq!(program.mfma_flops(), program.flops());
        assert_eq!(program.mfma_instructions(), 10_000_000);
    }

    #[test]
    fn prologue_epilogue_counted_once() {
        let p = WaveProgram {
            prologue: vec![SlotOp::global_load(16)],
            body: vec![mixed_mfma(), SlotOp::Scalar],
            body_iterations: 100,
            epilogue: vec![SlotOp::global_store(16)],
        };
        assert_eq!(p.global_bytes(64), 2 * 16 * 64);
        assert_eq!(p.mfma_instructions(), 100);
    }

    #[test]
    fn valu_and_mixed_flops() {
        let p = WaveProgram::looped(
            vec![
                SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, DType::F32)),
                mixed_mfma(),
                SlotOp::SNop(2),
            ],
            10,
        );
        assert_eq!(p.flops(), (128 + 8192) * 10);
        assert_eq!(p.mfma_flops(), 8192 * 10);
    }

    #[test]
    fn stage_tags_resolve_the_ping_pong() {
        let read = LdsAccess::rotating(0, 0, 2);
        let write = LdsAccess::rotating(0, 1, 2);
        for i in 0..8u64 {
            assert_eq!(u64::from(read.stage.resolve(i)), i % 2);
            assert_eq!(u64::from(write.stage.resolve(i)), (i + 1) % 2);
            assert_ne!(read.stage.resolve(i), write.stage.resolve(i));
        }
        assert_eq!(LdsAccess::fixed(3).stage.resolve(17), 0);
        assert_eq!(StageTag::Fixed(2).stage_set().collect::<Vec<_>>(), [2]);
        assert_eq!(
            StageTag::Rotating {
                offset: 1,
                period: 2
            }
            .stage_set()
            .collect::<Vec<_>>(),
            [0, 1]
        );
    }

    #[test]
    fn wait_specs_bound_the_right_counters() {
        let vm = WaitSpec::vm(0);
        assert!(vm.bounds(CounterClass::Vm));
        assert!(!vm.bounds(CounterClass::Lgkm));
        assert_eq!(vm.bound(CounterClass::Vm), 0);
        let lgkm = WaitSpec::lgkm(2);
        assert!(!lgkm.bounds(CounterClass::Vm));
        assert_eq!(lgkm.bound(CounterClass::Lgkm), 2);
        let zero = WaitSpec::zero();
        assert!(zero.bounds(CounterClass::Vm) && zero.bounds(CounterClass::Lgkm));
    }

    #[test]
    fn kernel_totals() {
        let program = WaveProgram::looped(vec![mixed_mfma()], 1000);
        let k = KernelDesc {
            waves_per_workgroup: 4,
            workgroups: 110,
            ..KernelDesc::new("test", program)
        };
        assert_eq!(k.total_waves(), 440);
        assert_eq!(k.total_flops(), 8192 * 1000 * 440);
        assert_eq!(k.total_mfma_flops(), k.total_flops());
    }
}
