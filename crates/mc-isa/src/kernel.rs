//! Kernel / wavefront instruction-stream representation.
//!
//! The WMMA layer and the BLAS library "compile" their computations into a
//! [`KernelDesc`]: a per-wavefront program (prologue, a loop body with an
//! iteration count, epilogue) plus a launch geometry. The simulator
//! executes these programs. Keeping the representation at wavefront
//! granularity — one [`SlotOp`] is one instruction issued by a whole
//! wavefront — is what lets the 40-million-iteration microbenchmark loops
//! of the paper (§IV-A) and 65000³ GEMMs run in closed form.

use serde::{Deserialize, Serialize};

use crate::instr::MatrixInstruction;
use crate::valu::ValuOp;

/// One instruction slot issued by a wavefront.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SlotOp {
    /// A matrix fused multiply-add on the CU's Matrix Core (or SM tensor
    /// core).
    Mfma(MatrixInstruction),
    /// A vector-ALU instruction on the CU's SIMD units.
    Valu(ValuOp),
    /// A global-memory (HBM via L2) load; `bytes_per_lane` bytes per lane.
    GlobalLoad {
        /// Bytes fetched per lane (wavefront traffic = 64×this on CDNA2).
        bytes_per_lane: u32,
    },
    /// A global-memory store.
    GlobalStore {
        /// Bytes written per lane.
        bytes_per_lane: u32,
    },
    /// A read from the CU's local data share (shared memory).
    LdsRead {
        /// Bytes read per lane.
        bytes_per_lane: u32,
    },
    /// A write to the local data share.
    LdsWrite {
        /// Bytes written per lane.
        bytes_per_lane: u32,
    },
    /// `S_NOP n` — the hardware-mandated independent cycles before MFMA
    /// results may be read (paper §III "several no-op instructions might
    /// be required").
    SNop(u8),
    /// Scalar-ALU work: loop counters, branches, address set-up. Free on
    /// the vector pipelines but occupies an issue slot.
    Scalar,
    /// `S_WAITCNT` — wait for outstanding memory operations.
    Waitcnt,
    /// Workgroup barrier.
    Barrier,
}

impl SlotOp {
    /// FLOPs this slot contributes when executed once by a wavefront.
    pub fn flops(&self) -> u64 {
        match self {
            SlotOp::Mfma(i) => i.flops(),
            SlotOp::Valu(v) => v.flops_per_wavefront(),
            _ => 0,
        }
    }

    /// Global-memory bytes moved (load + store) by one execution.
    pub fn global_bytes(&self, lanes: u64) -> u64 {
        match self {
            SlotOp::GlobalLoad { bytes_per_lane } | SlotOp::GlobalStore { bytes_per_lane } => {
                u64::from(*bytes_per_lane) * lanes
            }
            _ => 0,
        }
    }

    /// `true` if this is a Matrix-Core (tensor-core) instruction.
    pub fn is_mfma(&self) -> bool {
        matches!(self, SlotOp::Mfma(_))
    }
}

/// A per-wavefront program: straight-line prologue, a loop body executed
/// `body_iterations` times, and an epilogue.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WaveProgram {
    /// Instructions executed once before the loop.
    pub prologue: Vec<SlotOp>,
    /// The loop body.
    pub body: Vec<SlotOp>,
    /// Number of loop iterations.
    pub body_iterations: u64,
    /// Instructions executed once after the loop.
    pub epilogue: Vec<SlotOp>,
}

impl WaveProgram {
    /// A program that is only a loop body.
    pub fn looped(body: Vec<SlotOp>, iterations: u64) -> Self {
        WaveProgram {
            prologue: Vec::new(),
            body,
            body_iterations: iterations,
            epilogue: Vec::new(),
        }
    }

    /// Iterates every dynamic slot execution count as `(op, times)`.
    pub fn dynamic_slots(&self) -> impl Iterator<Item = (&SlotOp, u64)> {
        self.prologue
            .iter()
            .map(|op| (op, 1))
            .chain(self.body.iter().map(move |op| (op, self.body_iterations)))
            .chain(self.epilogue.iter().map(|op| (op, 1)))
    }

    /// Total FLOPs one wavefront performs executing this program.
    pub fn flops(&self) -> u64 {
        self.dynamic_slots().map(|(op, n)| op.flops() * n).sum()
    }

    /// FLOPs delivered by Matrix-Core instructions only.
    pub fn mfma_flops(&self) -> u64 {
        self.dynamic_slots()
            .filter(|(op, _)| op.is_mfma())
            .map(|(op, n)| op.flops() * n)
            .sum()
    }

    /// Dynamic count of MFMA instructions.
    pub fn mfma_instructions(&self) -> u64 {
        self.dynamic_slots()
            .filter(|(op, _)| op.is_mfma())
            .map(|(_, n)| n)
            .sum()
    }

    /// Total global-memory traffic in bytes for one wavefront.
    pub fn global_bytes(&self, lanes: u64) -> u64 {
        self.dynamic_slots()
            .map(|(op, n)| op.global_bytes(lanes) * n)
            .sum()
    }
}

/// Global-load staging discipline of a kernel's inner loop: whether the
/// planner emitted a pipelined (double-buffered) panel stage whose DRAM
/// latency hides behind compute, or a single-buffered stage that
/// serializes memory behind the compute phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Buffering {
    /// One panel stage in LDS: each iteration waits for its global
    /// loads before computing, so DRAM time adds to compute time. Costs
    /// half the LDS/fragment registers of [`Buffering::Double`].
    Single,
    /// Two panel stages in LDS: iteration `i+1`'s loads issue while
    /// iteration `i` computes, so DRAM time overlaps compute (the
    /// rocBLAS-style pipelined GEMM the paper's kernels use).
    #[default]
    Double,
}

/// Memory-system hints the planner attaches to a kernel so the simulator
/// can model DRAM behaviour without re-deriving the blocking structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MemHints {
    /// Estimated DRAM (HBM) traffic in bytes after L2 filtering — the
    /// planner owns the tiling knowledge needed to estimate reuse.
    pub hbm_bytes: u64,
    /// Total working set touched by the kernel, in bytes.
    pub working_set_bytes: u64,
    /// `true` when row strides are large powers of two, which causes
    /// channel/bank camping and degrades effective DRAM bandwidth (the
    /// mechanism behind the paper's Fig. 6/7 dips at N = 2^k).
    pub pow2_stride: bool,
    /// Whether the kernel's global loads are double-buffered (DRAM time
    /// overlaps compute) or single-buffered (it serializes).
    pub buffering: Buffering,
}

/// A complete kernel launch: program + geometry + resource usage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Human-readable kernel name (appears in profiler output).
    pub name: String,
    /// The per-wavefront program (all waves execute the same program; a
    /// tail-workgroup correction can be expressed via `workgroups`
    /// fractions at the caller's accounting level).
    pub program: WaveProgram,
    /// Wavefronts per workgroup.
    pub waves_per_workgroup: u32,
    /// Number of workgroups launched.
    pub workgroups: u64,
    /// Local-data-share bytes allocated per workgroup (occupancy limiter).
    pub lds_bytes_per_workgroup: u32,
    /// Architectural VGPRs per lane used by the kernel.
    pub arch_vgprs: u32,
    /// Accumulation VGPRs per lane used by the kernel.
    pub acc_vgprs: u32,
    /// Memory-system hints (see [`MemHints`]).
    pub mem_hints: MemHints,
}

impl KernelDesc {
    /// Creates a kernel with no LDS use and a default register footprint.
    pub fn new(name: impl Into<String>, program: WaveProgram) -> Self {
        KernelDesc {
            name: name.into(),
            program,
            waves_per_workgroup: 1,
            workgroups: 1,
            lds_bytes_per_workgroup: 0,
            arch_vgprs: 32,
            acc_vgprs: 0,
            mem_hints: MemHints::default(),
        }
    }

    /// Total wavefronts in the launch.
    pub fn total_waves(&self) -> u64 {
        u64::from(self.waves_per_workgroup) * self.workgroups
    }

    /// Total FLOPs across the launch.
    pub fn total_flops(&self) -> u64 {
        self.program.flops() * self.total_waves()
    }

    /// Total Matrix-Core FLOPs across the launch.
    pub fn total_mfma_flops(&self) -> u64 {
        self.program.mfma_flops() * self.total_waves()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::cdna2_catalog;
    use crate::valu::{ValuOp, ValuOpKind};
    use mc_types::DType;

    fn mixed_mfma() -> SlotOp {
        SlotOp::Mfma(
            *cdna2_catalog()
                .find(DType::F32, DType::F16, 16, 16, 16)
                .unwrap(),
        )
    }

    #[test]
    fn microbenchmark_loop_flops() {
        // Paper §V-A: 2mnk · N_iter FLOPs per wavefront, N_iter = 1e7.
        let program = WaveProgram::looped(vec![mixed_mfma()], 10_000_000);
        assert_eq!(program.flops(), 8192 * 10_000_000);
        assert_eq!(program.mfma_flops(), program.flops());
        assert_eq!(program.mfma_instructions(), 10_000_000);
    }

    #[test]
    fn prologue_epilogue_counted_once() {
        let p = WaveProgram {
            prologue: vec![SlotOp::GlobalLoad { bytes_per_lane: 16 }],
            body: vec![mixed_mfma(), SlotOp::Scalar],
            body_iterations: 100,
            epilogue: vec![SlotOp::GlobalStore { bytes_per_lane: 16 }],
        };
        assert_eq!(p.global_bytes(64), 2 * 16 * 64);
        assert_eq!(p.mfma_instructions(), 100);
    }

    #[test]
    fn valu_and_mixed_flops() {
        let p = WaveProgram::looped(
            vec![
                SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, DType::F32)),
                mixed_mfma(),
                SlotOp::SNop(2),
            ],
            10,
        );
        assert_eq!(p.flops(), (128 + 8192) * 10);
        assert_eq!(p.mfma_flops(), 8192 * 10);
    }

    #[test]
    fn kernel_totals() {
        let program = WaveProgram::looped(vec![mixed_mfma()], 1000);
        let k = KernelDesc {
            waves_per_workgroup: 4,
            workgroups: 110,
            ..KernelDesc::new("test", program)
        };
        assert_eq!(k.total_waves(), 440);
        assert_eq!(k.total_flops(), 8192 * 1000 * 440);
        assert_eq!(k.total_mfma_flops(), k.total_flops());
    }
}
