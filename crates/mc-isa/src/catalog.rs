//! Instruction catalogs for CDNA2 Matrix Cores and Ampere Tensor Cores.
//!
//! The CDNA2 table is the complete `V_MFMA_*` opcode list from the AMD
//! Instinct MI200 ISA reference (paper ref. \[8]); latencies for the shapes
//! the paper measures come from its Table II, and latencies for the
//! remaining shapes follow the pass counts published in AMD's matrix
//! instruction calculator (4×4 shapes take a quarter of the 16×16 pass
//! count; legacy bf16 runs at half rate).

use std::sync::OnceLock;

use mc_types::DType;

use crate::instr::{MatrixArch, MatrixInstruction};
use crate::shape::MfmaShape;

/// An immutable, queryable set of matrix instructions for one architecture.
#[derive(Debug)]
pub struct IsaCatalog {
    arch: MatrixArch,
    instructions: Vec<MatrixInstruction>,
}

impl IsaCatalog {
    /// The architecture this catalog describes.
    pub fn arch(&self) -> MatrixArch {
        self.arch
    }

    /// All instructions, in ISA-reference order.
    pub fn instructions(&self) -> &[MatrixInstruction] {
        &self.instructions
    }

    /// Instructions matching an output/input datatype pair
    /// (the paper's `typeCD ← typeAB` notation).
    pub fn by_types(&self, cd: DType, ab: DType) -> Vec<&MatrixInstruction> {
        self.instructions
            .iter()
            .filter(|i| i.cd == cd && i.ab == ab)
            .collect()
    }

    /// Finds the instruction with an exact shape and type signature.
    pub fn find(&self, cd: DType, ab: DType, m: u32, n: u32, k: u32) -> Option<&MatrixInstruction> {
        self.instructions.iter().find(|i| {
            i.cd == cd && i.ab == ab && i.shape.m == m && i.shape.n == n && i.shape.k == k
        })
    }

    /// Finds an instruction by its mnemonic (case-insensitive).
    pub fn by_mnemonic(&self, mnemonic: &str) -> Option<&MatrixInstruction> {
        let want = mnemonic.to_ascii_lowercase();
        self.instructions
            .iter()
            .find(|i| i.mnemonic().to_ascii_lowercase() == want)
    }

    /// `true` if any instruction supports this type pair — e.g. CDNA2 has
    /// no `FP16 ← FP16` entry, the fact behind the paper's HGEMM finding.
    pub fn supports_types(&self, cd: DType, ab: DType) -> bool {
        self.instructions.iter().any(|i| i.cd == cd && i.ab == ab)
    }

    /// The instruction with the highest FLOPs/cycle rate for a type pair —
    /// what a well-tuned library (rocBLAS) would select for large tiles.
    /// Current-generation encodings are preferred; legacy (half-rate
    /// bf16) encodings are used only when nothing else exists (CDNA1).
    pub fn best_for_types(&self, cd: DType, ab: DType) -> Option<&MatrixInstruction> {
        let pick = |legacy_ok: bool| {
            self.by_types(cd, ab)
                .into_iter()
                .filter(move |i| legacy_ok || !i.legacy)
                .max_by(|a, b| {
                    a.flops_per_cu_per_cycle()
                        .total_cmp(&b.flops_per_cu_per_cycle())
                        // Prefer the largest single-block shape on ties
                        // (fewer issues per tile, lower register pressure
                        // per FLOP).
                        .then(a.shape.flops().cmp(&b.shape.flops()))
                })
        };
        pick(false).or_else(|| pick(true))
    }

    /// Distinct `typeCD ← typeAB` pairs with matrix-unit support, ordered
    /// as in the paper's Table I.
    pub fn supported_type_pairs(&self) -> Vec<(DType, DType)> {
        let mut pairs: Vec<(DType, DType)> = Vec::new();
        for i in &self.instructions {
            if !pairs.contains(&(i.cd, i.ab)) {
                pairs.push((i.cd, i.ab));
            }
        }
        pairs
    }
}

#[allow(clippy::too_many_arguments)]
const fn mfma(
    cd: DType,
    ab: DType,
    m: u32,
    n: u32,
    k: u32,
    blocks: u32,
    latency: u32,
    legacy: bool,
) -> MatrixInstruction {
    MatrixInstruction {
        arch: MatrixArch::Cdna2,
        cd,
        ab,
        shape: MfmaShape::with_blocks(m, n, k, blocks),
        latency_cycles: latency,
        legacy,
    }
}

const fn mma(cd: DType, ab: DType, m: u32, n: u32, k: u32, latency: u32) -> MatrixInstruction {
    MatrixInstruction {
        arch: MatrixArch::Ampere,
        cd,
        ab,
        shape: MfmaShape::new(m, n, k),
        latency_cycles: latency,
        legacy: false,
    }
}

/// The CDNA2 (MI200-series) Matrix Core instruction catalog.
pub fn cdna2_catalog() -> &'static IsaCatalog {
    static CATALOG: OnceLock<IsaCatalog> = OnceLock::new();
    CATALOG.get_or_init(|| {
        use DType::*;
        let f = false;
        let instructions = vec![
            // FP32 <- FP32 (Table II: 32x32 -> 64 cycles, 16x16 -> 32).
            mfma(F32, F32, 32, 32, 1, 2, 64, f),
            mfma(F32, F32, 16, 16, 1, 4, 32, f),
            mfma(F32, F32, 4, 4, 1, 16, 8, f),
            mfma(F32, F32, 32, 32, 2, 1, 64, f),
            mfma(F32, F32, 16, 16, 4, 1, 32, f),
            // FP32 <- FP16.
            mfma(F32, F16, 32, 32, 4, 2, 64, f),
            mfma(F32, F16, 16, 16, 4, 4, 32, f),
            mfma(F32, F16, 4, 4, 4, 16, 8, f),
            mfma(F32, F16, 32, 32, 8, 1, 64, f),
            mfma(F32, F16, 16, 16, 16, 1, 32, f),
            // FP32 <- BF16, current-generation `_1k` encodings (full rate).
            mfma(F32, Bf16, 32, 32, 4, 2, 64, f),
            mfma(F32, Bf16, 16, 16, 4, 4, 32, f),
            mfma(F32, Bf16, 4, 4, 4, 16, 8, f),
            mfma(F32, Bf16, 32, 32, 8, 1, 64, f),
            mfma(F32, Bf16, 16, 16, 16, 1, 32, f),
            // FP32 <- BF16 legacy CDNA1 encodings (half the K, half rate).
            mfma(F32, Bf16, 32, 32, 2, 2, 64, true),
            mfma(F32, Bf16, 16, 16, 2, 4, 32, true),
            mfma(F32, Bf16, 4, 4, 2, 16, 8, true),
            mfma(F32, Bf16, 32, 32, 4, 1, 64, true),
            mfma(F32, Bf16, 16, 16, 8, 1, 32, true),
            // INT32 <- INT8.
            mfma(I32, I8, 32, 32, 4, 2, 64, f),
            mfma(I32, I8, 16, 16, 4, 4, 32, f),
            mfma(I32, I8, 4, 4, 4, 16, 8, f),
            mfma(I32, I8, 32, 32, 8, 1, 64, f),
            mfma(I32, I8, 16, 16, 16, 1, 32, f),
            // FP64 <- FP64 (new in CDNA2; Table II: 32 cycles).
            mfma(F64, F64, 16, 16, 4, 1, 32, f),
            mfma(F64, F64, 4, 4, 4, 4, 16, f),
        ];
        IsaCatalog {
            arch: MatrixArch::Cdna2,
            instructions,
        }
    })
}

/// The CDNA1 (MI100) Matrix Core instruction catalog — the first
/// generation (paper ref. \[7]): no FP64 MFMA (the headline CDNA2
/// addition, §II) and only the half-rate bfloat16 encodings.
pub fn cdna1_catalog() -> &'static IsaCatalog {
    static CATALOG: OnceLock<IsaCatalog> = OnceLock::new();
    CATALOG.get_or_init(|| {
        use DType::*;
        let f = false;
        let mut instructions = vec![
            // FP32 <- FP32.
            mfma(F32, F32, 32, 32, 1, 2, 64, f),
            mfma(F32, F32, 16, 16, 1, 4, 32, f),
            mfma(F32, F32, 4, 4, 1, 16, 8, f),
            mfma(F32, F32, 32, 32, 2, 1, 64, f),
            mfma(F32, F32, 16, 16, 4, 1, 32, f),
            // FP32 <- FP16.
            mfma(F32, F16, 32, 32, 4, 2, 64, f),
            mfma(F32, F16, 16, 16, 4, 4, 32, f),
            mfma(F32, F16, 4, 4, 4, 16, 8, f),
            mfma(F32, F16, 32, 32, 8, 1, 64, f),
            mfma(F32, F16, 16, 16, 16, 1, 32, f),
            // FP32 <- BF16: CDNA1 only has the half-K, half-rate forms.
            mfma(F32, Bf16, 32, 32, 2, 2, 64, true),
            mfma(F32, Bf16, 16, 16, 2, 4, 32, true),
            mfma(F32, Bf16, 4, 4, 2, 16, 8, true),
            mfma(F32, Bf16, 32, 32, 4, 1, 64, true),
            mfma(F32, Bf16, 16, 16, 8, 1, 32, true),
            // INT32 <- INT8.
            mfma(I32, I8, 32, 32, 4, 2, 64, f),
            mfma(I32, I8, 16, 16, 4, 4, 32, f),
            mfma(I32, I8, 4, 4, 4, 16, 8, f),
            mfma(I32, I8, 32, 32, 8, 1, 64, f),
            mfma(I32, I8, 16, 16, 16, 1, 32, f),
        ];
        for i in &mut instructions {
            i.arch = MatrixArch::Cdna1;
        }
        IsaCatalog {
            arch: MatrixArch::Cdna1,
            instructions,
        }
    })
}

/// The Ampere (A100) Tensor Core instruction catalog (Table I, right
/// column). Latencies are set so four tensor cores per SM reproduce the
/// datasheet rates: 2048 mixed-precision FLOPs/SM/cycle (312 TFLOPS at
/// 1410 MHz × 108 SMs) and 128 FP64 FLOPs/SM/cycle (19.5 TFLOPS).
pub fn ampere_catalog() -> &'static IsaCatalog {
    static CATALOG: OnceLock<IsaCatalog> = OnceLock::new();
    CATALOG.get_or_init(|| {
        use DType::*;
        let instructions = vec![
            // DMMA: FP64 <- FP64.
            mma(F64, F64, 8, 8, 4, 16),
            // HMMA: FP32 <- FP16.
            mma(F32, F16, 16, 8, 8, 4),
            mma(F32, F16, 16, 8, 16, 8),
            // HMMA: FP16 <- FP16 (same rate as mixed).
            mma(F16, F16, 16, 8, 8, 4),
            mma(F16, F16, 16, 8, 16, 8),
            // BF16 inputs (FP32 accumulate only).
            mma(F32, Bf16, 16, 8, 8, 4),
            mma(F32, Bf16, 16, 8, 16, 8),
            // IMMA: INT32 <- INT8 (624 TOPS dense = 4096 ops/SM/cycle).
            mma(I32, I8, 16, 8, 16, 4),
            mma(I32, I8, 16, 8, 32, 8),
        ];
        IsaCatalog {
            arch: MatrixArch::Ampere,
            instructions,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_amd_shapes() {
        // Paper Table I, AMD CDNA2 column.
        let c = cdna2_catalog();
        assert!(c.find(DType::F64, DType::F64, 16, 16, 4).is_some());
        assert!(c.find(DType::F32, DType::F32, 16, 16, 4).is_some());
        assert!(c.find(DType::F32, DType::F32, 32, 32, 2).is_some());
        assert!(c.find(DType::F32, DType::F16, 16, 16, 16).is_some());
        assert!(c.find(DType::F32, DType::F16, 32, 32, 8).is_some());
        // The crossed-out cell: no FP16 <- FP16 on CDNA2.
        assert!(!c.supports_types(DType::F16, DType::F16));
    }

    #[test]
    fn table1_nvidia_shapes() {
        // Paper Table I, Nvidia Ampere column.
        let c = ampere_catalog();
        assert!(c.find(DType::F64, DType::F64, 8, 8, 4).is_some());
        assert!(c.find(DType::F32, DType::F16, 16, 8, 8).is_some());
        assert!(c.find(DType::F32, DType::F16, 16, 8, 16).is_some());
        assert!(c.find(DType::F16, DType::F16, 16, 8, 8).is_some());
        assert!(c.find(DType::F16, DType::F16, 16, 8, 16).is_some());
        // The crossed-out cell: no FP32 <- FP32 on Ampere tensor cores.
        assert!(!c.supports_types(DType::F32, DType::F32));
    }

    #[test]
    fn table2_latencies() {
        // Paper Table II, measured MFMA latencies.
        let c = cdna2_catalog();
        let cases = [
            (DType::F32, DType::F32, 32, 32, 2, 64),
            (DType::F32, DType::F32, 16, 16, 4, 32),
            (DType::F32, DType::F16, 32, 32, 8, 64),
            (DType::F32, DType::F16, 16, 16, 16, 32),
            (DType::F64, DType::F64, 16, 16, 4, 32),
        ];
        for (cd, ab, m, n, k, lat) in cases {
            let i = c.find(cd, ab, m, n, k).unwrap();
            assert_eq!(i.latency_cycles, lat, "{}", i.mnemonic());
        }
    }

    #[test]
    fn cdna2_rates_match_datasheet() {
        // Every non-legacy CDNA2 instruction family must deliver the
        // CDNA2 whitepaper per-CU rates: 256 FLOPs/CU/cycle for F32/F64
        // (except the small-shape F64), 1024 for F16/BF16/I8.
        let c = cdna2_catalog();
        for i in c.instructions().iter().filter(|i| !i.legacy) {
            let rate = i.flops_per_cu_per_cycle();
            let expected = match (i.cd, i.ab) {
                (DType::F32, DType::F32) => 256.0,
                (DType::F64, DType::F64) if i.shape.m == 16 => 256.0,
                (DType::F64, DType::F64) => 128.0, // 4x4x4 small shape
                _ => 1024.0,
            };
            assert_eq!(rate, expected, "{}", i.mnemonic());
        }
        // Legacy bf16 is exactly half rate.
        for i in c.instructions().iter().filter(|i| i.legacy) {
            assert_eq!(i.flops_per_cu_per_cycle(), 512.0, "{}", i.mnemonic());
        }
    }

    #[test]
    fn ampere_rates_match_datasheet() {
        let c = ampere_catalog();
        // 4 tensor cores/SM; rates per SM per cycle.
        let mixed = c.find(DType::F32, DType::F16, 16, 8, 16).unwrap();
        assert_eq!(mixed.flops_per_cu_per_cycle(), 2048.0);
        let dmma = c.find(DType::F64, DType::F64, 8, 8, 4).unwrap();
        assert_eq!(dmma.flops_per_cu_per_cycle(), 128.0);
        let imma = c.find(DType::I32, DType::I8, 16, 8, 32).unwrap();
        assert_eq!(imma.flops_per_cu_per_cycle(), 4096.0);
    }

    #[test]
    fn best_for_types_prefers_full_rate_large_shape() {
        let c = cdna2_catalog();
        let best = c.best_for_types(DType::F32, DType::F16).unwrap();
        // All full-rate; largest single-issue FLOPs is 32x32x8 or the
        // multi-block 32x32x4: both 16384 FLOPs at 64 cycles. Accept either
        // 32x32 variant; the point is it is not a 4x4 shape.
        assert!(best.shape.m == 32);
        let best64 = c.best_for_types(DType::F64, DType::F64).unwrap();
        assert_eq!(best64.shape, MfmaShape::new(16, 16, 4));
    }

    #[test]
    fn by_mnemonic_lookup() {
        let c = cdna2_catalog();
        let i = c.by_mnemonic("V_MFMA_F64_16X16X4F64").unwrap();
        assert_eq!(i.latency_cycles, 32);
        assert!(c.by_mnemonic("v_mfma_f16_16x16x16f16").is_none());
    }

    #[test]
    fn supported_pairs_cover_six_datatype_families() {
        let pairs = cdna2_catalog().supported_type_pairs();
        assert!(pairs.contains(&(DType::F32, DType::F32)));
        assert!(pairs.contains(&(DType::F32, DType::F16)));
        assert!(pairs.contains(&(DType::F32, DType::Bf16)));
        assert!(pairs.contains(&(DType::I32, DType::I8)));
        assert!(pairs.contains(&(DType::F64, DType::F64)));
        assert_eq!(pairs.len(), 5);
    }

    #[test]
    fn cdna1_is_cdna2_minus_fp64_and_bf16_1k() {
        let c1 = cdna1_catalog();
        assert_eq!(c1.arch(), MatrixArch::Cdna1);
        // No FP64 Matrix Core on MI100 (the §II generational headline).
        assert!(!c1.supports_types(DType::F64, DType::F64));
        // bf16 exists only at half rate.
        for i in c1.by_types(DType::F32, DType::Bf16) {
            assert!(i.legacy, "{}", i.mnemonic());
            assert_eq!(i.flops_per_cu_per_cycle(), 512.0);
        }
        // FP16 rate equal to CDNA2's.
        let i = c1.find(DType::F32, DType::F16, 16, 16, 16).unwrap();
        assert_eq!(i.flops_per_cu_per_cycle(), 1024.0);
        assert_eq!(i.arch, MatrixArch::Cdna1);
        // Every CDNA1 instruction has a CDNA2 successor.
        let c2 = cdna2_catalog();
        for i in c1.instructions() {
            assert!(
                c2.find(i.cd, i.ab, i.shape.m, i.shape.n, i.shape.k)
                    .is_some(),
                "{} dropped in CDNA2",
                i.mnemonic()
            );
        }
    }

    #[test]
    fn catalog_mnemonics_are_unique_and_parseable() {
        let c = cdna2_catalog();
        let mut seen = std::collections::HashSet::new();
        for i in c.instructions() {
            let m = i.mnemonic();
            assert!(seen.insert(m.clone()), "duplicate mnemonic {m}");
            let parsed = MatrixInstruction::parse_cdna2_mnemonic(&m).unwrap();
            assert_eq!(parsed.cd, i.cd);
            assert_eq!(parsed.ab, i.ab);
            assert_eq!(parsed.shape.m, i.shape.m);
            assert_eq!(parsed.shape.k, i.shape.k);
        }
    }
}
