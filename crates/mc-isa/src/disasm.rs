//! Kernel disassembly listings.
//!
//! The paper verifies its benchmarks by inspecting compiled code: "we
//! check the assembly-level instructions using the HIP compiler flag
//! `-S` ... to verify the number of Matrix/Tensor Core instructions in
//! use" (§IV-A). This module renders a [`KernelDesc`] as the equivalent
//! pseudo-assembly listing and provides the same static verification:
//! counting matrix instructions per loop iteration.

use core::fmt::Write as _;

use crate::kernel::{KernelDesc, SlotOp, WaveProgram};

/// Static instruction statistics of a kernel, the `-S`-inspection
/// results the paper relies on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Matrix (MFMA/MMA) instructions per loop iteration.
    pub mfma_per_iteration: usize,
    /// Vector-ALU instructions per loop iteration.
    pub valu_per_iteration: usize,
    /// Memory operations (global + LDS) per loop iteration.
    pub mem_per_iteration: usize,
    /// Total static instructions in the listing (prologue + body +
    /// epilogue, not unrolled).
    pub static_instructions: usize,
}

/// Counts per-iteration instruction classes, like inspecting `-S` output.
pub fn kernel_stats(k: &KernelDesc) -> KernelStats {
    let count = |ops: &[SlotOp]| {
        ops.iter()
            .fold((0usize, 0usize, 0usize), |(m, v, mem), op| match op {
                SlotOp::Mfma(_) => (m + 1, v, mem),
                SlotOp::Valu(_) => (m, v + 1, mem),
                SlotOp::GlobalLoad { .. }
                | SlotOp::GlobalStore { .. }
                | SlotOp::LdsRead { .. }
                | SlotOp::LdsWrite { .. } => (m, v, mem + 1),
                _ => (m, v, mem),
            })
    };
    let (m, v, mem) = count(&k.program.body);
    KernelStats {
        mfma_per_iteration: m,
        valu_per_iteration: v,
        mem_per_iteration: mem,
        static_instructions: k.program.prologue.len()
            + k.program.body.len()
            + k.program.epilogue.len(),
    }
}

/// Renders a stage tag as the comment suffix of an LDS access.
fn stage_comment(access: &crate::kernel::LdsAccess) -> String {
    match access.stage {
        crate::kernel::StageTag::Fixed(s) => format!("buf{} stage {s}", access.buffer),
        crate::kernel::StageTag::Rotating { offset, period } => {
            format!("buf{} stage (i+{offset})%{period}", access.buffer)
        }
    }
}

/// Renders an `S_WAITCNT` argument list the way real listings print it.
fn waitcnt_args(w: &crate::kernel::WaitSpec) -> String {
    let mut args = Vec::new();
    if w.vmcnt != crate::kernel::WaitSpec::IGNORE {
        args.push(format!("vmcnt({})", w.vmcnt));
    }
    if w.lgkmcnt != crate::kernel::WaitSpec::IGNORE {
        args.push(format!("lgkmcnt({})", w.lgkmcnt));
    }
    if args.is_empty() {
        "0".to_owned()
    } else {
        args.join(" ")
    }
}

fn render_op(out: &mut String, op: &SlotOp) {
    let _ = match op {
        SlotOp::Mfma(i) => writeln!(out, "    {}", i.mnemonic()),
        SlotOp::Valu(v) => writeln!(out, "    {}", v.mnemonic()),
        SlotOp::GlobalLoad { bytes_per_lane, .. } => {
            writeln!(out, "    global_load_b{}", bytes_per_lane * 8)
        }
        SlotOp::GlobalStore { bytes_per_lane, .. } => {
            writeln!(out, "    global_store_b{}", bytes_per_lane * 8)
        }
        SlotOp::LdsRead {
            bytes_per_lane,
            access,
        } => writeln!(
            out,
            "    ds_read_b{}  ; {}",
            bytes_per_lane * 8,
            stage_comment(access)
        ),
        SlotOp::LdsWrite {
            bytes_per_lane,
            access,
        } => writeln!(
            out,
            "    ds_write_b{}  ; {}",
            bytes_per_lane * 8,
            stage_comment(access)
        ),
        SlotOp::SNop(n) => writeln!(out, "    s_nop {n}"),
        SlotOp::Scalar => writeln!(out, "    s_alu"),
        SlotOp::Waitcnt(w) => writeln!(out, "    s_waitcnt {}", waitcnt_args(w)),
        SlotOp::Barrier => writeln!(out, "    s_barrier"),
    };
}

fn render_program(out: &mut String, p: &WaveProgram) {
    if !p.prologue.is_empty() {
        let _ = writeln!(out, "; prologue");
        for op in &p.prologue {
            render_op(out, op);
        }
    }
    let _ = writeln!(out, ".Lloop:  ; x{} iterations", p.body_iterations);
    for op in &p.body {
        render_op(out, op);
    }
    let _ = writeln!(out, "    s_cbranch_scc1 .Lloop");
    if !p.epilogue.is_empty() {
        let _ = writeln!(out, "; epilogue");
        for op in &p.epilogue {
            render_op(out, op);
        }
    }
    let _ = writeln!(out, "    s_endpgm");
}

/// Renders a kernel as a pseudo-assembly listing with a header carrying
/// the launch geometry and register footprint (the interesting parts of
/// real `-S` output).
pub fn disassemble(k: &KernelDesc) -> String {
    let stats = kernel_stats(k);
    let mut out = String::new();
    let _ = writeln!(out, "; kernel: {}", k.name);
    let _ = writeln!(
        out,
        "; workgroups: {}  waves/wg: {}  vgprs: {}  agprs: {}  lds: {} B",
        k.workgroups, k.waves_per_workgroup, k.arch_vgprs, k.acc_vgprs, k.lds_bytes_per_workgroup
    );
    let _ = writeln!(
        out,
        "; per-iteration: {} mfma, {} valu, {} mem",
        stats.mfma_per_iteration, stats.valu_per_iteration, stats.mem_per_iteration
    );
    render_program(&mut out, &k.program);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::cdna2_catalog;
    use crate::valu::{ValuOp, ValuOpKind};
    use mc_types::DType;

    fn sample_kernel() -> KernelDesc {
        let i = *cdna2_catalog()
            .find(DType::F32, DType::F16, 16, 16, 16)
            .unwrap();
        let program = WaveProgram {
            prologue: vec![
                SlotOp::global_load(16),
                SlotOp::Waitcnt(crate::kernel::WaitSpec::vm(0)),
            ],
            body: vec![
                SlotOp::lds_read(8, crate::kernel::LdsAccess::fixed(0)),
                SlotOp::Mfma(i),
                SlotOp::Mfma(i),
                SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, DType::F32)),
                SlotOp::Scalar,
            ],
            body_iterations: 512,
            epilogue: vec![SlotOp::SNop(4), SlotOp::global_store(16)],
        };
        KernelDesc::new("demo", program)
    }

    #[test]
    fn stats_count_like_dash_s_inspection() {
        let s = kernel_stats(&sample_kernel());
        assert_eq!(s.mfma_per_iteration, 2);
        assert_eq!(s.valu_per_iteration, 1);
        assert_eq!(s.mem_per_iteration, 1);
        assert_eq!(s.static_instructions, 2 + 5 + 2);
    }

    #[test]
    fn listing_contains_real_mnemonics_and_structure() {
        let text = disassemble(&sample_kernel());
        assert!(text.contains("v_mfma_f32_16x16x16f16"));
        assert!(text.contains(".Lloop:  ; x512 iterations"));
        assert!(text.contains("s_cbranch_scc1 .Lloop"));
        assert!(text.contains("s_endpgm"));
        assert!(text.contains("ds_read_b64"));
        assert!(text.contains("global_store_b128"));
        assert!(text.contains("; per-iteration: 2 mfma, 1 valu, 1 mem"));
    }

    #[test]
    fn papers_microbench_verification_holds() {
        // §IV-A methodology: the throughput loop must contain exactly
        // one MFMA and nothing else.
        let params = crate::kernel::WaveProgram::looped(
            vec![SlotOp::Mfma(
                *cdna2_catalog()
                    .find(DType::F64, DType::F64, 16, 16, 4)
                    .unwrap(),
            )],
            40_000_000,
        );
        let k = KernelDesc::new("latency", params);
        let s = kernel_stats(&k);
        assert_eq!(s.mfma_per_iteration, 1);
        assert_eq!(s.valu_per_iteration, 0);
        assert_eq!(s.mem_per_iteration, 0);
    }
}
