//! Executable model of the matrix-multiplication instruction sets the
//! paper characterizes: AMD CDNA2 `V_MFMA_*` (Matrix Cores, §II–III) and
//! NVIDIA Ampere `mma.sync` / HMMA / DMMA (Tensor Cores).
//!
//! The model covers, per instruction:
//!
//! - datatypes and matrix shape (`m×n×k`, number of independent blocks);
//! - issue latency in cycles (the paper's Table II values for CDNA2);
//! - FLOPs performed, and the derived FLOPs/CU/cycle rate the paper uses
//!   to validate its microbenchmarks (§V-A);
//! - architectural register footprint (VGPRs for A/B, AccVGPRs for C/D);
//! - mnemonic and LLVM compiler-builtin naming, with parsing;
//! - the matrix-element ↔ (lane, register) mapping, a Rust port of the
//!   logic in AMD's `amd_matrix_instruction_calculator` tool (ref. \[9]).
//!
//! It also defines the [`kernel`] instruction-stream representation that
//! the WMMA and BLAS layers emit and the simulator executes, and the
//! [`specs`] module holding the calibrated device descriptions
//! (MI250X GCD/package, A100) used across the workspace.

#![deny(missing_docs)]

pub mod catalog;
pub mod disasm;
pub mod encoding;
pub mod kernel;
pub mod modifiers;
pub mod regmap;
pub mod specs;
pub mod walk;

mod instr;
mod shape;
mod valu;

pub use catalog::{ampere_catalog, cdna1_catalog, cdna2_catalog, IsaCatalog};
pub use instr::{MatrixArch, MatrixInstruction, ParseMnemonicError};
pub use kernel::{
    Buffering, CounterClass, KernelDesc, LdsAccess, MemHints, SlotOp, StageTag, WaitSpec,
    WaveProgram,
};
pub use shape::MfmaShape;
pub use valu::{ValuOp, ValuOpKind};
