//! Device specifications: the calibration constants for the simulated
//! MI250X (CDNA2) and A100 (Ampere) devices.
//!
//! These are the single source of truth used by the simulator, the
//! performance models, and the power models. Values come from the AMD
//! CDNA2 whitepaper, the MI250X datasheet, the NVIDIA A100 datasheet,
//! and the paper's own measurements (§IV, §VI).

use serde::{Deserialize, Serialize};

use crate::instr::MatrixArch;

/// Specification of one compute die: a CDNA2 graphics compute die (GCD)
/// or an Ampere GPU die.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DieSpec {
    /// Architecture of this die.
    pub arch: MatrixArch,
    /// Compute units (CDNA2 CUs, or Ampere SMs).
    pub compute_units: u32,
    /// Matrix units per CU (4 Matrix Cores per CDNA2 CU; 4 tensor cores
    /// per Ampere SM).
    pub matrix_units_per_cu: u32,
    /// SIMD/vector units per CU.
    pub simd_units_per_cu: u32,
    /// Lanes per wavefront/warp (64 on CDNA2, 32 on Ampere).
    pub wavefront_size: u32,
    /// Boost clock in MHz used for peak computations (paper: f = 1700 MHz
    /// for MI250X, 1410 MHz for A100).
    pub clock_mhz: u32,
    /// HBM capacity in GiB.
    pub hbm_gib: u32,
    /// Peak HBM bandwidth in GB/s for this die.
    pub hbm_bandwidth_gbs: f64,
    /// Last-level (L2) cache in KiB.
    pub l2_kib: u32,
    /// Maximum wavefronts resident per SIMD unit (occupancy ceiling).
    pub max_waves_per_simd: u32,
    /// Architectural VGPRs per SIMD lane-slice (per-wave budget divisor).
    pub vgprs_per_simd: u32,
    /// LDS (shared memory) bytes per CU.
    pub lds_bytes_per_cu: u32,
}

impl DieSpec {
    /// Total matrix units on the die (440 Matrix Cores per MI250X GCD —
    /// the saturation threshold in the paper's Eq. 2).
    pub fn total_matrix_units(&self) -> u32 {
        self.compute_units * self.matrix_units_per_cu
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> f64 {
        f64::from(self.clock_mhz) * 1e6
    }

    /// Theoretical peak throughput in FLOPS for an instruction delivering
    /// `flops_per_cu_per_cycle` (paper §V-A validation identity).
    pub fn peak_flops(&self, flops_per_cu_per_cycle: f64) -> f64 {
        flops_per_cu_per_cycle * f64::from(self.compute_units) * self.clock_hz()
    }
}

/// Specification of a GPU package (possibly multiple dies).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PackageSpec {
    /// Marketing name.
    pub name: String,
    /// Per-die specification.
    pub die: DieSpec,
    /// Number of dies in the package (2 GCDs on MI250X).
    pub dies: u32,
    /// Package power cap in Watts (560 W on MI250X; the paper's Fig. 5
    /// horizontal line).
    pub power_cap_w: f64,
    /// Measured idle power of the whole package in Watts (88 W, §VI).
    pub idle_power_w: f64,
    /// Active baseline above idle while any kernel is resident, in Watts
    /// per die — clock trees, scheduler, LDS. Chosen so the fitted Eq. 3
    /// intercepts land near the paper's 123–130 W.
    pub active_baseline_w_per_die: f64,
    /// Dynamic energy per Matrix-Core FLOP in picojoules, by datatype
    /// class, chosen so the fitted Eq. 3 slopes land near the paper's
    /// 5.88 / 2.18 / 0.61 W per TFLOPS.
    pub energy_pj: EnergyTable,
}

/// Per-datatype dynamic energy table (picojoules per FLOP).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// FP64 matrix operations.
    pub mfma_f64: f64,
    /// FP32 matrix operations.
    pub mfma_f32: f64,
    /// Mixed-precision (FP16/BF16 input) matrix operations.
    pub mfma_f16: f64,
    /// INT8 matrix operations.
    pub mfma_i8: f64,
    /// Vector-ALU FLOPs (any type) — SIMDs are less efficient per FLOP.
    pub valu: f64,
    /// Energy per byte of HBM traffic (pJ/B).
    pub hbm_per_byte: f64,
}

impl PackageSpec {
    /// Peak package FLOPS for an instruction rate (`dies ×` die peak).
    pub fn peak_flops(&self, flops_per_cu_per_cycle: f64) -> f64 {
        self.die.peak_flops(flops_per_cu_per_cycle) * f64::from(self.dies)
    }
}

/// The AMD MI250X package: two CDNA2 GCDs (paper §II, §IV).
pub fn mi250x() -> PackageSpec {
    PackageSpec {
        name: "AMD Instinct MI250X".to_owned(),
        die: DieSpec {
            arch: MatrixArch::Cdna2,
            compute_units: 110,
            matrix_units_per_cu: 4,
            simd_units_per_cu: 4,
            wavefront_size: 64,
            clock_mhz: 1700,
            hbm_gib: 64,
            hbm_bandwidth_gbs: 1638.0, // 3.2 TB/s per package
            l2_kib: 8192,
            max_waves_per_simd: 8,
            vgprs_per_simd: 512,
            lds_bytes_per_cu: 64 * 1024,
        },
        dies: 2,
        power_cap_w: 560.0,
        idle_power_w: 88.0,
        active_baseline_w_per_die: 17.5,
        energy_pj: EnergyTable {
            mfma_f64: 5.88,
            mfma_f32: 2.18,
            mfma_f16: 0.61,
            mfma_i8: 0.50,
            valu: 7.5,
            hbm_per_byte: 18.0,
        },
    }
}

/// The AMD MI100 package: one CDNA1 die — the first Matrix Core
/// generation (paper ref. \[7]).
pub fn mi100() -> PackageSpec {
    PackageSpec {
        name: "AMD Instinct MI100".to_owned(),
        die: DieSpec {
            arch: MatrixArch::Cdna1,
            compute_units: 120,
            matrix_units_per_cu: 4,
            simd_units_per_cu: 4,
            wavefront_size: 64,
            clock_mhz: 1502,
            hbm_gib: 32,
            hbm_bandwidth_gbs: 1228.8,
            l2_kib: 8192,
            max_waves_per_simd: 8,
            vgprs_per_simd: 512,
            lds_bytes_per_cu: 64 * 1024,
        },
        dies: 1,
        power_cap_w: 300.0,
        idle_power_w: 40.0,
        active_baseline_w_per_die: 25.0,
        energy_pj: EnergyTable {
            // First-generation 7 nm implementation: higher energy per
            // FLOP than the refreshed CDNA2 units.
            mfma_f64: 8.0, // unreachable: no FP64 MFMA on CDNA1
            mfma_f32: 2.9,
            mfma_f16: 0.85,
            mfma_i8: 0.70,
            valu: 9.0,
            hbm_per_byte: 20.0,
        },
    }
}

/// The NVIDIA A100-SXM4-40GB package (single die).
pub fn a100() -> PackageSpec {
    PackageSpec {
        name: "NVIDIA A100".to_owned(),
        die: DieSpec {
            arch: MatrixArch::Ampere,
            compute_units: 108,
            matrix_units_per_cu: 4,
            simd_units_per_cu: 4,
            wavefront_size: 32,
            clock_mhz: 1410,
            hbm_gib: 40,
            hbm_bandwidth_gbs: 1555.0,
            l2_kib: 40960,
            max_waves_per_simd: 16,
            vgprs_per_simd: 512,
            lds_bytes_per_cu: 164 * 1024,
        },
        dies: 1,
        power_cap_w: 400.0,
        idle_power_w: 52.0,
        active_baseline_w_per_die: 30.0,
        energy_pj: EnergyTable {
            mfma_f64: 9.0,
            mfma_f32: 3.0,
            mfma_f16: 0.60,
            mfma_i8: 0.40,
            valu: 8.0,
            hbm_per_byte: 20.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ampere_catalog, cdna2_catalog};
    use mc_types::DType;

    #[test]
    fn mi250x_matrix_core_count() {
        // Paper Eq. 2: the 440 threshold is the Matrix Cores per GCD.
        assert_eq!(mi250x().die.total_matrix_units(), 440);
    }

    #[test]
    fn mi250x_theoretical_peaks_match_datasheet() {
        let p = mi250x();
        let cat = cdna2_catalog();
        // FP64 matrix: 95.7 TFLOPS per package (§II).
        let f64i = cat.find(DType::F64, DType::F64, 16, 16, 4).unwrap();
        let peak = p.peak_flops(f64i.flops_per_cu_per_cycle());
        assert!((peak / 1e12 - 95.7).abs() < 0.2, "FP64 peak {peak:e}");
        // Mixed: 383 TFLOPS per package (§V-C).
        let mixed = cat.find(DType::F32, DType::F16, 16, 16, 16).unwrap();
        let peak = p.peak_flops(mixed.flops_per_cu_per_cycle());
        assert!((peak / 1e12 - 383.0).abs() < 1.0, "mixed peak {peak:e}");
        // FP32 matrix: also 95.7 TFLOPS (§V-C: "theoretical peak for both
        // single and double-precision is 95.7").
        let f32i = cat.find(DType::F32, DType::F32, 16, 16, 4).unwrap();
        let peak = p.peak_flops(f32i.flops_per_cu_per_cycle());
        assert!((peak / 1e12 - 95.7).abs() < 0.2, "FP32 peak {peak:e}");
    }

    #[test]
    fn a100_theoretical_peaks_match_datasheet() {
        let p = a100();
        let cat = ampere_catalog();
        let mixed = cat.find(DType::F32, DType::F16, 16, 8, 16).unwrap();
        let peak = p.peak_flops(mixed.flops_per_cu_per_cycle());
        assert!((peak / 1e12 - 312.0).abs() < 1.0, "mixed peak {peak:e}");
        let dmma = cat.find(DType::F64, DType::F64, 8, 8, 4).unwrap();
        let peak = p.peak_flops(dmma.flops_per_cu_per_cycle());
        assert!((peak / 1e12 - 19.5).abs() < 0.1, "FP64 peak {peak:e}");
    }

    #[test]
    fn per_gcd_peaks() {
        // One GCD: half the package peaks — 191.6 / 47.9 / 47.9 TFLOPS.
        let die = mi250x().die;
        let cat = cdna2_catalog();
        let mixed = cat.find(DType::F32, DType::F16, 16, 16, 16).unwrap();
        assert!((die.peak_flops(mixed.flops_per_cu_per_cycle()) / 1e12 - 191.5).abs() < 0.5);
        let f64i = cat.find(DType::F64, DType::F64, 16, 16, 4).unwrap();
        assert!((die.peak_flops(f64i.flops_per_cu_per_cycle()) / 1e12 - 47.9).abs() < 0.2);
    }

    #[test]
    fn package_constants_match_paper() {
        let p = mi250x();
        assert_eq!(p.power_cap_w, 560.0); // §IV: vendor datasheet
        assert_eq!(p.idle_power_w, 88.0); // §VI measurement
        assert_eq!(p.die.clock_mhz, 1700); // §V-B model input
        assert_eq!(p.die.hbm_gib * p.dies, 128); // §II: 128 GB per package
    }
}
