//! A rocSOLVER-style LAPACK subset over the simulated Matrix Cores.
//!
//! The paper's programming-interface hierarchy (Fig. 2) tops out at
//! "Applications and HPC Libraries": LAPACK implementations such as
//! rocSOLVER "delegate a significant amount of computation to the BLAS
//! implementation, which naturally leads to opportunistic leveraging of
//! Matrix Cores in this high-level library" (§III). This crate
//! demonstrates exactly that mechanism:
//!
//! * [`potrf()`](potrf::potrf) — blocked Cholesky factorization (`A = L·Lᵀ`);
//! * [`getrf()`](getrf::getrf) — blocked LU factorization with partial pivoting;
//! * [`trsm`]  — triangular solves (the blocked kernels' building block);
//! * [`refine()`](refine::refine) — mixed-precision iterative refinement (Haidar et al.,
//!   the paper's ref. \[3]): factorize fast in low precision on Matrix
//!   Cores, refine to FP64 accuracy with cheap residual corrections.
//!
//! Every trailing-matrix update is routed through [`mc_blas`], so the
//! share of FLOPs landing on Matrix Cores can be measured with the same
//! Eq. 1 counter methodology the paper applies to GEMM — see
//! [`timed::factor_timed`] and the `solver_utilization` experiment.

#![deny(missing_docs)]

pub mod getrf;
pub mod potrf;
pub mod refine;
pub mod timed;
pub mod trsm;

mod matrix;

pub use getrf::getrf;
pub use matrix::Matrix;
pub use potrf::potrf;
pub use refine::{refine, RefineOptions, RefineReport};
pub use timed::{factor_timed, Factorization, SolverPerf};
pub use trsm::{trsm_left_lower, trsm_right_lower_transpose};

pub use mc_blas::Transpose;

/// Errors from the solver routines.
#[derive(Clone, Debug, PartialEq)]
pub enum SolverError {
    /// The matrix is not positive definite (POTRF pivot ≤ 0 at `index`).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        index: usize,
    },
    /// A pivot is exactly zero (GETRF singularity at `index`).
    Singular {
        /// Index of the zero pivot.
        index: usize,
    },
    /// Shape mismatch between operands.
    ShapeMismatch {
        /// Description of the mismatch.
        what: String,
    },
    /// Iterative refinement failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// Underlying BLAS error.
    Blas(String),
}

impl core::fmt::Display for SolverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolverError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite (pivot {index})")
            }
            SolverError::Singular { index } => write!(f, "matrix is singular (pivot {index})"),
            SolverError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            SolverError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (residual {residual:e})"
                )
            }
            SolverError::Blas(msg) => write!(f, "BLAS error: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {}
