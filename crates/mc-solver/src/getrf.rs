//! Blocked LU factorization with partial pivoting (LAPACK `DGETRF`).
//!
//! Right-looking blocked algorithm: factor a column panel with row
//! pivoting on scalar arithmetic, apply the pivots across the matrix,
//! triangular-solve the block row, then rank-`nb` update the trailing
//! matrix through the [`mc_blas`] GEMM path.

use mc_blas::{run_functional, select_strategy, GemmDesc, GemmOp};

use crate::matrix::Matrix;
use crate::trsm::trsm_left_lower;
use crate::SolverError;

/// The result of an LU factorization: `P·A = L·U` packed LAPACK-style
/// (unit-lower `L` below the diagonal, `U` on and above), plus the
/// pivot row `ipiv[k]` swapped with row `k` at step `k`.
#[derive(Clone, Debug, PartialEq)]
pub struct Lu {
    /// Packed L\U factors.
    pub lu: Matrix<f64>,
    /// Pivot indices (LAPACK `ipiv`, 0-based).
    pub ipiv: Vec<usize>,
}

impl Lu {
    /// Solves `A·x = b` using the packed factors.
    pub fn solve(&self, b: &Matrix<f64>) -> Result<Matrix<f64>, SolverError> {
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(SolverError::ShapeMismatch {
                what: format!("rhs has {} rows, factor is {n}x{n}", b.rows()),
            });
        }
        // Apply the pivots to b.
        let mut y = b.clone();
        for (k, &p) in self.ipiv.iter().enumerate() {
            if p != k {
                for col in 0..y.cols() {
                    let t = y.get(k, col);
                    y.set(k, col, y.get(p, col));
                    y.set(p, col, t);
                }
            }
        }
        // Forward (unit lower), then backward (upper).
        trsm_left_lower(&self.lu, &mut y, true)?;
        crate::trsm::trsm_left_upper(&self.lu, &mut y)?;
        Ok(y)
    }
}

/// Factorizes `A` as `P·A = L·U` with partial pivoting.
pub fn getrf(a: &Matrix<f64>, block: usize) -> Result<Lu, SolverError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolverError::ShapeMismatch {
            what: format!("GETRF needs square input, got {}x{}", a.rows(), a.cols()),
        });
    }
    let nb = block.max(1);
    let mut w = a.clone();
    let mut ipiv = vec![0usize; n];

    let mut k = 0;
    while k < n {
        let b = nb.min(n - k);

        // 1. Panel factorization with partial pivoting over rows k..n.
        #[allow(clippy::needless_range_loop)] // j indexes both w and ipiv
        for j in k..k + b {
            // Pivot search in column j, rows j..n.
            let mut piv = j;
            let mut best = w.get(j, j).abs();
            for i in j + 1..n {
                let v = w.get(i, j).abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            if best == 0.0 {
                return Err(SolverError::Singular { index: j });
            }
            ipiv[j] = piv;
            if piv != j {
                for col in 0..n {
                    let t = w.get(j, col);
                    w.set(j, col, w.get(piv, col));
                    w.set(piv, col, t);
                }
            }
            // Scale the column and update the rest of the panel.
            let d = w.get(j, j);
            for i in j + 1..n {
                let l = w.get(i, j) / d;
                w.set(i, j, l);
                for col in j + 1..k + b {
                    w.set(i, col, w.get(i, col) - l * w.get(j, col));
                }
            }
        }

        let rest = n - k - b;
        if rest > 0 {
            // 2. Block-row solve: U12 <- L11^-1 · A12 (unit lower).
            let l11 = w.block(k, k, b, b);
            let mut u12 = w.block(k, k + b, b, rest);
            trsm_left_lower(&l11, &mut u12, true)?;
            w.set_block(k, k + b, &u12);

            // 3. Trailing update: A22 <- A22 - L21 · U12 via GEMM.
            let l21 = w.block(k + b, k, rest, b);
            let trailing = w.block(k + b, k + b, rest, rest);
            let desc = GemmDesc::new(GemmOp::Dgemm, rest, rest, b, -1.0, 1.0);
            let mut out = vec![0.0f64; rest * rest];
            run_functional::<f64, f64, f64>(
                &desc,
                &select_strategy(&desc),
                l21.as_slice(),
                u12.as_slice(),
                trailing.as_slice(),
                &mut out,
            )
            .map_err(|e| SolverError::Blas(e.to_string()))?;
            w.set_block(k + b, k + b, &Matrix::from_slice(rest, rest, &out));
        }
        k += b;
    }

    Ok(Lu { lu: w, ipiv })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(n: usize) -> Matrix<f64> {
        // Diagonally dominant-ish but with pivoting-forcing structure.
        Matrix::from_fn(n, n, |i, j| {
            let v = (((i * 7 + j * 13) % 19) as f64) - 9.0;
            if i == j {
                v + 0.5 // small diagonal: pivoting must kick in
            } else {
                v
            }
        })
    }

    fn residual(a: &Matrix<f64>, lu: &Lu, x: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
        let _ = lu;
        let n = a.rows();
        let mut max = 0.0f64;
        for i in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += a.get(i, k) * x.get(k, 0);
            }
            max = max.max((s - b.get(i, 0)).abs());
        }
        max / b.max_abs().max(1.0)
    }

    #[test]
    fn factor_and_solve_various_sizes() {
        for n in [1usize, 5, 33, 64, 129] {
            let a = test_matrix(n);
            let lu = getrf(&a, 32).unwrap();
            let x_true = Matrix::from_fn(n, 1, |i, _| ((i % 9) as f64) - 4.0);
            let mut b = Matrix::zeros(n, 1);
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a.get(i, k) * x_true.get(k, 0);
                }
                b.set(i, 0, s);
            }
            let x = lu.solve(&b).unwrap();
            assert!(residual(&a, &lu, &x, &b) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn pivoting_actually_happens() {
        // First pivot must not be the (tiny) diagonal element.
        let mut a = test_matrix(16);
        a.set(0, 0, 1e-12);
        a.set(8, 0, 100.0);
        let lu = getrf(&a, 8).unwrap();
        assert_eq!(lu.ipiv[0], 8);
        // All multipliers bounded by 1 in magnitude (partial pivoting).
        for i in 0..16 {
            for j in 0..i {
                assert!(lu.lu.get(i, j).abs() <= 1.0 + 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn block_size_invariance() {
        let a = test_matrix(96);
        let x = Matrix::from_fn(96, 1, |i, _| (i as f64).sin());
        let mut b = Matrix::zeros(96, 1);
        for i in 0..96 {
            let mut s = 0.0;
            for k in 0..96 {
                s += a.get(i, k) * x.get(k, 0);
            }
            b.set(i, 0, s);
        }
        let s1 = getrf(&a, 8).unwrap().solve(&b).unwrap();
        let s2 = getrf(&a, 96).unwrap().solve(&b).unwrap();
        for i in 0..96 {
            assert!((s1.get(i, 0) - s2.get(i, 0)).abs() < 1e-6, "row {i}");
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = test_matrix(8);
        for j in 0..8 {
            a.set(3, j, 0.0); // zero row -> singular at some pivot
        }
        // Make column 3 otherwise zero below too to force exact zero pivot.
        for i in 0..8 {
            a.set(i, 3, 0.0);
        }
        assert!(matches!(getrf(&a, 4), Err(SolverError::Singular { .. })));
    }

    #[test]
    fn rhs_shape_checked() {
        let a = test_matrix(8);
        let lu = getrf(&a, 4).unwrap();
        let bad = Matrix::<f64>::zeros(5, 1);
        assert!(matches!(
            lu.solve(&bad),
            Err(SolverError::ShapeMismatch { .. })
        ));
    }
}
