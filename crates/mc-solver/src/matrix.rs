//! A minimal dense row-major matrix for the solver routines.

use mc_types::Real;

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Real> Matrix<T> {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::one());
        }
        m
    }

    /// Builds from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[T]) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element update.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies the block `[r0, r0+h) × [c0, c0+w)` into a new matrix.
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Matrix<T> {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of range"
        );
        Matrix::from_fn(h, w, |i, j| self.get(r0 + i, c0 + j))
    }

    /// Writes `src` into the block at `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Matrix<T>) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "block out of range"
        );
        for i in 0..src.rows {
            for j in 0..src.cols {
                self.set(r0 + i, c0 + j, src.get(i, j));
            }
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Frobenius norm (computed in f64).
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|x| x.to_f64() * x.to_f64())
            .sum::<f64>()
            .sqrt()
    }

    /// Converts every element to another [`Real`] type.
    pub fn cast<U: Real>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| U::from_f64(x.to_f64())).collect(),
        }
    }

    /// Maximum absolute element (in f64).
    pub fn max_abs(&self) -> f64 {
        self.data
            .iter()
            .map(|x| x.to_f64().abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::<f64>::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(Matrix::<f32>::identity(4).get(2, 2), 1.0);
        assert_eq!(Matrix::<f32>::identity(4).get(2, 1), 0.0);
    }

    #[test]
    fn block_roundtrip() {
        let m = Matrix::<f64>::from_fn(6, 6, |i, j| (i * 6 + j) as f64);
        let b = m.block(2, 3, 2, 2);
        assert_eq!(b.get(0, 0), 15.0);
        assert_eq!(b.get(1, 1), 22.0);
        let mut z = Matrix::<f64>::zeros(6, 6);
        z.set_block(2, 3, &b);
        assert_eq!(z.get(3, 4), 22.0);
        assert_eq!(z.get(0, 0), 0.0);
    }

    #[test]
    fn transpose_and_norm() {
        let m = Matrix::<f64>::from_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let t = m.transposed();
        assert_eq!(t.get(0, 1), 3.0);
        assert!((m.frobenius_norm() - 30f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn cast_rounds_per_type() {
        use mc_types::F16;
        let m = Matrix::<f64>::from_slice(1, 2, &[1.0, 1.0 + 2f64.powi(-12)]);
        let h: Matrix<F16> = m.cast();
        assert_eq!(h.get(0, 0).to_f64(), 1.0);
        assert_eq!(h.get(0, 1).to_f64(), 1.0); // rounded away
    }

    #[test]
    #[should_panic(expected = "block out of range")]
    fn oob_block_panics() {
        let m = Matrix::<f64>::zeros(3, 3);
        let _ = m.block(2, 2, 2, 2);
    }
}
