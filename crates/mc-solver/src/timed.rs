//! Timed factorizations: replay a blocked factorization's launch
//! schedule on the simulated GCD and measure where the FLOPs land.
//!
//! This is the experiment the paper gestures at in §III: a LAPACK-level
//! library "delegates a significant amount of computation to the BLAS
//! implementation, which naturally leads to opportunistic leveraging of
//! Matrix Cores". Concretely: the trailing-matrix updates are rocBLAS
//! GEMMs (Matrix Cores), while panel factorization and triangular
//! solves are latency-bound scalar/SIMD kernels — so the Matrix Core
//! share grows with `n/nb` exactly like the GEMM share of the
//! factorization's FLOPs.

use mc_blas::{plan_syrk, BlasError, BlasHandle, GemmDesc, GemmOp, SyrkDesc};
use mc_isa::{KernelDesc, SlotOp, ValuOp, ValuOpKind, WaveProgram};
use mc_profiler::{matrix_core_ratio, ProfilerSession};
use mc_sim::HwCounters;
use mc_types::DType;

use crate::SolverError;

/// Which factorization to replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Factorization {
    /// Cholesky (`n³/3` useful FLOPs).
    Potrf,
    /// LU with partial pivoting (`2n³/3` useful FLOPs).
    Getrf,
}

impl Factorization {
    /// Useful floating-point work for an `n×n` factorization.
    pub fn useful_flops(self, n: u64) -> u64 {
        match self {
            Factorization::Potrf => n * n * n / 3,
            Factorization::Getrf => 2 * n * n * n / 3,
        }
    }
}

/// Performance report for one timed factorization.
#[derive(Clone, Debug)]
pub struct SolverPerf {
    /// Factorization kind.
    pub kind: Factorization,
    /// Problem size.
    pub n: usize,
    /// Block size.
    pub block: usize,
    /// Total simulated time in seconds.
    pub time_s: f64,
    /// Useful-FLOP throughput in TFLOPS.
    pub tflops: f64,
    /// Fraction of FLOPs delivered by Matrix Cores (Eq. 1 over the
    /// whole factorization's counter deltas).
    pub matrix_core_ratio: f64,
    /// Number of GEMM (trailing-update) launches.
    pub gemm_launches: usize,
    /// Counter deltas across the factorization.
    pub counters: HwCounters,
}

/// Builds the latency-bound panel kernel: `flops` FP64 FLOPs on SIMD
/// units with limited parallelism (one workgroup per panel column
/// block), which is what makes small `nb` panel-bound.
fn panel_kernel(flops: u64, rows: u64) -> KernelDesc {
    // One wave per 64 panel rows; each wave executes its share of FMAs.
    let waves = rows.div_ceil(64).max(1);
    let fma_per_wave = (flops / (waves * 128)).max(1);
    let program = WaveProgram::looped(
        vec![
            SlotOp::Valu(ValuOp::new(ValuOpKind::Fma, DType::F64)),
            SlotOp::Valu(ValuOp::new(ValuOpKind::Move, DType::F64)),
            SlotOp::Scalar,
        ],
        fma_per_wave,
    );
    KernelDesc {
        workgroups: waves,
        waves_per_workgroup: 1,
        ..KernelDesc::new("panel_factor", program)
    }
}

/// Replays a blocked factorization schedule on the handle's GCD.
pub fn factor_timed(
    handle: &mut BlasHandle,
    kind: Factorization,
    n: usize,
    block: usize,
) -> Result<SolverPerf, SolverError> {
    if n == 0 || block == 0 {
        return Err(SolverError::ShapeMismatch {
            what: format!("n={n}, block={block}"),
        });
    }
    let session = ProfilerSession::begin(handle.gpu(), handle.die())
        .map_err(|e| SolverError::Blas(e.to_string()))?;

    let mut time_s = 0.0;
    let mut gemm_launches = 0usize;
    let mut k = 0usize;
    while k < n {
        let b = block.min(n - k);
        let rest = n - k - b;

        // Panel factorization (+ TRSM): ~ b²·(rows)/2 scalar FLOPs for
        // Cholesky panels, twice that for LU panels with pivoting.
        let rows = (n - k) as u64;
        let panel_flops = match kind {
            Factorization::Potrf => (b as u64) * (b as u64) * rows / 2,
            Factorization::Getrf => (b as u64) * (b as u64) * rows,
        };
        let pk = panel_kernel(panel_flops.max(128), rows);
        let pr = handle
            .gpu_mut()
            .launch(0, &pk)
            .map_err(|e| SolverError::Blas(e.to_string()))?;
        time_s += pr.time_s;

        // Trailing update: SYRK for Cholesky (lower triangle only, as
        // rocSOLVER does), full GEMM for LU.
        if rest > 0 {
            match kind {
                Factorization::Potrf => {
                    let desc = SyrkDesc {
                        op: GemmOp::Dgemm,
                        n: rest,
                        k: b,
                        alpha: -1.0,
                        beta: 1.0,
                    };
                    let plan = plan_syrk(&handle.gpu().spec().die, &desc)
                        .map_err(|e: BlasError| SolverError::Blas(e.to_string()))?;
                    let die = handle.die();
                    let r = handle
                        .gpu_mut()
                        .launch(die, &plan.kernel)
                        .map_err(|e| SolverError::Blas(e.to_string()))?;
                    time_s += r.time_s;
                }
                Factorization::Getrf => {
                    let desc = GemmDesc::new(GemmOp::Dgemm, rest, rest, b, -1.0, 1.0);
                    let perf = handle
                        .gemm_timed(&desc)
                        .map_err(|e: BlasError| SolverError::Blas(e.to_string()))?;
                    time_s += perf.time_s;
                }
            }
            gemm_launches += 1;
        }
        k += b;
    }

    let counters = session
        .end(handle.gpu())
        .map_err(|e| SolverError::Blas(e.to_string()))?;
    let useful = kind.useful_flops(n as u64);
    Ok(SolverPerf {
        kind,
        n,
        block,
        time_s,
        tflops: useful as f64 / time_s / 1e12,
        matrix_core_ratio: matrix_core_ratio(&counters),
        gemm_launches,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_core_share_grows_with_problem_size() {
        let mut handle = BlasHandle::new_mi250x_gcd();
        let r512 = factor_timed(&mut handle, Factorization::Potrf, 512, 64).unwrap();
        let r4096 = factor_timed(&mut handle, Factorization::Potrf, 4096, 64).unwrap();
        assert!(r4096.matrix_core_ratio > r512.matrix_core_ratio);
        assert!(
            r4096.matrix_core_ratio > 0.95,
            "large POTRF is GEMM-dominated: {}",
            r4096.matrix_core_ratio
        );
    }

    #[test]
    fn lu_and_cholesky_flop_models() {
        assert_eq!(Factorization::Potrf.useful_flops(300), 9_000_000);
        assert_eq!(Factorization::Getrf.useful_flops(300), 18_000_000);
    }

    #[test]
    fn throughput_approaches_dgemm_for_large_n() {
        let mut handle = BlasHandle::new_mi250x_gcd();
        let r = factor_timed(&mut handle, Factorization::Getrf, 8192, 128).unwrap();
        // LU at 8192 should reach a healthy fraction of the DGEMM
        // throughput at comparable sizes (trailing updates dominate).
        assert!(r.tflops > 8.0, "{}", r.tflops);
        assert!(r.gemm_launches == 8192 / 128 - 1 + 1 || r.gemm_launches == 8192 / 128 - 1);
    }

    #[test]
    fn small_blocks_are_panel_bound() {
        let mut handle = BlasHandle::new_mi250x_gcd();
        let small = factor_timed(&mut handle, Factorization::Potrf, 2048, 16).unwrap();
        let big = factor_timed(&mut handle, Factorization::Potrf, 2048, 128).unwrap();
        assert!(
            big.tflops > small.tflops,
            "{} vs {}",
            big.tflops,
            small.tflops
        );
    }

    #[test]
    fn zero_sizes_rejected() {
        let mut handle = BlasHandle::new_mi250x_gcd();
        assert!(factor_timed(&mut handle, Factorization::Potrf, 0, 64).is_err());
        assert!(factor_timed(&mut handle, Factorization::Getrf, 64, 0).is_err());
    }
}
