//! Mixed-precision iterative refinement (the paper's ref. \[3], Haidar
//! et al. SC'18): factorize `A` in a *low* precision — where Matrix
//! Cores deliver 2–8× the FP64 throughput at 2–8× the power efficiency
//! (paper §V/§VI) — then recover FP64-level accuracy with cheap
//! residual-correction iterations.
//!
//! `A·x = b`:
//! 1. `LU ← getrf(lo(A))` in the working precision (f32 here; the f16
//!    variant additionally scales, which ref. \[3] covers);
//! 2. `x ← LU⁻¹·b`;
//! 3. repeat: `r ← b − A·x` in FP64, `d ← LU⁻¹·r`, `x ← x + d`,
//!    until `‖r‖∞ / (‖A‖∞·‖x‖∞)` reaches FP64 round-off.

use crate::getrf::getrf;
use crate::matrix::Matrix;
use crate::SolverError;

/// Options for [`refine`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RefineOptions {
    /// Maximum refinement iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the scaled residual.
    pub tolerance: f64,
    /// Panel block size for the low-precision factorization.
    pub block: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            max_iterations: 30,
            tolerance: 1e-12,
            block: 64,
        }
    }
}

/// Convergence report from [`refine`].
#[derive(Clone, Debug, PartialEq)]
pub struct RefineReport {
    /// The solution vector(s).
    pub x: Matrix<f64>,
    /// Scaled residual after each iteration (index 0 = initial solve).
    pub residual_history: Vec<f64>,
    /// Iterations taken (refinement steps after the initial solve).
    pub iterations: usize,
}

/// Solves `A·x = b` by f32-factorization + FP64 iterative refinement.
pub fn refine(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    opts: RefineOptions,
) -> Result<RefineReport, SolverError> {
    let n = a.rows();
    if a.cols() != n || b.rows() != n {
        return Err(SolverError::ShapeMismatch {
            what: format!("A {}x{} vs b {}x{}", a.rows(), a.cols(), b.rows(), b.cols()),
        });
    }

    // Low-precision factorization: round A to f32, factor, and keep the
    // factors in f64 storage for the solves (as the GPU algorithm keeps
    // them in registers/HBM at working precision).
    let a_lo: Matrix<f32> = a.cast();
    let lu = getrf(&a_lo.cast::<f64>(), opts.block)?;

    let a_norm = a.max_abs().max(f64::MIN_POSITIVE);
    let mut x = lu.solve(b)?;
    let mut history = Vec::new();

    for it in 0..=opts.max_iterations {
        // FP64 residual r = b - A x.
        let mut r = b.clone();
        for i in 0..n {
            for col in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..n {
                    s += a.get(i, k) * x.get(k, col);
                }
                r.set(i, col, b.get(i, col) - s);
            }
        }
        let scaled = r.max_abs() / (a_norm * x.max_abs().max(1.0));
        history.push(scaled);
        if scaled <= opts.tolerance {
            return Ok(RefineReport {
                x,
                residual_history: history,
                iterations: it,
            });
        }
        if it == opts.max_iterations {
            break;
        }
        // Correction through the low-precision factors.
        let d = lu.solve(&r)?;
        for i in 0..n {
            for col in 0..x.cols() {
                x.set(i, col, x.get(i, col) + d.get(i, col));
            }
        }
    }

    Err(SolverError::NoConvergence {
        iterations: opts.max_iterations,
        residual: *history.last().unwrap_or(&f64::INFINITY),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_conditioned(n: usize) -> Matrix<f64> {
        // Strongly diagonally dominant: condition number O(1).
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                (n as f64) + 2.0
            } else {
                (((i * 13 + j * 7) % 11) as f64) / 11.0 - 0.5
            }
        })
    }

    fn rhs_for(a: &Matrix<f64>, x_true: &Matrix<f64>) -> Matrix<f64> {
        let n = a.rows();
        let mut b = Matrix::zeros(n, x_true.cols());
        for i in 0..n {
            for col in 0..x_true.cols() {
                let mut s = 0.0;
                for k in 0..n {
                    s += a.get(i, k) * x_true.get(k, col);
                }
                b.set(i, col, s);
            }
        }
        b
    }

    #[test]
    fn converges_to_fp64_accuracy_from_f32_factors() {
        let n = 128;
        let a = well_conditioned(n);
        let x_true = Matrix::from_fn(n, 1, |i, _| ((i * 29 % 17) as f64) / 17.0 - 0.5);
        let b = rhs_for(&a, &x_true);
        let report = refine(&a, &b, RefineOptions::default()).unwrap();
        // FP64-level solution despite the f32 factorization.
        for i in 0..n {
            assert!(
                (report.x.get(i, 0) - x_true.get(i, 0)).abs() < 1e-10,
                "row {i}: {} vs {}",
                report.x.get(i, 0),
                x_true.get(i, 0)
            );
        }
        // A couple of iterations suffice on a well-conditioned system.
        assert!(report.iterations <= 4, "{}", report.iterations);
    }

    #[test]
    fn residual_history_is_decreasing() {
        let n = 96;
        let a = well_conditioned(n);
        let x_true = Matrix::from_fn(n, 1, |i, _| (i as f64).cos());
        let b = rhs_for(&a, &x_true);
        let report = refine(&a, &b, RefineOptions::default()).unwrap();
        for w in report.residual_history.windows(2) {
            assert!(w[1] < w[0], "history {:?}", report.residual_history);
        }
        // The initial (f32-only) solve sits well above the final
        // FP64-refined residual.
        let first = report.residual_history[0];
        let last = *report.residual_history.last().unwrap();
        assert!(first > 50.0 * last, "{first} vs {last}");
        assert!(last <= 1e-12);
    }

    #[test]
    fn zero_iterations_when_fp32_is_enough() {
        // Tiny well-conditioned system where the f32 solve already meets
        // a loose tolerance.
        let a = well_conditioned(8);
        let x_true = Matrix::from_fn(8, 1, |i, _| i as f64);
        let b = rhs_for(&a, &x_true);
        let report = refine(
            &a,
            &b,
            RefineOptions {
                tolerance: 1e-4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn no_convergence_is_reported() {
        let a = well_conditioned(32);
        let b = Matrix::from_fn(32, 1, |i, _| i as f64);
        let err = refine(
            &a,
            &b,
            RefineOptions {
                tolerance: 0.0, // unattainable
                max_iterations: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SolverError::NoConvergence { iterations: 2, .. }
        ));
    }

    #[test]
    fn multiple_right_hand_sides() {
        let n = 64;
        let a = well_conditioned(n);
        let x_true = Matrix::from_fn(n, 3, |i, c| ((i + c * 31) % 19) as f64 - 9.0);
        let b = rhs_for(&a, &x_true);
        let report = refine(&a, &b, RefineOptions::default()).unwrap();
        for i in 0..n {
            for c in 0..3 {
                assert!((report.x.get(i, c) - x_true.get(i, c)).abs() < 1e-9);
            }
        }
    }
}
