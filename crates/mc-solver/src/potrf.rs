//! Blocked Cholesky factorization (LAPACK `DPOTRF`, lower variant).
//!
//! The right-looking blocked algorithm: factor a diagonal block on
//! scalar arithmetic, triangular-solve the panel below it, then update
//! the trailing matrix with a GEMM — routed through [`mc_blas`]'s
//! functional executor so the update carries Matrix Core tiling and
//! precision semantics, exactly as rocSOLVER delegates to rocBLAS.

use mc_blas::{run_functional, select_strategy, GemmDesc, GemmOp};

use crate::matrix::Matrix;
use crate::trsm::trsm_right_lower_transpose;
use crate::SolverError;

/// Default block size (matches the GEMM macro-tile granularity).
pub const DEFAULT_BLOCK: usize = 64;

/// Computes the lower Cholesky factor `L` with `A = L·Lᵀ`.
///
/// Returns `L` (strictly-upper part zeroed). Fails with
/// [`SolverError::NotPositiveDefinite`] when a pivot is non-positive.
///
/// ```
/// use mc_solver::{potrf, Matrix};
///
/// // A small SPD matrix: diag-dominant symmetric.
/// let a = Matrix::from_fn(4, 4, |i, j| if i == j { 5.0 } else { 1.0 });
/// let l = potrf(&a, 64).unwrap();
/// // First pivot is sqrt(5).
/// assert!((l.get(0, 0) - 5.0f64.sqrt()).abs() < 1e-12);
/// assert_eq!(l.get(0, 3), 0.0); // upper triangle cleared
/// ```
pub fn potrf(a: &Matrix<f64>, block: usize) -> Result<Matrix<f64>, SolverError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolverError::ShapeMismatch {
            what: format!("POTRF needs square input, got {}x{}", a.rows(), a.cols()),
        });
    }
    let nb = block.max(1);
    let mut w = a.clone();

    let mut k = 0;
    while k < n {
        let b = nb.min(n - k);

        // 1. Unblocked Cholesky of the diagonal block.
        let mut dkk = w.block(k, k, b, b);
        unblocked_cholesky(&mut dkk, k)?;
        w.set_block(k, k, &dkk);

        let rest = n - k - b;
        if rest > 0 {
            // 2. Panel solve: A21 <- A21 · L11^-T.
            let mut panel = w.block(k + b, k, rest, b);
            trsm_right_lower_transpose(&dkk, &mut panel)?;
            w.set_block(k + b, k, &panel);

            // 3. Trailing update A22 <- A22 - panel · panelᵀ, via the
            //    Matrix Core GEMM path (SYRK expressed as GEMM with
            //    trans_b, alpha = -1, beta = 1).
            let desc = GemmDesc {
                trans_b: crate::Transpose::Trans,
                ..GemmDesc::new(GemmOp::Dgemm, rest, rest, b, -1.0, 1.0)
            };
            let trailing = w.block(k + b, k + b, rest, rest);
            let mut out = vec![0.0f64; rest * rest];
            run_functional::<f64, f64, f64>(
                &desc,
                &select_strategy(&desc),
                panel.as_slice(),
                panel.as_slice(),
                trailing.as_slice(),
                &mut out,
            )
            .map_err(|e| SolverError::Blas(e.to_string()))?;
            w.set_block(k + b, k + b, &Matrix::from_slice(rest, rest, &out));
        }
        k += b;
    }

    // Zero the strictly-upper triangle.
    for i in 0..n {
        for j in i + 1..n {
            w.set(i, j, 0.0);
        }
    }
    Ok(w)
}

fn unblocked_cholesky(a: &mut Matrix<f64>, base_index: usize) -> Result<(), SolverError> {
    let n = a.rows();
    for j in 0..n {
        let mut d = a.get(j, j);
        for k in 0..j {
            d -= a.get(j, k) * a.get(j, k);
        }
        if d <= 0.0 {
            return Err(SolverError::NotPositiveDefinite {
                index: base_index + j,
            });
        }
        let d = d.sqrt();
        a.set(j, j, d);
        for i in j + 1..n {
            let mut v = a.get(i, j);
            for k in 0..j {
                v -= a.get(i, k) * a.get(j, k);
            }
            a.set(i, j, v / d);
        }
    }
    Ok(())
}

/// Solves `A·x = b` given the Cholesky factor `L` (two triangular
/// solves).
pub fn potrs(l: &Matrix<f64>, b: &Matrix<f64>) -> Result<Matrix<f64>, SolverError> {
    let mut y = b.clone();
    crate::trsm::trsm_left_lower(l, &mut y, false)?;
    let u = l.transposed();
    crate::trsm::trsm_left_upper(&u, &mut y)?;
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic SPD matrix: A = M·Mᵀ + n·I.
    fn spd(n: usize) -> Matrix<f64> {
        let m = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.5);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { n as f64 } else { 0.0 };
                for k in 0..n {
                    s += m.get(i, k) * m.get(j, k);
                }
                a.set(i, j, s);
            }
        }
        a
    }

    fn reconstruct_error(a: &Matrix<f64>, l: &Matrix<f64>) -> f64 {
        let n = a.rows();
        let mut max = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += l.get(i, k) * l.get(j, k);
                }
                max = max.max((s - a.get(i, j)).abs());
            }
        }
        max / a.max_abs()
    }

    #[test]
    fn factorizes_spd_matrices_of_odd_sizes() {
        for n in [1usize, 7, 32, 65, 130] {
            let a = spd(n);
            let l = potrf(&a, DEFAULT_BLOCK).unwrap();
            assert!(reconstruct_error(&a, &l) < 1e-10, "n={n}");
            // Lower triangular with positive diagonal.
            for i in 0..n {
                assert!(l.get(i, i) > 0.0);
                for j in i + 1..n {
                    assert_eq!(l.get(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn block_size_does_not_change_the_factor() {
        let a = spd(96);
        let l1 = potrf(&a, 16).unwrap();
        let l2 = potrf(&a, 96).unwrap(); // unblocked in one shot
        for i in 0..96 {
            for j in 0..=i {
                assert!(
                    (l1.get(i, j) - l2.get(i, j)).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    l1.get(i, j),
                    l2.get(i, j)
                );
            }
        }
    }

    #[test]
    fn rejects_indefinite_matrices() {
        let mut a = spd(16);
        a.set(5, 5, -1.0);
        let err = potrf(&a, 8).unwrap_err();
        assert!(matches!(err, SolverError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::<f64>::zeros(4, 5);
        assert!(matches!(
            potrf(&a, 4),
            Err(SolverError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn potrs_solves_linear_systems() {
        let n = 48;
        let a = spd(n);
        let l = potrf(&a, 16).unwrap();
        let x_true = Matrix::from_fn(n, 1, |i, _| (i as f64) / 7.0 - 3.0);
        // b = A x.
        let mut b = Matrix::zeros(n, 1);
        for i in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += a.get(i, k) * x_true.get(k, 0);
            }
            b.set(i, 0, s);
        }
        let x = potrs(&l, &b).unwrap();
        for i in 0..n {
            assert!((x.get(i, 0) - x_true.get(i, 0)).abs() < 1e-8, "row {i}");
        }
    }
}
