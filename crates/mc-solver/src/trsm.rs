//! Triangular solves with multiple right-hand sides.
//!
//! These are the panel-level kernels of the blocked factorizations; like
//! rocSOLVER's, they run substitution on scalar/SIMD arithmetic (it has
//! no `m×n×k` structure for Matrix Cores). Above [`TRSM_BLOCK`] unknowns
//! each solve is itself blocked: substitution stays on `TRSM_BLOCK`-wide
//! diagonal blocks and the off-diagonal bulk of the work becomes rank-k
//! updates on the shared [`mc_compute::Auto`] GEMM dispatch — the same
//! BLAS-3 shift the factorizations make, applied one level down.

use mc_compute::{GemmParams, MatMul, Trans};

use crate::matrix::Matrix;
use crate::SolverError;

/// Unknowns per substitution block; solves at or below this size run
/// the plain substitution loops.
pub const TRSM_BLOCK: usize = 64;

/// Runs `D ← α·A·B + β·C` on the shared GEMM dispatch (solver-internal
/// shapes are always in-bounds, so the buffer check cannot fail). The
/// [`mc_compute::Auto`] crossover keeps the frequent small panel
/// updates off the packed tiers' packing toll without changing a bit
/// of the result; large rank-k updates land on the f64 SIMD
/// microkernel when the vector unit allows, the scalar blocked kernel
/// otherwise — bitwise identical either way.
fn gemm_update(params: &GemmParams, a: &[f64], b: &[f64], c: &[f64], d: &mut [f64]) {
    mc_compute::Auto::from_env()
        .gemm::<f64, f64, f64>(params, a, b, c, d)
        .expect("solver gemm shapes are validated by construction");
}

/// Offsets a singular-diagonal report from block coordinates to matrix
/// coordinates.
fn offset_singular(e: SolverError, base: usize) -> SolverError {
    match e {
        SolverError::Singular { index } => SolverError::Singular {
            index: index + base,
        },
        other => other,
    }
}

/// Solves `L·X = B` for `X`, with `L` lower triangular (`unit_diag`
/// selects implicit ones on the diagonal). `B` is overwritten by `X`.
pub fn trsm_left_lower(
    l: &Matrix<f64>,
    b: &mut Matrix<f64>,
    unit_diag: bool,
) -> Result<(), SolverError> {
    let n = l.rows();
    if l.cols() != n || b.rows() != n {
        return Err(SolverError::ShapeMismatch {
            what: format!("L {}x{} vs B {}x{}", l.rows(), l.cols(), b.rows(), b.cols()),
        });
    }
    if n <= TRSM_BLOCK {
        return trsm_left_lower_naive(l, b, unit_diag);
    }
    let ncols = b.cols();
    let mut ib = 0;
    while ib < n {
        let nb = TRSM_BLOCK.min(n - ib);
        let l11 = l.block(ib, ib, nb, nb);
        let mut b1 = b.block(ib, 0, nb, ncols);
        trsm_left_lower_naive(&l11, &mut b1, unit_diag).map_err(|e| offset_singular(e, ib))?;
        b.set_block(ib, 0, &b1);
        let rest = n - ib - nb;
        if rest > 0 {
            // B₂ ← B₂ − L₂₁·X₁ : the bulk of the solve, as a GEMM.
            let l21 = l.block(ib + nb, ib, rest, nb);
            let b2 = b.block(ib + nb, 0, rest, ncols);
            let mut out = Matrix::zeros(rest, ncols);
            gemm_update(
                &GemmParams::new(rest, ncols, nb).with_scaling(-1.0, 1.0),
                l21.as_slice(),
                b1.as_slice(),
                b2.as_slice(),
                out.as_mut_slice(),
            );
            b.set_block(ib + nb, 0, &out);
        }
        ib += nb;
    }
    Ok(())
}

fn trsm_left_lower_naive(
    l: &Matrix<f64>,
    b: &mut Matrix<f64>,
    unit_diag: bool,
) -> Result<(), SolverError> {
    let n = l.rows();
    for col in 0..b.cols() {
        for i in 0..n {
            let mut x = b.get(i, col);
            for k in 0..i {
                x -= l.get(i, k) * b.get(k, col);
            }
            if !unit_diag {
                let d = l.get(i, i);
                if d == 0.0 {
                    return Err(SolverError::Singular { index: i });
                }
                x /= d;
            }
            b.set(i, col, x);
        }
    }
    Ok(())
}

/// Solves `X·Lᵀ = B` for `X`, with `L` lower triangular (so `Lᵀ` is
/// upper). `B` is `m×n`, `L` is `n×n`; `B` is overwritten by `X`.
/// This is the Cholesky panel update `A₂₁ ← A₂₁·L₁₁⁻ᵀ`.
pub fn trsm_right_lower_transpose(l: &Matrix<f64>, b: &mut Matrix<f64>) -> Result<(), SolverError> {
    let n = l.rows();
    if l.cols() != n || b.cols() != n {
        return Err(SolverError::ShapeMismatch {
            what: format!("L {}x{} vs B {}x{}", l.rows(), l.cols(), b.rows(), b.cols()),
        });
    }
    if n <= TRSM_BLOCK {
        return trsm_right_lower_transpose_naive(l, b);
    }
    let m = b.rows();
    let mut jb = 0;
    while jb < n {
        let nb = TRSM_BLOCK.min(n - jb);
        let l11 = l.block(jb, jb, nb, nb);
        let mut b1 = b.block(0, jb, m, nb);
        trsm_right_lower_transpose_naive(&l11, &mut b1).map_err(|e| offset_singular(e, jb))?;
        b.set_block(0, jb, &b1);
        let rest = n - jb - nb;
        if rest > 0 {
            // B₃ ← B₃ − X₁·L₃₁ᵀ with L₃₁ the rows still to solve.
            let l31 = l.block(jb + nb, jb, rest, nb);
            let b3 = b.block(0, jb + nb, m, rest);
            let mut out = Matrix::zeros(m, rest);
            gemm_update(
                &GemmParams::new(m, rest, nb)
                    .with_scaling(-1.0, 1.0)
                    .with_transposes(Trans::None, Trans::Trans),
                b1.as_slice(),
                l31.as_slice(),
                b3.as_slice(),
                out.as_mut_slice(),
            );
            b.set_block(0, jb + nb, &out);
        }
        jb += nb;
    }
    Ok(())
}

fn trsm_right_lower_transpose_naive(
    l: &Matrix<f64>,
    b: &mut Matrix<f64>,
) -> Result<(), SolverError> {
    let n = l.rows();
    for row in 0..b.rows() {
        for j in 0..n {
            // X[row][j] = (B[row][j] - sum_{k<j} X[row][k] * L[j][k]) / L[j][j]
            let mut x = b.get(row, j);
            for k in 0..j {
                x -= b.get(row, k) * l.get(j, k);
            }
            let d = l.get(j, j);
            if d == 0.0 {
                return Err(SolverError::Singular { index: j });
            }
            b.set(row, j, x / d);
        }
    }
    Ok(())
}

/// Solves `U·X = B` with `U` upper triangular (back substitution).
pub fn trsm_left_upper(u: &Matrix<f64>, b: &mut Matrix<f64>) -> Result<(), SolverError> {
    let n = u.rows();
    if u.cols() != n || b.rows() != n {
        return Err(SolverError::ShapeMismatch {
            what: format!("U {}x{} vs B {}x{}", u.rows(), u.cols(), b.rows(), b.cols()),
        });
    }
    if n <= TRSM_BLOCK {
        return trsm_left_upper_naive(u, b);
    }
    let ncols = b.cols();
    // Back substitution: blocks bottom-up, each preceded by the rank-k
    // update from the rows already solved below it.
    let blocks = n.div_ceil(TRSM_BLOCK);
    for blk in (0..blocks).rev() {
        let ib = blk * TRSM_BLOCK;
        let nb = TRSM_BLOCK.min(n - ib);
        let below = n - ib - nb;
        let mut b1 = b.block(ib, 0, nb, ncols);
        if below > 0 {
            // B₁ ← B₁ − U₁₂·X₂ with X₂ the already-solved rows below.
            let u12 = u.block(ib, ib + nb, nb, below);
            let x2 = b.block(ib + nb, 0, below, ncols);
            let mut out = Matrix::zeros(nb, ncols);
            gemm_update(
                &GemmParams::new(nb, ncols, below).with_scaling(-1.0, 1.0),
                u12.as_slice(),
                x2.as_slice(),
                b1.as_slice(),
                out.as_mut_slice(),
            );
            b1 = out;
        }
        let u11 = u.block(ib, ib, nb, nb);
        trsm_left_upper_naive(&u11, &mut b1).map_err(|e| offset_singular(e, ib))?;
        b.set_block(ib, 0, &b1);
    }
    Ok(())
}

fn trsm_left_upper_naive(u: &Matrix<f64>, b: &mut Matrix<f64>) -> Result<(), SolverError> {
    let n = u.rows();
    for col in 0..b.cols() {
        for i in (0..n).rev() {
            let mut x = b.get(i, col);
            for k in i + 1..n {
                x -= u.get(i, k) * b.get(k, col);
            }
            let d = u.get(i, i);
            if d == 0.0 {
                return Err(SolverError::Singular { index: i });
            }
            b.set(i, col, x / d);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower3() -> Matrix<f64> {
        Matrix::from_slice(3, 3, &[2.0, 0.0, 0.0, 1.0, 3.0, 0.0, 4.0, 5.0, 6.0])
    }

    /// A well-conditioned lower-triangular test matrix.
    fn lower_n(n: usize) -> Matrix<f64> {
        Matrix::from_fn(n, n, |i, j| {
            if j > i {
                0.0
            } else if i == j {
                2.0 + (i % 5) as f64
            } else {
                ((i * 7 + j * 3) % 11) as f64 / 11.0 - 0.5
            }
        })
    }

    #[test]
    fn left_lower_solves() {
        let l = lower3();
        // Choose X, compute B = L X, recover X.
        let x_true = Matrix::from_slice(3, 2, &[1.0, 2.0, -1.0, 0.5, 3.0, -2.0]);
        let mut b = Matrix::zeros(3, 2);
        for i in 0..3 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l.get(i, k) * x_true.get(k, j);
                }
                b.set(i, j, s);
            }
        }
        trsm_left_lower(&l, &mut b, false).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unit_diagonal_ignores_stored_diagonal() {
        let mut l = lower3();
        l.set(0, 0, 999.0); // must be ignored with unit_diag
        l.set(1, 1, 999.0);
        l.set(2, 2, 999.0);
        let mut b = Matrix::from_slice(3, 1, &[1.0, 2.0, 3.0]);
        trsm_left_lower(&l, &mut b, true).unwrap();
        // Forward substitution with unit diagonal:
        // x0 = 1; x1 = 2 - 1*1 = 1; x2 = 3 - 4*1 - 5*1 = -6.
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(b.get(1, 0), 1.0);
        assert_eq!(b.get(2, 0), -6.0);
    }

    #[test]
    fn right_lower_transpose_solves() {
        let l = lower3();
        let x_true = Matrix::from_slice(2, 3, &[1.0, -2.0, 0.5, 2.0, 1.0, -1.0]);
        // B = X * L^T.
        let mut b = Matrix::zeros(2, 3);
        for i in 0..2 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += x_true.get(i, k) * l.get(j, k);
                }
                b.set(i, j, s);
            }
        }
        trsm_right_lower_transpose(&l, &mut b).unwrap();
        for i in 0..2 {
            for j in 0..3 {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn upper_back_substitution() {
        let u = Matrix::from_slice(2, 2, &[2.0, 1.0, 0.0, 4.0]);
        let mut b = Matrix::from_slice(2, 1, &[5.0, 8.0]);
        trsm_left_upper(&u, &mut b).unwrap();
        assert_eq!(b.get(1, 0), 2.0);
        assert_eq!(b.get(0, 0), 1.5);
    }

    #[test]
    fn singular_and_mismatch_rejected() {
        let mut z = lower3();
        z.set(1, 1, 0.0);
        let mut b = Matrix::zeros(3, 1);
        assert!(matches!(
            trsm_left_lower(&z, &mut b, false),
            Err(SolverError::Singular { index: 1 })
        ));
        let mut wrong = Matrix::zeros(2, 1);
        assert!(matches!(
            trsm_left_lower(&lower3(), &mut wrong, false),
            Err(SolverError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn blocked_left_lower_matches_naive_path() {
        let n = 3 * TRSM_BLOCK + 17; // straddles block boundaries
        let l = lower_n(n);
        let x_true = Matrix::from_fn(n, 5, |i, j| ((i * 13 + j * 5) % 9) as f64 - 4.0);
        let mut b = Matrix::zeros(n, 5);
        for i in 0..n {
            for j in 0..5 {
                let mut s = 0.0;
                for k in 0..n {
                    s += l.get(i, k) * x_true.get(k, j);
                }
                b.set(i, j, s);
            }
        }
        trsm_left_lower(&l, &mut b, false).unwrap();
        for i in 0..n {
            for j in 0..5 {
                assert!(
                    (b.get(i, j) - x_true.get(i, j)).abs() < 1e-8,
                    "({i},{j}): {} vs {}",
                    b.get(i, j),
                    x_true.get(i, j)
                );
            }
        }
    }

    #[test]
    fn blocked_right_lower_transpose_recovers_x() {
        let n = 2 * TRSM_BLOCK + 9;
        let m = 23;
        let l = lower_n(n);
        let x_true = Matrix::from_fn(m, n, |i, j| ((i * 3 + j * 7) % 13) as f64 / 6.0 - 1.0);
        let mut b = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += x_true.get(i, k) * l.get(j, k);
                }
                b.set(i, j, s);
            }
        }
        trsm_right_lower_transpose(&l, &mut b).unwrap();
        for i in 0..m {
            for j in 0..n {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn blocked_left_upper_recovers_x() {
        let n = 2 * TRSM_BLOCK + 31;
        let u = lower_n(n).transposed();
        let x_true = Matrix::from_fn(n, 4, |i, j| ((i * 5 + j * 11) % 7) as f64 - 3.0);
        let mut b = Matrix::zeros(n, 4);
        for i in 0..n {
            for j in 0..4 {
                let mut s = 0.0;
                for k in 0..n {
                    s += u.get(i, k) * x_true.get(k, j);
                }
                b.set(i, j, s);
            }
        }
        trsm_left_upper(&u, &mut b).unwrap();
        for i in 0..n {
            for j in 0..4 {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn blocked_singular_index_is_global() {
        let n = TRSM_BLOCK + 40;
        let mut l = lower_n(n);
        let bad = TRSM_BLOCK + 7;
        l.set(bad, bad, 0.0);
        let mut b = Matrix::zeros(n, 2);
        assert!(matches!(
            trsm_left_lower(&l, &mut b, false),
            Err(SolverError::Singular { index }) if index == bad
        ));
    }
}
