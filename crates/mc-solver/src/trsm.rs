//! Triangular solves with multiple right-hand sides.
//!
//! These are the panel-level kernels of the blocked factorizations; like
//! rocSOLVER's, they run on scalar/SIMD arithmetic (substitution has no
//! `m×n×k` structure for Matrix Cores), which is precisely why the
//! trailing-matrix GEMM dominates a factorization's Matrix Core share.

use crate::matrix::Matrix;
use crate::SolverError;

/// Solves `L·X = B` for `X`, with `L` lower triangular (`unit_diag`
/// selects implicit ones on the diagonal). `B` is overwritten by `X`.
pub fn trsm_left_lower(
    l: &Matrix<f64>,
    b: &mut Matrix<f64>,
    unit_diag: bool,
) -> Result<(), SolverError> {
    let n = l.rows();
    if l.cols() != n || b.rows() != n {
        return Err(SolverError::ShapeMismatch {
            what: format!("L {}x{} vs B {}x{}", l.rows(), l.cols(), b.rows(), b.cols()),
        });
    }
    for col in 0..b.cols() {
        for i in 0..n {
            let mut x = b.get(i, col);
            for k in 0..i {
                x -= l.get(i, k) * b.get(k, col);
            }
            if !unit_diag {
                let d = l.get(i, i);
                if d == 0.0 {
                    return Err(SolverError::Singular { index: i });
                }
                x /= d;
            }
            b.set(i, col, x);
        }
    }
    Ok(())
}

/// Solves `X·Lᵀ = B` for `X`, with `L` lower triangular (so `Lᵀ` is
/// upper). `B` is `m×n`, `L` is `n×n`; `B` is overwritten by `X`.
/// This is the Cholesky panel update `A₂₁ ← A₂₁·L₁₁⁻ᵀ`.
pub fn trsm_right_lower_transpose(l: &Matrix<f64>, b: &mut Matrix<f64>) -> Result<(), SolverError> {
    let n = l.rows();
    if l.cols() != n || b.cols() != n {
        return Err(SolverError::ShapeMismatch {
            what: format!("L {}x{} vs B {}x{}", l.rows(), l.cols(), b.rows(), b.cols()),
        });
    }
    for row in 0..b.rows() {
        for j in 0..n {
            // X[row][j] = (B[row][j] - sum_{k<j} X[row][k] * L[j][k]) / L[j][j]
            let mut x = b.get(row, j);
            for k in 0..j {
                x -= b.get(row, k) * l.get(j, k);
            }
            let d = l.get(j, j);
            if d == 0.0 {
                return Err(SolverError::Singular { index: j });
            }
            b.set(row, j, x / d);
        }
    }
    Ok(())
}

/// Solves `U·X = B` with `U` upper triangular (back substitution).
pub fn trsm_left_upper(u: &Matrix<f64>, b: &mut Matrix<f64>) -> Result<(), SolverError> {
    let n = u.rows();
    if u.cols() != n || b.rows() != n {
        return Err(SolverError::ShapeMismatch {
            what: format!("U {}x{} vs B {}x{}", u.rows(), u.cols(), b.rows(), b.cols()),
        });
    }
    for col in 0..b.cols() {
        for i in (0..n).rev() {
            let mut x = b.get(i, col);
            for k in i + 1..n {
                x -= u.get(i, k) * b.get(k, col);
            }
            let d = u.get(i, i);
            if d == 0.0 {
                return Err(SolverError::Singular { index: i });
            }
            b.set(i, col, x / d);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower3() -> Matrix<f64> {
        Matrix::from_slice(3, 3, &[2.0, 0.0, 0.0, 1.0, 3.0, 0.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn left_lower_solves() {
        let l = lower3();
        // Choose X, compute B = L X, recover X.
        let x_true = Matrix::from_slice(3, 2, &[1.0, 2.0, -1.0, 0.5, 3.0, -2.0]);
        let mut b = Matrix::zeros(3, 2);
        for i in 0..3 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l.get(i, k) * x_true.get(k, j);
                }
                b.set(i, j, s);
            }
        }
        trsm_left_lower(&l, &mut b, false).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unit_diagonal_ignores_stored_diagonal() {
        let mut l = lower3();
        l.set(0, 0, 999.0); // must be ignored with unit_diag
        l.set(1, 1, 999.0);
        l.set(2, 2, 999.0);
        let mut b = Matrix::from_slice(3, 1, &[1.0, 2.0, 3.0]);
        trsm_left_lower(&l, &mut b, true).unwrap();
        // Forward substitution with unit diagonal:
        // x0 = 1; x1 = 2 - 1*1 = 1; x2 = 3 - 4*1 - 5*1 = -6.
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(b.get(1, 0), 1.0);
        assert_eq!(b.get(2, 0), -6.0);
    }

    #[test]
    fn right_lower_transpose_solves() {
        let l = lower3();
        let x_true = Matrix::from_slice(2, 3, &[1.0, -2.0, 0.5, 2.0, 1.0, -1.0]);
        // B = X * L^T.
        let mut b = Matrix::zeros(2, 3);
        for i in 0..2 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += x_true.get(i, k) * l.get(j, k);
                }
                b.set(i, j, s);
            }
        }
        trsm_right_lower_transpose(&l, &mut b).unwrap();
        for i in 0..2 {
            for j in 0..3 {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn upper_back_substitution() {
        let u = Matrix::from_slice(2, 2, &[2.0, 1.0, 0.0, 4.0]);
        let mut b = Matrix::from_slice(2, 1, &[5.0, 8.0]);
        trsm_left_upper(&u, &mut b).unwrap();
        assert_eq!(b.get(1, 0), 2.0);
        assert_eq!(b.get(0, 0), 1.5);
    }

    #[test]
    fn singular_and_mismatch_rejected() {
        let mut z = lower3();
        z.set(1, 1, 0.0);
        let mut b = Matrix::zeros(3, 1);
        assert!(matches!(
            trsm_left_lower(&z, &mut b, false),
            Err(SolverError::Singular { index: 1 })
        ));
        let mut wrong = Matrix::zeros(2, 1);
        assert!(matches!(
            trsm_left_lower(&lower3(), &mut wrong, false),
            Err(SolverError::ShapeMismatch { .. })
        ));
    }
}
