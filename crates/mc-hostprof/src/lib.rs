//! Host-plane observability: turns `mc_compute::prof` sessions into
//! the same artifacts the simulated-GPU plane already has.
//!
//! The producer side lives in `mc-compute` ([`prof`]): the `Auto`
//! dispatcher opens a *region* per GEMM call and the packed tiers mark
//! named *phases* (pack-A, pack-B, microkernel, epilogue, fan-out)
//! tagged with the caller/worker *lane* that ran them. This crate is
//! the consumer:
//!
//! * [`to_trace_events`] — converts a [`HostProfile`] into `mc-trace`
//!   events on the [`HOST_DEVICE`] plane: region spans and dispatch
//!   markers on caller tracks, phase spans on per-worker tracks, and
//!   cumulative `compute.pool.*` counter samples at region boundaries.
//!   Concatenating the result with a simulated-die trace yields one
//!   Perfetto timeline with host workers beside CU pipelines, and the
//!   same events feed the folded-stack flamegraph exporter.
//! * [`attribute`] — joins phases into schema-versioned
//!   [`HostAttributionRecord`]s: per-region GFLOP/s, pack-vs-compute
//!   ratio, parallel efficiency, and a wall-time reconciliation error.
//! * [`register_hostprof_metrics`] — aggregates a ledger into
//!   `hostprof.*` OpenMetrics gauges plus an HDR latency histogram of
//!   per-tile microkernel sweeps.
//!
//! The `hostprof` gate experiment (`mc-bench`) holds this pipeline to
//! its contract: traced-run overhead ≤ 3%, converted traces pass
//! `mc_trace::check_invariants`, and caller-lane phase times reconcile
//! to region wall time within tolerance.
//!
//! [`prof`]: mc_compute::prof
//! [`HOST_DEVICE`]: mc_trace::HOST_DEVICE

#![deny(missing_docs)]

use std::collections::BTreeMap;

use mc_compute::prof::{HostEvent, HostPhase, HostProfile, Lane, PoolDelta};
use mc_trace::{
    ArgValue, Category, Histogram, MetricsRegistry, SpanEvent, TraceEvent, Track, Unit, HOST_DEVICE,
};
use serde::{Deserialize, Serialize};

/// Schema version stamped into every [`HostAttributionRecord`]; bump on
/// any field change so downstream diffs fail loudly instead of
/// misreading.
pub const HOSTPROF_SCHEMA_VERSION: u32 = 1;

/// Pool counter-track names emitted by [`to_trace_events`], in emission
/// order. They mirror the `compute.pool.*` gauges `mc-obs` registers
/// under `--metrics`, so the Perfetto counter tracks and the
/// OpenMetrics snapshot read off the same taxonomy.
pub const POOL_COUNTER_NAMES: [&str; 5] = [
    "compute.pool.hits",
    "compute.pool.misses",
    "compute.pool.recycled",
    "compute.pool.discarded",
    "compute.pool.allocated_bytes",
];

const S_TO_US: f64 = 1e6;

fn lane_track(lane: Lane) -> Track {
    match lane {
        Lane::Call(l) => Track::HostCall(l),
        Lane::Worker(w) => Track::HostWorker(w),
    }
}

/// Converts a profiling session into `mc-trace` events on the
/// [`HOST_DEVICE`] plane, rebased so the session opens at t = 0 µs.
///
/// Per [`HostEvent`] kind:
///
/// * `Region` → a [`Category::HostRegion`] span named
///   `gemm <backend> <m>x<n>x<k>` on the issuing caller's
///   [`Track::HostCall`] lane, carrying the region's pool deltas as
///   span args.
/// * `Dispatch` → a [`Category::HostRegion`] instant on the same caller
///   lane recording the routing decision and its inputs (crossover
///   edge, geometric-mean dimension, pool size, SIMD availability).
/// * `Phase` → a [`Category::HostPhase`] span on the executing lane's
///   track (caller or worker).
/// * Pool deltas additionally emit cumulative [`TraceEvent::Counter`]
///   samples (see [`POOL_COUNTER_NAMES`]) at each region boundary, so
///   the Perfetto timeline shows pool pressure evolving alongside the
///   spans.
///
/// The output satisfies `mc_trace::check_invariants` (host-span-nesting
/// and host-lane-overlap included) whenever the profile came from one
/// attached caller thread — the gate experiment asserts exactly that.
pub fn to_trace_events(profile: &HostProfile) -> Vec<TraceEvent> {
    let base = profile.t0_s;
    let rebase = |t_s: f64| ((t_s - base) * S_TO_US).max(0.0);

    // Dispatch events predate their Region event in drain order, but
    // the caller lane is only carried by the Region — map region → lane
    // first so markers land on the right track.
    let mut region_lane: BTreeMap<u32, u32> = BTreeMap::new();
    for e in &profile.events {
        if let HostEvent::Region { region, lane, .. } = e {
            region_lane.insert(*region, *lane);
        }
    }

    let mut out = Vec::with_capacity(profile.events.len() + 5 * region_lane.len());
    // (end_us, pool delta) per region, for the cumulative counter pass.
    let mut pool_points: Vec<(f64, PoolDelta)> = Vec::new();

    for e in &profile.events {
        match *e {
            HostEvent::Region {
                region,
                backend,
                m,
                n,
                k,
                lane,
                t0_s,
                dur_s,
                pool,
            } => {
                let span = SpanEvent {
                    name: format!("gemm {backend} {m}x{n}x{k}"),
                    category: Category::HostRegion,
                    device: HOST_DEVICE,
                    track: Track::HostCall(lane),
                    t0_us: rebase(t0_s),
                    dur_us: dur_s * S_TO_US,
                    args: vec![
                        ("region".into(), ArgValue::U64(region as u64)),
                        ("backend".into(), ArgValue::from(backend)),
                        ("m".into(), ArgValue::U64(m as u64)),
                        ("n".into(), ArgValue::U64(n as u64)),
                        ("k".into(), ArgValue::U64(k as u64)),
                        ("pool.hits".into(), ArgValue::U64(pool.hits)),
                        ("pool.misses".into(), ArgValue::U64(pool.misses)),
                        ("pool.recycled".into(), ArgValue::U64(pool.recycled)),
                        ("pool.discarded".into(), ArgValue::U64(pool.discarded)),
                        (
                            "pool.allocated_bytes".into(),
                            ArgValue::U64(pool.allocated_bytes),
                        ),
                    ],
                };
                pool_points.push((span.end_us(), pool));
                out.push(TraceEvent::Span(span));
            }
            HostEvent::Dispatch {
                region,
                backend,
                m,
                n,
                k,
                crossover_n,
                geomean,
                simd,
                threads,
                t_s,
            } => {
                let lane = region_lane.get(&region).copied().unwrap_or(0);
                out.push(TraceEvent::Instant {
                    name: format!("dispatch → {backend}"),
                    category: Category::HostRegion,
                    device: HOST_DEVICE,
                    track: Track::HostCall(lane),
                    t_us: rebase(t_s),
                    args: vec![
                        ("region".into(), ArgValue::U64(region as u64)),
                        ("backend".into(), ArgValue::from(backend)),
                        ("m".into(), ArgValue::U64(m as u64)),
                        ("n".into(), ArgValue::U64(n as u64)),
                        ("k".into(), ArgValue::U64(k as u64)),
                        ("crossover_n".into(), ArgValue::U64(crossover_n as u64)),
                        ("geomean_n".into(), ArgValue::F64(geomean)),
                        ("simd_tier".into(), ArgValue::U64(simd as u64)),
                        ("threads".into(), ArgValue::U64(threads as u64)),
                    ],
                });
            }
            HostEvent::Phase {
                region,
                phase,
                lane,
                t0_s,
                dur_s,
            } => {
                out.push(TraceEvent::Span(SpanEvent {
                    name: phase.as_str().to_owned(),
                    category: Category::HostPhase,
                    device: HOST_DEVICE,
                    track: lane_track(lane),
                    t0_us: rebase(t0_s),
                    dur_us: dur_s * S_TO_US,
                    args: vec![("region".into(), ArgValue::U64(region as u64))],
                }));
            }
        }
    }

    // Cumulative pool counters sampled at each region boundary, in time
    // order (regions may drain out of order across worker batches).
    pool_points.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut totals = PoolDelta::default();
    for (t_us, delta) in pool_points {
        totals.hits += delta.hits;
        totals.misses += delta.misses;
        totals.recycled += delta.recycled;
        totals.discarded += delta.discarded;
        totals.allocated_bytes += delta.allocated_bytes;
        for (name, value) in POOL_COUNTER_NAMES.iter().zip([
            totals.hits,
            totals.misses,
            totals.recycled,
            totals.discarded,
            totals.allocated_bytes,
        ]) {
            out.push(TraceEvent::Counter {
                name: (*name).to_owned(),
                device: HOST_DEVICE,
                t_us,
                value: value as f64,
            });
        }
    }
    out
}

/// Per-region host attribution: one GEMM call's wall time decomposed
/// into named phase seconds, with the throughput and balance figures
/// derived from them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostAttributionRecord {
    /// [`HOSTPROF_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Region id from the profile (unique per process run).
    pub region: u32,
    /// Routed backend (`naive`, `blocked`, `simd`).
    pub backend: String,
    /// Problem rows.
    pub m: u64,
    /// Problem columns.
    pub n: u64,
    /// Problem depth.
    pub k: u64,
    /// Configured rayon pool size at dispatch.
    pub threads: u64,
    /// Distinct worker lanes observed in this region. The vendored
    /// rayon's scoped fan-outs spawn fresh threads per parallel region,
    /// so a blocked-tier region with many fan-outs can observe more
    /// lanes than the pool size; efficiency therefore normalizes by
    /// `threads`, not `workers`.
    pub workers: u64,
    /// Region wall time in seconds.
    pub wall_s: f64,
    /// Crossover edge the dispatch compared against.
    pub crossover_n: u64,
    /// Geometric-mean dimension `∛(m·n·k)`.
    pub geomean_n: f64,
    /// Whether the SIMD tier topped the ladder at dispatch.
    pub simd: bool,
    /// Seconds packing A row panels (worker lanes).
    pub pack_a_s: f64,
    /// Seconds packing B panels/strips.
    pub pack_b_s: f64,
    /// Seconds in the microkernel accumulation sweep (worker lanes).
    pub microkernel_s: f64,
    /// Seconds in the α/β epilogue (caller lane).
    pub epilogue_s: f64,
    /// Seconds the caller spent inside rayon fan-out windows.
    pub fanout_s: f64,
    /// Seconds in the naive triple loop (naive-routed regions only).
    pub compute_s: f64,
    /// Total caller-lane phase seconds — the portion of the wall the
    /// phase taxonomy explains (reconciliation numerator).
    pub caller_s: f64,
    /// Total worker-lane phase seconds (busy time across all workers).
    pub worker_busy_s: f64,
    /// Achieved throughput, `2·m·n·k / wall_s / 1e9`.
    pub gflops: f64,
    /// Packing share of packed-tier work:
    /// `(pack_a + pack_b) / (pack_a + pack_b + microkernel)`.
    pub pack_ratio: f64,
    /// Worker busy time over the pool's capacity inside fan-out
    /// windows: `worker_busy_s / (threads · fanout_s)`, clamped to
    /// `[0, 1]`; 1.0 when the region never fanned out.
    pub parallel_efficiency: f64,
    /// `|wall_s − caller_s| / wall_s`: how much of the region the
    /// caller-lane phases fail to explain (alloc, loop bookkeeping).
    pub reconcile_rel_err: f64,
    /// Packing-pool freelist hits over the region.
    pub pool_hits: u64,
    /// Packing-pool allocating misses over the region.
    pub pool_misses: u64,
    /// Buffers recycled to the pool at drop.
    pub pool_recycled: u64,
    /// Buffers discarded (over-capacity) at drop.
    pub pool_discarded: u64,
    /// Bytes freshly allocated by pool misses.
    pub pool_allocated_bytes: u64,
}

#[derive(Default)]
struct PhaseAccum {
    by_phase: BTreeMap<&'static str, f64>,
    caller_s: f64,
    worker_busy_s: f64,
    worker_lanes: Vec<u32>,
    tile_latencies: Vec<f64>,
}

/// Joins a profile's phases into per-region attribution records,
/// ordered by region start time. Phases recorded outside any region
/// (`region == 0`, or a region whose span was dropped) are discarded.
pub fn attribute(profile: &HostProfile) -> Vec<HostAttributionRecord> {
    let mut accum: BTreeMap<u32, PhaseAccum> = BTreeMap::new();
    for e in &profile.events {
        if let HostEvent::Phase {
            region,
            phase,
            lane,
            dur_s,
            ..
        } = *e
        {
            let a = accum.entry(region).or_default();
            *a.by_phase.entry(phase.as_str()).or_default() += dur_s;
            match lane {
                Lane::Call(_) => a.caller_s += dur_s,
                Lane::Worker(w) => {
                    a.worker_busy_s += dur_s;
                    if !a.worker_lanes.contains(&w) {
                        a.worker_lanes.push(w);
                    }
                }
            }
            if phase == HostPhase::Microkernel {
                a.tile_latencies.push(dur_s);
            }
        }
    }

    let mut dispatch: BTreeMap<u32, (u64, f64, bool)> = BTreeMap::new();
    for e in &profile.events {
        if let HostEvent::Dispatch {
            region,
            crossover_n,
            geomean,
            simd,
            ..
        } = *e
        {
            dispatch.insert(region, (crossover_n as u64, geomean, simd));
        }
    }

    let mut records: Vec<(f64, HostAttributionRecord)> = Vec::new();
    for e in &profile.events {
        let HostEvent::Region {
            region,
            backend,
            m,
            n,
            k,
            t0_s,
            dur_s,
            pool,
            ..
        } = *e
        else {
            continue;
        };
        let a = accum.remove(&region).unwrap_or_default();
        let get = |p: HostPhase| a.by_phase.get(p.as_str()).copied().unwrap_or(0.0);
        let (pack_a_s, pack_b_s, microkernel_s, epilogue_s, fanout_s, compute_s) = (
            get(HostPhase::PackA),
            get(HostPhase::PackB),
            get(HostPhase::Microkernel),
            get(HostPhase::Epilogue),
            get(HostPhase::Fanout),
            get(HostPhase::Compute),
        );
        let (crossover_n, geomean_n, simd) = dispatch.get(&region).copied().unwrap_or((
            0,
            (m as f64 * n as f64 * k as f64).cbrt(),
            false,
        ));
        let threads = profile.threads.max(1) as u64;
        let wall_s = dur_s;
        let pack = pack_a_s + pack_b_s;
        let packed_work = pack + microkernel_s;
        let parallel_efficiency = if fanout_s > 0.0 {
            (a.worker_busy_s / (threads as f64 * fanout_s)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        records.push((
            t0_s,
            HostAttributionRecord {
                schema_version: HOSTPROF_SCHEMA_VERSION,
                region,
                backend: backend.to_owned(),
                m: m as u64,
                n: n as u64,
                k: k as u64,
                threads,
                workers: a.worker_lanes.len() as u64,
                wall_s,
                crossover_n,
                geomean_n,
                simd,
                pack_a_s,
                pack_b_s,
                microkernel_s,
                epilogue_s,
                fanout_s,
                compute_s,
                caller_s: a.caller_s,
                worker_busy_s: a.worker_busy_s,
                gflops: if wall_s > 0.0 {
                    2.0 * m as f64 * n as f64 * k as f64 / wall_s / 1e9
                } else {
                    0.0
                },
                pack_ratio: if packed_work > 0.0 {
                    pack / packed_work
                } else {
                    0.0
                },
                parallel_efficiency,
                reconcile_rel_err: if wall_s > 0.0 {
                    (wall_s - a.caller_s).abs() / wall_s
                } else {
                    0.0
                },
                pool_hits: pool.hits,
                pool_misses: pool.misses,
                pool_recycled: pool.recycled,
                pool_discarded: pool.discarded,
                pool_allocated_bytes: pool.allocated_bytes,
            },
        ));
    }
    records.sort_by(|a, b| a.0.total_cmp(&b.0));
    records.into_iter().map(|(_, r)| r).collect()
}

/// Renders a ledger as JSON lines: one compact record per line, in
/// order, with a trailing newline (empty string for an empty ledger).
pub fn to_jsonl(records: &[HostAttributionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(
            &serde_json::to_string(&serde_json::to_value(r)).expect("hostprof records serialize"),
        );
        out.push('\n');
    }
    out
}

/// Parses a JSONL ledger, rejecting malformed rows and any record whose
/// `schema_version` differs from [`HOSTPROF_SCHEMA_VERSION`].
pub fn from_jsonl(text: &str) -> Result<Vec<HostAttributionRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: HostAttributionRecord =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if record.schema_version != HOSTPROF_SCHEMA_VERSION {
            return Err(format!(
                "line {}: schema version {} (expected {})",
                i + 1,
                record.schema_version,
                HOSTPROF_SCHEMA_VERSION
            ));
        }
        out.push(record);
    }
    Ok(out)
}

/// Aggregates a ledger into `hostprof.*` gauges plus a per-tile
/// microkernel latency histogram
/// (`hostprof.microkernel_latency_seconds`). Ratios are work-weighted
/// (time-summed numerators/denominators), not per-region means, so one
/// tiny naive call cannot swamp the figure. No-op for an empty ledger.
pub fn register_hostprof_metrics(
    records: &[HostAttributionRecord],
    profile: &HostProfile,
    reg: &mut MetricsRegistry,
) {
    if records.is_empty() {
        return;
    }
    let wall: f64 = records.iter().map(|r| r.wall_s).sum();
    let flops: f64 = records
        .iter()
        .map(|r| 2.0 * r.m as f64 * r.n as f64 * r.k as f64)
        .sum();
    let pack: f64 = records.iter().map(|r| r.pack_a_s + r.pack_b_s).sum();
    let micro: f64 = records.iter().map(|r| r.microkernel_s).sum();
    let busy: f64 = records.iter().map(|r| r.worker_busy_s).sum();
    let fanout: f64 = records.iter().map(|r| r.threads as f64 * r.fanout_s).sum();
    let reconcile_max = records
        .iter()
        .map(|r| r.reconcile_rel_err)
        .fold(0.0, f64::max);
    reg.set("hostprof.regions", Unit::Count, records.len() as f64);
    reg.set("hostprof.wall_s", Unit::Seconds, wall);
    if wall > 0.0 {
        reg.set("hostprof.flops_per_s", Unit::FlopsPerSecond, flops / wall);
    }
    if pack + micro > 0.0 {
        reg.set("hostprof.pack_ratio", Unit::Ratio, pack / (pack + micro));
    }
    if fanout > 0.0 {
        reg.set(
            "hostprof.parallel_efficiency",
            Unit::Ratio,
            (busy / fanout).clamp(0.0, 1.0),
        );
    }
    reg.set("hostprof.reconcile_rel_err_max", Unit::Ratio, reconcile_max);
    reg.set(
        "hostprof.dropped_events",
        Unit::Count,
        profile.dropped as f64,
    );
    reg.set(
        "hostprof.pool.allocated_bytes",
        Unit::Bytes,
        records.iter().map(|r| r.pool_allocated_bytes as f64).sum(),
    );
    let mut hist = Histogram::latency_seconds();
    for e in &profile.events {
        if let HostEvent::Phase {
            phase: HostPhase::Microkernel,
            dur_s,
            ..
        } = *e
        {
            hist.record(dur_s.max(0.0));
        }
    }
    reg.register_histogram("hostprof.microkernel_latency_seconds", hist);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_compute::prof;
    use mc_compute::{Auto, Epilogue, GemmParams, MatMul};
    use mc_trace::check_invariants;

    fn run_gemm(n: usize, crossover: usize) {
        let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);
        let a = vec![1.0f32; n * n];
        let b = vec![0.5f32; n * n];
        let c = vec![0.25f32; n * n];
        let mut d = vec![0.0f32; n * n];
        Auto::with_crossover(crossover)
            .gemm::<f32, f32, f32>(&params, &a, &b, &c, &mut d)
            .unwrap();
    }

    fn profile_two_regions() -> HostProfile {
        let s = prof::session();
        run_gemm(96, 0); // packed tier
        run_gemm(64, 320); // naive tier
        s.finish()
    }

    #[test]
    fn converted_trace_passes_invariants_and_unifies_lanes() {
        let profile = profile_two_regions();
        let events = to_trace_events(&profile);
        let violations = check_invariants(&events);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Span(s) if s.category == Category::HostRegion)));
        assert!(events.iter().any(
            |e| matches!(e, TraceEvent::Span(s) if s.category == Category::HostPhase
                && matches!(s.track, Track::HostWorker(_)))
        ));
        assert!(events.iter().any(
            |e| matches!(e, TraceEvent::Instant { name, .. } if name.starts_with("dispatch"))
        ));
        // All events live on the host plane, rebased to t >= 0.
        for e in &events {
            assert_eq!(e.device(), HOST_DEVICE);
            if let TraceEvent::Span(s) = e {
                assert!(s.t0_us >= 0.0, "{s:?}");
            }
        }
    }

    #[test]
    fn pool_counters_are_cumulative_and_cover_all_names() {
        let profile = profile_two_regions();
        let events = to_trace_events(&profile);
        for name in POOL_COUNTER_NAMES {
            let samples: Vec<(f64, f64)> = events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Counter {
                        name: n,
                        t_us,
                        value,
                        ..
                    } if n == name => Some((*t_us, *value)),
                    _ => None,
                })
                .collect();
            assert_eq!(samples.len(), 2, "{name}: {samples:?}");
            // Cumulative: samples are time-ordered and non-decreasing.
            assert!(samples[0].0 <= samples[1].0, "{name}: {samples:?}");
            assert!(samples[0].1 <= samples[1].1, "{name}: {samples:?}");
        }
        // The packed region allocated or reused packing buffers.
        let hits_or_misses = events.iter().any(|e| {
            matches!(e, TraceEvent::Counter { name, value, .. }
                if (name == "compute.pool.hits" || name == "compute.pool.misses") && *value > 0.0)
        });
        assert!(hits_or_misses);
    }

    #[test]
    fn attribution_decomposes_both_tiers() {
        let profile = profile_two_regions();
        let records = attribute(&profile);
        assert_eq!(records.len(), 2, "{records:?}");
        // Region start order: packed first, then naive.
        let packed = &records[0];
        let naive = &records[1];
        assert_ne!(packed.backend, "naive");
        assert_eq!(naive.backend, "naive");
        assert_eq!((naive.m, naive.n, naive.k), (64, 64, 64));
        assert!(packed.microkernel_s > 0.0, "{packed:?}");
        assert!(
            packed.pack_ratio > 0.0 && packed.pack_ratio < 1.0,
            "{packed:?}"
        );
        assert!(packed.fanout_s > 0.0 && packed.worker_busy_s > 0.0);
        assert!(packed.parallel_efficiency > 0.0 && packed.parallel_efficiency <= 1.0);
        assert!(packed.gflops > 0.0);
        // Naive: the whole wall is the compute phase on the caller lane.
        assert!(naive.compute_s > 0.0 && naive.microkernel_s == 0.0);
        assert!(naive.reconcile_rel_err < 0.25, "{naive:?}");
        for r in &records {
            assert_eq!(r.schema_version, HOSTPROF_SCHEMA_VERSION);
            assert!(r.wall_s > 0.0 && r.caller_s >= 0.0);
        }
    }

    #[test]
    fn jsonl_round_trips_and_rejects_schema_drift() {
        let profile = profile_two_regions();
        let records = attribute(&profile);
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), records.len());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, records);
        let drifted = text.replacen(
            &format!("\"schema_version\":{HOSTPROF_SCHEMA_VERSION}"),
            "\"schema_version\":999",
            1,
        );
        assert!(from_jsonl(&drifted).is_err());
        assert!(from_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn metrics_registry_gains_hostprof_gauges_and_histogram() {
        let profile = profile_two_regions();
        let records = attribute(&profile);
        let mut reg = MetricsRegistry::new();
        register_hostprof_metrics(&records, &profile, &mut reg);
        assert_eq!(reg.get("hostprof.regions").map(|m| m.value), Some(2.0));
        assert!(reg.get("hostprof.wall_s").map(|m| m.value).unwrap() > 0.0);
        assert!(reg.get("hostprof.flops_per_s").is_some());
        assert!(reg.get("hostprof.pack_ratio").is_some());
        let hist = reg
            .histogram("hostprof.microkernel_latency_seconds")
            .unwrap();
        assert!(hist.count() > 0);
        // Empty ledger: registry untouched.
        let mut empty = MetricsRegistry::new();
        register_hostprof_metrics(&[], &profile, &mut empty);
        assert!(empty.get("hostprof.regions").is_none());
    }
}
