//! Hostprof gate: host-plane tracing overhead, phase reconciliation,
//! and the unified host + simulated-GPU timeline — the `hostprof`
//! artifact.
//!
//! The host GEMM plane is instrumented through `mc_compute::prof`
//! (regions, phases, dispatch decisions) and consumed by `mc-hostprof`
//! (trace conversion, attribution, `hostprof.*` metrics). That
//! instrumentation is only admissible if it is provably cheap and
//! self-consistent, which is exactly what this gate measures:
//!
//! * **Overhead** — the same routed GEMM is timed untraced and inside a
//!   live profiling session, interleaved, best of [`REPS`] each. The
//!   traced time must stay within [`MAX_OVERHEAD_REL`] of untraced
//!   (plus the [`OVERHEAD_NOISE_FLOOR_S`] absolute slack that keeps the
//!   small smoke dimension robust to scheduler noise;
//!   at the reduced-tier 1024³ dimension the relative band dominates).
//!   The traced and untraced outputs must also agree bitwise —
//!   instrumentation may spend time, never change results.
//! * **Invariants** — the converted host timeline merged with a
//!   simulated-GPU replay captured in the same session must pass every
//!   `mc_trace::check_invariants` rule (host-span nesting, host-lane
//!   overlap, plus all GPU-plane rules).
//! * **Reconciliation** — per region, the caller-lane phase seconds
//!   must explain the region wall time within [`RECONCILE_MAX_REL`]
//!   (regions shorter than [`RECONCILE_MIN_WALL_S`] are reported but
//!   not gated: a microsecond-scale naive call is all clock
//!   granularity).
//! * **Unified timeline** — the merged trace must contain both host
//!   worker tracks and simulated-CU matrix-pipe tracks, proving the
//!   two planes land in one Perfetto-loadable file
//!   (`<trace_dir>/hostprof-unified.trace.json`).
//!
//! The payload also carries the full attribution ledger and the
//! `mc-insight` host verdicts, and the artifacts land as
//! `<sink>/hostprof.host.jsonl` (schema-versioned ledger) and
//! `<metrics_dir>/hostprof.host.om` (the `hostprof.*` gauges plus the
//! per-tile microkernel latency histogram). Any gate violation fails
//! the `experiments` driver. See `docs/OBSERVABILITY.md` § "Host
//! plane".

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use mc_blas::{BlasHandle, GemmDesc, GemmOp};
use mc_compute::prof::{self, HostProfile};
use mc_compute::{Auto, Epilogue, GemmParams, MatMul};
use mc_hostprof::{attribute, register_hostprof_metrics, to_trace_events, HostAttributionRecord};
use mc_insight::{diagnose_host, HostVerdict};
use mc_sim::{DeviceId, DeviceRegistry};
use mc_trace::{check_invariants, MetricsRegistry, RingSink, TraceEvent, Track};
use serde::{Deserialize, Serialize, Value};

use crate::experiment::{IterBudgets, RunContext};

/// Maximum admissible traced-over-untraced relative slowdown.
pub const MAX_OVERHEAD_REL: f64 = 0.03;

/// Absolute slack added to the overhead bound: a shared CI worker
/// preempts threads at millisecond granularity, which would swamp a
/// 3% band on the ~5 ms smoke dimension. At the reduced-tier 1024³
/// dimension the relative band is the larger term, so the acceptance
/// criterion stays a true 3% where it matters. (Same reasoning as the
/// regress gate's `BENCH_NOISE_FLOOR_S`, scaled to a single kernel.)
pub const OVERHEAD_NOISE_FLOOR_S: f64 = 0.005;

/// Maximum `|wall − caller-lane phases| / wall` per gated region: the
/// phase taxonomy must explain at least 95% of every region it claims
/// to decompose (the remainder is scratch acquisition and loop
/// bookkeeping between phase boundaries).
pub const RECONCILE_MAX_REL: f64 = 0.05;

/// Regions shorter than this are not reconciliation-gated (reported
/// only): at microsecond scale the clock reads bracketing each phase
/// are a visible fraction of the wall itself.
pub const RECONCILE_MIN_WALL_S: f64 = 1e-3;

/// Timing repetitions per arm (best-of, interleaved).
pub const REPS: usize = 3;

/// The square GEMM dimension per budget tier: 1024 (the acceptance
/// criterion's dimension) at reduced/paper budgets, 256 under smoke.
pub fn dimension(budgets: &IterBudgets) -> usize {
    if *budgets == IterBudgets::smoke() {
        256
    } else {
        1024
    }
}

/// Deterministic pseudo-random fill in [-1, 1) (xorshift64*).
fn fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mantissa = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64;
        *v = (mantissa / (1u64 << 23) as f64 * 2.0 - 1.0) as f32;
    }
}

/// One measurement summary of the traced-vs-untraced pair plus the
/// consistency sweep over the final profiled run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hostprof {
    /// Square GEMM dimension timed.
    pub n: usize,
    /// Timing repetitions per arm.
    pub reps: usize,
    /// Rayon pool size during the measurement.
    pub threads: usize,
    /// Best untraced wall time (seconds).
    pub untraced_s: f64,
    /// Best in-session wall time (seconds).
    pub traced_s: f64,
    /// `traced_s / untraced_s − 1` (may be negative in noise).
    pub overhead_rel: f64,
    /// The relative bound in force ([`MAX_OVERHEAD_REL`]).
    pub max_overhead_rel: f64,
    /// The absolute slack in force ([`OVERHEAD_NOISE_FLOOR_S`]).
    pub noise_floor_s: f64,
    /// 1 when the traced best exceeded the bound — gate count.
    pub overhead_exceeded: usize,
    /// Traced-vs-untraced output elements that differ bitwise — gate
    /// count (instrumentation must never change results).
    pub bitwise_mismatches: usize,
    /// Events lost to collector overflow in the profiled run.
    pub dropped_events: u64,
    /// Converted host-plane trace events.
    pub host_events: usize,
    /// Simulated-GPU trace events captured in the same session.
    pub sim_events: usize,
    /// `check_invariants` violations over the merged timeline — gate
    /// count.
    pub total_violations: usize,
    /// Worst reconciliation error across gated regions.
    pub reconcile_max_rel_err: f64,
    /// Gated regions whose caller-lane phases fail to explain the wall
    /// within [`RECONCILE_MAX_REL`] — gate count.
    pub reconcile_failures: usize,
    /// Planes missing from the merged timeline (host worker tracks,
    /// simulated matrix-pipe tracks) — gate count.
    pub unified_missing: usize,
    /// Host regions attributed.
    pub regions: usize,
    /// The full attribution ledger of the profiled run.
    pub records: Vec<HostAttributionRecord>,
    /// One `mc-insight` host verdict per record.
    pub verdicts: Vec<HostVerdict>,
}

fn time_routed(auto: &Auto, params: &GemmParams, a: &[f32], b: &[f32]) -> (f64, Vec<f32>) {
    let c = vec![0.0f32; params.m * params.n];
    let mut d = vec![0.0f32; params.m * params.n];
    let start = Instant::now();
    auto.gemm::<f32, f32, f32>(params, a, b, &c, &mut d)
        .expect("well-formed problem");
    (start.elapsed().as_secs_f64(), d)
}

/// Replays one library SGEMM launch on a ring-sinked registry clone,
/// returning the captured simulated-GPU timeline.
fn replay_sim(devices: &DeviceRegistry, n: usize) -> Vec<TraceEvent> {
    let sink = Arc::new(RingSink::new());
    let mut traced = devices.clone();
    traced.set_trace_sink(sink.clone());
    let mut handle = BlasHandle::from_registry(&traced, DeviceId::Mi250xGcd);
    handle
        .gemm_timed(&GemmDesc::square(GemmOp::Sgemm, n))
        .expect("square SGEMM fits in device memory");
    sink.events()
}

/// Runs the gate. Returns the payload, the profiled run's raw
/// [`HostProfile`] (the metrics exposition needs its phase events), and
/// the merged host + simulated timeline (too large for the envelope).
pub fn run(
    devices: &DeviceRegistry,
    budgets: &IterBudgets,
) -> (Hostprof, HostProfile, Vec<TraceEvent>) {
    let n = dimension(budgets);
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    fill(&mut a, 0x9E37_79B9_7F4A_7C15);
    fill(&mut b, 0xD1B5_4A32_D192_ED03);
    let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);
    // Half-edge crossover: the timed problem always takes the packed
    // tier (the instrumentation-heavy path), while the dispatch still
    // makes a real geomean-vs-edge decision for the decision event.
    let auto = Auto::with_crossover(n / 2);
    let small = GemmParams::new(24, 24, 24).with_epilogue(Epilogue::ComputeRounded);

    // Warm the packing pool and the page cache outside both arms.
    let _ = time_routed(&auto, &params, &a, &b);

    let mut untraced_s = f64::INFINITY;
    let mut traced_s = f64::INFINITY;
    let mut bitwise_mismatches = 0usize;
    let mut profile = HostProfile::default();
    let mut sim_events = Vec::new();
    for rep in 0..REPS {
        let (t, d_untraced) = time_routed(&auto, &params, &a, &b);
        untraced_s = untraced_s.min(t);

        let session = prof::session();
        let (t, d_traced) = time_routed(&auto, &params, &a, &b);
        traced_s = traced_s.min(t);
        // Outside the timed window but inside the session: a
        // naive-routed region (dispatch-overhead coverage), and — on
        // the last rep — the simulated-GPU replay whose timeline merges
        // with this session's host plane.
        let _ = time_routed(&auto, &small, &a[..24 * 24], &b[..24 * 24]);
        if rep == REPS - 1 {
            sim_events = replay_sim(devices, n);
        }
        profile = session.finish();

        bitwise_mismatches += d_untraced
            .iter()
            .zip(&d_traced)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count();
    }

    let overhead_rel = traced_s / untraced_s - 1.0;
    let overhead_exceeded =
        usize::from(traced_s > untraced_s * (1.0 + MAX_OVERHEAD_REL) + OVERHEAD_NOISE_FLOOR_S);

    let host_events = to_trace_events(&profile);
    let records = attribute(&profile);
    let verdicts = diagnose_host(&records);

    let mut merged = host_events.clone();
    merged.extend(sim_events.iter().cloned());
    let total_violations = check_invariants(&merged).len();

    let gated: Vec<&HostAttributionRecord> = records
        .iter()
        .filter(|r| r.wall_s >= RECONCILE_MIN_WALL_S)
        .collect();
    let reconcile_max_rel_err = gated
        .iter()
        .map(|r| r.reconcile_rel_err)
        .fold(0.0, f64::max);
    let reconcile_failures = gated
        .iter()
        .filter(|r| r.reconcile_rel_err > RECONCILE_MAX_REL)
        .count();

    let has_worker = merged
        .iter()
        .any(|e| matches!(e, TraceEvent::Span(s) if matches!(s.track, Track::HostWorker(_))));
    let has_pipe = merged
        .iter()
        .any(|e| matches!(e, TraceEvent::Span(s) if matches!(s.track, Track::MatrixPipe(_))));
    let unified_missing = usize::from(!has_worker) + usize::from(!has_pipe);

    let payload = Hostprof {
        n,
        reps: REPS,
        threads: profile.threads,
        untraced_s,
        traced_s,
        overhead_rel,
        max_overhead_rel: MAX_OVERHEAD_REL,
        noise_floor_s: OVERHEAD_NOISE_FLOOR_S,
        overhead_exceeded,
        bitwise_mismatches,
        dropped_events: profile.dropped,
        host_events: host_events.len(),
        sim_events: sim_events.len(),
        total_violations,
        reconcile_max_rel_err,
        reconcile_failures,
        unified_missing,
        regions: records.len(),
        records,
        verdicts,
    };
    (payload, profile, merged)
}

/// Writes the gate's artifacts: the schema-versioned attribution
/// ledger as `<sink>/hostprof.host.jsonl`, the `hostprof.*` metrics
/// (gauges + microkernel latency histogram) as
/// `<metrics_dir>/hostprof.host.om`, and the merged unified timeline
/// as `<trace_dir>/hostprof-unified.trace.json`. Returns the paths
/// written.
pub fn persist_hostprof(
    ctx: &RunContext,
    payload: &Hostprof,
    profile: &HostProfile,
    merged: &[TraceEvent],
) -> std::io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    if let Some(dir) = ctx.json_sink.as_ref().or(ctx.metrics_dir.as_ref()) {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("hostprof.host.jsonl");
        std::fs::write(&path, mc_hostprof::to_jsonl(&payload.records))?;
        written.push(path);
    }
    if let Some(dir) = &ctx.metrics_dir {
        std::fs::create_dir_all(dir)?;
        let mut registry = MetricsRegistry::new();
        register_hostprof_metrics(&payload.records, profile, &mut registry);
        let path = dir.join("hostprof.host.om");
        std::fs::write(&path, mc_trace::openmetrics(&registry))?;
        written.push(path);
    }
    if let Some(path) = ctx.persist_trace("hostprof-unified", merged)? {
        written.push(path);
    }
    Ok(written)
}

/// Renders the measurement, the per-region attribution, and the gate
/// verdict as text.
pub fn render(h: &Hostprof) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("hostprof: host-plane tracing overhead and unified timeline\n");
    let _ = writeln!(
        s,
        "N={} threads={} reps={}: untraced {:.6} s, traced {:.6} s ({:+.2}% — bound {:.0}% + {:.0} ms)",
        h.n,
        h.threads,
        h.reps,
        h.untraced_s,
        h.traced_s,
        h.overhead_rel * 100.0,
        h.max_overhead_rel * 100.0,
        h.noise_floor_s * 1e3,
    );
    let _ = writeln!(
        s,
        "{:>8} {:<8} {:>12} {:>8} {:>8} {:>8} {:>6} {:>10}",
        "region", "backend", "shape", "wall_ms", "pack%", "eff%", "GF/s", "reconcile%"
    );
    for r in &h.records {
        let _ = writeln!(
            s,
            "{:>8} {:<8} {:>12} {:>8.3} {:>8.1} {:>8.1} {:>6.1} {:>10.2}",
            r.region,
            r.backend,
            format!("{}x{}x{}", r.m, r.n, r.k),
            r.wall_s * 1e3,
            r.pack_ratio * 100.0,
            r.parallel_efficiency * 100.0,
            r.gflops,
            r.reconcile_rel_err * 100.0,
        );
    }
    for v in &h.verdicts {
        let _ = writeln!(s, "  region {}: {}", v.region, v.explanation);
    }
    let _ = writeln!(
        s,
        "{} host event(s) + {} simulated event(s) merged; {} region(s), {} dropped",
        h.host_events, h.sim_events, h.regions, h.dropped_events,
    );
    let pass = h.overhead_exceeded == 0
        && h.bitwise_mismatches == 0
        && h.total_violations == 0
        && h.reconcile_failures == 0
        && h.unified_missing == 0;
    let _ = writeln!(
        s,
        "gate: {} ({} over budget, {} bitwise mismatch(es), {} violation(s), {} reconcile failure(s), {} plane(s) missing)",
        if pass { "PASS" } else { "FAIL" },
        h.overhead_exceeded,
        h.bitwise_mismatches,
        h.total_violations,
        h.reconcile_failures,
        h.unified_missing,
    );
    s
}

/// The hostprof gate as a registered experiment.
pub struct HostprofExperiment;

impl crate::experiment::Experiment for HostprofExperiment {
    fn id(&self) -> &'static str {
        "hostprof"
    }

    fn title(&self) -> &'static str {
        "Gate — host-plane tracing overhead, attribution, and the unified timeline"
    }

    fn device(&self) -> &'static str {
        "host + mi250x-gcd"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        use crate::experiment::Check;
        vec![
            Check::new(
                "hostprof/overhead over budget",
                0.0,
                0.0,
                "/overhead_exceeded",
            ),
            Check::new(
                "hostprof/traced-vs-untraced bitwise mismatches",
                0.0,
                0.0,
                "/bitwise_mismatches",
            ),
            Check::new(
                "hostprof/unified timeline violations",
                0.0,
                0.0,
                "/total_violations",
            ),
            Check::new(
                "hostprof/phase-to-wall reconcile failures",
                0.0,
                0.0,
                "/reconcile_failures",
            ),
            Check::new(
                "hostprof/missing timeline planes",
                0.0,
                0.0,
                "/unified_missing",
            ),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (Value, String) {
        let (payload, profile, merged) = run(&ctx.devices, &ctx.budgets);
        if let Err(e) = persist_hostprof(ctx, &payload, &profile, &merged) {
            eprintln!("error: could not write hostprof artifacts: {e}");
        }
        (serde_json::to_value(&payload), render(&payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment as _;
    use mc_insight::HostBottleneck;

    #[test]
    fn dimension_follows_budgets() {
        assert_eq!(dimension(&IterBudgets::smoke()), 256);
        assert_eq!(dimension(&IterBudgets::reduced()), 1024);
        assert_eq!(dimension(&IterBudgets::paper()), 1024);
    }

    #[test]
    fn gate_passes_at_smoke_dimension() {
        let (h, profile, merged) = run(&DeviceRegistry::builtin(), &IterBudgets::smoke());
        assert_eq!(h.overhead_exceeded, 0, "{}", render(&h));
        assert_eq!(h.bitwise_mismatches, 0, "{}", render(&h));
        assert_eq!(h.total_violations, 0, "{}", render(&h));
        assert_eq!(h.reconcile_failures, 0, "{}", render(&h));
        assert_eq!(h.unified_missing, 0, "{}", render(&h));
        assert_eq!(h.dropped_events, 0);
        // Both the packed timing region and the naive-routed region
        // appear at least once, each with a verdict.
        assert!(h.regions >= 2, "{}", render(&h));
        assert_eq!(h.verdicts.len(), h.records.len());
        assert!(h
            .records
            .iter()
            .any(|r| r.backend != "naive" && r.microkernel_s > 0.0));
        assert!(h
            .verdicts
            .iter()
            .any(|v| v.bottleneck == HostBottleneck::DispatchOverhead));
        assert!(!profile.events.is_empty());
        assert!(h.host_events > 0 && h.sim_events > 0);
        assert_eq!(merged.len(), h.host_events + h.sim_events);
        assert!(h.untraced_s > 0.0 && h.traced_s > 0.0);
    }

    #[test]
    fn experiment_checks_pass_and_artifacts_land() {
        let base = std::env::temp_dir().join(format!(
            "mc-bench-hostprof-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let ctx = RunContext::new(IterBudgets::smoke())
            .with_sink(base.join("results"))
            .with_metrics(base.join("metrics"))
            .with_trace(base.join("trace"));
        let record = HostprofExperiment.run(&ctx);
        assert_eq!(record.checks.len(), 5);
        assert!(
            record.checks.iter().all(|c| c.pass()),
            "{}",
            record.rendered
        );
        assert!(
            record.rendered.contains("gate: PASS"),
            "{}",
            record.rendered
        );

        let ledger = std::fs::read_to_string(base.join("results/hostprof.host.jsonl"))
            .expect("attribution ledger written");
        let back = mc_hostprof::from_jsonl(&ledger).expect("ledger parses");
        assert!(!back.is_empty());

        let om = std::fs::read_to_string(base.join("metrics/hostprof.host.om"))
            .expect("metrics snapshot written");
        assert!(om.contains("# TYPE hostprof_regions gauge"), "{om}");
        assert!(
            om.contains("# TYPE hostprof_microkernel_latency_seconds histogram"),
            "{om}"
        );
        assert!(om.ends_with("# EOF\n"), "{om}");

        let unified = std::fs::read_to_string(base.join("trace/hostprof-unified.trace.json"))
            .expect("unified trace written");
        assert!(unified.contains("\"host\""), "host process missing");
        assert!(unified.contains("matrix pipe"), "CU tracks missing");
        assert!(unified.contains("host worker"), "worker tracks missing");
        let _ = std::fs::remove_dir_all(&base);
    }
}
