//! Fig. 3: measured vs Eq. 2-predicted floating-point throughput on one
//! MI250X GCD at increasing wavefront counts, for the three
//! floating-point datatypes.

use mc_isa::cdna2_catalog;
use mc_model::ThroughputModel;
use mc_sim::{fig3_wavefront_sweep, throughput_run, DeviceId, DeviceRegistry};
use mc_types::DType;
use serde::{Deserialize, Serialize};

/// One measured/predicted point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Wavefronts launched.
    pub wavefronts: u64,
    /// Measured TFLOPS.
    pub measured_tflops: f64,
    /// Eq. 2 model TFLOPS.
    pub model_tflops: f64,
}

/// One datatype's series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig3Series {
    /// Series label (`mixed`, `float`, `double`).
    pub label: String,
    /// Instruction mnemonic driving the series.
    pub mnemonic: String,
    /// Sweep points.
    pub points: Vec<Fig3Point>,
    /// Sustained plateau throughput (mean of ≥440-wavefront points).
    pub plateau_tflops: f64,
    /// Fraction of the Eq. 2 theoretical peak achieved at the plateau.
    pub fraction_of_peak: f64,
}

/// The reproduced Fig. 3.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// One series per datatype.
    pub series: Vec<Fig3Series>,
    /// Iterations per wavefront.
    pub iterations: u64,
}

/// The (label, instruction) set the paper sweeps.
pub fn paper_series() -> Vec<(&'static str, DType, DType, u32, u32, u32)> {
    vec![
        ("mixed", DType::F32, DType::F16, 16, 16, 16),
        ("float", DType::F32, DType::F32, 16, 16, 4),
        ("double", DType::F64, DType::F64, 16, 16, 4),
    ]
}

/// Regenerates Fig. 3. The paper uses 10⁷ iterations per wavefront.
pub fn run(devices: &DeviceRegistry, iterations: u64) -> Fig3 {
    let sweep = fig3_wavefront_sweep();
    let catalog = cdna2_catalog();
    let die = devices.gpu(DeviceId::Mi250x).spec().die.clone();
    let parallel = devices.trace_sink().is_none();

    let series = paper_series()
        .into_iter()
        .map(|(label, cd, ab, m, n, k)| {
            let instr = *catalog.find(cd, ab, m, n, k).expect("paper instruction");
            let model = ThroughputModel::new(&instr, &die);
            let points: Vec<Fig3Point> =
                crate::experiment::par_map(parallel, sweep.clone(), |wf| {
                    let mut gpu = devices.gpu(DeviceId::Mi250x);
                    let r = throughput_run(&mut gpu, 0, &instr, wf, iterations)
                        .expect("microbenchmark launch");
                    Fig3Point {
                        wavefronts: wf,
                        measured_tflops: r.tflops,
                        model_tflops: model.tflops(wf),
                    }
                });
            let plateau: Vec<f64> = points
                .iter()
                .filter(|p| p.wavefronts >= 440)
                .map(|p| p.measured_tflops)
                .collect();
            let plateau_tflops = plateau.iter().sum::<f64>() / plateau.len() as f64;
            Fig3Series {
                label: label.to_owned(),
                mnemonic: instr.mnemonic(),
                points,
                plateau_tflops,
                fraction_of_peak: plateau_tflops / (model.peak_flops() / 1e12),
            }
        })
        .collect();

    Fig3 { series, iterations }
}

/// Fig. 3 as a registered experiment.
pub struct Fig3Experiment;

impl crate::experiment::Experiment for Fig3Experiment {
    fn id(&self) -> &'static str {
        "fig3"
    }

    fn title(&self) -> &'static str {
        "Fig. 3 — throughput vs wavefronts + Eq. 2 model"
    }

    fn device(&self) -> &'static str {
        "mi250x-gcd"
    }

    fn checks(&self) -> Vec<crate::experiment::Check> {
        use crate::experiment::Check;
        vec![
            Check::new(
                "fig3/mixed plateau (TFLOPS)",
                175.0,
                0.03,
                "/series/0/plateau_tflops",
            ),
            Check::new(
                "fig3/float plateau (TFLOPS)",
                43.0,
                0.03,
                "/series/1/plateau_tflops",
            ),
            Check::new(
                "fig3/double plateau (TFLOPS)",
                41.0,
                0.03,
                "/series/2/plateau_tflops",
            ),
            Check::new(
                "fig3/mixed fraction of peak",
                0.92,
                0.02,
                "/series/0/fraction_of_peak",
            ),
            Check::new(
                "fig3/double fraction of peak",
                0.85,
                0.02,
                "/series/2/fraction_of_peak",
            ),
        ]
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let f = run(&ctx.devices, ctx.budgets.tput_iters);
        (serde_json::to_value(&f), render(&f))
    }
}

/// Renders the figure data as text.
pub fn render(f: &Fig3) -> String {
    use std::fmt::Write as _;
    let mut s = String::from(
        "Fig. 3: throughput vs wavefronts, one GCD (measured | Eq. 2 model), TFLOPS\n",
    );
    let _ = write!(s, "{:>10}", "waves");
    for series in &f.series {
        let _ = write!(s, " {:>22}", series.label);
    }
    s.push('\n');
    let npts = f.series[0].points.len();
    for i in 0..npts {
        let _ = write!(s, "{:>10}", f.series[0].points[i].wavefronts);
        for series in &f.series {
            let p = &series.points[i];
            let _ = write!(s, " {:>11.2} |{:>9.2}", p.measured_tflops, p.model_tflops);
        }
        s.push('\n');
    }
    for series in &f.series {
        let _ = writeln!(
            s,
            "plateau {:<8} {:6.1} TFLOPS = {:4.1}% of theoretical peak",
            series.label,
            series.plateau_tflops,
            series.fraction_of_peak * 100.0
        );
    }
    // The figure itself: measured series on a log-x chart, as in the paper.
    let chart = crate::plot::Chart {
        title: "Fig. 3 (measured)".to_owned(),
        x_label: "wavefronts".to_owned(),
        y_label: "TFLOPS".to_owned(),
        ..crate::plot::Chart::default()
    };
    let glyphs = ['m', 'f', 'd'];
    let plotted: Vec<crate::plot::Series> = f
        .series
        .iter()
        .zip(glyphs)
        .map(|(series, glyph)| crate::plot::Series {
            label: series.label.clone(),
            glyph,
            points: series
                .points
                .iter()
                .map(|p| (p.wavefronts as f64, p.measured_tflops))
                .collect(),
        })
        .collect();
    s.push_str(&crate::plot::render(&chart, &plotted));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices() -> DeviceRegistry {
        DeviceRegistry::builtin()
    }

    #[test]
    fn plateaus_match_paper() {
        // §V-B: 175 mixed / 43 float / 41 double TFLOPS sustained, at
        // 92 / 90 / 85 % of the theoretical peak.
        let f = run(&devices(), 100_000);
        let by = |l: &str| f.series.iter().find(|s| s.label == l).unwrap();
        assert!((by("mixed").plateau_tflops - 175.0).abs() < 4.0);
        assert!((by("float").plateau_tflops - 43.0).abs() < 1.0);
        assert!((by("double").plateau_tflops - 41.0).abs() < 1.0);
        assert!((by("mixed").fraction_of_peak - 0.92).abs() < 0.015);
        assert!((by("float").fraction_of_peak - 0.90).abs() < 0.015);
        assert!((by("double").fraction_of_peak - 0.85).abs() < 0.015);
    }

    #[test]
    fn linear_region_tracks_model() {
        let f = run(&devices(), 100_000);
        for series in &f.series {
            for p in series.points.iter().filter(|p| p.wavefronts <= 128) {
                let rel = (p.measured_tflops - p.model_tflops).abs() / p.model_tflops;
                assert!(rel < 0.08, "{} at {}: {rel}", series.label, p.wavefronts);
            }
        }
    }

    #[test]
    fn plateau_is_flat_beyond_saturation() {
        let f = run(&devices(), 100_000);
        for series in &f.series {
            let sat: Vec<f64> = series
                .points
                .iter()
                .filter(|p| p.wavefronts >= 440)
                .map(|p| p.measured_tflops)
                .collect();
            let (min, max) = sat
                .iter()
                .fold((f64::MAX, 0.0f64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            assert!((max - min) / max < 0.03, "{}: {min}..{max}", series.label);
        }
    }

    #[test]
    fn render_mentions_all_series() {
        let text = render(&run(&devices(), 10_000));
        for label in ["mixed", "float", "double"] {
            assert!(text.contains(label));
        }
    }
}
