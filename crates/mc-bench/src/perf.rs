//! Hot-path performance experiment: the routed GEMM dispatch against
//! the retained naive reference across a (size × threads) matrix, plus
//! solver-layer wall times.
//!
//! Every figure in the suite funnels its host GEMM work through
//! [`mc_blas::select::host_gemm_backend`] — the [`mc_compute::Auto`]
//! crossover dispatch over the naive and blocked kernels. This
//! experiment measures what that routing buys: for each cell of a
//! problem-size × thread-count matrix it times the plain naive loop and
//! the routed dispatch, confirms the two agree bitwise (the
//! optimization contract: same rounding chain, different loop order),
//! and records blocked LU/Cholesky factorization wall times. Alongside
//! the usual envelope it writes a machine-readable
//! `BENCH_hotpaths.json` to the `--json` sink so CI can archive and
//! perf-diff timings cell by cell.
//!
//! Because the dispatch routes sub-crossover problems back to the naive
//! loop, the routed side can tie but never structurally lose at small
//! N — the regression the v1 artifact exposed (`sgemm_blocked` behind
//! `sgemm_naive` at N = 256 on one thread) is closed by policy, not by
//! tuning the blocked kernel's toll away.
//!
//! The size axis defaults to {256, 512, 1024} (just {256} under smoke
//! budgets) and collapses to a single dimension with the `MC_PERF_N`
//! environment variable; the thread axis is fixed at {1, 4}.

use std::time::Instant;

use mc_blas::BlasHandle;
use mc_compute::{Epilogue, GemmParams, MatMul, Naive};
use mc_sim::{DeviceId, DeviceRegistry};
use mc_solver::{factor_timed, Factorization};
use serde::{Deserialize, Serialize};

use crate::experiment::IterBudgets;

/// Layout version of `BENCH_hotpaths.json`. Version 2 moved the thread
/// count from the file header into every entry, turning the artifact
/// into a (size × threads) matrix.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Name of the timing artifact written to the JSON sink.
pub const BENCH_FILE: &str = "BENCH_hotpaths.json";

/// The thread-count axis of the timing matrix.
pub const MATRIX_THREADS: [usize; 2] = [1, 4];

/// Timing repetitions per cell; each kernel's wall time is the minimum
/// over the repetitions, which strips scheduler noise from the
/// committed artifact.
pub const REPS: usize = 2;

/// One cell of the naive-vs-routed GEMM matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GemmTiming {
    /// Square problem dimension (M = N = K).
    pub n: usize,
    /// Configured rayon worker count for this cell.
    pub threads: usize,
    /// Naive reference kernel wall time in seconds (best of [`REPS`]).
    pub naive_s: f64,
    /// Routed-dispatch wall time in seconds (best of [`REPS`]).
    pub blocked_s: f64,
    /// `naive_s / blocked_s`.
    pub speedup: f64,
    /// Whether the two paths produced bitwise-identical results.
    pub bitwise_equal: bool,
    /// The crossover edge the dispatch used for this cell.
    pub crossover_n: usize,
    /// Which kernel the dispatch routed this cell to
    /// (`naive`/`blocked`).
    pub routed: String,
}

/// One factorization wall-time measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolverTiming {
    /// Routine name (`getrf`/`potrf`).
    pub routine: String,
    /// Problem size.
    pub n: usize,
    /// Panel block size.
    pub block: usize,
    /// Host wall time in seconds.
    pub wall_s: f64,
    /// Useful-FLOP throughput on the simulated device clock.
    pub tflops: f64,
}

/// The GEMM dimension at which the ≥5× speedup bar is assessed. Below
/// it the whole working set fits in cache and the naive loop order is
/// not yet paying for its strided `B` walk, so smaller (smoke-tier)
/// runs report their speedup as informational only.
pub const TARGET_N: usize = 1024;

/// The perf experiment payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Perf {
    /// Rayon worker threads of the ambient pool (restored after the
    /// matrix and used for the solver timings).
    pub threads: usize,
    /// The (size × threads) GEMM timing matrix.
    pub cells: Vec<GemmTiming>,
    /// True when some full-dimension cell (N ≥ [`TARGET_N`]) met the
    /// ≥5× speedup bar.
    pub meets_target: bool,
    /// True when the routed dispatch never lost to the naive loop in
    /// any cell beyond timer jitter (5%) — the crossover contract. On
    /// sub-crossover cells both measurements time the *same* kernel, so
    /// only jitter can separate them.
    pub never_loses: bool,
    /// Factorization wall times over the routed BLAS-3 blocks.
    pub solver: Vec<SolverTiming>,
}

/// One entry of `BENCH_hotpaths.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable hot-path id (`sgemm_naive`, `sgemm_blocked`, …).
    pub id: String,
    /// Problem dimension.
    pub n: usize,
    /// Configured rayon worker count during the measurement.
    pub threads: usize,
    /// Host wall time in seconds.
    pub wall_s: f64,
}

/// The schema-versioned timing artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchFile {
    /// Layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Timed hot paths, one entry per (id, n, threads) cell.
    pub entries: Vec<BenchEntry>,
}

/// The GEMM size axis for a budget tier: {256, 512, 1024} for the
/// reduced and paper tiers, {256} under smoke budgets, a single
/// `MC_PERF_N` dimension overriding both.
pub fn problem_sizes(budgets: &IterBudgets) -> Vec<usize> {
    if let Some(n) = std::env::var("MC_PERF_N")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return vec![n.max(1)];
    }
    if *budgets == IterBudgets::smoke() {
        vec![256]
    } else {
        vec![256, 512, 1024]
    }
}

/// Deterministic pseudo-random fill in [-1, 1) (xorshift64*).
fn fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mantissa = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64;
        *v = (mantissa / (1u64 << 23) as f64 * 2.0 - 1.0) as f32;
    }
}

fn time_kernel<K: MatMul>(
    kernel: &K,
    params: &GemmParams,
    a: &[f32],
    b: &[f32],
) -> (f64, Vec<f32>) {
    let m = params.m;
    let n = params.n;
    let c = vec![0.0f32; m * n];
    let mut d = vec![0.0f32; m * n];
    let start = Instant::now();
    kernel
        .gemm::<f32, f32, f32>(params, a, b, &c, &mut d)
        .expect("well-formed problem");
    (start.elapsed().as_secs_f64(), d)
}

/// Times one matrix cell: the naive loop against the routed dispatch,
/// best of [`REPS`] each, with a bitwise agreement check. Assumes the
/// global rayon pool is already sized to `threads`; the dispatch is
/// constructed here so its crossover sees that pool.
pub fn time_gemm(n: usize, threads: usize) -> GemmTiming {
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    fill(&mut a, 0x9E37_79B9_7F4A_7C15);
    fill(&mut b, 0xD1B5_4A32_D192_ED03);
    let params = GemmParams::new(n, n, n).with_epilogue(Epilogue::ComputeRounded);
    let auto = mc_blas::select::host_gemm_backend();

    let mut naive_s = f64::INFINITY;
    let mut blocked_s = f64::INFINITY;
    let mut d_naive = Vec::new();
    let mut d_auto = Vec::new();
    for _ in 0..REPS {
        let (t, d) = time_kernel(&Naive, &params, &a, &b);
        naive_s = naive_s.min(t);
        d_naive = d;
        let (t, d) = time_kernel(&auto, &params, &a, &b);
        blocked_s = blocked_s.min(t);
        d_auto = d;
    }

    GemmTiming {
        n,
        threads,
        naive_s,
        blocked_s,
        speedup: naive_s / blocked_s.max(f64::MIN_POSITIVE),
        bitwise_equal: d_naive
            .iter()
            .zip(&d_auto)
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        crossover_n: auto.crossover_n(),
        routed: if auto.routes_to_naive(&params) {
            "naive".to_owned()
        } else {
            "blocked".to_owned()
        },
    }
}

/// Runs the perf experiment over the given size and thread axes.
///
/// The global rayon pool is resized for each thread-axis value (the
/// vendored pool's `build_global` is re-callable by design) and
/// restored to the auto-detected default afterwards.
pub fn run(devices: &DeviceRegistry, sizes: &[usize], threads_axis: &[usize]) -> Perf {
    let ambient = rayon::current_num_threads();
    let mut cells = Vec::new();
    for &t in threads_axis {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build_global();
        for &n in sizes {
            cells.push(time_gemm(n, t));
        }
    }
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global();

    let mut handle = BlasHandle::from_registry(devices, DeviceId::Mi250xGcd);
    let block = 128;
    let solver_n = sizes.iter().copied().max().unwrap_or(block).max(block * 2);
    let solver = [Factorization::Getrf, Factorization::Potrf]
        .into_iter()
        .map(|kind| {
            let start = Instant::now();
            let perf = factor_timed(&mut handle, kind, solver_n, block).expect("factorization");
            SolverTiming {
                routine: match kind {
                    Factorization::Getrf => "getrf".to_owned(),
                    Factorization::Potrf => "potrf".to_owned(),
                },
                n: solver_n,
                block,
                wall_s: start.elapsed().as_secs_f64(),
                tflops: perf.tflops,
            }
        })
        .collect();

    Perf {
        threads: ambient,
        meets_target: cells.iter().any(|c| c.n >= TARGET_N && c.speedup >= 5.0),
        never_loses: cells.iter().all(|c| c.blocked_s <= c.naive_s * 1.05),
        cells,
        solver,
    }
}

/// The `BENCH_hotpaths.json` contents for a run.
pub fn bench_file(p: &Perf) -> BenchFile {
    let mut entries = Vec::new();
    for c in &p.cells {
        entries.push(BenchEntry {
            id: "sgemm_naive".to_owned(),
            n: c.n,
            threads: c.threads,
            wall_s: c.naive_s,
        });
        entries.push(BenchEntry {
            id: "sgemm_blocked".to_owned(),
            n: c.n,
            threads: c.threads,
            wall_s: c.blocked_s,
        });
    }
    entries.extend(p.solver.iter().map(|s| BenchEntry {
        id: s.routine.clone(),
        n: s.n,
        threads: p.threads,
        wall_s: s.wall_s,
    }));
    BenchFile {
        schema_version: BENCH_SCHEMA_VERSION,
        entries,
    }
}

/// The perf measurement as a registered experiment.
pub struct PerfExperiment;

impl crate::experiment::Experiment for PerfExperiment {
    fn id(&self) -> &'static str {
        "perf"
    }

    fn title(&self) -> &'static str {
        "Perf — routed GEMM dispatch vs naive reference (size × threads)"
    }

    fn device(&self) -> &'static str {
        "host"
    }

    fn execute(&self, ctx: &crate::experiment::RunContext) -> (serde::Value, String) {
        let p = run(&ctx.devices, &problem_sizes(&ctx.budgets), &MATRIX_THREADS);
        if let Some(dir) = &ctx.json_sink {
            let write = std::fs::create_dir_all(dir).and_then(|()| {
                std::fs::write(
                    dir.join(BENCH_FILE),
                    serde_json::to_string_pretty(&bench_file(&p))
                        .expect("timings are always serializable"),
                )
            });
            if let Err(e) = write {
                eprintln!("error: could not write {BENCH_FILE}: {e}");
            }
        }
        (serde_json::to_value(&p), render(&p))
    }
}

/// Renders the experiment as text.
pub fn render(p: &Perf) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("Perf: host hot-path timings (routed GEMM dispatch vs naive)\n");
    let _ = writeln!(
        s,
        "{:>6} {:>4} {:>10} {:>10} {:>8}  {:<8} bitwise",
        "N", "thr", "naive_s", "routed_s", "speedup", "route"
    );
    for c in &p.cells {
        let _ = writeln!(
            s,
            "{:>6} {:>4} {:>10.4} {:>10.4} {:>7.2}x  {:<8} {}",
            c.n,
            c.threads,
            c.naive_s,
            c.blocked_s,
            c.speedup,
            c.routed,
            if c.bitwise_equal { "yes" } else { "NO" }
        );
    }
    let full_dim = p.cells.iter().any(|c| c.n >= TARGET_N);
    let verdict = if full_dim {
        if p.meets_target {
            "met, target >= 5x".to_owned()
        } else {
            "MISSED, target >= 5x".to_owned()
        }
    } else {
        format!("informational; the >= 5x target is assessed at n >= {TARGET_N}")
    };
    let _ = writeln!(s, "speedup bar: {verdict}");
    let _ = writeln!(
        s,
        "routed dispatch never loses to naive: {}",
        if p.never_loses { "yes" } else { "NO" }
    );
    for t in &p.solver {
        let _ = writeln!(
            s,
            "{} n={} nb={}: {:.3} s host wall, {:.1} TFLOPS on the device clock",
            t.routine, t.n, t.block, t.wall_s, t.tflops
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routed_agrees_bitwise_with_naive() {
        let t = time_gemm(96, rayon::current_num_threads());
        assert!(t.bitwise_equal, "routed f32 GEMM diverged from naive");
        assert!(t.naive_s > 0.0 && t.blocked_s > 0.0);
        assert!(t.crossover_n > 0);
    }

    #[test]
    fn problem_sizes_scale_with_budget() {
        // Guard against MC_PERF_N leaking in from the environment.
        if std::env::var("MC_PERF_N").is_ok() {
            return;
        }
        assert_eq!(problem_sizes(&IterBudgets::smoke()), vec![256]);
        assert_eq!(problem_sizes(&IterBudgets::reduced()), vec![256, 512, 1024]);
        assert_eq!(problem_sizes(&IterBudgets::paper()), vec![256, 512, 1024]);
    }

    #[test]
    fn bench_file_covers_the_matrix() {
        let p = run(&DeviceRegistry::builtin(), &[64], &[1, 4]);
        let f = bench_file(&p);
        assert_eq!(f.schema_version, BENCH_SCHEMA_VERSION);
        // 2 cells × 2 GEMM ids + 2 solver routines.
        assert_eq!(f.entries.len(), 6);
        for threads in [1usize, 4] {
            for id in ["sgemm_naive", "sgemm_blocked"] {
                assert!(
                    f.entries
                        .iter()
                        .any(|e| e.id == id && e.n == 64 && e.threads == threads),
                    "missing {id} cell at t={threads}"
                );
            }
        }
        assert!(f.entries.iter().all(|e| e.wall_s > 0.0));
    }

    #[test]
    fn render_reports_matrix_and_agreement() {
        let p = run(&DeviceRegistry::builtin(), &[64], &[1]);
        let text = render(&p);
        assert!(text.contains("speedup bar"));
        assert!(p.cells.iter().all(|c| c.bitwise_equal), "{text}");
        assert!(text.contains("getrf"));
        assert!(text.contains("potrf"));
    }

    #[test]
    fn speedup_target_only_assessed_at_full_dimension() {
        let p = run(&DeviceRegistry::builtin(), &[64], &[1]);
        assert!(
            !p.meets_target,
            "sub-{TARGET_N} runs must not claim the target"
        );
        assert!(render(&p).contains("informational"));
        assert!(!render(&p).contains("MISSED"));
    }

    #[test]
    fn small_cells_route_to_naive_on_one_thread() {
        // At N = 64 on one worker the dispatch must stay on the naive
        // loop (the crossover covers it), so the routed side cannot
        // structurally lose.
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global();
        let t = time_gemm(64, 1);
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global();
        if std::env::var(mc_compute::CROSSOVER_ENV).is_ok() {
            return; // calibration override in force; routing is theirs
        }
        assert_eq!(t.routed, "naive", "crossover edge {}", t.crossover_n);
    }

    #[test]
    fn experiment_writes_bench_artifact_to_sink() {
        use crate::experiment::{Experiment, RunContext};
        let dir = std::env::temp_dir().join(format!("mc-bench-perf-{}", std::process::id()));
        let ctx = RunContext::new(IterBudgets::smoke()).with_sink(&dir);
        let record = PerfExperiment.run(&ctx);
        ctx.persist(&record).unwrap();
        let bench: BenchFile =
            serde_json::from_str(&std::fs::read_to_string(dir.join(BENCH_FILE)).unwrap()).unwrap();
        assert_eq!(bench.schema_version, BENCH_SCHEMA_VERSION);
        assert!(!bench.entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
